//! Property and invariant tests over the dataset generators (the
//! ground-truth consistency half of DESIGN.md's invariant list).

use proptest::prelude::*;
use rotom_datasets::edt::{self, EdtConfig, EdtFlavor};
use rotom_datasets::em::{self, jaccard, EmConfig, EmFlavor};
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// EM generators: sizes exact, matches lexically closer than
    /// non-matches (the latent-entity invariant), across flavors and seeds.
    #[test]
    fn em_generator_invariants(flavor_idx in 0usize..5, seed in 0u64..50) {
        let flavor = EmFlavor::ALL[flavor_idx];
        let cfg = EmConfig { num_entities: 40, train_pairs: 80, test_pairs: 30, seed, ..Default::default() };
        let d = em::generate(flavor, &cfg);
        prop_assert_eq!(d.train_pairs.len(), 80);
        prop_assert_eq!(d.test_pairs.len(), 30);
        let avg = |m: bool| {
            let v: Vec<f32> = d
                .train_pairs
                .iter()
                .filter(|p| p.is_match == m)
                .map(|p| jaccard(&p.left, &p.right))
                .collect();
            v.iter().sum::<f32>() / v.len().max(1) as f32
        };
        prop_assert!(avg(true) > avg(false), "{}: matches not closer", d.name);
    }

    /// EDT generators: the error mask matches the injected error count and
    /// test rows never overlap, across flavors and seeds.
    #[test]
    fn edt_generator_invariants(flavor_idx in 0usize..5, seed in 0u64..50) {
        let flavor = EdtFlavor::ALL[flavor_idx];
        let cfg = EdtConfig { rows: Some(50), seed, ..Default::default() };
        let d = edt::generate(flavor, &cfg);
        let expected = (50.0 * d.columns.len() as f32 * cfg.error_rate).round() as usize;
        prop_assert_eq!(d.num_errors(), expected);
        let mut rows = d.test_rows.clone();
        rows.sort_unstable();
        rows.dedup();
        prop_assert_eq!(rows.len(), d.test_rows.len());
        // Kinds align with the mask everywhere.
        for r in 0..d.rows.len() {
            for c in 0..d.columns.len() {
                prop_assert_eq!(d.mask[r][c], d.kinds[r][c].is_some());
            }
        }
    }

    /// TextCLS generators: labels in range, split sizes exact, sequences
    /// non-empty.
    #[test]
    fn textcls_generator_invariants(flavor_idx in 0usize..8, seed in 0u64..50) {
        let flavor = TextClsFlavor::ALL[flavor_idx];
        let cfg = TextClsConfig { train_pool: 60, test: 24, unlabeled: 12, seed };
        let d = textcls::generate(flavor, &cfg);
        prop_assert_eq!(d.train_pool.len(), 60);
        prop_assert_eq!(d.test.len(), 24);
        prop_assert_eq!(d.unlabeled.len(), 12);
        for e in d.train_pool.iter().chain(&d.test) {
            prop_assert!(e.label < d.num_classes);
            prop_assert!(!e.tokens.is_empty());
        }
    }
}

#[test]
fn em_blocking_is_symmetric_in_threshold() {
    // Raising min_shared can only shrink the candidate set.
    let cfg = EmConfig { num_entities: 30, train_pairs: 50, test_pairs: 10, ..Default::default() };
    let d = em::generate(EmFlavor::AbtBuy, &cfg);
    let left: Vec<_> = d.train_pairs.iter().take(20).map(|p| p.left.clone()).collect();
    let right: Vec<_> = d.train_pairs.iter().take(20).map(|p| p.right.clone()).collect();
    let loose = em::block_candidates(&left, &right, 1);
    let strict = em::block_candidates(&left, &right, 3);
    assert!(strict.len() <= loose.len());
    for pair in &strict {
        assert!(loose.contains(pair));
    }
}

#[test]
fn dirty_variants_differ_from_clean() {
    let clean_cfg = EmConfig { num_entities: 30, train_pairs: 40, test_pairs: 10, ..Default::default() };
    let dirty_cfg = EmConfig { dirty: true, ..clean_cfg.clone() };
    let clean = em::generate(EmFlavor::DblpAcm, &clean_cfg);
    let dirty = em::generate(EmFlavor::DblpAcm, &dirty_cfg);
    assert_eq!(clean.name, "DBLP-ACM");
    assert_eq!(dirty.name, "DBLP-ACM-dirty");
    // Dirtying consumes RNG draws, so the shuffle (and hence the train/test
    // boundary) differs — but the overall label distribution is identical
    // (misplacement never changes labels).
    let positives = |d: &em::EmDataset| {
        d.train_pairs.iter().chain(&d.test_pairs).filter(|p| p.is_match).count()
    };
    assert_eq!(positives(&clean), positives(&dirty));
    // And at least one record has a blanked (moved-out) attribute.
    let empties = dirty
        .train_pairs
        .iter()
        .flat_map(|p| p.left.attrs.iter().chain(&p.right.attrs))
        .filter(|(_, v)| v.is_empty())
        .count();
    assert!(empties > 0);
}
