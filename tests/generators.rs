//! Property and invariant tests over the dataset generators (the
//! ground-truth consistency half of DESIGN.md's invariant list).
//!
//! Hand-rolled property loops over seeded random cases (no `proptest`; the
//! workspace builds fully offline with zero external dependencies).

use rotom_datasets::edt::{self, EdtConfig, EdtFlavor};
use rotom_datasets::em::{self, jaccard, EmConfig, EmFlavor};
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};
use rotom_rng::rngs::StdRng;
use rotom_rng::{split_seed, RngExt, SeedableRng};

const CASES: u64 = 8;

/// EM generators: sizes exact, matches lexically closer than
/// non-matches (the latent-entity invariant), across flavors and seeds.
#[test]
fn em_generator_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0x9e4_0001, case));
        let flavor = EmFlavor::ALL[rng.random_range(0..5usize)];
        let seed = rng.random_range(0..50u64);
        let cfg = EmConfig {
            num_entities: 40,
            train_pairs: 80,
            test_pairs: 30,
            seed,
            ..Default::default()
        };
        let d = em::generate(flavor, &cfg);
        assert_eq!(d.train_pairs.len(), 80, "case {case}");
        assert_eq!(d.test_pairs.len(), 30, "case {case}");
        let avg = |m: bool| {
            let v: Vec<f32> = d
                .train_pairs
                .iter()
                .filter(|p| p.is_match == m)
                .map(|p| jaccard(&p.left, &p.right))
                .collect();
            v.iter().sum::<f32>() / v.len().max(1) as f32
        };
        assert!(
            avg(true) > avg(false),
            "case {case} {}: matches not closer",
            d.name
        );
    }
}

/// EDT generators: the error mask matches the injected error count and
/// test rows never overlap, across flavors and seeds.
#[test]
fn edt_generator_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0x9e4_0002, case));
        let flavor = EdtFlavor::ALL[rng.random_range(0..5usize)];
        let seed = rng.random_range(0..50u64);
        let cfg = EdtConfig {
            rows: Some(50),
            seed,
            ..Default::default()
        };
        let d = edt::generate(flavor, &cfg);
        let expected = (50.0 * d.columns.len() as f32 * cfg.error_rate).round() as usize;
        assert_eq!(d.num_errors(), expected, "case {case}");
        let mut rows = d.test_rows.clone();
        rows.sort_unstable();
        rows.dedup();
        assert_eq!(rows.len(), d.test_rows.len(), "case {case}");
        // Kinds align with the mask everywhere.
        for r in 0..d.rows.len() {
            for c in 0..d.columns.len() {
                assert_eq!(d.mask[r][c], d.kinds[r][c].is_some(), "case {case}");
            }
        }
    }
}

/// TextCLS generators: labels in range, split sizes exact, sequences
/// non-empty.
#[test]
fn textcls_generator_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0x9e4_0003, case));
        let flavor = TextClsFlavor::ALL[rng.random_range(0..8usize)];
        let seed = rng.random_range(0..50u64);
        let cfg = TextClsConfig {
            train_pool: 60,
            test: 24,
            unlabeled: 12,
            seed,
        };
        let d = textcls::generate(flavor, &cfg);
        assert_eq!(d.train_pool.len(), 60, "case {case}");
        assert_eq!(d.test.len(), 24, "case {case}");
        assert_eq!(d.unlabeled.len(), 12, "case {case}");
        for e in d.train_pool.iter().chain(&d.test) {
            assert!(e.label < d.num_classes, "case {case}");
            assert!(!e.tokens.is_empty(), "case {case}");
        }
    }
}

#[test]
fn em_blocking_is_symmetric_in_threshold() {
    // Raising min_shared can only shrink the candidate set.
    let cfg = EmConfig {
        num_entities: 30,
        train_pairs: 50,
        test_pairs: 10,
        ..Default::default()
    };
    let d = em::generate(EmFlavor::AbtBuy, &cfg);
    let left: Vec<_> = d
        .train_pairs
        .iter()
        .take(20)
        .map(|p| p.left.clone())
        .collect();
    let right: Vec<_> = d
        .train_pairs
        .iter()
        .take(20)
        .map(|p| p.right.clone())
        .collect();
    let loose = em::block_candidates(&left, &right, 1);
    let strict = em::block_candidates(&left, &right, 3);
    assert!(strict.len() <= loose.len());
    for pair in &strict {
        assert!(loose.contains(pair));
    }
}

#[test]
fn dirty_variants_differ_from_clean() {
    let clean_cfg = EmConfig {
        num_entities: 30,
        train_pairs: 40,
        test_pairs: 10,
        ..Default::default()
    };
    let dirty_cfg = EmConfig {
        dirty: true,
        ..clean_cfg.clone()
    };
    let clean = em::generate(EmFlavor::DblpAcm, &clean_cfg);
    let dirty = em::generate(EmFlavor::DblpAcm, &dirty_cfg);
    assert_eq!(clean.name, "DBLP-ACM");
    assert_eq!(dirty.name, "DBLP-ACM-dirty");
    // Dirtying consumes RNG draws, so the shuffle (and hence the train/test
    // boundary) differs — but the overall label distribution is identical
    // (misplacement never changes labels).
    let positives = |d: &em::EmDataset| {
        d.train_pairs
            .iter()
            .chain(&d.test_pairs)
            .filter(|p| p.is_match)
            .count()
    };
    assert_eq!(positives(&clean), positives(&dirty));
    // And at least one record has a blanked (moved-out) attribute.
    let empties = dirty
        .train_pairs
        .iter()
        .flat_map(|p| p.left.attrs.iter().chain(&p.right.attrs))
        .filter(|(_, v)| v.is_empty())
        .count();
    assert!(empties > 0);
}
