//! Blocking-plane integration suite: the sharded streaming pipeline must be
//! a drop-in for exhaustive `block_candidates`, bit-identical at any shard
//! or worker count, with the LSH tier holding a recall floor on known match
//! pairs and the df ceiling carrying the stopword stress case.
//!
//! ci.sh runs this at `ROTOM_THREADS` 1 and 8; the tests additionally pin
//! explicit pool widths so both axes are covered in one process.

use rotom_datasets::blocking::{
    stream_candidates, stream_candidates_channel, BlockingConfig, LshParams, ShardedIndex,
};
use rotom_datasets::csv;
use rotom_datasets::em::{self, block_candidates, CorpusConfig, CorpusSide, EmCorpus};
use rotom_nn::RotomPool;
use rotom_text::Record;

fn corpus(n: usize, stopwords: usize) -> EmCorpus {
    EmCorpus::new(CorpusConfig {
        num_entities: n,
        stopwords,
        ..Default::default()
    })
}

fn streamed_pairs(
    index: &ShardedIndex,
    left: &[Record],
    chunk: usize,
    pool: &RotomPool,
) -> Vec<(usize, usize)> {
    let chunks: Vec<Vec<Record>> = left.chunks(chunk).map(|c| c.to_vec()).collect();
    let mut out = Vec::new();
    stream_candidates(index, chunks, pool, |batch| out.extend_from_slice(batch));
    out
}

/// Property test: the sharded pipeline equals single-shard
/// `block_candidates` (sorted) for shard counts {1, 2, 7} x pool widths
/// {1, 8}, and every configuration produces the identical byte-for-byte
/// candidate sequence.
#[test]
fn sharded_pipeline_matches_block_candidates_at_any_width() {
    let c = corpus(300, 0);
    let left = c.chunk(CorpusSide::Left, 0..300);
    let right = c.chunk(CorpusSide::Right, 0..300);
    for min_shared in [1usize, 2] {
        let exhaustive = block_candidates(&left, &right, min_shared);
        let mut outputs = Vec::new();
        for num_shards in [1usize, 2, 7] {
            for threads in [1usize, 8] {
                let pool = RotomPool::new(threads);
                let cfg = BlockingConfig {
                    min_shared,
                    num_shards,
                    df_ceiling: None,
                    lsh: None,
                    ..Default::default()
                };
                let index = ShardedIndex::build(&right, cfg, &pool);
                let pairs = streamed_pairs(&index, &left, 37, &pool);
                assert_eq!(
                    pairs, exhaustive,
                    "shards={num_shards} threads={threads} min_shared={min_shared}"
                );
                outputs.push(pairs);
            }
        }
        // Bit-identical across the whole grid, not merely set-equal.
        assert!(outputs.windows(2).all(|w| w[0] == w[1]));
    }
}

/// The LSH tier alone (token tier disabled via an unreachable `min_shared`)
/// must recover at least 90% of the corpus's known match pairs.
#[test]
fn lsh_tier_recall_floor_on_known_matches() {
    let n = 400;
    let c = corpus(n, 0);
    let left = c.chunk(CorpusSide::Left, 0..n);
    let right = c.chunk(CorpusSide::Right, 0..n);
    let pool = RotomPool::new(2);
    let cfg = BlockingConfig {
        // No record carries this many content tokens: the token tier emits
        // nothing and every candidate below comes from LSH banding.
        min_shared: 1000,
        lsh: Some(LshParams::default()),
        ..Default::default()
    };
    let index = ShardedIndex::build(&right, cfg, &pool);
    let pairs = streamed_pairs(&index, &left, 64, &pool);
    let matched = (0..n)
        .filter(|&i| pairs.binary_search(&(i, i)).is_ok())
        .count();
    assert!(
        matched as f64 / n as f64 >= 0.9,
        "LSH-only match recall {matched}/{n}"
    );
    // Sanity: LSH produced candidates, but far fewer than the cross product.
    assert!(!pairs.is_empty() && pairs.len() < n * n / 10);
}

/// Stopword stress: with shared tokens on every record the exhaustive pair
/// set degenerates toward the cross product; the df ceiling must prune the
/// stopword posting lists while keeping >= 95% of true matches, and the
/// bucket cap must keep the LSH tier from re-introducing the blowup.
#[test]
fn df_ceiling_carries_stopword_stress_with_bounded_buffer() {
    let n = 500;
    let c = corpus(n, 3);
    let left = c.chunk(CorpusSide::Left, 0..n);
    let right = c.chunk(CorpusSide::Right, 0..n);
    let pool = RotomPool::new(8);
    let cfg = BlockingConfig {
        min_shared: 2,
        df_ceiling: Some(100),
        lsh: Some(LshParams::default()),
        max_buffered_pairs: 128,
        ..Default::default()
    };
    let max_buffered = cfg.max_buffered_pairs;
    let index = ShardedIndex::build(&right, cfg, &pool);
    assert!(index.stats().tokens_pruned >= 3, "{:?}", index.stats());
    let chunks: Vec<Vec<Record>> = left.chunks(50).map(|c| c.to_vec()).collect();
    let mut pairs = Vec::new();
    let stats = stream_candidates(&index, chunks, &pool, |batch| {
        pairs.extend_from_slice(batch)
    });
    // Streaming bound: the buffer never held more than the flush threshold
    // plus one record's candidate list.
    assert!(
        stats.peak_buffered_pairs <= max_buffered + n,
        "peak {} unbounded",
        stats.peak_buffered_pairs
    );
    let matched = (0..n)
        .filter(|&i| pairs.binary_search(&(i, i)).is_ok())
        .count();
    assert!(matched as f64 / n as f64 >= 0.95, "recall {matched}/{n}");
    assert!(
        pairs.len() < n * n / 10,
        "stopword blowup not pruned: {} pairs",
        pairs.len()
    );
}

/// The bounded-channel variant emits exactly the same candidate stream as
/// the direct sink, at every pool width.
#[test]
fn channel_pipeline_is_equivalent_to_direct_sink() {
    let c = corpus(200, 0);
    let left = c.chunk(CorpusSide::Left, 0..200);
    let right = c.chunk(CorpusSide::Right, 0..200);
    for threads in [1usize, 8] {
        let pool = RotomPool::new(threads);
        let cfg = BlockingConfig {
            min_shared: 2,
            max_buffered_pairs: 64,
            channel_batches: 2,
            ..Default::default()
        };
        let index = ShardedIndex::build(&right, cfg, &pool);
        let direct = streamed_pairs(&index, &left, 32, &pool);
        let chunks: Vec<Vec<Record>> = left.chunks(32).map(|c| c.to_vec()).collect();
        let mut channeled = Vec::new();
        let stats =
            stream_candidates_channel(&index, chunks, &pool, |batch| channeled.extend(batch));
        assert_eq!(channeled, direct, "threads={threads}");
        assert_eq!(stats.candidates as usize, direct.len());
    }
}

/// End-to-end ingestion path: corpus -> CSV text -> `table_chunks` ->
/// `rows_to_records` -> streaming pipeline, matching the in-memory result.
#[test]
fn csv_chunked_ingestion_feeds_the_pipeline() {
    let n = 120;
    let c = corpus(n, 0);
    let left = c.chunk(CorpusSide::Left, 0..n);
    let right = c.chunk(CorpusSide::Right, 0..n);

    // Render the left side as a CSV table (quoting handled by write_row).
    let mut text = csv::write_row(&["title", "description"]);
    text.push('\n');
    for r in &left {
        let fields: Vec<&str> = r.attrs.iter().map(|(_, v)| v.as_str()).collect();
        text.push_str(&csv::write_row(&fields));
        text.push('\n');
    }

    let pool = RotomPool::new(4);
    let index = ShardedIndex::build(
        &right,
        BlockingConfig {
            min_shared: 2,
            ..Default::default()
        },
        &pool,
    );
    let chunks = csv::table_chunks(&text, 16).expect("header");
    let header = chunks.header().to_vec();
    let record_chunks: Vec<Vec<Record>> = chunks
        .map(|rows| csv::rows_to_records(&header, &rows.expect("chunk")))
        .collect();
    assert!(record_chunks.len() > 1, "must ingest in multiple chunks");
    let mut via_csv = Vec::new();
    let stats = stream_candidates(&index, record_chunks, &pool, |batch| {
        via_csv.extend_from_slice(batch)
    });
    assert_eq!(stats.left_records, n);
    assert_eq!(via_csv, streamed_pairs(&index, &left, 16, &pool));
    assert_eq!(via_csv, em::block_candidates(&left, &right, 2));
}
