//! Cross-crate integration tests: every task family exercised through the
//! full public pipeline (generator → serialization → pre-training →
//! method → metrics).

use rotom::pipeline::{prepare_base, run_method_with_base};
use rotom::{run_method, Method, RotomConfig};
use rotom_augment::{InvDa, InvDaConfig};
use rotom_datasets::edt::{self, EdtConfig, EdtFlavor};
use rotom_datasets::em::{self, EmConfig, EmFlavor};
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};
use rotom_datasets::TaskKind;

fn tiny_cfg() -> RotomConfig {
    let mut cfg = RotomConfig::test_tiny();
    cfg.train.epochs = 2;
    cfg
}

#[test]
fn em_pipeline_end_to_end() {
    let gen = EmConfig {
        num_entities: 40,
        train_pairs: 80,
        test_pairs: 40,
        ..Default::default()
    };
    let data = em::generate(EmFlavor::DblpAcm, &gen);
    let task = data.to_task();
    assert_eq!(task.kind, TaskKind::EntityMatching);
    let train = task.sample_train(40, 0);
    let r = run_method(
        &task,
        &train,
        &train,
        Method::Baseline,
        &tiny_cfg(),
        None,
        0,
    );
    assert_eq!(r.dataset, "DBLP-ACM");
    assert!(r.accuracy > 0.0);
    assert!(r.train_seconds > 0.0);
}

#[test]
fn edt_pipeline_end_to_end() {
    let data = edt::generate(
        EdtFlavor::Hospital,
        &EdtConfig {
            rows: Some(60),
            ..Default::default()
        },
    );
    let task = data.to_task();
    let train = task.sample_train_balanced(60, 0);
    // Both classes present after balancing.
    assert!(train.iter().any(|e| e.label == 0));
    assert!(train.iter().any(|e| e.label == 1));
    let r = run_method(&task, &train, &train, Method::MixDa, &tiny_cfg(), None, 0);
    assert!((0.0..=1.0).contains(&r.accuracy));
}

#[test]
fn rotom_and_ssl_run_on_textcls() {
    let data_cfg = TextClsConfig {
        train_pool: 60,
        test: 40,
        unlabeled: 60,
        seed: 3,
    };
    let task = textcls::generate(TextClsFlavor::Snips, &data_cfg);
    let train = task.sample_train(28, 0);
    let cfg = tiny_cfg();
    let base = prepare_base(&task, &cfg, 1);
    let invda = InvDa::train(&task.unlabeled, InvDaConfig::test_tiny(), 1);
    for method in [Method::Rotom, Method::RotomSsl] {
        let r = run_method_with_base(
            &task,
            &train,
            &train,
            method,
            &cfg,
            Some(&invda),
            Some(&base),
            0,
        );
        assert!((0.0..=1.0).contains(&r.accuracy), "{}", r.method);
    }
}

#[test]
fn shared_base_reproduces_runs() {
    // Two runs from the same base + seed must be identical (determinism of
    // the whole pipeline).
    let data_cfg = TextClsConfig {
        train_pool: 40,
        test: 30,
        unlabeled: 30,
        seed: 4,
    };
    let task = textcls::generate(TextClsFlavor::Sst2, &data_cfg);
    let train = task.sample_train(20, 0);
    let cfg = tiny_cfg();
    let base = prepare_base(&task, &cfg, 2);
    let a = run_method_with_base(
        &task,
        &train,
        &train,
        Method::Baseline,
        &cfg,
        None,
        Some(&base),
        5,
    );
    let b = run_method_with_base(
        &task,
        &train,
        &train,
        Method::Baseline,
        &cfg,
        None,
        Some(&base),
        5,
    );
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.prf1, b.prf1);
}

#[test]
fn dirty_em_variant_flows_through() {
    let gen = EmConfig {
        num_entities: 30,
        train_pairs: 50,
        test_pairs: 20,
        dirty: true,
        ..Default::default()
    };
    let data = em::generate(EmFlavor::WalmartAmazon, &gen);
    assert!(data.name.ends_with("-dirty"));
    let task = data.to_task();
    let train = task.sample_train(30, 0);
    let r = run_method(
        &task,
        &train,
        &train,
        Method::Baseline,
        &tiny_cfg(),
        None,
        0,
    );
    assert!((0.0..=1.0).contains(&r.prf1.f1));
}
