//! End-to-end serving test: boot `rotom-serve` on an ephemeral port, score
//! real HTTP requests over real sockets, and check the responses are
//! **bit-identical** to calling `TinyLm::score_batch` directly on an
//! identically-constructed model — at scoring-pool widths 1 and 8.
//!
//! The wire crossing is part of the contract: scores are serialized with
//! shortest-round-trip `f32` formatting and parsed back without an `f64`
//! intermediate, so `to_bits()` equality must survive HTTP + JSON.

use rotom_nn::RotomPool;
use rotom_serve::json::{self, Json};
use rotom_serve::{demo_model, demo_model_config, Client, Endpoint, Server, ServerConfig};
use std::time::Duration;

const SEED: u64 = 41;

fn boot(score_threads: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        window: Duration::from_millis(1),
        max_batch: 16,
        score_threads,
        score_cache: 0,
        seed: SEED,
        ..ServerConfig::default()
    })
    .expect("server boots on an ephemeral port")
}

/// The same inputs the HTTP requests carry, as token arrays (sent verbatim,
/// so tokenizer behavior cannot differ between the two paths).
fn inputs_for(endpoint: Endpoint) -> Vec<Vec<String>> {
    let texts: &[&str] = match endpoint {
        Endpoint::Match => &[
            "COL title VAL acme ultra phone COL price VAL 99",
            "COL title VAL acme ultra fone COL price VAL 98",
            "COL title VAL zenith toaster COL price VAL 12",
        ],
        Endpoint::Clean => &[
            "beer name VAL hoppy lager brewery VAL acme brewing",
            "beer name VAL 123??? brewery VAL unknown",
        ],
        Endpoint::Classify => &[
            "a luminous heartfelt film with a stunning lead",
            "tedious and shapeless beyond rescue",
            "the plot works the pacing does not",
        ],
    };
    texts.iter().map(|t| rotom_text::tokenize(t)).collect()
}

fn request_body(inputs: &[Vec<String>]) -> String {
    let mut body = String::from("{\"inputs\": [");
    for (i, tokens) in inputs.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push('[');
        for (j, t) in tokens.iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            body.push_str(&json::quote(t));
        }
        body.push(']');
    }
    body.push_str("]}");
    body
}

fn wire_scores(resp_body: &str) -> Vec<Vec<f32>> {
    let doc = json::parse(resp_body).expect("response is valid JSON");
    json::parse_scores(doc.get("scores").expect("scores field")).expect("score matrix")
}

#[test]
fn served_scores_are_bit_identical_to_direct_score_batch() {
    for threads in [1usize, 8] {
        let server = boot(threads);
        let mut client = Client::connect(server.local_addr()).expect("connect");

        // Reference model: same constructor, same seed → same weights.
        let cfg = demo_model_config();
        let pool = RotomPool::new(threads);
        for endpoint in Endpoint::ALL {
            let (reference, _) = demo_model(endpoint.task_kind(), &cfg, SEED);
            let inputs = inputs_for(endpoint);
            let direct = reference.score_batch(&inputs, &pool);

            let resp = client
                .post(endpoint.path(), &request_body(&inputs))
                .expect("request succeeds");
            assert_eq!(resp.status, 200, "{}: {}", endpoint.path(), resp.body);
            let served = wire_scores(&resp.body);
            assert_eq!(
                served.len(),
                direct.len(),
                "{} at {threads} threads",
                endpoint.path()
            );
            for (row, (s, d)) in served.iter().zip(direct.iter()).enumerate() {
                let s_bits: Vec<u32> = s.iter().map(|v| v.to_bits()).collect();
                let d_bits: Vec<u32> = d.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    s_bits,
                    d_bits,
                    "{} row {row} at {threads} threads: served {s:?} != direct {d:?}",
                    endpoint.path()
                );
            }
            // Boot weights: generation 0.
            let doc = json::parse(&resp.body).unwrap();
            assert_eq!(
                doc.get("generation").and_then(Json::as_u64),
                Some(0),
                "no swaps have happened"
            );
        }
        server.shutdown();
    }
}

#[test]
fn concurrent_clients_get_bit_identical_scores_through_batching() {
    let server = boot(4);
    let addr = server.local_addr();
    let cfg = demo_model_config();
    let (reference, _) = demo_model(Endpoint::Classify.task_kind(), &cfg, SEED);
    let inputs = inputs_for(Endpoint::Classify);
    let direct = reference.score_batch(&inputs, &RotomPool::new(4));
    let body = request_body(&inputs);

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let resp = client.post("/classify", &body).expect("request");
                assert_eq!(resp.status, 200, "{}", resp.body);
                wire_scores(&resp.body)
            })
        })
        .collect();
    for h in handles {
        let served = h.join().expect("client thread");
        assert_eq!(served, direct, "every concurrent client sees direct scores");
    }
    // The 8 concurrent requests must have shared batches at least once —
    // otherwise the windowed batcher isn't batching.
    let m = server.metrics();
    let batches = m.batches.load(std::sync::atomic::Ordering::Relaxed);
    let jobs = m.batched_jobs.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(jobs, 8);
    assert!(batches >= 1 && batches <= jobs);
    server.shutdown();
}

#[test]
fn health_metrics_and_error_routes_respond() {
    let server = boot(1);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("ok"));

    // Score something so /metrics has content.
    let resp = client
        .post("/classify", "{\"inputs\": [\"fine little film\"]}")
        .expect("score");
    assert_eq!(resp.status, 200, "{}", resp.body);

    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let doc = json::parse(&metrics.body).expect("metrics is JSON");
    let classify = doc
        .get("endpoints")
        .and_then(|e| e.get("classify"))
        .expect("classify section");
    assert_eq!(
        classify.get("requests").and_then(Json::as_u64),
        Some(1),
        "{}",
        metrics.body
    );
    // Robustness counters: present from boot, zero on an unloaded server
    // (nothing shed, no respawns, queue already drained back to empty).
    let batcher = doc.get("batcher").expect("batcher section");
    for gauge in [
        "queue_depth",
        "shed_total",
        "batcher_respawns",
        "drain_deadline_exceeded",
    ] {
        assert_eq!(
            batcher.get(gauge).and_then(Json::as_u64),
            Some(0),
            "batcher.{gauge} in {}",
            metrics.body
        );
    }
    assert_eq!(doc.get("conns_rejected").and_then(Json::as_u64), Some(0));
    assert_eq!(doc.get("accept_errors").and_then(Json::as_u64), Some(0));

    // Error taxonomy over the wire.
    assert_eq!(client.get("/nope").expect("404").status, 404);
    assert_eq!(
        client.get("/match").expect("405").status,
        405,
        "GET on POST route"
    );
    assert_eq!(
        client
            .post("/match", "{\"inputs\": []}")
            .expect("400")
            .status,
        400
    );
    assert_eq!(
        client
            .post("/admin/swap", "{\"endpoint\": \"match\"}")
            .expect("400")
            .status,
        400,
        "swap without checkpoint"
    );
    assert_eq!(
        client
            .post(
                "/admin/swap",
                "{\"endpoint\": \"match\", \"checkpoint\": \"/nonexistent.ckpt\"}"
            )
            .expect("422")
            .status,
        422,
        "unloadable checkpoint"
    );
    server.shutdown();
}

#[test]
fn pipelined_requests_serve_in_order() {
    let server = boot(2);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let body = "{\"inputs\": [\"steady little movie\"]}";
    let responses = client
        .pipeline("POST", "/classify", Some(body), 5)
        .expect("pipelined burst");
    assert_eq!(responses.len(), 5);
    let first = wire_scores(&responses[0].body);
    for resp in &responses {
        assert_eq!(resp.status, 200);
        assert_eq!(wire_scores(&resp.body), first, "same input, same scores");
    }
    server.shutdown();
}
