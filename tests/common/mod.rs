//! Shared helpers for the inference-plane equivalence test binaries
//! (`infer_equivalence.rs` runs them with telemetry off,
//! `infer_equivalence_telemetry.rs` with a live sink installed first).

use rotom::{ModelConfig, TinyLm};
use rotom_meta::{MetaTarget, WeightedItem};
use rotom_nn::RotomPool;
use rotom_rng::rngs::StdRng;
use rotom_rng::SeedableRng;
use rotom_text::tokenize;

/// A small mixed corpus (single sequences and a [SEP] pair).
pub fn corpus() -> Vec<Vec<String>> {
    vec![
        tokenize("the quick brown fox jumps over the lazy dog"),
        tokenize("a lazy dog sleeps all day in the warm sun"),
        tokenize("the brown dog jumps high [SEP] the brown dog leaps"),
        tokenize("a quick fox runs away fast from the loud farm"),
        tokenize("rain falls softly on the quiet empty street tonight"),
        tokenize("bright stars shine over the cold mountain lake"),
    ]
}

/// A TinyLm fine-tuned a few steps so weights are away from init.
pub fn trained_model() -> TinyLm {
    let corpus = corpus();
    let mut m = TinyLm::from_corpus(&corpus, 2, &ModelConfig::test_tiny(), 1e-3, 42);
    let items: Vec<WeightedItem> = corpus
        .iter()
        .enumerate()
        .map(|(i, toks)| WeightedItem::hard(toks.clone(), i % 2, 2))
        .collect();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..4 {
        m.weighted_loss_backward(&items, true, &mut rng);
        m.optimizer_step();
    }
    m
}

/// Assert the tape-free plane matches the tape forward bit-for-bit:
/// probabilities, argmax, per-example losses, and pooled batch scoring at
/// 1 and 8 threads. The acceptance bound (per-logit |Δ| ≤ 1e-5) is implied
/// by the exact equality but asserted in its stated form too.
pub fn check_equivalence(m: &TinyLm) {
    let corpus = corpus();
    for toks in &corpus {
        let tape = m.predict_proba_tape(toks);
        let infer = m.predict_proba(toks);
        assert_eq!(tape, infer, "proba mismatch for {toks:?}");
        assert_eq!(
            rotom_nn::argmax(&tape),
            rotom_nn::argmax(&infer),
            "argmax mismatch for {toks:?}"
        );
        for (a, b) in tape.iter().zip(&infer) {
            assert!((a - b).abs() <= 1e-5);
        }
    }
    let items: Vec<WeightedItem> = corpus
        .iter()
        .enumerate()
        .map(|(i, toks)| WeightedItem::hard(toks.clone(), i % 2, 2))
        .collect();
    assert_eq!(
        m.per_example_losses(&items),
        m.per_example_losses_tape(&items)
    );
    for threads in [1usize, 8] {
        let pool = RotomPool::new(threads);
        let scores = m.score_batch(&corpus, &pool);
        for (toks, probs) in corpus.iter().zip(&scores) {
            assert_eq!(probs, &m.predict_proba_tape(toks), "threads={threads}");
        }
    }
}
