//! Concurrent hot-swap test: hammer `/match` from several client threads
//! while the main thread swaps checkpoints in and out via `/admin/swap`.
//!
//! The invariant under test is the serving plane's swap protocol: every
//! response is computed **wholly** under one parameter state. Two
//! checkpoints with different weights alternate, and every response's score
//! row must equal the direct `score_batch` result of exactly one of them —
//! never a blend — and the `generation` the response reports must identify
//! which one. The planes run with the score cache enabled, so the test also
//! pins that the generation-keyed cache never serves a stale-generation
//! hit across a swap.

use rotom_meta::MetaTarget;
use rotom_nn::RotomPool;
use rotom_serve::json::{self, Json};
use rotom_serve::{demo_model, demo_model_config, Client, Endpoint, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 23;
const CLIENT_THREADS: usize = 4;
const SWAPS: usize = 8;

#[test]
fn responses_during_hot_swap_are_wholly_old_or_new() {
    // Two checkpoints: the boot weights (A) and a perturbed copy (B).
    let cfg = demo_model_config();
    let (model_a, _) = demo_model(Endpoint::Match.task_kind(), &cfg, SEED);
    let dir = std::env::temp_dir().join(format!("rotom_serve_swap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt_a = dir.join("gen_a.ckpt");
    let ckpt_b = dir.join("gen_b.ckpt");
    model_a.save_checkpoint(&ckpt_a).expect("save A");
    let (mut model_b, _) = demo_model(Endpoint::Match.task_kind(), &cfg, SEED);
    let delta = vec![0.02f32; model_b.flat_params().len()];
    model_b.add_scaled(&delta, 1.0);
    model_b.save_checkpoint(&ckpt_b).expect("save B");

    // Expected scores for the probe input under each weight state.
    let probe = rotom_text::tokenize("COL title VAL acme ultra phone COL price VAL 99");
    let pool = RotomPool::new(2);
    let scores_a = model_a.score_batch(std::slice::from_ref(&probe), &pool);
    let scores_b = model_b.score_batch(std::slice::from_ref(&probe), &pool);
    assert_ne!(scores_a, scores_b, "the two checkpoints must differ");

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        window: Duration::from_millis(1),
        max_batch: 16,
        score_threads: 2,
        score_cache: 64, // cache ON: stale-generation hits would be caught
        seed: SEED,
        ..ServerConfig::default()
    })
    .expect("server boots");
    let addr = server.local_addr();

    let body = {
        let mut b = String::from("{\"inputs\": [[");
        for (j, t) in probe.iter().enumerate() {
            if j > 0 {
                b.push(',');
            }
            b.push_str(&json::quote(t));
        }
        b.push_str("]]}");
        b
    };

    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..CLIENT_THREADS)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let body = body.clone();
            let scores_a = scores_a.clone();
            let scores_b = scores_b.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut checked = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let resp = client.post("/match", &body).expect("request");
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    let doc = json::parse(&resp.body).expect("JSON");
                    let scores =
                        json::parse_scores(doc.get("scores").expect("scores")).expect("matrix");
                    let generation = doc
                        .get("generation")
                        .and_then(Json::as_u64)
                        .expect("generation");
                    // Whole-state check: scores match exactly one checkpoint,
                    // and the generation parity says which. Even swap counts
                    // (0 included) are state A, odd are state B, because the
                    // swapper alternates B, A, B, A, ...
                    let expect = if generation % 2 == 0 {
                        &scores_a
                    } else {
                        &scores_b
                    };
                    assert_eq!(
                        &scores, expect,
                        "generation {generation}: response must be wholly one parameter state"
                    );
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    // Swap B, A, B, A, ... under load.
    let mut admin = Client::connect(addr).expect("admin connect");
    let mut last_param_generation = 0u64;
    for i in 0..SWAPS {
        std::thread::sleep(Duration::from_millis(30));
        let target = if i % 2 == 0 { &ckpt_b } else { &ckpt_a };
        let req = format!(
            "{{\"endpoint\": \"match\", \"checkpoint\": {}}}",
            json::quote(&target.display().to_string())
        );
        let resp = admin.post("/admin/swap", &req).expect("swap");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let doc = json::parse(&resp.body).expect("JSON");
        assert_eq!(
            doc.get("generation").and_then(Json::as_u64),
            Some(i as u64 + 1)
        );
        let param_generation = doc
            .get("param_generation")
            .and_then(Json::as_u64)
            .expect("param_generation");
        assert!(
            param_generation > last_param_generation,
            "parameter fingerprint must be strictly monotone across swaps"
        );
        last_param_generation = param_generation;
    }

    stop.store(true, Ordering::Relaxed);
    let total_checked: u64 = hammers.into_iter().map(|h| h.join().expect("hammer")).sum();
    assert!(
        total_checked >= SWAPS as u64,
        "hammers must have scored throughout the swap storm ({total_checked} responses)"
    );

    // The cache was hot the whole time (same probe input over and over);
    // confirm it actually worked — hits — without ever serving a stale
    // generation (the per-response assertions above would have caught it).
    let plane = &server.planes()[0];
    let (hits, misses, _evictions, _entries) = plane.cache_stats().expect("cache enabled");
    assert!(hits > 0, "repeat probe input must hit the score cache");
    // Each distinct parameter state costs at least one miss to refill.
    assert!(misses >= 1);

    server.shutdown();
    let _ = std::fs::remove_dir_all(dir);
}
