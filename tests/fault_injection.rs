//! End-to-end fault-injection tests for the fault-tolerant training
//! runtime (`rotom::runtime`): kill-and-resume bit-equivalence, NaN
//! rollback with graceful degradation, and torn-checkpoint detection.
//!
//! Faults are injected with `rotom_nn::faultpoint` (the API equivalent of
//! the `ROTOM_FAULT` env var). Faultpoints are thread-local and one-shot,
//! so tests arm them independently even when run in parallel.

use rotom::pipeline::{prepare_base, run_method_ft, run_method_with_base, PretrainedBase};
use rotom::runtime::{FtConfig, FtReport};
use rotom::{Method, RotomConfig, RunResult, TaskDataset};
use rotom_augment::InvDa;
use rotom_nn::faultpoint;
use rotom_nn::{CheckpointError, FaultKilled};
use rotom_text::example::Example;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

const SEED: u64 = 11;

fn tmp_ckpt(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}.ckpt"))
}

struct Fixture {
    task: TaskDataset,
    train: Vec<Example>,
    cfg: RotomConfig,
    invda: InvDa,
    base: PretrainedBase,
}

fn fixture(epochs: usize) -> Fixture {
    let gen = rotom_datasets::textcls::TextClsConfig {
        train_pool: 60,
        test: 40,
        unlabeled: 40,
        seed: 5,
    };
    let task =
        rotom_datasets::textcls::generate(rotom_datasets::textcls::TextClsFlavor::Sst2, &gen);
    let train = task.sample_train(24, 2);
    let mut cfg = RotomConfig::test_tiny();
    cfg.train.epochs = epochs;
    let invda = InvDa::train(&task.unlabeled, cfg.invda.clone(), 0);
    let base = prepare_base(&task, &cfg, 7);
    Fixture {
        task,
        train,
        cfg,
        invda,
        base,
    }
}

impl Fixture {
    fn run_plain(&self, method: Method) -> RunResult {
        run_method_with_base(
            &self.task,
            &self.train,
            &self.train,
            method,
            &self.cfg,
            Some(&self.invda),
            Some(&self.base),
            SEED,
        )
    }

    fn run_ft(&self, method: Method, ft: &FtConfig) -> (RunResult, FtReport) {
        run_method_ft(
            &self.task,
            &self.train,
            &self.train,
            method,
            &self.cfg,
            Some(&self.invda),
            Some(&self.base),
            SEED,
            ft,
        )
        .expect("fault-tolerant run failed")
    }
}

fn assert_bits_equal(a: &RunResult, b: &RunResult, ctx: &str) {
    assert_eq!(
        a.accuracy.to_bits(),
        b.accuracy.to_bits(),
        "{ctx}: accuracy"
    );
    assert_eq!(a.prf1.f1.to_bits(), b.prf1.f1.to_bits(), "{ctx}: f1");
    assert_eq!(
        a.val_curve.len(),
        b.val_curve.len(),
        "{ctx}: val_curve length"
    );
    for (i, (x, y)) in a.val_curve.iter().zip(&b.val_curve).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: val_curve[{i}]");
    }
}

#[test]
fn ft_runtime_without_faults_matches_plain_run_bit_for_bit() {
    let f = fixture(2);
    for method in [Method::Baseline, Method::Rotom] {
        let plain = f.run_plain(method);
        let path = tmp_ckpt(&format!("nofault_{}", method.name().replace('+', "_")));
        let _ = std::fs::remove_file(&path);
        let (ft_run, report) = f.run_ft(method, &FtConfig::with_checkpoint(&path));
        assert_bits_equal(&ft_run, &plain, method.name());
        assert_eq!(report.checkpoints_written, 2, "{}", method.name());
        assert!(report.events.is_empty(), "{}", method.name());
        assert!(report.resumed_from_epoch.is_none());
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn kill_and_resume_is_bit_identical_to_uninterrupted_run() {
    let f = fixture(3);
    for method in [Method::Baseline, Method::Rotom] {
        let name = method.name().replace('+', "_");
        let plain = f.run_plain(method);
        // Probe run to learn the per-epoch guarded step count.
        let (_, probe) = f.run_ft(method, &FtConfig::default());
        let per_epoch = probe.steps / 3;
        assert!(per_epoch > 0);

        // Kill the process (an unwinding panic) early in epoch 2, after the
        // epoch-1 checkpoint was written.
        let path = tmp_ckpt(&format!("kill_{name}"));
        let _ = std::fs::remove_file(&path);
        let kill_step = per_epoch + 1;
        faultpoint::clear();
        faultpoint::arm(&format!("kill@step={kill_step}")).unwrap();
        let killed = catch_unwind(AssertUnwindSafe(|| {
            f.run_ft(method, &FtConfig::with_checkpoint(&path))
        }));
        let payload = killed.expect_err("armed kill faultpoint must fire");
        let fault = payload
            .downcast_ref::<FaultKilled>()
            .expect("panic payload is the injected kill");
        assert_eq!(fault.step, kill_step, "{name}");
        assert!(path.exists(), "{name}: checkpoint survives the crash");

        // Resume from the checkpoint: the finished run must be
        // bit-identical to one that was never interrupted.
        faultpoint::clear();
        let (resumed, report) = f.run_ft(method, &FtConfig::resume_from(&path));
        assert_eq!(report.resumed_from_epoch, Some(1), "{name}");
        assert_bits_equal(&resumed, &plain, &format!("{name} resumed"));
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn injected_nan_grad_rolls_back_and_completes_with_finite_result() {
    let f = fixture(3);
    let (_, probe) = f.run_ft(Method::Baseline, &FtConfig::default());
    let per_epoch = probe.steps / 3;

    // Corrupt the gradients once, early in epoch 2: the guard must detect
    // the divergence, roll back to the epoch-1 state with a decayed LR, and
    // still finish all epochs.
    faultpoint::clear();
    faultpoint::arm(&format!("nan_grad@step={}", per_epoch + 1)).unwrap();
    let (run, report) = f.run_ft(Method::Baseline, &FtConfig::default());
    faultpoint::clear();

    assert!(!report.degraded);
    assert_eq!(report.resumed_from_epoch, None);
    let kinds: Vec<&str> = report.events.iter().map(|e| e.kind.as_str()).collect();
    assert_eq!(kinds, ["diverged", "rollback"], "{:?}", report.events);
    assert!(report.events[0].detail.contains("non-finite"));
    assert_eq!(run.val_curve.len(), 3);
    assert!(run.val_curve.iter().all(|v| v.is_finite()));
    assert!((0.0..=1.0).contains(&run.accuracy));
}

#[test]
fn persistent_nan_grad_exhausts_rollbacks_and_degrades_gracefully() {
    let f = fixture(3);
    let (_, probe) = f.run_ft(Method::Baseline, &FtConfig::default());
    let step = probe.steps / 3 + 1;

    // Re-arm the same fault once per retry (faultpoints are one-shot):
    // with the default budget of 3 rollbacks, the 4th firing degrades.
    let spec = format!("nan_grad@step={step}");
    faultpoint::clear();
    faultpoint::arm(&format!("{spec};{spec};{spec};{spec}")).unwrap();
    let (run, report) = f.run_ft(Method::Baseline, &FtConfig::default());
    faultpoint::clear();

    assert!(report.degraded);
    let kinds: Vec<&str> = report.events.iter().map(|e| e.kind.as_str()).collect();
    assert_eq!(
        kinds,
        [
            "diverged", "rollback", "diverged", "rollback", "diverged", "rollback", "diverged",
            "degraded"
        ],
        "{:?}",
        report.events
    );
    // Only epoch 1 completed; the run still ends on the finite best
    // snapshot instead of panicking or returning NaNs.
    assert_eq!(run.val_curve.len(), 1);
    assert!(run.val_curve[0].is_finite());
    assert!((0.0..=1.0).contains(&run.accuracy));
}

#[test]
fn torn_checkpoint_write_is_always_detected_on_resume() {
    let f = fixture(2);
    let path = tmp_ckpt("torn");
    let _ = std::fs::remove_file(&path);

    // Only one checkpoint write (epoch 2), and the armed fault tears it:
    // the file is cut mid-body with no atomic rename.
    let mut ft = FtConfig::with_checkpoint(&path);
    ft.every_epochs = 2;
    faultpoint::clear();
    faultpoint::arm("torn_checkpoint").unwrap();
    let (_, report) = f.run_ft(Method::Baseline, &ft);
    faultpoint::clear();
    assert_eq!(report.checkpoints_written, 1);
    assert!(path.exists());

    // The torn file must be rejected up front — never half-loaded.
    let err = run_method_ft(
        &f.task,
        &f.train,
        &f.train,
        Method::Baseline,
        &f.cfg,
        Some(&f.invda),
        Some(&f.base),
        SEED,
        &FtConfig::resume_from(&path),
    )
    .expect_err("torn checkpoint must not load");
    assert!(
        matches!(err, CheckpointError::Format(_)),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resuming_a_checkpoint_from_a_different_run_is_rejected() {
    let f = fixture(2);
    let path = tmp_ckpt("mismatch");
    let _ = std::fs::remove_file(&path);
    let (_, report) = f.run_ft(Method::Baseline, &FtConfig::with_checkpoint(&path));
    assert!(report.checkpoints_written > 0);

    // Same task, different seed: the run tag embedded in the checkpoint
    // must not match.
    let err = run_method_ft(
        &f.task,
        &f.train,
        &f.train,
        Method::Baseline,
        &f.cfg,
        Some(&f.invda),
        Some(&f.base),
        SEED + 1,
        &FtConfig::resume_from(&path),
    )
    .expect_err("mismatched run tag must be rejected");
    assert!(
        matches!(err, CheckpointError::Mismatch(_)),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_file(&path);
}
