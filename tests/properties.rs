//! Workspace-level property-based tests on the core invariants (DESIGN.md's
//! invariant list), run through the public APIs of several crates at once.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rotom_augment::{apply, corrupt, DaContext, DaOp};
use rotom_meta::{guess_label, sharpen_v1, sharpen_v2};
use rotom_nn::{softmax_slice, ParamStore, Tape, Tensor};
use rotom_text::serialize::{parse_structure, serialize_record, Record};
use rotom_text::token::is_structural;
use rotom_text::tokenizer::{detokenize, tokenize};
use rotom_text::vocab::Vocab;

/// Strategy: plausible word tokens.
fn word() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

/// Strategy: a serialized record with 1–4 attributes.
fn record() -> impl Strategy<Value = Record> {
    prop::collection::vec((word(), prop::collection::vec(word(), 1..5)), 1..5).prop_map(|attrs| {
        Record::new(
            attrs
                .into_iter()
                .map(|(a, vs)| (a, vs.join(" ")))
                .collect::<Vec<(String, String)>>(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No DA operator ever panics, and all preserve the [COL]/[VAL]
    /// structure marker counts' consistency ([VAL] per [COL]).
    #[test]
    fn da_ops_preserve_structure(r in record(), op_idx in 0usize..9, seed in 0u64..1000) {
        let tokens = serialize_record(&r);
        let op = DaOp::ALL[op_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let out = apply(op, &tokens, &DaContext::default(), &mut rng);
        let cols = out.iter().filter(|t| *t == "[COL]").count();
        let vals = out.iter().filter(|t| *t == "[VAL]").count();
        prop_assert_eq!(cols, vals, "unbalanced markers after {}", op.name());
        // Structure must still parse with value spans not covering markers.
        let s = parse_structure(&out);
        for (a, b) in s.value_spans {
            for t in &out[a..b] {
                prop_assert!(!is_structural(t));
            }
        }
    }

    /// Multi-op corruption never panics and returns well-formed sequences.
    #[test]
    fn corruption_pipeline_total(r in record(), n in 0usize..6, seed in 0u64..1000) {
        let tokens = serialize_record(&r);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = corrupt(&tokens, &DaOp::ALL, n, &DaContext::default(), &mut rng);
        let cols = out.iter().filter(|t| *t == "[COL]").count();
        let vals = out.iter().filter(|t| *t == "[VAL]").count();
        prop_assert_eq!(cols, vals);
    }

    /// Tokenizer round-trips normalized text.
    #[test]
    fn tokenizer_roundtrip(words in prop::collection::vec(word(), 1..12)) {
        let text = words.join(" ");
        let toks = tokenize(&text);
        prop_assert_eq!(tokenize(&detokenize(&toks)), toks);
    }

    /// Vocab encode/decode round-trips for in-vocabulary tokens, and
    /// char-fallback covers arbitrary ASCII words without UNK.
    #[test]
    fn vocab_fallback_total(words in prop::collection::vec(word(), 1..10)) {
        let seqs: Vec<Vec<String>> = vec![words.clone()];
        let refs: Vec<&[String]> = seqs.iter().map(|s| s.as_slice()).collect();
        let v = Vocab::build(refs, 4096);
        prop_assert_eq!(v.decode(&v.encode(&words)), words.clone());
        let unk = v.special_id(rotom_text::token::UNK);
        let novel: Vec<String> = words.iter().map(|w| format!("{w}x9")).collect();
        prop_assert!(v.encode_fallback(&novel).iter().all(|&i| i != unk));
    }

    /// softmax output is a distribution; sharpen_v1 keeps it one and never
    /// lowers the mode; sharpen_v2 is monotone in its threshold.
    #[test]
    fn sharpen_invariants(logits in prop::collection::vec(-5.0f32..5.0, 2..6), t in 0.1f32..1.0) {
        let p = softmax_slice(&logits);
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        let s = sharpen_v1(&p, t);
        prop_assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        let mode = rotom_nn::argmax(&p);
        prop_assert!(s[mode] >= p[mode] - 1e-4);
        // v2 monotone: accepted at high threshold => accepted below.
        if sharpen_v2(&p, 0.9).is_some() {
            prop_assert!(sharpen_v2(&p, 0.5).is_some());
        }
        // Combined guess is always a distribution.
        let g = guess_label(&p, t, 0.8);
        prop_assert!((g.iter().sum::<f32>() - 1.0).abs() < 1e-3);
    }

    /// Autodiff: cross-entropy gradients match finite differences on random
    /// single-layer problems.
    #[test]
    fn gradcheck_random_linear(
        w0 in prop::collection::vec(-0.8f32..0.8, 6),
        x0 in prop::collection::vec(-1.0f32..1.0, 2),
        label in 0usize..3,
    ) {
        let mut store = ParamStore::new();
        let w = store.push("w", Tensor::from_vec(w0.clone(), 2, 3));
        let mut target = vec![0.0f32; 3];
        target[label] = 1.0;
        let run = |store: &mut ParamStore, backward: bool| -> f32 {
            let mut tape = Tape::new();
            let x = tape.input(Tensor::from_vec(x0.clone(), 1, 2));
            let wn = tape.param(w, store);
            let logits = tape.matmul(x, wn);
            let loss = tape.cross_entropy(logits, &target);
            let v = tape.value(loss).item();
            if backward {
                store.zero_grad();
                tape.backward(loss, store);
            }
            v
        };
        let _ = run(&mut store, true);
        let analytic = store.flat_grads();
        let theta = store.flat_values();
        let eps = 1e-2f32;
        for k in 0..theta.len() {
            let mut tp = theta.clone();
            tp[k] += eps;
            store.set_flat(&tp);
            let lp = run(&mut store, false);
            tp[k] -= 2.0 * eps;
            store.set_flat(&tp);
            let lm = run(&mut store, false);
            store.set_flat(&theta);
            let numeric = (lp - lm) / (2.0 * eps);
            prop_assert!(
                (analytic[k] - numeric).abs() < 0.02 + 0.05 * numeric.abs(),
                "grad mismatch at {}: {} vs {}", k, analytic[k], numeric
            );
        }
    }
}

#[test]
fn entity_swap_involution_on_pairs() {
    let a = Record::new(vec![("x", "p q"), ("y", "r")]);
    let b = Record::new(vec![("x", "s t")]);
    let tokens = rotom_text::serialize::serialize_pair(&a, &b);
    let mut rng = StdRng::seed_from_u64(0);
    let once = apply(DaOp::EntitySwap, &tokens, &DaContext::default(), &mut rng);
    let twice = apply(DaOp::EntitySwap, &once, &DaContext::default(), &mut rng);
    assert_eq!(twice, tokens);
}
