//! Workspace-level property-based tests on the core invariants (DESIGN.md's
//! invariant list), run through the public APIs of several crates at once.
//!
//! These are hand-rolled property loops (seeded RNG + many random cases)
//! rather than `proptest` strategies: the build environment is fully offline,
//! so the workspace carries no external dev-dependencies. Failures print the
//! case seed, which reproduces the input deterministically.

use rotom_augment::{apply, corrupt, DaContext, DaOp};
use rotom_meta::{guess_label, sharpen_v1, sharpen_v2};
use rotom_nn::{softmax_slice, ParamStore, Tape, Tensor};
use rotom_rng::rngs::StdRng;
use rotom_rng::{split_seed, RngCore, RngExt, SeedableRng};
use rotom_text::serialize::{parse_structure, serialize_record, Record};
use rotom_text::token::is_structural;
use rotom_text::tokenizer::{detokenize, tokenize};
use rotom_text::vocab::Vocab;

const CASES: u64 = 64;

/// Generator: a plausible lowercase word of 1–8 chars.
fn word(rng: &mut StdRng) -> String {
    let len = rng.random_range(1..=8usize);
    (0..len)
        .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
        .collect()
}

fn words(rng: &mut StdRng, lo: usize, hi: usize) -> Vec<String> {
    let n = rng.random_range(lo..hi);
    (0..n).map(|_| word(rng)).collect()
}

/// Generator: a serialized record with 1–4 attributes of 1–4 words each.
fn record(rng: &mut StdRng) -> Record {
    let attrs = rng.random_range(1..5usize);
    Record::new(
        (0..attrs)
            .map(|_| (word(rng), words(rng, 1, 5).join(" ")))
            .collect::<Vec<(String, String)>>(),
    )
}

/// No DA operator ever panics, and all preserve the [COL]/[VAL] structure
/// marker counts' consistency ([VAL] per [COL]).
#[test]
fn da_ops_preserve_structure() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0xda0_0001, case));
        let r = record(&mut rng);
        let tokens = serialize_record(&r);
        let op = DaOp::ALL[rng.random_range(0..9usize)];
        let out = apply(op, &tokens, &DaContext::default(), &mut rng);
        let cols = out.iter().filter(|t| *t == "[COL]").count();
        let vals = out.iter().filter(|t| *t == "[VAL]").count();
        assert_eq!(
            cols,
            vals,
            "case {case}: unbalanced markers after {}",
            op.name()
        );
        // Structure must still parse with value spans not covering markers.
        let s = parse_structure(&out);
        for (a, b) in s.value_spans {
            for t in &out[a..b] {
                assert!(!is_structural(t), "case {case}");
            }
        }
    }
}

/// Multi-op corruption never panics and returns well-formed sequences.
#[test]
fn corruption_pipeline_total() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0xda0_0002, case));
        let r = record(&mut rng);
        let tokens = serialize_record(&r);
        let n = rng.random_range(0..6usize);
        let out = corrupt(&tokens, &DaOp::ALL, n, &DaContext::default(), &mut rng);
        let cols = out.iter().filter(|t| *t == "[COL]").count();
        let vals = out.iter().filter(|t| *t == "[VAL]").count();
        assert_eq!(cols, vals, "case {case}");
    }
}

/// Tokenizer round-trips normalized text.
#[test]
fn tokenizer_roundtrip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0xda0_0003, case));
        let text = words(&mut rng, 1, 12).join(" ");
        let toks = tokenize(&text);
        assert_eq!(tokenize(&detokenize(&toks)), toks, "case {case}");
    }
}

/// Vocab encode/decode round-trips for in-vocabulary tokens, and
/// char-fallback covers arbitrary ASCII words without UNK.
#[test]
fn vocab_fallback_total() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0xda0_0004, case));
        let ws = words(&mut rng, 1, 10);
        let seqs: Vec<Vec<String>> = vec![ws.clone()];
        let refs: Vec<&[String]> = seqs.iter().map(|s| s.as_slice()).collect();
        let v = Vocab::build(refs, 4096);
        assert_eq!(v.decode(&v.encode(&ws)), ws, "case {case}");
        let unk = v.special_id(rotom_text::token::UNK);
        let novel: Vec<String> = ws.iter().map(|w| format!("{w}x9")).collect();
        assert!(
            v.encode_fallback(&novel).iter().all(|&i| i != unk),
            "case {case}"
        );
    }
}

/// softmax output is a distribution; sharpen_v1 keeps it one and never
/// lowers the mode; sharpen_v2 is monotone in its threshold.
#[test]
fn sharpen_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0xda0_0005, case));
        let n = rng.random_range(2..6usize);
        let logits: Vec<f32> = (0..n).map(|_| rng.random_range(-5.0f32..5.0)).collect();
        let t: f32 = rng.random_range(0.1f32..1.0);
        let p = softmax_slice(&logits);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4, "case {case}");
        let s = sharpen_v1(&p, t);
        assert!((s.iter().sum::<f32>() - 1.0).abs() < 1e-3, "case {case}");
        let mode = rotom_nn::argmax(&p);
        assert!(s[mode] >= p[mode] - 1e-4, "case {case}");
        // v2 monotone: accepted at high threshold => accepted below.
        if sharpen_v2(&p, 0.9).is_some() {
            assert!(sharpen_v2(&p, 0.5).is_some(), "case {case}");
        }
        // Combined guess is always a distribution.
        let g = guess_label(&p, t, 0.8);
        assert!((g.iter().sum::<f32>() - 1.0).abs() < 1e-3, "case {case}");
    }
}

/// Autodiff: cross-entropy gradients match finite differences on random
/// single-layer problems.
#[test]
fn gradcheck_random_linear() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0xda0_0006, case));
        let w0: Vec<f32> = (0..6).map(|_| rng.random_range(-0.8f32..0.8)).collect();
        let x0: Vec<f32> = (0..2).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        let label = rng.random_range(0..3usize);

        let mut store = ParamStore::new();
        let w = store.push("w", Tensor::from_vec(w0.clone(), 2, 3));
        let mut target = vec![0.0f32; 3];
        target[label] = 1.0;
        let run = |store: &mut ParamStore, backward: bool| -> f32 {
            let mut tape = Tape::new();
            let x = tape.input(Tensor::from_vec(x0.clone(), 1, 2));
            let wn = tape.param(w, store);
            let logits = tape.matmul(x, wn);
            let loss = tape.cross_entropy(logits, &target);
            let v = tape.value(loss).item();
            if backward {
                store.zero_grad();
                tape.backward(loss, store);
            }
            v
        };
        let _ = run(&mut store, true);
        let analytic = store.flat_grads();
        let theta = store.flat_values();
        let eps = 1e-2f32;
        for k in 0..theta.len() {
            let mut tp = theta.clone();
            tp[k] += eps;
            store.set_flat(&tp);
            let lp = run(&mut store, false);
            tp[k] -= 2.0 * eps;
            store.set_flat(&tp);
            let lm = run(&mut store, false);
            store.set_flat(&theta);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic[k] - numeric).abs() < 0.02 + 0.05 * numeric.abs(),
                "case {case}: grad mismatch at {}: {} vs {}",
                k,
                analytic[k],
                numeric
            );
        }
    }
}

/// Generator: an f32 from the full bit-pattern space, biased toward the
/// special values the checkpoint format must preserve exactly (NaNs with
/// payloads, ±Inf, ±0, subnormals).
fn any_f32(rng: &mut StdRng) -> f32 {
    match rng.random_range(0..6u32) {
        0 => f32::from_bits(0x7fc0_0000 | rng.random_range(0..0x40_0000u32)), // NaN payload
        1 => f32::from_bits(0xffc0_0000 | rng.random_range(0..0x40_0000u32)), // -NaN payload
        2 => {
            if rng.random_bool(0.5) {
                f32::INFINITY
            } else {
                f32::NEG_INFINITY
            }
        }
        3 => f32::from_bits(rng.random_range(0..0x80_0000u32)), // subnormal / ±0
        _ => f32::from_bits(rng.random_range(0..=u32::MAX)),
    }
}

/// Checkpoint round-trip is exact for arbitrary f32 bit patterns: NaN
/// payloads, infinities, subnormals, and signed zeros all survive
/// serialize → parse bit-for-bit (with the opt-in non-finite policy).
#[test]
fn checkpoint_roundtrip_arbitrary_f32_bits() {
    use rotom_nn::StateBag;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(split_seed(0xda0_0007, case));
        let mut bag = StateBag::new();
        let n_sections = rng.random_range(1..4usize);
        let mut expected: Vec<(String, Vec<f32>)> = Vec::new();
        for s in 0..n_sections {
            let vals: Vec<f32> = (0..rng.random_range(0..32usize))
                .map(|_| any_f32(&mut rng))
                .collect();
            let name = format!("sec{s}.{}", word(&mut rng));
            bag.put_f32s(name.clone(), vals.clone());
            expected.push((name, vals));
        }
        let text = bag.serialize();
        // Parsing never applies a finiteness policy; that's the loader's
        // opt-in gate. Raw parse must accept any bit pattern.
        let back = StateBag::parse(&text).unwrap_or_else(|e| panic!("case {case}: {e}"));
        for (name, vals) in &expected {
            let got = back
                .get_f32s(name)
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
            let got_bits: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = vals.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got_bits, want_bits, "case {case}: {name} bits drifted");
        }
    }
}

/// Truncating a serialized checkpoint at ANY byte offset is detected as an
/// error — a cut file never parses into wrong values.
#[test]
fn checkpoint_truncation_at_any_offset_errors() {
    use rotom_nn::StateBag;
    for case in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(split_seed(0xda0_0008, case));
        let mut bag = StateBag::new();
        bag.put_f32s(
            "params",
            (0..rng.random_range(1..24usize))
                .map(|_| any_f32(&mut rng))
                .collect::<Vec<f32>>(),
        );
        bag.put_u64s("rng", (0..4).map(|_| rng.next_u64()).collect::<Vec<u64>>());
        let text = bag.serialize();
        for cut in 0..text.len() {
            // The format is pure ASCII, so every byte offset is a char
            // boundary.
            let truncated = &text[..cut];
            assert!(
                StateBag::parse(truncated).is_err(),
                "case {case}: truncation at byte {cut}/{} parsed successfully",
                text.len()
            );
        }
    }
}

#[test]
fn entity_swap_involution_on_pairs() {
    let a = Record::new(vec![("x", "p q"), ("y", "r")]);
    let b = Record::new(vec![("x", "s t")]);
    let tokens = rotom_text::serialize::serialize_pair(&a, &b);
    let mut rng = StdRng::seed_from_u64(0);
    let once = apply(DaOp::EntitySwap, &tokens, &DaContext::default(), &mut rng);
    let twice = apply(DaOp::EntitySwap, &once, &DaContext::default(), &mut rng);
    assert_eq!(twice, tokens);
}
