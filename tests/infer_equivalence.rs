//! Inference-plane equivalence (telemetry off).
//!
//! The tape-free forward path (`TinyLm::predict_proba` / `score_batch`,
//! InvDA decoding) must match the tape-building forward **bit-for-bit**:
//! identical kernel dispatch decisions and identical scalar reduction
//! orders make the equality exact. Covered here: explicit 1- and 8-thread
//! pools, score cache off and on, trained (non-init) weights, and batch vs
//! serial scoring. The same checks run with a live telemetry sink in
//! `infer_equivalence_telemetry.rs` — counters must be purely
//! observational.

mod common;

use common::{corpus, trained_model};
use rotom::pipeline;
use rotom_nn::RotomPool;

#[test]
fn infer_matches_tape_cache_off() {
    let m = trained_model();
    assert!(m.score_cache().is_none());
    common::check_equivalence(&m);
}

#[test]
fn infer_matches_tape_cache_on() {
    let mut m = trained_model();
    m.set_score_cache(256);
    // Two passes: the second is served from the cache and must still match
    // the tape recompute exactly.
    common::check_equivalence(&m);
    common::check_equivalence(&m);
    let (hits, misses) = m.score_cache().unwrap().hit_miss();
    assert!(hits > 0, "second pass must hit the cache");
    assert!(misses > 0);
}

#[test]
fn evaluation_is_pool_invariant_on_infer_plane() {
    let m = trained_model();
    let examples: Vec<rotom_text::example::Example> = corpus()
        .into_iter()
        .enumerate()
        .map(|(i, tokens)| rotom_text::example::Example::new(tokens, i % 2))
        .collect();
    let serial = pipeline::evaluate_with_pool(&m, &examples, &RotomPool::new(1));
    for threads in [2usize, 8] {
        let parallel = pipeline::evaluate_with_pool(&m, &examples, &RotomPool::new(threads));
        assert_eq!(serial, parallel, "threads={threads}");
    }
}
