//! Inference-plane equivalence with a **live telemetry sink**.
//!
//! The forward-kernel tier counters and score-cache gauges must be purely
//! observational: with records being captured, tape-free scoring still
//! matches the tape forward bit-for-bit. The sink is process-global and
//! initialize-once, so this file holds a single test function (the
//! telemetry-off twin is `infer_equivalence.rs`).

mod common;

use rotom::telemetry;
use std::io::Write;
use std::sync::{Arc, Mutex};

struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn infer_matches_tape_with_telemetry_enabled() {
    let buf = Arc::new(Mutex::new(Vec::new()));
    assert!(
        telemetry::install_writer(Box::new(Capture(buf.clone()))),
        "sink must not be initialized before this test"
    );
    assert!(telemetry::enabled());

    let mut m = common::trained_model();
    common::check_equivalence(&m);
    m.set_score_cache(256);
    common::check_equivalence(&m);
    common::check_equivalence(&m);

    // The score-cache and forward-dispatch gauges must flow through the
    // live sink without perturbing the scores above.
    m.score_cache().unwrap().emit_gauges();
    rotom_nn::kernels::profile::emit_forward_gauges();
    let bytes = buf.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    assert!(
        text.contains("infer.score_cache"),
        "score-cache gauge missing from sink"
    );
    let cache_gauge = text
        .lines()
        .find(|l| l.contains("infer.score_cache"))
        .unwrap();
    assert!(
        cache_gauge.contains("\"evictions\""),
        "score-cache gauge must report the LRU eviction counter: {cache_gauge}"
    );
    assert!(
        text.contains("kernels.forward_dispatch"),
        "forward-dispatch gauge missing from sink"
    );
}
