//! Allocation-regression gate for the meta-training hot loop.
//!
//! A counting global allocator (local to this test binary) measures bytes
//! allocated per steady-state `MetaTrainer` step and asserts the figure
//! stays under a checked-in budget. The memory-plane work (tape arenas,
//! pooled tapes, lazy packed-panel cache) took the step from ~35 MB of
//! transient allocation down to well under 1 MB; this test keeps it there.
//!
//! The budget lives in `tests/golden/alloc_budget.txt` with built-in
//! headroom over the measured value. If a deliberate change shifts the
//! profile, regenerate with:
//!
//!   ROTOM_BLESS=1 cargo test --release --test alloc_budget
//!
//! and commit the file. The run pins `ROTOM_THREADS=1` (the variable is
//! read once per process) so the count is machine-independent.

use rotom::config::ModelConfig;
use rotom::TinyLm;
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};
use rotom_meta::{MetaConfig, MetaTrainer};
use rotom_text::example::AugExample;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every byte handed out (allocations plus the grown portion of
/// reallocations, across all threads).
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let grown = new_size.saturating_sub(layout.size());
        ALLOCATED.fetch_add(grown as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const BUDGET_FILE: &str = "tests/golden/alloc_budget.txt";
/// Headroom multiplier applied when blessing: the budget is written as
/// `measured * HEADROOM`, absorbing harness noise and small legitimate
/// drift without letting a real regression (arena leak, cache thrash,
/// reintroduced clone) slip through.
const HEADROOM: f64 = 1.5;

fn blessing() -> bool {
    std::env::var("ROTOM_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn read_budget() -> Option<u64> {
    let text = std::fs::read_to_string(BUDGET_FILE).ok()?;
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .find_map(|l| {
            let mut it = l.split_whitespace();
            match (it.next(), it.next()) {
                (Some("bytes_per_step"), Some(v)) => v.parse().ok(),
                _ => None,
            }
        })
}

/// Run the trainbench workload (scaled down) and return bytes allocated per
/// steady-state step.
fn measure_bytes_per_step() -> f64 {
    // `ROTOM_THREADS` is read once at first pool use; pin it before any
    // rotom code runs so the measurement is single-threaded everywhere.
    std::env::set_var("ROTOM_THREADS", "1");

    let data_cfg = TextClsConfig {
        train_pool: 32,
        test: 8,
        unlabeled: 8,
        seed: 11,
    };
    let task = textcls::generate(TextClsFlavor::Sst2, &data_cfg);
    let mut model_cfg = ModelConfig::default();
    model_cfg.pretrain_epochs = 0;
    model_cfg.pair_pretrain_epochs = 0;
    let corpus: Vec<Vec<String>> = task.train_pool.iter().map(|e| e.tokens.clone()).collect();
    let mut target = TinyLm::from_corpus(&corpus, task.num_classes, &model_cfg, 5e-4, 7);
    let aug: Vec<AugExample> = task.train_pool.iter().map(AugExample::identity).collect();
    let meta_cfg = MetaConfig {
        batch_size: 16,
        val_batch_size: 16,
        seed: 3,
        ..Default::default()
    };
    let enc_cfg = model_cfg.encoder(target.vocab().len());
    let mut trainer = MetaTrainer::new(task.num_classes, target.vocab().clone(), enc_cfg, meta_cfg);

    // Warm-up: grow arenas, pooled tapes, and optimizer state to steady
    // state before counting.
    for _ in 0..2 {
        trainer.train_epoch(&mut target, &aug, &task.train_pool, &[]);
    }

    let before = ALLOCATED.load(Ordering::Relaxed);
    let mut steps = 0usize;
    for _ in 0..3 {
        let stats = trainer.train_epoch(&mut target, &aug, &task.train_pool, &[]);
        steps += stats.steps;
    }
    let bytes = ALLOCATED.load(Ordering::Relaxed) - before;
    assert!(steps > 0, "no optimizer steps taken");
    bytes as f64 / steps as f64
}

#[test]
fn steady_state_step_allocation_stays_under_budget() {
    let measured = measure_bytes_per_step();

    if blessing() {
        let budget = (measured * HEADROOM).ceil() as u64;
        let text = format!(
            "# Transient heap allocation budget for one steady-state meta-training\n\
             # step (MetaTrainer::train_epoch, TinyLm d_model=32 L=2, batch 16,\n\
             # pool 32, ROTOM_THREADS=1). Written as measured * {HEADROOM} by\n\
             # `ROTOM_BLESS=1 cargo test --release --test alloc_budget`.\n\
             bytes_per_step {budget}\n"
        );
        std::fs::write(BUDGET_FILE, text).expect("write alloc budget");
        println!("blessed {BUDGET_FILE}: measured {measured:.0} -> budget {budget}");
        return;
    }

    let budget = read_budget().unwrap_or_else(|| {
        panic!(
            "missing or unparseable {BUDGET_FILE}; regenerate with \
             `ROTOM_BLESS=1 cargo test --release --test alloc_budget` and commit it"
        )
    });
    assert!(
        measured <= budget as f64,
        "steady-state step allocated {measured:.0} bytes, over the checked-in \
         budget of {budget}. If this increase is intended, re-bless with \
         `ROTOM_BLESS=1 cargo test --release --test alloc_budget`."
    );
}
