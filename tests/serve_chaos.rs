//! Chaos suite for the serving plane: drive the overload-protection and
//! graceful-degradation paths deterministically with the serve-side
//! `ROTOM_FAULT` faultpoints (`queue_full`, `score_panic`, `slow_score`,
//! `batcher_die`, `torn_write`) over real sockets.
//!
//! What "robust" means here, concretely:
//!
//! * **Shed, never hang** — overload answers `503` + `Retry-After` fast;
//!   every accepted request is answered; no connection is left hanging.
//! * **Degrade, never die** — a scoring panic is one failed batch (`500`),
//!   not a dead batcher; a panic *outside* the score guard or a wedged
//!   forward pass is detected by the watchdog, which respawns the worker
//!   and the queued jobs survive.
//! * **Drain, then stop** — `Server::drain` completes accepted work under
//!   a deadline and only then fails stragglers.
//!
//! The faultpoints live in process-global state, so the tests serialize on
//! a mutex and clear the plan on every exit path (including panics) via a
//! drop guard. Each scenario runs at scoring-pool widths 1 and 8.

use rotom_nn::faultpoint;
use rotom_serve::{post_with_retry, Client, RetryPolicy, Server, ServerConfig};
use std::sync::atomic::Ordering;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes the chaos tests: the faultpoint plan is process-global, and
/// the default test harness runs tests in parallel threads.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Holds the suite lock and guarantees no fault leaks out of a test, even
/// on assertion failure.
struct ChaosGuard<'a> {
    _lock: std::sync::MutexGuard<'a, ()>,
}

impl<'a> ChaosGuard<'a> {
    fn acquire() -> Self {
        let lock = CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        faultpoint::clear_global();
        Self { _lock: lock }
    }
}

impl Drop for ChaosGuard<'_> {
    fn drop(&mut self) {
        faultpoint::clear_global();
    }
}

const BODY: &str = "{\"inputs\": [\"a small bright film\"]}";

fn boot(tweak: impl FnOnce(&mut ServerConfig)) -> Server {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        window: Duration::from_millis(1),
        max_batch: 8,
        seed: 23,
        ..ServerConfig::default()
    };
    tweak(&mut cfg);
    Server::start(cfg).expect("server boots on an ephemeral port")
}

#[test]
fn queue_full_shed_is_503_with_retry_after_then_recovers() {
    let _guard = ChaosGuard::acquire();
    for threads in [1usize, 8] {
        let server = boot(|c| c.score_threads = threads);
        let mut client = Client::connect(server.local_addr()).expect("connect");

        faultpoint::arm_global("queue_full").expect("arm");
        let shed = client.post("/classify", BODY).expect("shed response");
        assert_eq!(shed.status, 503, "at {threads} threads: {}", shed.body);
        assert!(
            shed.body.contains("queue full"),
            "shed body names the reason: {}",
            shed.body
        );
        let retry_after = shed
            .retry_after_secs
            .expect("shed responses carry Retry-After");
        assert!((1..=8).contains(&retry_after));

        // One-shot fault: the same connection scores normally afterwards.
        let ok = client.post("/classify", BODY).expect("recovered");
        assert_eq!(ok.status, 200, "{}", ok.body);
        assert!(ok.body.contains("scores"));

        let m = server.metrics();
        assert_eq!(m.shed_total.load(Ordering::Relaxed), 1);
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 0);
        server.shutdown();
    }
}

#[test]
fn retry_client_rides_through_sheds_and_torn_writes() {
    let _guard = ChaosGuard::acquire();
    for threads in [1usize, 8] {
        let server = boot(|c| c.score_threads = threads);
        let addr = server.local_addr();
        let policy = RetryPolicy {
            max_retries: 4,
            max_backoff: Duration::from_millis(10),
            seed: 0xC0FFEE,
        };

        // Shed → honored Retry-After (clamped) → success.
        faultpoint::arm_global("queue_full").expect("arm");
        let resp = post_with_retry(addr, "/classify", BODY, &policy).expect("retried through shed");
        assert_eq!(resp.status, 200, "at {threads} threads: {}", resp.body);

        // Torn mid-response write → UnexpectedEof → reconnect → success.
        faultpoint::arm_global("torn_write").expect("arm");
        let resp = post_with_retry(addr, "/classify", BODY, &policy)
            .expect("reconnected after torn write");
        assert_eq!(resp.status, 200, "{}", resp.body);

        // Bounded: with zero retries the shed surfaces to the caller.
        faultpoint::arm_global("queue_full").expect("arm");
        let no_retry = RetryPolicy {
            max_retries: 0,
            ..policy
        };
        let resp = post_with_retry(addr, "/classify", BODY, &no_retry).expect("response");
        assert_eq!(resp.status, 503, "zero-retry policy must not retry");
        faultpoint::clear_global();
        server.shutdown();
    }
}

#[test]
fn score_panic_fails_one_batch_not_the_batcher() {
    let _guard = ChaosGuard::acquire();
    for threads in [1usize, 8] {
        let server = boot(|c| c.score_threads = threads);
        let mut client = Client::connect(server.local_addr()).expect("connect");

        faultpoint::arm_global("score_panic").expect("arm");
        let failed = client.post("/classify", BODY).expect("failed response");
        assert_eq!(failed.status, 500, "at {threads} threads: {}", failed.body);
        assert!(failed.retry_after_secs.is_none(), "panic is not a shed");

        // The panic was caught inside the worker: same worker, no respawn,
        // next request scores.
        let ok = client.post("/classify", BODY).expect("recovered");
        assert_eq!(ok.status, 200, "{}", ok.body);
        assert_eq!(
            server.metrics().batcher_respawns.load(Ordering::Relaxed),
            0,
            "a caught panic must not trip the watchdog"
        );
        server.shutdown();
    }
}

#[test]
fn watchdog_respawns_panic_dead_worker_and_queued_job_survives() {
    let _guard = ChaosGuard::acquire();
    for threads in [1usize, 8] {
        let server = boot(|c| {
            c.score_threads = threads;
            c.watchdog_tick = Duration::from_millis(5);
        });
        let mut client = Client::connect(server.local_addr()).expect("connect");

        // `batcher_die` kills the worker thread *outside* the score guard,
        // after it wakes for this job but before it pulls it — the job
        // stays queued, the watchdog respawns the worker, and the respawned
        // worker answers it. The request itself succeeds.
        faultpoint::arm_global("batcher_die").expect("arm");
        let start = Instant::now();
        let resp = client.post("/classify", BODY).expect("survived respawn");
        assert_eq!(resp.status, 200, "at {threads} threads: {}", resp.body);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "respawn must be prompt, not a timeout"
        );
        assert!(
            server.metrics().batcher_respawns.load(Ordering::Relaxed) >= 1,
            "watchdog must count the respawn"
        );

        let ok = client.post("/classify", BODY).expect("steady state");
        assert_eq!(ok.status, 200);
        server.shutdown();
    }
}

#[test]
fn watchdog_replaces_wedged_worker_while_it_finishes_its_batch() {
    let _guard = ChaosGuard::acquire();
    for threads in [1usize, 8] {
        let server = boot(|c| {
            c.score_threads = threads;
            c.wedge_timeout = Duration::from_millis(50);
            c.watchdog_tick = Duration::from_millis(10);
        });
        let addr = server.local_addr();

        // Request A stalls 400ms inside the forward pass — far past the
        // 50ms wedge timeout.
        faultpoint::arm_global("slow_score@step=400").expect("arm");
        let a = std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect A");
            client.post("/classify", BODY).expect("A answered")
        });
        // Give A time to be pulled into the forward pass, then let the
        // watchdog notice the wedge.
        std::thread::sleep(Duration::from_millis(150));

        // Request B must be served promptly by the respawned worker while
        // the orphaned one is still asleep.
        let mut client = Client::connect(addr).expect("connect B");
        let start = Instant::now();
        let b = client.post("/classify", BODY).expect("B answered");
        assert_eq!(b.status, 200, "at {threads} threads: {}", b.body);
        assert!(
            start.elapsed() < Duration::from_millis(200),
            "B must not wait out A's stall (took {:?})",
            start.elapsed()
        );
        assert!(
            server.metrics().batcher_respawns.load(Ordering::Relaxed) >= 1,
            "wedge must be detected"
        );

        // The orphaned worker still answers the batch it was holding —
        // wedged is degraded, not lost.
        let a = a.join().expect("A thread");
        assert_eq!(a.status, 200, "{}", a.body);
        server.shutdown();
    }
}

#[test]
fn drain_completes_queued_jobs_then_stops_serving() {
    let _guard = ChaosGuard::acquire();
    for threads in [1usize, 8] {
        // A long batching window: jobs sit queued when the drain starts,
        // and the drain must cut through the window rather than wait it out.
        let server = boot(|c| {
            c.score_threads = threads;
            c.window = Duration::from_millis(500);
            c.max_batch = 64; // the window never fills: jobs sit queued
        });
        let addr = server.local_addr();
        let clients: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client.post("/classify", BODY).expect("answered")
                })
            })
            .collect();
        // Wait until all four jobs are provably queued (well under the
        // 500ms window), so the drain has real work to cut through.
        for _ in 0..200 {
            if server.metrics().queue_depth.load(Ordering::Relaxed) == 4 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }

        let start = Instant::now();
        let report = server.drain(Duration::from_secs(30));
        assert!(report.completed, "drain must finish accepted work");
        assert_eq!(report.failed_jobs, 0);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "drain must not wait out batching windows (took {:?})",
            start.elapsed()
        );
        for handle in clients {
            let resp = handle.join().expect("client thread");
            assert_eq!(
                resp.status, 200,
                "every accepted job completes during drain: {}",
                resp.body
            );
        }
        let m = server.metrics();
        assert_eq!(m.drain_deadline_exceeded.load(Ordering::Relaxed), 0);
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 0);

        // Drained means stopped: no new connections are served.
        assert!(
            Client::connect(addr)
                .and_then(|mut c| c.get("/healthz"))
                .is_err(),
            "post-drain connections must be refused"
        );
    }
}

#[test]
fn drain_deadline_fails_stragglers_but_never_hangs() {
    let _guard = ChaosGuard::acquire();
    for threads in [1usize, 8] {
        let server = boot(|c| c.score_threads = threads);
        let addr = server.local_addr();

        // A wedges the worker mid-batch for 500ms.
        faultpoint::arm_global("slow_score@step=500").expect("arm");
        let a = std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect A");
            client.post("/classify", BODY).expect("A answered")
        });
        std::thread::sleep(Duration::from_millis(100));
        // B queues behind the stalled batch.
        let b = std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect B");
            client.post("/classify", BODY).expect("B answered")
        });
        std::thread::sleep(Duration::from_millis(50));

        // The drain deadline (50ms) expires long before A's 500ms stall.
        let report = server.drain(Duration::from_millis(50));
        assert!(!report.completed, "stalled drain must report failure");
        assert!(report.failed_jobs >= 1, "B was still queued");
        assert_eq!(
            server
                .metrics()
                .drain_deadline_exceeded
                .load(Ordering::Relaxed),
            1
        );

        // B is *failed*, not forgotten: a definitive 503, no hang.
        let b = b.join().expect("B thread");
        assert_eq!(b.status, 503, "{}", b.body);
        assert_eq!(b.retry_after_secs, Some(1));
        assert!(b.body.contains("draining"), "{}", b.body);

        // A's batch was already in flight; the orphaned worker still
        // answers it after the stall.
        let a = a.join().expect("A thread");
        assert_eq!(a.status, 200, "{}", a.body);
    }
}

#[test]
fn connection_cap_sheds_excess_connections_inline() {
    let _guard = ChaosGuard::acquire();
    let server = boot(|c| {
        c.score_threads = 1;
        c.max_conns = 2;
    });
    let addr = server.local_addr();

    // Fill the cap with two live keep-alive connections (a request each,
    // so both handlers are provably up).
    let mut c1 = Client::connect(addr).expect("connect 1");
    assert_eq!(c1.get("/healthz").expect("healthz").status, 200);
    let mut c2 = Client::connect(addr).expect("connect 2");
    assert_eq!(c2.get("/healthz").expect("healthz").status, 200);

    // The third connection is answered 503 + Retry-After by the accept
    // thread itself and closed — without reading the request.
    let mut c3 = Client::connect(addr).expect("tcp connect still succeeds");
    let resp = c3.get("/healthz").expect("inline rejection is readable");
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert_eq!(resp.retry_after_secs, Some(1));
    assert!(resp.close, "rejected connections are closed");
    let m = server.metrics();
    assert!(m.conns_rejected.load(Ordering::Relaxed) >= 1);

    // Capacity frees when a connection closes: drop one, the next connect
    // is served. The handler needs a beat to observe the close.
    drop(c1);
    let mut ok = None;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(10));
        let mut c = match Client::connect(addr) {
            Ok(c) => c,
            Err(_) => continue,
        };
        match c.get("/healthz") {
            Ok(resp) if resp.status == 200 => {
                ok = Some(resp);
                break;
            }
            _ => continue,
        }
    }
    let ok = ok.expect("a freed slot must be reusable within 1s");
    assert_eq!(ok.status, 200);
    server.shutdown();
}

#[test]
fn faults_clear_and_metrics_stay_consistent_after_chaos() {
    let _guard = ChaosGuard::acquire();
    let server = boot(|c| c.score_threads = 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // A short storm: shed, panic, recover — then the process must be
    // boring again.
    faultpoint::arm_global("queue_full;score_panic").expect("arm");
    assert_eq!(client.post("/classify", BODY).expect("shed").status, 503);
    assert_eq!(client.post("/classify", BODY).expect("panic").status, 500);
    assert_eq!(faultpoint::armed_global(), 0, "both faults consumed");
    for _ in 0..5 {
        assert_eq!(client.post("/classify", BODY).expect("ok").status, 200);
    }

    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let doc = rotom_serve::json::parse(&metrics.body).expect("metrics JSON");
    let batcher = doc.get("batcher").expect("batcher section");
    let get_u64 = |j: &rotom_serve::json::Json, k: &str| {
        j.get(k)
            .and_then(rotom_serve::json::Json::as_u64)
            .unwrap_or_else(|| panic!("{k} in {}", metrics.body))
    };
    assert_eq!(get_u64(batcher, "shed_total"), 1);
    assert_eq!(get_u64(batcher, "queue_depth"), 0);
    assert_eq!(get_u64(batcher, "batcher_respawns"), 0);
    assert_eq!(get_u64(batcher, "drain_deadline_exceeded"), 0);
    server.shutdown();
}
