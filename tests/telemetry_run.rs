//! End-to-end telemetry coverage: a real Rotom training run with a live
//! sink must emit schema-valid records of every instrumented kind — and
//! produce bit-identical metrics across repeated runs, proving the
//! instrumentation is purely observational (consumes no RNG, mutates no
//! training state).
//!
//! The sink is process-global and initialize-once, so this file holds a
//! single test function.

use rotom::telemetry::{self, Value};
use rotom::{run_method, Method, RotomConfig};
use rotom_augment::InvDa;
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};
use std::io::Write;
use std::sync::{Arc, Mutex};

struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn rotom_run_emits_all_kinds_and_stays_deterministic() {
    let buf = Arc::new(Mutex::new(Vec::new()));
    assert!(
        telemetry::install_writer(Box::new(Capture(buf.clone()))),
        "sink must not be initialized before this test"
    );

    let cfg = TextClsConfig {
        train_pool: 40,
        test: 24,
        unlabeled: 24,
        seed: 9,
    };
    let task = textcls::generate(TextClsFlavor::Sst2, &cfg);
    let train = task.sample_train(24, 0);
    let mut run_cfg = RotomConfig::test_tiny();
    run_cfg.train.epochs = 1;
    let invda = InvDa::train(&task.unlabeled, run_cfg.invda.clone(), 0);

    let r1 = run_method(
        &task,
        &train,
        &train,
        Method::Rotom,
        &run_cfg,
        Some(&invda),
        11,
    );
    let r2 = run_method(
        &task,
        &train,
        &train,
        Method::Rotom,
        &run_cfg,
        Some(&invda),
        11,
    );
    // Telemetry is live during both runs; identical results prove the
    // instrumentation never consumes RNG or perturbs training.
    assert_eq!(r1.accuracy.to_bits(), r2.accuracy.to_bits());
    assert_eq!(r1.prf1.f1.to_bits(), r2.prf1.f1.to_bits());
    assert_eq!(r1.val_curve.len(), r2.val_curve.len());
    for (a, b) in r1.val_curve.iter().zip(&r2.val_curve) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    let bytes = buf.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("telemetry output is UTF-8");
    let mut kinds = std::collections::BTreeSet::new();
    let mut names = std::collections::BTreeSet::new();
    let mut records = 0usize;
    for line in text.lines() {
        let rec = telemetry::parse_line(line)
            .unwrap_or_else(|e| panic!("unparseable record {line:?}: {e}"));
        if let Some(Value::F64(r)) = rec.field("keep_rate") {
            assert!(
                (0.0..=1.0).contains(r),
                "keep_rate {r} outside [0, 1]: {line}"
            );
        }
        kinds.insert(rec.kind.clone());
        names.insert(rec.name.clone());
        records += 1;
    }
    assert!(records > 0, "a training run must emit records");
    // The acceptance kinds: per-step, meta-decision, augmentation, pool.
    for kind in ["step", "meta", "aug", "pool"] {
        assert!(kinds.contains(kind), "missing kind {kind:?} in {kinds:?}");
    }
    // Spot-check the instrumentation sites behind them.
    for name in ["meta.target_step", "meta.decision", "invda", "epoch"] {
        assert!(names.contains(name), "missing stream {name:?} in {names:?}");
    }
}
