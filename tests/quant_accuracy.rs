//! Accuracy-delta gate for the quantized i8 inference tier (run by `ci.sh`
//! at `ROTOM_THREADS=1` and `8`).
//!
//! Policy: quantization may perturb individual logits, but on a trained
//! model it must not move task metrics. The gate trains a model to
//! above-chance accuracy on synthetic SST-2, scores the held-out split on
//! both tiers, and fails if accuracy or F1 drifts by more than one
//! test-set example's worth, or any class probability moves by more than
//! 0.05. It also asserts the i8 tier actually dispatched (the gate must
//! never pass vacuously because the model fell below the tiled-kernel
//! threshold).

use rotom::{ModelConfig, TinyLm};
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};
use rotom_meta::{MetaTarget, WeightedItem};
use rotom_nn::{kernels::profile, QuantMode};
use rotom_rng::rngs::StdRng;
use rotom_rng::SeedableRng;

/// Wide enough that every encoder GEMM clears `SMALL_FLOPS` even on short
/// sequences, so the i8 tier engages exactly where serving models would.
fn gate_config() -> ModelConfig {
    ModelConfig {
        d_model: 64,
        heads: 4,
        d_ff: 128,
        layers: 1,
        max_len: 32,
        vocab_size: 2048,
        pretrain_epochs: 0,
        pair_pretrain_epochs: 0,
        ..ModelConfig::default()
    }
}

struct Metrics {
    accuracy: f64,
    f1: f64,
}

fn evaluate(m: &TinyLm, test: &[(Vec<String>, usize)]) -> (Metrics, Vec<Vec<f32>>) {
    let mut correct = 0usize;
    let (mut tp, mut fp, mut fne) = (0usize, 0usize, 0usize);
    let mut probas = Vec::with_capacity(test.len());
    for (tokens, label) in test {
        let p = m.predict_proba(tokens);
        let pred = rotom_nn::argmax(&p);
        if pred == *label {
            correct += 1;
        }
        match (pred, *label) {
            (1, 1) => tp += 1,
            (1, 0) => fp += 1,
            (0, 1) => fne += 1,
            _ => {}
        }
        probas.push(p);
    }
    let f1 = if 2 * tp + fp + fne == 0 {
        1.0
    } else {
        2.0 * tp as f64 / (2 * tp + fp + fne) as f64
    };
    (
        Metrics {
            accuracy: correct as f64 / test.len() as f64,
            f1,
        },
        probas,
    )
}

#[test]
fn quant_accuracy_delta_gate() {
    let data = textcls::generate(
        TextClsFlavor::Sst2,
        &TextClsConfig {
            train_pool: 96,
            test: 40,
            unlabeled: 0,
            seed: 23,
        },
    );
    let corpus: Vec<Vec<String>> = data.train_pool.iter().map(|e| e.tokens.clone()).collect();
    let mut m = TinyLm::from_corpus(&corpus, data.num_classes, &gate_config(), 2e-3, 23);
    let items: Vec<WeightedItem> = data
        .train_pool
        .iter()
        .map(|e| WeightedItem::hard(e.tokens.clone(), e.label, data.num_classes))
        .collect();
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..12 {
        m.weighted_loss_backward(&items, true, &mut rng);
        m.optimizer_step();
    }

    let test: Vec<(Vec<String>, usize)> = data
        .test
        .iter()
        .map(|e| (e.tokens.clone(), e.label))
        .collect();
    assert_eq!(m.quant_mode(), QuantMode::F32);
    let (f32_metrics, f32_probas) = evaluate(&m, &test);
    assert!(
        f32_metrics.accuracy > 0.6,
        "gate needs an above-chance model, got accuracy {}",
        f32_metrics.accuracy
    );

    let calls_before = profile::quant_i8_count();
    m.set_quant_mode(QuantMode::I8);
    let (i8_metrics, i8_probas) = evaluate(&m, &test);
    assert!(
        profile::quant_i8_count() > calls_before,
        "i8 tier never dispatched — the gate would be vacuous"
    );

    // One test example of headroom on each metric (40 examples -> 0.025),
    // rounded up to a stable bound.
    let delta = 1.0 / test.len() as f64 + 1e-9;
    assert!(
        (f32_metrics.accuracy - i8_metrics.accuracy).abs() <= delta,
        "accuracy drifted: f32 {} vs i8 {}",
        f32_metrics.accuracy,
        i8_metrics.accuracy
    );
    assert!(
        (f32_metrics.f1 - i8_metrics.f1).abs() <= 2.0 * delta,
        "F1 drifted: f32 {} vs i8 {}",
        f32_metrics.f1,
        i8_metrics.f1
    );
    for (f, q) in f32_probas.iter().zip(&i8_probas) {
        for (a, b) in f.iter().zip(q) {
            assert!(b.is_finite());
            assert!(
                (a - b).abs() <= 0.05,
                "probability moved more than 0.05: f32 {a} vs i8 {b}"
            );
        }
    }

    // Switching back restores f32 scoring bit-exactly (the tier never
    // touches the f32 weights or panels).
    m.set_quant_mode(QuantMode::F32);
    let (_, back) = evaluate(&m, &test);
    assert_eq!(back, f32_probas, "f32 tier unchanged after i8 excursion");
}
