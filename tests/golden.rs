//! Golden-run regression suite: fixed-seed tiny runs of every [`Method`]
//! variant across the three task families, compared against checked-in
//! metric snapshots in `tests/golden/*.txt`.
//!
//! Any change that alters a training trajectory — a kernel rewrite, an RNG
//! reordering, a new default — fails here loudly instead of silently
//! shifting results. When a change is *intended* to alter trajectories,
//! regenerate the snapshots with:
//!
//! ```text
//! ROTOM_BLESS=1 cargo test --test golden
//! ```
//!
//! and commit the updated files. Comparison is tolerance-based (`TOL`
//! absolute per metric) so identical-trajectory runs pass even across
//! machines whose matmul kernels round differently (FMA vs non-FMA paths
//! may differ by ~1e-4 per dot product; the training pipeline itself is
//! bit-deterministic at any `ROTOM_THREADS` on one machine).

use rotom::pipeline::{prepare_base, run_method_with_base, Method};
use rotom::{MetricsSnapshot, RotomConfig, RunResult, TaskDataset};
use rotom_augment::{InvDa, InvDaConfig};
use rotom_datasets::edt::{self, EdtConfig, EdtFlavor};
use rotom_datasets::em::{self, EmConfig, EmFlavor};
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};
use rotom_text::example::Example;
use std::path::PathBuf;

/// One seed for the whole suite: different seeds would just multiply runtime
/// without adding regression coverage.
const GOLD_SEED: u64 = 0x601d;

/// Absolute tolerance per metric. On a single machine runs are
/// bit-deterministic, so this only needs to absorb cross-ISA kernel rounding.
const TOL: f32 = 0.05;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn blessing() -> bool {
    std::env::var("ROTOM_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn method_slug(method: Method) -> &'static str {
    match method {
        Method::Baseline => "baseline",
        Method::MixDa => "mixda",
        Method::InvDa => "invda",
        Method::Rotom => "rotom",
        Method::RotomSsl => "rotom_ssl",
    }
}

/// Compare (or bless) one run's snapshot against `tests/golden/<name>.txt`.
fn check_against_golden(name: &str, result: &RunResult) {
    let snap = result.snapshot();
    let path = golden_dir().join(format!("{name}.txt"));
    if blessing() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, snap.to_text()).expect("write golden snapshot");
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with \
             `ROTOM_BLESS=1 cargo test --test golden` and commit the files",
            path.display()
        )
    });
    let expected = MetricsSnapshot::parse(&text)
        .unwrap_or_else(|e| panic!("corrupt golden snapshot {}: {e}", path.display()));
    let errors = snap.diff(&expected, TOL);
    assert!(
        errors.is_empty(),
        "golden mismatch for {name} (tolerance {TOL}):\n  {}\nIf this change \
         is intended, re-bless with `ROTOM_BLESS=1 cargo test --test golden`.",
        errors.join("\n  ")
    );
}

/// Run every method on one task with a shared pre-trained base and a shared
/// InvDA model (mirroring how the paper reuses one pre-trained LM), checking
/// each against its snapshot.
fn run_family(family: &str, task: &TaskDataset, train: &[Example], epochs: usize) {
    let mut cfg = RotomConfig::test_tiny();
    cfg.train.epochs = epochs;
    let base = prepare_base(task, &cfg, GOLD_SEED);
    let invda = InvDa::train(&task.unlabeled, InvDaConfig::test_tiny(), GOLD_SEED);
    for method in Method::ALL {
        let r = run_method_with_base(
            task,
            train,
            train,
            method,
            &cfg,
            Some(&invda),
            Some(&base),
            GOLD_SEED,
        );
        assert_eq!(
            r.val_curve.len(),
            cfg.train.epochs,
            "validation curve must have one point per epoch"
        );
        check_against_golden(&format!("{family}_{}", method_slug(method)), &r);
    }
}

#[test]
fn golden_entity_matching() {
    let gen = EmConfig {
        num_entities: 40,
        train_pairs: 80,
        test_pairs: 40,
        ..Default::default()
    };
    let task = em::generate(EmFlavor::DblpAcm, &gen).to_task();
    // Balanced sampling + extra epochs pull the tiny EM runs away from the
    // degenerate all-negative predictor, so the snapshots carry signal.
    let train = task.sample_train_balanced(48, GOLD_SEED);
    run_family("em", &task, &train, 4);
}

#[test]
fn golden_error_detection() {
    let gen = EdtConfig {
        rows: Some(60),
        ..Default::default()
    };
    let task = edt::generate(EdtFlavor::Hospital, &gen).to_task();
    let train = task.sample_train_balanced(40, GOLD_SEED);
    run_family("edt", &task, &train, 2);
}

#[test]
fn golden_text_classification() {
    let gen = TextClsConfig {
        train_pool: 60,
        test: 40,
        unlabeled: 40,
        seed: 9,
    };
    let task = textcls::generate(TextClsFlavor::Sst2, &gen);
    let train = task.sample_train(28, GOLD_SEED);
    run_family("textcls", &task, &train, 2);
}
