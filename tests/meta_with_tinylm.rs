//! Integration of the meta-learning framework with the real TinyLm target
//! (the unit tests drive it with a bag-of-words mock): Algorithm 2 must run
//! end-to-end through tape-based autodiff, the virtual step, probes, and
//! both policy updates — and still train a usable classifier from a pool
//! with corrupted augmentations.

use rotom::pipeline::evaluate;
use rotom::{MetaConfig, MetaTrainer, ModelConfig, TinyLm};
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};
use rotom_text::example::AugExample;

#[test]
fn algorithm2_with_tinylm_learns_through_poisoned_pool() {
    let data_cfg = TextClsConfig {
        train_pool: 80,
        test: 60,
        unlabeled: 40,
        seed: 21,
    };
    let task = textcls::generate(TextClsFlavor::Sst2, &data_cfg);
    let train = task.sample_train(40, 0);

    let mut mc = ModelConfig::test_tiny();
    mc.max_len = 20;
    let corpus: Vec<Vec<String>> = task.unlabeled.clone();
    let mut model = TinyLm::from_corpus(&corpus, 2, &mc, 2e-3, 1);
    model.pretrain_mlm(&corpus, 8);

    // Pool: identity examples plus 25% label-corrupted copies.
    let mut pool: Vec<AugExample> = train.iter().map(AugExample::identity).collect();
    for e in train.iter().take(10) {
        pool.push(AugExample {
            orig: e.tokens.clone(),
            aug: e.tokens.clone(),
            label: 1 - e.label,
        });
    }

    let enc = mc.encoder(model.vocab().len());
    let meta_cfg = MetaConfig {
        batch_size: 8,
        val_batch_size: 8,
        ..Default::default()
    };
    let mut trainer = MetaTrainer::new(2, model.vocab().clone(), enc, meta_cfg);
    let mut last_stats = None;
    for _ in 0..5 {
        last_stats = Some(trainer.train_epoch(&mut model, &pool, &train, &[]));
    }
    let stats = last_stats.unwrap();
    assert!(stats.steps > 0);
    assert!(stats.train_loss.is_finite());
    assert!((0.0..=1.0).contains(&stats.keep_rate));

    let (acc, _) = evaluate(&model, &task.test);
    // Observed accuracy at these fixed seeds is 0.7167 (43/60 test
    // examples). The 0.60 floor leaves a 7-example margin so benign numeric
    // drift (kernel rounding, optimizer tweaks) doesn't flip the test at a
    // seed boundary, while a collapse toward the ~0.5 majority predictor
    // still fails loudly.
    assert!(
        acc > 0.60,
        "accuracy {acc} too low after meta-training (expected ≈0.72 at these seeds)"
    );
}
