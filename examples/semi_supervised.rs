//! Semi-supervised learning with Rotom (§5): the same tiny labeled set, with
//! and without the unlabeled pool, on a sentiment task.
//!
//! ```sh
//! cargo run --release --example semi_supervised
//! ```

use rotom::pipeline::{prepare_base, run_method_with_base};
use rotom::{Method, RotomConfig};
use rotom_augment::InvDa;
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};

fn main() {
    // SST-2-style binary sentiment with a large unlabeled pool.
    let data_cfg = TextClsConfig {
        train_pool: 300,
        test: 200,
        unlabeled: 400,
        seed: 9,
    };
    let task = textcls::generate(TextClsFlavor::Sst2, &data_cfg);
    let train = task.sample_train(60, 0);
    println!(
        "{}: {} labeled examples, {} unlabeled sequences",
        task.name,
        train.len(),
        task.unlabeled.len()
    );

    let mut cfg = RotomConfig::bench_small();
    cfg.model.max_len = 32;
    cfg.train.epochs = 6;
    cfg.train.lr = 1e-3;
    let base = prepare_base(&task, &cfg, 5);
    let invda = InvDa::train(&task.unlabeled, cfg.invda.clone(), 5);

    for method in [Method::Baseline, Method::Rotom, Method::RotomSsl] {
        let r = run_method_with_base(
            &task,
            &train,
            &train,
            method,
            &cfg,
            Some(&invda),
            Some(&base),
            0,
        );
        println!(
            "{:>10}: accuracy {:.1}%  ({:.1}s)",
            r.method,
            r.accuracy * 100.0,
            r.train_seconds
        );
    }
    println!("\nRotom+SSL consumes the unlabeled pool through consistency training:");
    println!("guessed labels are sharpened (Eq. 6-7), weighted by the meta-learned");
    println!("weighting model, and gated on model confidence.");
}
