//! Error detection on a dirty spreadsheet: generate a beers-style table with
//! injected errors, compare Raha (20 labeled tuples) against Rotom (200
//! labeled cells), and show which cells each flags.
//!
//! ```sh
//! cargo run --release --example data_cleaning
//! ```

use rotom::{run_method, Method, RotomConfig};
use rotom_baselines::raha::Raha;
use rotom_datasets::edt::{self, EdtConfig, EdtFlavor};

fn main() {
    let data = edt::generate(
        EdtFlavor::Beers,
        &EdtConfig {
            rows: Some(120),
            ..Default::default()
        },
    );
    println!(
        "{}: {} rows x {} columns, {} injected errors",
        data.name,
        data.rows.len(),
        data.columns.len(),
        data.num_errors()
    );

    // Peek at a dirty row.
    let dirty_row = (0..data.rows.len())
        .find(|&r| data.mask[r].iter().any(|&b| b))
        .unwrap();
    println!("\nrow {dirty_row} (errors marked):");
    for (c, col) in data.columns.iter().enumerate() {
        let marker = if data.mask[dirty_row][c] {
            "  <-- ERROR"
        } else {
            ""
        };
        println!(
            "  {:>10}: {}{}",
            col,
            data.rows[dirty_row].get(col).unwrap_or(""),
            marker
        );
    }

    // Raha with 20 labeled tuples.
    let raha = Raha::train(&data, 20, 0);
    let raha_f1 = raha.evaluate(&data);
    println!("\nRaha (20 tuples):  F1 {:.1}", raha_f1.f1 * 100.0);

    // Rotom with 200 labeled cells (class-balanced, as in the paper).
    let task = data.to_task();
    let train = task.sample_train_balanced(200, 0);
    let mut cfg = RotomConfig::bench_small();
    cfg.model.max_len = 40;
    cfg.train.epochs = 16;
    cfg.train.lr = 3e-3;
    for method in [Method::Baseline, Method::InvDa, Method::Rotom] {
        let r = run_method(&task, &train, &train, method, &cfg, None, 0);
        println!("{:>10} (200 cells): F1 {:.1}", r.method, r.prf1.f1 * 100.0);
    }
}
