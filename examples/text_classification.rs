//! Text classification across labeling budgets: the Table-10 story on one
//! dataset — Rotom's gains are largest when labels are scarcest.
//!
//! ```sh
//! cargo run --release --example text_classification
//! ```

use rotom::pipeline::{prepare_base, run_method_with_base};
use rotom::{Method, RotomConfig};
use rotom_augment::InvDa;
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};

fn main() {
    let data_cfg = TextClsConfig {
        train_pool: 500,
        test: 300,
        unlabeled: 300,
        seed: 11,
    };
    let task = textcls::generate(TextClsFlavor::Snips, &data_cfg);
    println!("{} ({} intents)", task.name, task.num_classes);

    let mut cfg = RotomConfig::bench_small();
    cfg.model.max_len = 32;
    cfg.train.epochs = 6;
    cfg.train.lr = 1e-3;
    let base = prepare_base(&task, &cfg, 3);
    let invda = InvDa::train(&task.unlabeled, cfg.invda.clone(), 3);

    println!(
        "{:>8} {:>10} {:>10} {:>8}",
        "size", "Baseline", "Rotom", "delta"
    );
    for size in [60usize, 120, 240] {
        let train = task.sample_train(size, 0);
        let base_r = run_method_with_base(
            &task,
            &train,
            &train,
            Method::Baseline,
            &cfg,
            None,
            Some(&base),
            0,
        );
        let rotom_r = run_method_with_base(
            &task,
            &train,
            &train,
            Method::Rotom,
            &cfg,
            Some(&invda),
            Some(&base),
            0,
        );
        println!(
            "{:>8} {:>9.1}% {:>9.1}% {:>+7.1}",
            size,
            base_r.accuracy * 100.0,
            rotom_r.accuracy * 100.0,
            (rotom_r.accuracy - base_r.accuracy) * 100.0
        );
    }
    println!("\nExpected shape (paper Table 10): the Rotom delta shrinks as the");
    println!("labeling budget grows — DA matters most in the low-resource regime.");
}
