//! Entity matching end-to-end: generate a product-matching benchmark, train
//! all five methods with a shared pre-trained backbone and InvDA operator,
//! and inspect a few predictions.
//!
//! ```sh
//! cargo run --release --example entity_matching
//! ```

use rotom::pipeline::{prepare_base, run_method_with_base};
use rotom::{Method, RotomConfig};
use rotom_augment::InvDa;
use rotom_datasets::em::{self, EmConfig, EmFlavor};
use rotom_text::serialize::serialize_pair;

fn main() {
    // Walmart-Amazon-style product pairs: two noisy renderings of shared
    // latent products, with blocking-style hard negatives.
    let gen = EmConfig {
        num_entities: 160,
        train_pairs: 400,
        test_pairs: 200,
        ..Default::default()
    };
    let data = em::generate(EmFlavor::WalmartAmazon, &gen);
    let task = data.to_task();
    println!(
        "{}: {} candidate pairs ({} test)",
        data.name,
        data.train_pairs.len(),
        data.test_pairs.len()
    );

    // Show one matching pair as the model sees it (paper §2.1 serialization).
    let sample = data.train_pairs.iter().find(|p| p.is_match).unwrap();
    println!(
        "\nserialized match example:\n  {}\n",
        serialize_pair(&sample.left, &sample.right).join(" ")
    );

    // Shared pre-training (MLM + matched-view pairs) and InvDA — built once,
    // reused by every method, like loading the same RoBERTa checkpoint.
    let mut cfg = RotomConfig::bench_small();
    cfg.model.max_len = 72;
    cfg.model.pair_pretrain_epochs = 30;
    cfg.train.epochs = 8;
    cfg.train.lr = 5e-4;
    cfg.invda.max_len = 72;
    let base = prepare_base(&task, &cfg, 7);
    let invda = InvDa::train(&task.unlabeled, cfg.invda.clone(), 7);

    // A 240-example labeling budget (the paper sweeps 300–750 on the full
    // benchmarks).
    let train = task.sample_train(240, 0);
    println!("method comparison with {} labeled pairs:", train.len());
    for method in Method::ALL {
        let r = run_method_with_base(
            &task,
            &train,
            &train,
            method,
            &cfg,
            Some(&invda),
            Some(&base),
            0,
        );
        println!(
            "  {:>10}: F1 {:>5.1}  (precision {:.2}, recall {:.2}, {:.1}s)",
            r.method,
            r.prf1.f1 * 100.0,
            r.prf1.precision,
            r.prf1.recall,
            r.train_seconds
        );
    }
}
