//! Quickstart: train Rotom on a small text-classification task and compare
//! against plain fine-tuning.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rotom::{run_method, Method, RotomConfig};
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};

fn main() {
    // 1. A TREC-style question-intent dataset (6 classes) with a small
    //    labeled pool and some unlabeled text.
    let data_cfg = TextClsConfig {
        train_pool: 300,
        test: 200,
        unlabeled: 200,
        seed: 1,
    };
    let task = textcls::generate(TextClsFlavor::Trec, &data_cfg);

    // 2. A low-resource split: 100 labeled examples (the paper's smallest
    //    TextCLS budget), validation aliased to train to save labels.
    let train = task.sample_train(100, 0);

    // 3. Train the baseline and Rotom with the same backbone.
    let mut cfg = RotomConfig::bench_small();
    cfg.model.max_len = 32;
    cfg.train.epochs = 6;
    cfg.train.lr = 1e-3;

    println!(
        "dataset: {} ({} classes, {} train, {} test)",
        task.name,
        task.num_classes,
        train.len(),
        task.test.len()
    );
    for method in [Method::Baseline, Method::Rotom] {
        let result = run_method(&task, &train, &train, method, &cfg, None, 0);
        println!(
            "{:>10}: accuracy {:.1}%  (trained in {:.1}s)",
            result.method,
            result.accuracy * 100.0,
            result.train_seconds
        );
    }
}
