//! Reproduce Tables 4 & 5: show what the simple DA operators and InvDA do to
//! the same inputs across the three task families.
//!
//! ```sh
//! cargo run --release --example show_augmentations
//! ```

use rotom_augment::diversity::diversity;
use rotom_augment::{apply, DaContext, DaOp, InvDa, InvDaConfig};
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};
use rotom_rng::rngs::StdRng;
use rotom_rng::SeedableRng;
use rotom_text::serialize::{serialize_cell, serialize_record, Record};
use rotom_text::tokenize;

fn show(title: &str, original: &[String], invda: &InvDa, rng: &mut StdRng) {
    println!("\n--- {title} ---");
    println!("{:>10}: {}", "original", original.join(" "));
    let ctx = DaContext::default();
    for (i, op) in [DaOp::TokenRepl, DaOp::TokenDel].iter().enumerate() {
        let out = apply(*op, original, &ctx, rng);
        println!("{:>10}: {}", format!("DA{}", i + 1), out.join(" "));
    }
    let invda_variants = invda.generate_unique(original, 3, rng);
    for (i, variant) in invda_variants.iter().enumerate() {
        println!("{:>10}: {}", format!("InvDA{}", i + 1), variant.join(" "));
    }
    // Quantify the diversity/quality trade-off of §3.2: simple single-token
    // operators sit near 1/len edit distance; InvDA ranges much wider.
    let simple: Vec<Vec<String>> = (0..8)
        .map(|_| apply(DaOp::TokenRepl, original, &ctx, rng))
        .collect();
    let d_simple = diversity(original, &simple);
    let d_invda = diversity(original, &invda_variants);
    println!(
        "{:>10}: simple DA {:.2} / InvDA {:.2} (mean normalized edit distance)",
        "diversity", d_simple.mean_edit, d_invda.mean_edit
    );
}

fn main() {
    let mut rng = StdRng::seed_from_u64(3);

    // Text classification (Table 4, left): question intent.
    let question = tokenize("where is the orange bowl ?");
    let tcls = textcls::generate(
        TextClsFlavor::Trec,
        &TextClsConfig {
            train_pool: 0,
            test: 0,
            unlabeled: 300,
            seed: 2,
        },
    );
    let invda_text = InvDa::train(&tcls.unlabeled, InvDaConfig::default(), 1);
    show(
        "Text classification — question intent",
        &question,
        &invda_text,
        &mut rng,
    );

    // Error detection (Table 4, right): a movie-name cell.
    let cell = serialize_cell("name", "the silent storm");
    let movie_corpus: Vec<Vec<String>> = (0..200)
        .map(|i| {
            let words = rotom_datasets::words::MOVIE_WORDS;
            serialize_cell(
                "name",
                &format!(
                    "the {} {}",
                    words[i % words.len()],
                    words[(i * 7 + 3) % words.len()]
                ),
            )
        })
        .collect();
    let invda_edt = InvDa::train(&movie_corpus, InvDaConfig::default(), 2);
    show(
        "Error detection — movie name cell",
        &cell,
        &invda_edt,
        &mut rng,
    );

    // Entity matching (Table 5): a paper title record.
    let record = Record::new(vec![(
        "title",
        "effective timestamping in relational databases",
    )]);
    let title = serialize_record(&record);
    let paper_corpus: Vec<Vec<String>> = (0..200)
        .map(|i| {
            let words = rotom_datasets::words::TITLE_WORDS;
            Record::new(vec![(
                "title".to_string(),
                format!(
                    "{} {} in {} {}",
                    words[i % words.len()],
                    words[(i * 3 + 1) % words.len()],
                    words[(i * 5 + 2) % words.len()],
                    words[(i * 11 + 4) % words.len()]
                ),
            )])
        })
        .map(|r| serialize_record(&r))
        .collect();
    let invda_em = InvDa::train(&paper_corpus, InvDaConfig::default(), 3);
    show("Entity matching — paper title", &title, &invda_em, &mut rng);
}
