//! Training-data debugging (paper §8's proposed extension): apply Rotom's
//! filtering + re-weighting principle to *label noise* rather than
//! augmentation noise. The pool contains only identity "augmentations", a
//! fraction of which carry flipped labels; the meta-learned policy must
//! suppress them using the clean validation signal.
//!
//! ```sh
//! cargo run --release --example noisy_labels
//! ```

use rotom::pipeline::{evaluate, prepare_base};
use rotom::{MetaConfig, MetaTrainer, RotomConfig, WeightedItem};
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};
use rotom_meta::MetaTarget;
use rotom_rng::rngs::StdRng;
use rotom_rng::{RngExt, SeedableRng};
use rotom_text::example::AugExample;

fn main() {
    let data_cfg = TextClsConfig {
        train_pool: 300,
        test: 200,
        unlabeled: 200,
        seed: 13,
    };
    let task = textcls::generate(TextClsFlavor::Sst2, &data_cfg);
    let mut rng = StdRng::seed_from_u64(0);

    // 120 labeled examples, 25% of which get flipped labels.
    let mut train = task.sample_train(120, 0);
    let clean = train.clone();
    let mut flipped = 0;
    for e in &mut train {
        if rng.random_bool(0.25) {
            e.label = 1 - e.label;
            flipped += 1;
        }
    }
    println!(
        "{}: {} labeled examples, {flipped} with corrupted labels",
        task.name,
        train.len()
    );

    let mut cfg = RotomConfig::bench_small();
    cfg.model.max_len = 32;
    cfg.train.lr = 1e-3;
    let base = prepare_base(&task, &cfg, 1);

    // Plain fine-tuning on the noisy labels.
    {
        let mut model = base.instantiate(&cfg, 0);
        let items: Vec<WeightedItem> = train
            .iter()
            .map(|e| WeightedItem::hard(e.tokens.clone(), e.label, 2))
            .collect();
        for _ in 0..6 {
            for chunk in items.chunks(16) {
                model.weighted_loss_backward(chunk, true, &mut rng);
                model.optimizer_step();
            }
        }
        let (acc, _) = evaluate(&model, &task.test);
        println!("  plain fine-tune on noisy labels : {:.1}%", acc * 100.0);
    }

    // Rotom-style meta-trained cleaning: identity pool, clean validation
    // subset (in practice a small trusted set; here the clean copies).
    {
        let mut model = base.instantiate(&cfg, 0);
        let pool: Vec<AugExample> = train.iter().map(AugExample::identity).collect();
        let valid: Vec<_> = clean.iter().take(40).cloned().collect();
        let enc_cfg = cfg.model.encoder(model.vocab().len());
        let meta_cfg = MetaConfig {
            batch_size: 12,
            ..Default::default()
        };
        let mut trainer = MetaTrainer::new(2, model.vocab().clone(), enc_cfg, meta_cfg);
        for _ in 0..6 {
            trainer.train_epoch(&mut model, &pool, &valid, &[]);
        }
        let (acc, _) = evaluate(&model, &task.test);
        println!("  meta-filtered/weighted training : {:.1}%", acc * 100.0);
    }

    println!("\nThe same machinery that selects augmented examples debugs noisy");
    println!("training labels — the extension sketched in the paper's conclusion.");
}
