//! Meta-crate of the Rotom reproduction workspace: re-exports every
//! sub-crate so the root `examples/` and `tests/` can exercise the full
//! public API surface, exactly as a downstream user would.

pub use rotom;
pub use rotom_augment as augment;
pub use rotom_baselines as baselines;
pub use rotom_datasets as datasets;
pub use rotom_meta as meta;
pub use rotom_nn as nn;
pub use rotom_text as text;
