//! `rotom-rng` — the workspace's self-contained random number generator.
//!
//! This build environment has no registry access, so the workspace cannot
//! depend on the `rand` crate; this crate provides the minimal surface the
//! repository actually uses, with a compatible API shape:
//!
//! * [`rngs::StdRng`] — the deterministic generator used everywhere
//!   (xoshiro256++ core, SplitMix64 seeding);
//! * [`SeedableRng`] — `seed_from_u64` / `from_seed` construction;
//! * [`RngExt`] — `random_range`, `random_bool`, `shuffle`, `choose`, raw
//!   word draws.
//!
//! Determinism is a hard requirement of the repository (seeded experiments,
//! bit-identical parallel/serial paths), so the algorithms here are fixed
//! and documented: changing them is a breaking change to every recorded
//! experiment.
//!
//! # Parallel streams
//!
//! [`split_seed`] derives statistically independent per-item seeds from a
//! base seed, which is how the parallel augmentation and batch-scoring paths
//! stay bit-identical to their serial counterparts at any thread count: each
//! item gets `StdRng::seed_from_u64(split_seed(base, i))` regardless of
//! which worker processes it.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seeding and for deriving per-item seeds; it is a bijective
/// mixer, so distinct inputs never collide.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive a per-item seed from a base seed: mixes `base` and `index`
/// through SplitMix64 so consecutive indices yield uncorrelated streams.
#[inline]
pub fn split_seed(base: u64, index: u64) -> u64 {
    let mut s = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let a = splitmix64(&mut s);
    splitmix64(&mut s) ^ a.rotate_left(17)
}

/// A source of raw random words. [`RngExt`] builds every higher-level draw
/// on top of this single method.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Construct from a 32-byte seed.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Construct from a single `u64`, expanded through SplitMix64.
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        Self::from_seed(bytes)
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if the range is empty.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Draw a `u64` uniformly below `bound` (Lemire's multiply-shift method,
/// unbiased). Panics if `bound` is zero.
fn bounded_u64(rng: &mut dyn RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (bound as u128);
    let mut low = m as u64;
    if low < bound {
        let threshold = bound.wrapping_neg() % bound;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (bound as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every word is a valid draw.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let u = $unit(rng);
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding landing exactly on the excluded end.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let u = $unit(rng);
                (start + u * (end - start)).min(end)
            }
        }
    )*};
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of one word.
#[inline]
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f32` in `[0, 1)` from the top 24 bits of one word.
#[inline]
fn unit_f32(rng: &mut dyn RngCore) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

float_sample_range!(f32 => unit_f32, f64 => unit_f64);

/// Convenience draws layered over [`RngCore`]; implemented for every
/// generator automatically.
pub trait RngExt: RngCore {
    /// Uniform draw from an integer or float range (`a..b` or `a..=b`).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }

    /// Uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        unit_f64(self)
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, items: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..items.len()).rev() {
            let j = bounded_u64(self, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` when empty.
    fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if items.is_empty() {
            None
        } else {
            Some(&items[bounded_u64(self, items.len() as u64) as usize])
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
    /// a small, fast, well-tested non-cryptographic PRNG with 256 bits of
    /// state and a 2²⁵⁶−1 period.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Fork an independent child generator: draws one word to seed a new
        /// stream through SplitMix64, decorrelating parent and child.
        pub fn fork(&mut self) -> StdRng {
            StdRng::seed_from_u64(self.next_u64())
        }

        /// Snapshot the full 256-bit generator state. Together with
        /// [`from_state`](Self::from_state) this makes RNG streams
        /// checkpointable: a resumed stream continues bit-identically from
        /// where the snapshot was taken.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`state`](Self::state) snapshot —
        /// the exact inverse, with no remixing, so
        /// `StdRng::from_state(r.state())` produces the same stream as `r`.
        /// (An all-zero state is unreachable from seeding and is remapped to
        /// a fixed non-zero state to preserve the xoshiro invariant.)
        pub fn from_state(state: [u64; 4]) -> StdRng {
            if state == [0; 4] {
                let mut st = 0xdead_beef_cafe_f00du64;
                let mut s = [0u64; 4];
                for w in &mut s {
                    *w = splitmix64(&mut st);
                }
                return Self { s };
            }
            Self { s: state }
        }
    }

    impl SeedableRng for StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *w = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; remix.
            if s == [0; 4] {
                let mut st = 0xdead_beef_cafe_f00du64;
                for w in &mut s {
                    *w = splitmix64(&mut st);
                }
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f32 = rng.random_range(f32::EPSILON..1.0);
            assert!(v >= f32::EPSILON && v < 1.0, "{v}");
            let w: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&w));
            let x: f32 = rng.random_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&x));
        }
    }

    #[test]
    fn float_range_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.1)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn split_seed_streams_are_distinct() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(split_seed(9, 0));
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(split_seed(9, 1));
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
        // And stable: recomputing gives the same stream.
        let a2: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(split_seed(9, 0));
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2);
    }

    #[test]
    fn choose_covers_and_handles_empty() {
        let mut rng = StdRng::seed_from_u64(7);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*rng.choose(&items).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = StdRng::seed_from_u64(8);
        let mut child = parent.fork();
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn state_roundtrip_continues_stream_bit_identically() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let snapshot = rng.state();
        let tail: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
        let mut resumed = StdRng::from_state(snapshot);
        let resumed_tail: Vec<u64> = (0..32).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, resumed_tail);
    }

    #[test]
    fn from_state_remaps_all_zero_state() {
        let mut rng = StdRng::from_state([0; 4]);
        // An all-zero xoshiro state would emit zeros forever; the remap must
        // produce a working stream.
        let words: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(words.iter().any(|&w| w != 0));
    }
}
