//! Training-example types shared by the augmentation and meta-learning
//! layers.

/// A labeled, serialized training example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Example {
    /// Serialized token sequence (see `rotom_text::serialize`).
    pub tokens: Vec<String>,
    /// Class label index.
    pub label: usize,
}

impl Example {
    /// Create an example from tokens and a label.
    pub fn new(tokens: Vec<String>, label: usize) -> Self {
        Self { tokens, label }
    }
}

/// An augmented example `e = (x, x̂, y)` (paper Definition 4.1): the original
/// sequence, the augmented sequence, and the (inherited) label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AugExample {
    /// Original sequence `x`.
    pub orig: Vec<String>,
    /// Augmented sequence `x̂`.
    pub aug: Vec<String>,
    /// Label `y` inherited from the original.
    pub label: usize,
}

impl AugExample {
    /// An "identity" augmentation (x̂ = x); original training examples enter
    /// the meta-learning batch in this form.
    pub fn identity(ex: &Example) -> Self {
        Self {
            orig: ex.tokens.clone(),
            aug: ex.tokens.clone(),
            label: ex.label,
        }
    }

    /// Pair an example with an augmented token sequence.
    pub fn from_example(ex: &Example, aug: Vec<String>) -> Self {
        Self {
            orig: ex.tokens.clone(),
            aug,
            label: ex.label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_augmentation_copies_tokens() {
        let ex = Example::new(vec!["a".into(), "b".into()], 1);
        let aug = AugExample::identity(&ex);
        assert_eq!(aug.orig, aug.aug);
        assert_eq!(aug.label, 1);
    }
}
