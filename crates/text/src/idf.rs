//! Inverse document frequency statistics.
//!
//! Rotom samples tokens for deletion/replacement "by the importance of each
//! token … measured by its inverse document frequency (IDF) so that less
//! important tokens are more likely to be replaced/deleted" (§2.3).

use crate::token::is_special;
use std::collections::{HashMap, HashSet};

/// Corpus-level IDF index.
#[derive(Debug, Clone, Default)]
pub struct IdfIndex {
    idf: HashMap<String, f32>,
    num_docs: usize,
    max_idf: f32,
}

impl IdfIndex {
    /// Build from an iterator of token sequences (documents).
    pub fn build<'a, I>(docs: I) -> Self
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut df: HashMap<&str, usize> = HashMap::new();
        let mut num_docs = 0usize;
        for doc in docs {
            num_docs += 1;
            let uniq: HashSet<&str> = doc
                .iter()
                .map(|t| t.as_str())
                .filter(|t| !is_special(t))
                .collect();
            for t in uniq {
                *df.entry(t).or_insert(0) += 1;
            }
        }
        let n = num_docs.max(1) as f32;
        let idf: HashMap<String, f32> = df
            .into_iter()
            .map(|(t, d)| (t.to_string(), (n / (1.0 + d as f32)).ln().max(0.0)))
            .collect();
        let max_idf = idf.values().copied().fold(0.0f32, f32::max);
        Self {
            idf,
            num_docs,
            max_idf,
        }
    }

    /// Number of documents seen.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// IDF of a token; unseen tokens get the maximum observed IDF (they are
    /// maximally "important").
    pub fn idf(&self, tok: &str) -> f32 {
        self.idf.get(tok).copied().unwrap_or(self.max_idf)
    }

    /// Sampling weight for destructive DA: higher for *less* important
    /// (low-IDF) tokens. Special tokens get weight 0.
    pub fn removal_weight(&self, tok: &str) -> f32 {
        if is_special(tok) {
            return 0.0;
        }
        // Invert importance; +1 keeps frequent-token weights finite and > 0.
        1.0 / (1.0 + self.idf(tok))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn idx() -> IdfIndex {
        let docs: Vec<Vec<String>> = vec![
            tokenize("the cat sat"),
            tokenize("the dog ran"),
            tokenize("the bird flew away"),
        ];
        let refs: Vec<&[String]> = docs.iter().map(|d| d.as_slice()).collect();
        IdfIndex::build(refs)
    }

    #[test]
    fn common_tokens_have_low_idf() {
        let i = idx();
        assert!(i.idf("the") < i.idf("cat"));
    }

    #[test]
    fn removal_weight_prefers_common_tokens() {
        let i = idx();
        assert!(i.removal_weight("the") > i.removal_weight("cat"));
    }

    #[test]
    fn special_tokens_never_sampled() {
        let i = idx();
        assert_eq!(i.removal_weight("[COL]"), 0.0);
        assert_eq!(i.removal_weight("[SEP]"), 0.0);
    }

    #[test]
    fn unseen_token_is_maximally_important() {
        let i = idx();
        assert_eq!(i.idf("zebra"), i.idf("cat").max(i.idf("flew")));
    }
}
