//! Inverse document frequency statistics.
//!
//! Rotom samples tokens for deletion/replacement "by the importance of each
//! token … measured by its inverse document frequency (IDF) so that less
//! important tokens are more likely to be replaced/deleted" (§2.3).
//!
//! The index also backs the blocking plane's IDF pruning: tokens whose
//! document frequency ([`IdfIndex::doc_freq`]) exceeds a ceiling are dropped
//! from the sharded inverted index, bounding posting-list length.

use crate::token::is_special;
use std::collections::{HashMap, HashSet};

/// IDF assigned to unseen tokens when the corpus was empty (no documents, or
/// only empty documents). With zero observations every token is novel, so it
/// gets a fixed positive "maximally important" score rather than the 0.0 a
/// naive `max` over an empty set would produce — 0.0 is the *minimum*
/// importance and would invert every downstream sampling decision.
pub const EMPTY_CORPUS_IDF: f32 = 1.0;

/// Corpus-level IDF index.
#[derive(Debug, Clone)]
pub struct IdfIndex {
    idf: HashMap<String, f32>,
    df: HashMap<String, usize>,
    num_docs: usize,
    max_idf: f32,
}

impl Default for IdfIndex {
    fn default() -> Self {
        Self::from_doc_freqs(HashMap::new(), 0)
    }
}

impl IdfIndex {
    /// Build from an iterator of token sequences (documents).
    pub fn build<'a, I>(docs: I) -> Self
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut df: HashMap<String, usize> = HashMap::new();
        let mut num_docs = 0usize;
        for doc in docs {
            num_docs += 1;
            let uniq: HashSet<&str> = doc
                .iter()
                .map(|t| t.as_str())
                .filter(|t| !is_special(t))
                .collect();
            for t in uniq {
                *df.entry(t.to_string()).or_insert(0) += 1;
            }
        }
        Self::from_doc_freqs(df, num_docs)
    }

    /// Build directly from per-token document frequencies — the form the
    /// blocking plane's sharded index produces (posting-list lengths *are*
    /// document frequencies), so an IDF index can be derived from a streamed
    /// index build without retaining any documents.
    pub fn from_doc_freqs(df: HashMap<String, usize>, num_docs: usize) -> Self {
        let n = num_docs.max(1) as f32;
        let idf: HashMap<String, f32> = df
            .iter()
            .map(|(t, &d)| (t.clone(), (n / (1.0 + d as f32)).ln().max(0.0)))
            .collect();
        // An empty corpus observed nothing: fall back to a positive default
        // so unseen tokens still read as maximally important (see
        // [`EMPTY_CORPUS_IDF`]).
        let max_idf = if idf.is_empty() {
            EMPTY_CORPUS_IDF
        } else {
            idf.values().copied().fold(0.0f32, f32::max)
        };
        Self {
            idf,
            df,
            num_docs,
            max_idf,
        }
    }

    /// Number of documents seen.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Document frequency of a token: how many documents contained it
    /// (0 for unseen tokens). This is the quantity the blocking plane's
    /// df-ceiling pruning rule tests.
    pub fn doc_freq(&self, tok: &str) -> usize {
        self.df.get(tok).copied().unwrap_or(0)
    }

    /// Number of distinct tokens observed.
    pub fn num_tokens(&self) -> usize {
        self.df.len()
    }

    /// IDF of a token; unseen tokens get the maximum observed IDF (they are
    /// maximally "important"). On an empty corpus the maximum defaults to
    /// [`EMPTY_CORPUS_IDF`], so unseen tokens never score 0.
    pub fn idf(&self, tok: &str) -> f32 {
        self.idf.get(tok).copied().unwrap_or(self.max_idf)
    }

    /// Sampling weight for destructive DA: higher for *less* important
    /// (low-IDF) tokens. Special tokens get weight 0.
    pub fn removal_weight(&self, tok: &str) -> f32 {
        if is_special(tok) {
            return 0.0;
        }
        // Invert importance; +1 keeps frequent-token weights finite and > 0.
        1.0 / (1.0 + self.idf(tok))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn idx() -> IdfIndex {
        let docs: Vec<Vec<String>> = vec![
            tokenize("the cat sat"),
            tokenize("the dog ran"),
            tokenize("the bird flew away"),
        ];
        let refs: Vec<&[String]> = docs.iter().map(|d| d.as_slice()).collect();
        IdfIndex::build(refs)
    }

    #[test]
    fn common_tokens_have_low_idf() {
        let i = idx();
        assert!(i.idf("the") < i.idf("cat"));
    }

    #[test]
    fn removal_weight_prefers_common_tokens() {
        let i = idx();
        assert!(i.removal_weight("the") > i.removal_weight("cat"));
    }

    #[test]
    fn special_tokens_never_sampled() {
        let i = idx();
        assert_eq!(i.removal_weight("[COL]"), 0.0);
        assert_eq!(i.removal_weight("[SEP]"), 0.0);
    }

    #[test]
    fn unseen_token_is_maximally_important() {
        let i = idx();
        assert_eq!(i.idf("zebra"), i.idf("cat").max(i.idf("flew")));
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let i = idx();
        assert_eq!(i.doc_freq("the"), 3);
        assert_eq!(i.doc_freq("cat"), 1);
        assert_eq!(i.doc_freq("zebra"), 0);
        assert_eq!(i.num_docs(), 3);
        assert!(i.num_tokens() >= 8);
    }

    #[test]
    fn empty_corpus_unseen_tokens_stay_maximally_important() {
        // Regression: max_idf used to fold over an empty set to 0.0, handing
        // unseen tokens the *minimum* importance on an empty corpus.
        let empty = IdfIndex::build(std::iter::empty::<&[String]>());
        assert_eq!(empty.num_docs(), 0);
        assert_eq!(empty.idf("anything"), EMPTY_CORPUS_IDF);
        assert!(empty.idf("anything") > 0.0);
        // removal_weight stays finite and below an observed-common-token's.
        assert!(empty.removal_weight("anything") < 1.0);
        // Default::default() is the same empty index.
        assert_eq!(IdfIndex::default().idf("x"), EMPTY_CORPUS_IDF);
    }

    #[test]
    fn from_doc_freqs_matches_build() {
        let built = idx();
        let mut df = HashMap::new();
        for t in ["the", "cat", "sat", "dog", "ran", "bird", "flew", "away"] {
            df.insert(t.to_string(), built.doc_freq(t));
        }
        let derived = IdfIndex::from_doc_freqs(df, 3);
        for t in ["the", "cat", "flew", "zebra"] {
            assert_eq!(built.idf(t), derived.idf(t), "token {t}");
        }
    }
}
