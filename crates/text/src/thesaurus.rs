//! Synonym lookup for `token_repl` / `token_insert`.
//!
//! The paper uses WordNet [60]; offline we ship a compact built-in thesaurus
//! whose groups cover the vocabulary of the synthetic benchmark generators
//! plus common English. Users can register additional synonym groups for
//! their own domains (mirroring Rotom's "users may add customized
//! transformations" extension point).

use std::collections::HashMap;

/// Built-in synonym groups. Every word in a group is a synonym of the others.
const BUILTIN_GROUPS: &[&[&str]] = &[
    // General English
    &["big", "large", "huge", "giant"],
    &["small", "little", "tiny", "compact"],
    &["fast", "quick", "rapid", "speedy"],
    &["slow", "sluggish", "gradual"],
    &["good", "great", "fine", "excellent"],
    &["bad", "poor", "terrible", "awful"],
    &["new", "novel", "recent", "modern"],
    &["old", "ancient", "vintage", "classic"],
    &["cheap", "inexpensive", "affordable", "budget"],
    &["expensive", "costly", "premium", "pricey"],
    &["buy", "purchase", "acquire", "order"],
    &["sell", "vend", "offer"],
    &["show", "display", "present", "exhibit"],
    &["find", "locate", "discover", "identify"],
    &["make", "build", "create", "construct"],
    &["use", "utilize", "employ", "apply"],
    &["help", "assist", "aid", "support"],
    &["start", "begin", "launch", "initiate"],
    &["stop", "halt", "end", "terminate"],
    &["happy", "glad", "pleased", "delighted"],
    &["sad", "unhappy", "gloomy"],
    &["love", "adore", "enjoy", "like"],
    &["hate", "dislike", "despise"],
    &["movie", "film", "picture"],
    &["book", "volume", "title"],
    &["car", "automobile", "vehicle"],
    &["house", "home", "residence"],
    &["city", "town", "municipality"],
    &["street", "road", "avenue"],
    &["phone", "telephone", "handset"],
    &["laptop", "notebook", "ultrabook"],
    &["computer", "pc", "workstation"],
    &["monitor", "display", "screen"],
    &["camera", "camcorder"],
    &["printer", "copier"],
    &["wireless", "cordless", "bluetooth"],
    &["portable", "mobile", "handheld"],
    &["digital", "electronic"],
    &["professional", "pro", "expert"],
    &["premium", "deluxe", "luxury"],
    &["standard", "regular", "basic"],
    &["black", "dark", "ebony"],
    &["white", "light", "ivory"],
    &["red", "crimson", "scarlet"],
    &["blue", "azure", "navy"],
    &["green", "emerald", "lime"],
    &["effective", "efficient", "productive"],
    &["relational", "tabular"],
    &["database", "databases", "datastore"],
    &["query", "queries", "lookup"],
    &["system", "systems", "platform"],
    &["analysis", "analytics", "evaluation"],
    &["learning", "training"],
    &["model", "models", "estimator"],
    &["approach", "method", "technique"],
    &["improved", "enhanced", "optimized"],
    &["distributed", "parallel", "decentralized"],
    &["scalable", "elastic"],
    &["stream", "streaming", "flow"],
    &["storage", "store", "repository"],
    &["index", "indexing", "catalog"],
    &["processing", "computation", "execution"],
    &["review", "rating", "feedback"],
    &["price", "cost", "rate"],
    &["restaurant", "diner", "eatery"],
    &["hotel", "inn", "lodge"],
    &["flight", "flights", "airfare"],
    &["ticket", "tickets", "fare"],
    &["weather", "forecast", "climate"],
    &["music", "songs", "audio"],
    &["play", "perform", "run"],
    &["news", "headlines", "stories"],
    &["game", "match", "contest"],
    &["team", "squad", "club"],
    &["player", "athlete"],
    &["election", "vote", "poll"],
    &["market", "exchange", "trading"],
    &["company", "firm", "corporation", "business"],
    &["stock", "share", "equity"],
    &["technology", "tech"],
    &["science", "research"],
    &["doctor", "physician", "clinician"],
    &["hospital", "clinic", "infirmary"],
    &["beer", "ale", "lager", "brew"],
    &["brewery", "brewhouse"],
    &["tax", "levy", "duty"],
    &["salary", "wage", "pay"],
    &["state", "province", "region"],
    &["where", "wherever"],
    &["what", "which"],
    &["excellent", "outstanding", "superb"],
    &["disappointing", "underwhelming", "mediocre"],
    &["battery", "cell", "powerpack"],
    &["charger", "adapter", "psu"],
    &["speaker", "loudspeaker"],
    &["headphones", "earphones", "headset"],
    &["keyboard", "keypad"],
    &["mouse", "trackball"],
    &["cable", "cord", "wire"],
    &["case", "cover", "shell", "sleeve"],
    &["bag", "pouch", "tote"],
    &["watch", "timepiece"],
];

/// A synonym dictionary.
#[derive(Debug, Clone, Default)]
pub struct Thesaurus {
    /// word → group index
    index: HashMap<String, usize>,
    groups: Vec<Vec<String>>,
}

impl Thesaurus {
    /// Empty thesaurus.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in thesaurus covering the synthetic benchmark vocabulary.
    pub fn builtin() -> Self {
        let mut t = Self::new();
        for group in BUILTIN_GROUPS {
            t.add_group(group.iter().map(|s| s.to_string()).collect());
        }
        t
    }

    /// Register a synonym group. Words already present keep their original
    /// group (first registration wins), mirroring WordNet's primary synset.
    pub fn add_group(&mut self, words: Vec<String>) {
        let gi = self.groups.len();
        let mut group = Vec::with_capacity(words.len());
        for w in words {
            self.index.entry(w.clone()).or_insert(gi);
            group.push(w);
        }
        self.groups.push(group);
    }

    /// Synonyms of `word`, excluding the word itself. Empty when unknown.
    pub fn synonyms(&self, word: &str) -> Vec<&str> {
        match self.index.get(word) {
            Some(&gi) => self.groups[gi]
                .iter()
                .map(|s| s.as_str())
                .filter(|&s| s != word)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Whether the word has at least one synonym.
    pub fn has_synonym(&self, word: &str) -> bool {
        !self.synonyms(word).is_empty()
    }

    /// Number of synonym groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_common_words() {
        let t = Thesaurus::builtin();
        assert!(t.synonyms("fast").contains(&"quick"));
        assert!(t.synonyms("database").contains(&"databases"));
    }

    #[test]
    fn synonyms_exclude_self() {
        let t = Thesaurus::builtin();
        assert!(!t.synonyms("fast").contains(&"fast"));
    }

    #[test]
    fn unknown_word_has_no_synonyms() {
        let t = Thesaurus::builtin();
        assert!(t.synonyms("xylophone-q").is_empty());
        assert!(!t.has_synonym("xylophone-q"));
    }

    #[test]
    fn custom_groups_extend() {
        let mut t = Thesaurus::builtin();
        t.add_group(vec!["foo".into(), "bar".into()]);
        assert_eq!(t.synonyms("foo"), vec!["bar"]);
    }

    #[test]
    fn first_registration_wins() {
        let mut t = Thesaurus::new();
        t.add_group(vec!["a".into(), "b".into()]);
        t.add_group(vec!["a".into(), "c".into()]);
        assert_eq!(t.synonyms("a"), vec!["b"]);
        // "c" still resolves through its own group.
        assert_eq!(t.synonyms("c"), vec!["a"]);
    }
}
