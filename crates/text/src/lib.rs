//! `rotom-text` — tokenization, vocabulary, serialization, and lexical
//! statistics shared by every Rotom task.
//!
//! Rotom casts entity matching, error detection, and text classification into
//! one *sequence classification* interface (paper §2.1) by serializing data
//! entries with `[COL]`/`[VAL]`/`[SEP]` markers. This crate owns that
//! serialization, the tokenizer and vocabulary of the stand-in language
//! models, the IDF statistics guiding importance-aware DA sampling, and the
//! synonym thesaurus used by replacement operators.

#![warn(missing_docs)]

pub mod example;
pub mod idf;
pub mod serialize;
pub mod thesaurus;
pub mod token;
pub mod tokenizer;
pub mod vocab;

pub use example::{AugExample, Example};
pub use idf::IdfIndex;
pub use serialize::{
    parse_structure, serialize_cell, serialize_cell_in_context, serialize_pair, serialize_record,
    Record, Structure,
};
pub use thesaurus::Thesaurus;
pub use tokenizer::{detokenize, tokenize};
pub use vocab::Vocab;
