//! Token vocabulary with frequency-based construction.

use crate::token::{SPECIAL_TOKENS, UNK};
use std::collections::HashMap;

/// Bidirectional token ↔ id map. Special tokens always occupy the lowest ids
/// in [`SPECIAL_TOKENS`] order, so `PAD = 0`, `UNK = 1`, `CLS = 2`, ….
#[derive(Debug, Clone)]
pub struct Vocab {
    tokens: Vec<String>,
    index: HashMap<String, usize>,
}

impl Vocab {
    /// Build a vocabulary from an iterator of token sequences, keeping at
    /// most `max_size` tokens (including the special tokens) ordered by
    /// descending frequency.
    pub fn build<'a, I>(sequences: I, max_size: usize) -> Self
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for seq in sequences {
            for tok in seq {
                if !crate::token::is_special(tok) {
                    *counts.entry(tok.as_str()).or_insert(0) += 1;
                }
            }
        }
        let mut ranked: Vec<(&str, usize)> = counts.into_iter().collect();
        // Stable order: by count desc, then lexicographic for determinism.
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

        // Reserve room for single-character fallback tokens: OOV words are
        // encoded character-by-character (a poor man's subword tokenizer, so
        // the models can *see* typos and format breaks the way BERT's
        // WordPiece does).
        let char_tokens: Vec<String> = (32u8..127)
            .map(|b| format!("##{}", char::from(b)))
            .collect();
        let budget = max_size.saturating_sub(SPECIAL_TOKENS.len() + char_tokens.len());
        let mut tokens: Vec<String> = SPECIAL_TOKENS.iter().map(|s| s.to_string()).collect();
        tokens.extend(char_tokens);
        tokens.extend(ranked.into_iter().take(budget).map(|(t, _)| t.to_string()));
        let index = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        Self { tokens, index }
    }

    /// Encode with character fallback: in-vocabulary tokens map to their id;
    /// OOV tokens are split into `##c` single-character tokens (non-ASCII
    /// characters map to `[UNK]`).
    pub fn encode_fallback(&self, tokens: &[String]) -> Vec<usize> {
        let unk = self.index[UNK];
        let mut out = Vec::with_capacity(tokens.len());
        for t in tokens {
            match self.index.get(t.as_str()) {
                Some(&id) => out.push(id),
                None => {
                    for c in t.chars() {
                        let key = format!("##{c}");
                        out.push(self.index.get(key.as_str()).copied().unwrap_or(unk));
                    }
                }
            }
        }
        out
    }

    /// Like [`encode_fallback`](Self::encode_fallback) but also returns, for
    /// each emitted id, the index of the source token it came from (so
    /// per-token features can be aligned with the expanded id sequence).
    pub fn encode_fallback_map(&self, tokens: &[String]) -> (Vec<usize>, Vec<usize>) {
        let unk = self.index[UNK];
        let mut ids = Vec::with_capacity(tokens.len());
        let mut src = Vec::with_capacity(tokens.len());
        for (ti, t) in tokens.iter().enumerate() {
            match self.index.get(t.as_str()) {
                Some(&id) => {
                    ids.push(id);
                    src.push(ti);
                }
                None => {
                    for c in t.chars() {
                        let key = format!("##{c}");
                        ids.push(self.index.get(key.as_str()).copied().unwrap_or(unk));
                        src.push(ti);
                    }
                }
            }
        }
        (ids, src)
    }

    /// Number of tokens (including specials).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the vocabulary holds only special tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.len() <= SPECIAL_TOKENS.len()
    }

    /// Id of `tok`, or the `[UNK]` id when out of vocabulary.
    pub fn id(&self, tok: &str) -> usize {
        self.index
            .get(tok)
            .copied()
            .unwrap_or_else(|| self.index[UNK])
    }

    /// Id of `tok` only if present.
    pub fn try_id(&self, tok: &str) -> Option<usize> {
        self.index.get(tok).copied()
    }

    /// Token string for `id`. Panics when out of range.
    pub fn token(&self, id: usize) -> &str {
        &self.tokens[id]
    }

    /// Encode a token sequence to ids (OOV → `[UNK]`).
    pub fn encode(&self, tokens: &[String]) -> Vec<usize> {
        tokens.iter().map(|t| self.id(t)).collect()
    }

    /// Decode ids back to token strings.
    pub fn decode(&self, ids: &[usize]) -> Vec<String> {
        ids.iter().map(|&i| self.tokens[i].clone()).collect()
    }

    /// Iterate over non-special, non-fallback tokens (candidates for MLM
    /// masking and generation).
    pub fn content_tokens(&self) -> impl Iterator<Item = (usize, &str)> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !crate::token::is_special(t) && !t.starts_with("##"))
            .map(|(i, t)| (i, t.as_str()))
    }

    /// Id of a named special token. Panics if `tok` is not special.
    pub fn special_id(&self, tok: &str) -> usize {
        debug_assert!(crate::token::is_special(tok));
        self.index[tok]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::{CLS, PAD};
    use crate::tokenizer::tokenize;

    fn sample_vocab() -> Vocab {
        let seqs: Vec<Vec<String>> = vec![
            tokenize("the quick brown fox"),
            tokenize("the lazy dog"),
            tokenize("the quick dog"),
        ];
        let refs: Vec<&[String]> = seqs.iter().map(|s| s.as_slice()).collect();
        // 9 specials + 95 char-fallback tokens leave room for the words.
        Vocab::build(refs, 200)
    }

    #[test]
    fn specials_get_lowest_ids() {
        let v = sample_vocab();
        assert_eq!(v.id(PAD), 0);
        assert_eq!(v.id(CLS), 2);
    }

    #[test]
    fn frequency_ordering() {
        let v = sample_vocab();
        // "the" (3x) ranks before "dog"/"quick" (2x) which rank before 1x words.
        assert!(v.id("the") < v.id("dog"));
        assert!(v.id("dog") < v.id("fox"));
    }

    #[test]
    fn oov_maps_to_unk() {
        let v = sample_vocab();
        assert_eq!(v.id("zebra"), v.special_id(UNK));
    }

    #[test]
    fn encode_decode_roundtrip_in_vocab() {
        let v = sample_vocab();
        let toks = tokenize("the quick dog");
        assert_eq!(v.decode(&v.encode(&toks)), toks);
    }

    #[test]
    fn fallback_splits_oov_into_chars() {
        let v = sample_vocab();
        let ids = v.encode_fallback(&vec!["quick".to_string(), "zebra7".to_string()]);
        // "quick" is one id; "zebra7" becomes 6 character ids, none UNK.
        assert_eq!(ids.len(), 7);
        assert_eq!(ids[0], v.id("quick"));
        let unk = v.special_id(UNK);
        assert!(ids[1..].iter().all(|&i| i != unk));
        assert_eq!(v.token(ids[6]), "##7");
    }

    #[test]
    fn fallback_matches_encode_for_in_vocab() {
        let v = sample_vocab();
        let toks = tokenize("the quick dog");
        assert_eq!(v.encode_fallback(&toks), v.encode(&toks));
    }

    #[test]
    fn max_size_respected() {
        // 9 specials + 95 fallback chars = 104 fixed entries; a budget of
        // 110 keeps only the 6 most frequent of the 10 words.
        let seqs: Vec<Vec<String>> = vec![tokenize("a b c d e f g h i j")];
        let refs: Vec<&[String]> = seqs.iter().map(|s| s.as_slice()).collect();
        let v = Vocab::build(refs, 110);
        assert_eq!(v.len(), 110);
    }
}
