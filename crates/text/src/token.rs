//! Special-token constants shared across the workspace.
//!
//! These mirror the markers the paper inserts during serialization (§2.1):
//! `[COL]`/`[VAL]` delimit attributes and values, `[SEP]` separates the two
//! entities of a pair (or a row from the cell of interest in context-dependent
//! error detection), and the usual LM bookkeeping tokens round out the set.

/// Classification summary token (first position of every model input).
pub const CLS: &str = "[CLS]";
/// Segment separator.
pub const SEP: &str = "[SEP]";
/// Padding token.
pub const PAD: &str = "[PAD]";
/// Unknown/out-of-vocabulary token.
pub const UNK: &str = "[UNK]";
/// Masked-LM mask token.
pub const MASK: &str = "[MASK]";
/// Start-of-attribute marker.
pub const COL: &str = "[COL]";
/// Start-of-value marker.
pub const VAL: &str = "[VAL]";
/// Sequence start (decoder input).
pub const BOS: &str = "[BOS]";
/// Sequence end (decoder target).
pub const EOS: &str = "[EOS]";

/// All special tokens in canonical order; the vocabulary assigns them the
/// lowest ids in this order.
pub const SPECIAL_TOKENS: [&str; 9] = [PAD, UNK, CLS, SEP, MASK, COL, VAL, BOS, EOS];

/// True if `tok` is one of the special markers.
pub fn is_special(tok: &str) -> bool {
    SPECIAL_TOKENS.contains(&tok)
}

/// True if `tok` is a structural marker ([COL]/[VAL]/[SEP]) that DA operators
/// must never delete, move, or replace.
pub fn is_structural(tok: &str) -> bool {
    matches!(tok, COL | VAL | SEP)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_token_membership() {
        assert!(is_special(CLS));
        assert!(is_special(COL));
        assert!(!is_special("databases"));
    }

    #[test]
    fn structural_subset_of_special() {
        for t in SPECIAL_TOKENS {
            if is_structural(t) {
                assert!(is_special(t));
            }
        }
        assert!(is_structural(SEP));
        assert!(!is_structural(CLS));
    }
}
