//! Whitespace + punctuation tokenizer.
//!
//! The paper tokenizes with the pre-trained LM's subword tokenizer; our
//! stand-in models use a word-level vocabulary, so the tokenizer here is a
//! normalizing word splitter that (a) preserves special tokens intact,
//! (b) splits punctuation off word boundaries, and (c) round-trips through
//! [`detokenize`].

use crate::token::is_special;

/// Tokenize `text` into lowercase word / punctuation / special tokens.
///
/// Special tokens (e.g. `[COL]`) are preserved case-sensitively as single
/// tokens; everything else is lowercased, and boundary punctuation is split
/// into its own tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split_whitespace() {
        if is_special(raw) {
            out.push(raw.to_string());
            continue;
        }
        split_word(raw, &mut out);
    }
    out
}

fn split_word(raw: &str, out: &mut Vec<String>) {
    // Strip leading punctuation.
    let mut chars: Vec<char> = raw.chars().collect();
    let mut lead = Vec::new();
    while let Some(&c) = chars.first() {
        if c.is_ascii_punctuation() && chars.len() > 1 {
            lead.push(c);
            chars.remove(0);
        } else {
            break;
        }
    }
    let mut trail = Vec::new();
    while let Some(&c) = chars.last() {
        if c.is_ascii_punctuation() && chars.len() > 1 {
            trail.push(c);
            chars.pop();
        } else {
            break;
        }
    }
    for c in lead {
        out.push(c.to_string());
    }
    if !chars.is_empty() {
        out.push(chars.into_iter().collect::<String>().to_lowercase());
    }
    for c in trail.into_iter().rev() {
        out.push(c.to_string());
    }
}

/// Join tokens with single spaces (inverse of [`tokenize`] on normalized
/// token streams).
pub fn detokenize(tokens: &[String]) -> String {
    tokens.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        tokenize(s)
    }

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(
            toks("Where is the Orange Bowl?"),
            ["where", "is", "the", "orange", "bowl", "?"]
        );
    }

    #[test]
    fn preserves_special_tokens() {
        assert_eq!(
            toks("[COL] Name [VAL] Google LLC"),
            ["[COL]", "name", "[VAL]", "google", "llc"]
        );
    }

    #[test]
    fn splits_boundary_punctuation_only() {
        // Interior punctuation (hyphens, dots in model numbers) stays intact.
        assert_eq!(toks("x-100.5,"), ["x-100.5", ","]);
        assert_eq!(toks("(866)"), ["(", "866", ")"]);
    }

    #[test]
    fn roundtrip_on_normalized_text() {
        let t = toks("effective timestamping in relational databases");
        assert_eq!(tokenize(&detokenize(&t)), t);
    }

    #[test]
    fn lone_punctuation_survives() {
        assert_eq!(toks("- -"), ["-", "-"]);
    }
}
