//! Record serialization (paper §2.1).
//!
//! Data entries are serialized into token sequences with `[COL]`/`[VAL]`
//! markers; entity pairs and (row, cell) contexts are joined with `[SEP]`.

use crate::token::{COL, SEP, VAL};
use crate::tokenizer::tokenize;

/// A data entry: an ordered set of (attribute, value) pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Attribute name/value pairs in schema order.
    pub attrs: Vec<(String, String)>,
}

impl Record {
    /// Build a record from (attribute, value) pairs.
    pub fn new<S: Into<String>>(attrs: Vec<(S, S)>) -> Self {
        Self {
            attrs: attrs
                .into_iter()
                .map(|(a, v)| (a.into(), v.into()))
                .collect(),
        }
    }

    /// Value of the named attribute, if present.
    pub fn get(&self, attr: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(a, _)| a == attr)
            .map(|(_, v)| v.as_str())
    }

    /// Replace (or insert) an attribute value.
    pub fn set(&mut self, attr: &str, value: impl Into<String>) {
        let value = value.into();
        match self.attrs.iter_mut().find(|(a, _)| a == attr) {
            Some((_, v)) => *v = value,
            None => self.attrs.push((attr.to_string(), value)),
        }
    }
}

/// Serialize one record: `[COL] a1 [VAL] v1 [COL] a2 [VAL] v2 …`.
pub fn serialize_record(r: &Record) -> Vec<String> {
    let mut out = Vec::new();
    for (attr, value) in &r.attrs {
        out.push(COL.to_string());
        out.extend(tokenize(attr));
        out.push(VAL.to_string());
        out.extend(tokenize(value));
    }
    out
}

/// Serialize an entity pair: `ser(a) [SEP] ser(b)` (entity matching input).
pub fn serialize_pair(a: &Record, b: &Record) -> Vec<String> {
    let mut out = serialize_record(a);
    out.push(SEP.to_string());
    out.extend(serialize_record(b));
    out
}

/// Serialize a single cell context-independently: `[COL] attr [VAL] value`.
pub fn serialize_cell(attr: &str, value: &str) -> Vec<String> {
    let mut out = vec![COL.to_string()];
    out.extend(tokenize(attr));
    out.push(VAL.to_string());
    out.extend(tokenize(value));
    out
}

/// Serialize a cell with its row as context: `ser(row) [SEP] [COL] attr [VAL]
/// value` (context-dependent error detection).
pub fn serialize_cell_in_context(row: &Record, attr: &str) -> Vec<String> {
    let mut out = serialize_record(row);
    out.push(SEP.to_string());
    out.extend(serialize_cell(attr, row.get(attr).unwrap_or("")));
    out
}

/// Structural view of a serialized sequence: the token index ranges of each
/// `[VAL]` span, and of each full column ([COL]..next [COL]/[SEP]/end).
///
/// DA operators use this to transform values without breaking the markers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Structure {
    /// `(start, end)` half-open ranges of value tokens (marker excluded).
    pub value_spans: Vec<(usize, usize)>,
    /// `(start, end)` half-open ranges covering whole `[COL] … ` groups.
    pub col_spans: Vec<(usize, usize)>,
    /// Index of the `[SEP]` that splits two entities, if any.
    pub sep_index: Option<usize>,
}

/// Parse the `[COL]`/`[VAL]`/`[SEP]` structure of a serialized sequence.
///
/// Sequences without markers (plain text classification) yield a single value
/// span covering everything.
pub fn parse_structure(tokens: &[String]) -> Structure {
    let mut value_spans = Vec::new();
    let mut col_spans = Vec::new();
    let mut sep_index = None;
    let mut col_start: Option<usize> = None;
    let mut val_start: Option<usize> = None;

    let close_val = |val_start: &mut Option<usize>, end: usize, spans: &mut Vec<(usize, usize)>| {
        if let Some(s) = val_start.take() {
            if end > s {
                spans.push((s, end));
            }
        }
    };

    for (i, tok) in tokens.iter().enumerate() {
        match tok.as_str() {
            COL => {
                close_val(&mut val_start, i, &mut value_spans);
                if let Some(s) = col_start.take() {
                    col_spans.push((s, i));
                }
                col_start = Some(i);
            }
            VAL => {
                close_val(&mut val_start, i, &mut value_spans);
                val_start = Some(i + 1);
            }
            SEP => {
                close_val(&mut val_start, i, &mut value_spans);
                if let Some(s) = col_start.take() {
                    col_spans.push((s, i));
                }
                if sep_index.is_none() {
                    sep_index = Some(i);
                }
            }
            _ => {}
        }
    }
    close_val(&mut val_start, tokens.len(), &mut value_spans);
    if let Some(s) = col_start.take() {
        col_spans.push((s, tokens.len()));
    }
    if value_spans.is_empty() && !tokens.is_empty() && col_spans.is_empty() {
        value_spans.push((0, tokens.len()));
    }
    Structure {
        value_spans,
        col_spans,
        sep_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn google() -> Record {
        Record::new(vec![("Name", "Google LLC"), ("phone", "(866) 246-6453")])
    }

    #[test]
    fn serialize_record_layout() {
        let toks = serialize_record(&google());
        assert_eq!(toks[0], COL);
        assert_eq!(toks[1], "name");
        assert_eq!(toks[2], VAL);
        assert!(toks.contains(&"google".to_string()));
    }

    #[test]
    fn serialize_pair_has_one_sep() {
        let toks = serialize_pair(&google(), &google());
        assert_eq!(toks.iter().filter(|t| *t == SEP).count(), 1);
    }

    #[test]
    fn cell_in_context_appends_cell() {
        let row = google();
        let toks = serialize_cell_in_context(&row, "phone");
        let s = parse_structure(&toks);
        assert!(s.sep_index.is_some());
        // Cell serialization repeats the attr after the [SEP].
        let sep = s.sep_index.unwrap();
        assert_eq!(toks[sep + 1], COL);
    }

    #[test]
    fn structure_of_record() {
        let toks = serialize_record(&google());
        let s = parse_structure(&toks);
        assert_eq!(s.col_spans.len(), 2);
        assert_eq!(s.value_spans.len(), 2);
        assert!(s.sep_index.is_none());
        // Value spans exclude the markers.
        let (vs, ve) = s.value_spans[0];
        assert_eq!(&toks[vs..ve], &["google", "llc"]);
    }

    #[test]
    fn structure_of_plain_text() {
        let toks: Vec<String> = ["where", "is", "it"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let s = parse_structure(&toks);
        assert_eq!(s.value_spans, vec![(0, 3)]);
        assert!(s.col_spans.is_empty());
    }

    #[test]
    fn record_get_set() {
        let mut r = google();
        assert_eq!(r.get("Name"), Some("Google LLC"));
        r.set("Name", "Alphabet inc");
        assert_eq!(r.get("Name"), Some("Alphabet inc"));
        r.set("city", "Mountain View");
        assert_eq!(r.attrs.len(), 3);
    }
}
