//! Validation of the two meta-gradient estimators against ground truth.
//!
//! 1. **DARTS finite differences (Eq. 4).** The weighting model `M_W` is
//!    trained by an approximation of `∇M_W Lossval(M − η∇M Losstrain)`. On a
//!    tiny logistic-regression target where the full objective
//!    `F(θ_W) = Lossval(M − η∇M Losstrain(M, w̃(θ_W)))` can be evaluated
//!    exactly, brute-force central differences of `F` give the true gradient
//!    and [`WeightModel::estimate_meta_grad`] must track its direction and
//!    scale.
//! 2. **REINFORCE (Eq. 3).** On a bandit-sized filtering problem with a known
//!    optimum (one helpful augmentation, one poisonous one), the filter must
//!    learn to keep the former and drop the latter.

use rotom_meta::{FilterModel, WeightModel};
use rotom_nn::TransformerConfig;
use rotom_rng::rngs::StdRng;
use rotom_rng::{RngExt, SeedableRng};
use rotom_text::tokenize;
use rotom_text::vocab::Vocab;

// ---------------------------------------------------------------------------
// A tiny, fully transparent target model: logistic regression over
// bag-of-words counts. Every gradient below is hand-derived, so the only
// approximation under test is the meta-estimator itself.
// ---------------------------------------------------------------------------

const WORDS: [&str; 6] = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
const K: usize = 2;

fn feats(tokens: &[String]) -> Vec<f32> {
    let mut f = vec![0.0f32; WORDS.len()];
    for t in tokens {
        if let Some(j) = WORDS.iter().position(|w| w == t) {
            f[j] += 1.0;
        }
    }
    f
}

fn probs(m: &[f32], x: &[f32]) -> Vec<f32> {
    let logits: Vec<f32> = (0..K)
        .map(|k| x.iter().enumerate().map(|(j, &v)| v * m[j * K + k]).sum())
        .collect();
    rotom_nn::softmax_slice(&logits)
}

fn ce(m: &[f32], x: &[f32], y: usize) -> f32 {
    -probs(m, x)[y].max(1e-9).ln()
}

/// Mean weighted cross-entropy and its gradient w.r.t. the target params.
fn weighted_loss_grad(m: &[f32], batch: &[(Vec<f32>, usize)], weights: &[f32]) -> Vec<f32> {
    let n = batch.len() as f32;
    let mut g = vec![0.0f32; m.len()];
    for ((x, y), &w) in batch.iter().zip(weights) {
        let p = probs(m, x);
        for (j, &xj) in x.iter().enumerate() {
            for k in 0..K {
                let indicator = if k == *y { 1.0 } else { 0.0 };
                g[j * K + k] += w * xj * (p[k] - indicator) / n;
            }
        }
    }
    g
}

fn mean_val_loss(m: &[f32], val: &[(Vec<f32>, usize)]) -> f32 {
    val.iter().map(|(x, y)| ce(m, x, *y)).sum::<f32>() / val.len() as f32
}

fn val_grad(m: &[f32], val: &[(Vec<f32>, usize)]) -> Vec<f32> {
    weighted_loss_grad(m, val, &vec![1.0; val.len()])
}

fn tiny_weight_model() -> (WeightModel, Vec<(Vec<String>, f32)>) {
    let corpus: Vec<Vec<String>> = vec![tokenize(
        "alpha beta gamma delta epsilon zeta alpha beta gamma",
    )];
    let refs: Vec<&[String]> = corpus.iter().map(|s| s.as_slice()).collect();
    let vocab = Vocab::build(refs, 32);
    let cfg = TransformerConfig {
        vocab: 0,
        d_model: 8,
        heads: 2,
        d_ff: 16,
        layers: 1,
        max_len: 8,
        dropout: 0.0,
    };
    let wm = WeightModel::new(vocab, cfg, 1e-3, 7);
    let items: Vec<(Vec<String>, f32)> = vec![
        (tokenize("alpha beta"), 0.1),
        (tokenize("gamma delta gamma"), 0.4),
        (tokenize("epsilon zeta"), 0.2),
        (tokenize("beta delta zeta"), 0.3),
    ];
    (wm, items)
}

fn darts_fixture() -> (Vec<f32>, Vec<(Vec<f32>, usize)>, Vec<(Vec<f32>, usize)>) {
    let mut rng = StdRng::seed_from_u64(0xD1);
    let m0: Vec<f32> = (0..WORDS.len() * K)
        .map(|_| rng.random_range(-0.5f32..=0.5))
        .collect();
    // Train batch aligned with the four weight-model items above.
    let train: Vec<(Vec<f32>, usize)> = vec![
        (feats(&tokenize("alpha beta")), 0),
        (feats(&tokenize("gamma delta gamma")), 1),
        (feats(&tokenize("epsilon zeta")), 0),
        (feats(&tokenize("beta delta zeta")), 1),
    ];
    let val: Vec<(Vec<f32>, usize)> = vec![
        (feats(&tokenize("alpha alpha beta")), 0),
        (feats(&tokenize("gamma delta")), 1),
        (feats(&tokenize("epsilon epsilon")), 0),
        (feats(&tokenize("zeta delta")), 1),
    ];
    (m0, train, val)
}

/// The full meta-objective `F(θ_W)`: weight the train batch with `M_W(θ)`,
/// take one exact SGD step on the target, return the validation loss.
fn meta_objective(
    wm: &mut WeightModel,
    theta: &[f32],
    items: &[(Vec<String>, f32)],
    m0: &[f32],
    train: &[(Vec<f32>, usize)],
    val: &[(Vec<f32>, usize)],
    eta: f32,
) -> f32 {
    wm.set_flat_params(theta);
    let item_refs: Vec<(&[String], f32)> =
        items.iter().map(|(t, l2)| (t.as_slice(), *l2)).collect();
    let weights = wm.forward_batch(&item_refs).normalized();
    let g = weighted_loss_grad(m0, train, &weights);
    let m1: Vec<f32> = m0.iter().zip(&g).map(|(p, gi)| p - eta * gi).collect();
    mean_val_loss(&m1, val)
}

#[test]
fn darts_estimate_tracks_exact_meta_gradient() {
    let (mut wm, items) = tiny_weight_model();
    let (m0, train, val) = darts_fixture();
    let eta = 0.5; // exaggerated target lr keeps F's variation above f32 noise
    let eps = 0.01; // probe scale, as in MetaConfig::epsilon
    let theta0 = wm.flat_params();

    // --- Eq.-4 estimate, mirroring trainer.rs phase 2 exactly ---
    let item_refs: Vec<(&[String], f32)> =
        items.iter().map(|(t, l2)| (t.as_slice(), *l2)).collect();
    let batch = wm.forward_batch(&item_refs);
    let weights = batch.normalized();
    let g = weighted_loss_grad(&m0, &train, &weights);
    let m1: Vec<f32> = m0.iter().zip(&g).map(|(p, gi)| p - eta * gi).collect();
    let v = val_grad(&m1, &val);
    let m_plus: Vec<f32> = m0.iter().zip(&v).map(|(p, vi)| p + eps * vi).collect();
    let m_minus: Vec<f32> = m0.iter().zip(&v).map(|(p, vi)| p - eps * vi).collect();
    let c_plus: Vec<f32> = train.iter().map(|(x, y)| ce(&m_plus, x, *y)).collect();
    let c_minus: Vec<f32> = train.iter().map(|(x, y)| ce(&m_minus, x, *y)).collect();
    let estimate = wm.estimate_meta_grad(batch, &c_plus, &c_minus, eta, eps);
    assert_eq!(estimate.len(), theta0.len());

    // The in-graph objective sums (rather than averages) the per-example
    // terms, so the estimate carries an extra factor of the batch size
    // relative to the mean-loss objective F.
    let n = items.len() as f32;
    let estimate: Vec<f32> = estimate.iter().map(|e| e / n).collect();

    // --- Brute-force ground truth: central differences of F over θ_W ---
    let delta = 2e-3f32;
    let stride = 3; // every 3rd coordinate: ~270 of ~800, plenty for cosine
    let mut exact_s = Vec::new();
    let mut est_s = Vec::new();
    let mut k = 0;
    while k < theta0.len() {
        let mut th = theta0.clone();
        th[k] = theta0[k] + delta;
        let fp = meta_objective(&mut wm, &th, &items, &m0, &train, &val, eta);
        th[k] = theta0[k] - delta;
        let fm = meta_objective(&mut wm, &th, &items, &m0, &train, &val, eta);
        exact_s.push((fp - fm) / (2.0 * delta));
        est_s.push(estimate[k]);
        k += stride;
    }
    wm.set_flat_params(&theta0);

    // Direction: strong positive cosine similarity between the estimated and
    // exact meta-gradients over the sampled coordinates.
    let dot: f32 = exact_s.iter().zip(&est_s).map(|(a, b)| a * b).sum();
    let na: f32 = exact_s.iter().map(|a| a * a).sum::<f32>().sqrt();
    let nb: f32 = est_s.iter().map(|b| b * b).sum::<f32>().sqrt();
    assert!(
        na > 0.0 && nb > 0.0,
        "degenerate gradients: |exact|={na} |est|={nb}"
    );
    let cosine = dot / (na * nb);
    assert!(
        cosine > 0.7,
        "DARTS estimate diverges from exact meta-gradient: cosine {cosine:.3}"
    );

    // Magnitude: the norms agree within an order of magnitude (the estimate
    // replaces one second derivative with a finite difference, so exact
    // equality is not expected).
    let ratio = nb / na;
    assert!(
        (0.2..=5.0).contains(&ratio),
        "estimate magnitude off: |est|/|exact| = {ratio:.3}"
    );

    // Sign agreement on the coordinates that matter: among the sampled
    // coordinates with above-median exact magnitude, at least 80% of the
    // estimated entries point the same way.
    let mut mags: Vec<f32> = exact_s.iter().map(|a| a.abs()).collect();
    mags.sort_by(f32::total_cmp);
    let median = mags[mags.len() / 2];
    let (mut agree, mut total) = (0usize, 0usize);
    for (a, b) in exact_s.iter().zip(&est_s) {
        if a.abs() >= median && a.abs() > 0.0 {
            total += 1;
            if a.signum() == b.signum() {
                agree += 1;
            }
        }
    }
    assert!(total > 20, "too few significant coordinates: {total}");
    let frac = agree as f32 / total as f32;
    assert!(
        frac >= 0.8,
        "sign agreement {frac:.2} ({agree}/{total}) below 0.8"
    );
}

// ---------------------------------------------------------------------------
// REINFORCE on a two-armed filtering bandit with a known optimum.
// ---------------------------------------------------------------------------

#[test]
fn reinforce_solves_filtering_bandit() {
    // Arm "good": an augmentation close to the original (small KL features)
    // whose inclusion lowers the validation loss by 0.2. Arm "bad": a
    // distribution-shifting augmentation whose inclusion raises it by 1.0.
    // The optimal policy keeps good and drops bad; expected loss 0.3 − 0.2 =
    // 0.1 vs ~0.7 for the uniform policy.
    let f_good = FilterModel::features(&[1.0, 0.0], &[0.8, 0.2], &[0.7, 0.3]);
    let f_bad = FilterModel::features(&[0.0, 1.0], &[0.9, 0.1], &[0.1, 0.9]);

    let mut filter = FilterModel::new(2, 0.05, 11);
    let mut rng = StdRng::seed_from_u64(42);
    let mut baseline = 0.0f32;
    let mut baseline_ready = false;

    for _ in 0..400 {
        let mut kept = Vec::new();
        let mut loss = 0.3f32;
        if filter.sample_keep(&f_good, &mut rng) {
            kept.push(f_good.clone());
            loss -= 0.2;
        }
        if filter.sample_keep(&f_bad, &mut rng) {
            kept.push(f_bad.clone());
            loss += 1.0;
        }
        // Same running-mean baseline scheme as MetaTrainer.
        let reward = if baseline_ready { loss - baseline } else { 0.0 };
        if baseline_ready {
            baseline = 0.9 * baseline + 0.1 * loss;
        } else {
            baseline = loss;
            baseline_ready = true;
        }
        filter.reinforce_update(&kept, reward);
    }

    let p_good = filter.prob_keep(&f_good);
    let p_bad = filter.prob_keep(&f_bad);
    assert!(
        p_good > 0.8,
        "filter should keep the helpful augmentation: p_keep = {p_good:.3}"
    );
    assert!(
        p_bad < 0.2,
        "filter should drop the poisonous augmentation: p_keep = {p_bad:.3}"
    );
    // Known-optimum check: the learned policy's expected loss approaches the
    // optimal 0.1 and beats the uniform policy's 0.7.
    let expected = 0.3 - 0.2 * p_good + 1.0 * p_bad;
    assert!(
        expected < 0.3,
        "learned policy expected loss {expected:.3} not close to optimum 0.1"
    );
}
