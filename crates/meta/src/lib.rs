//! `rotom-meta` — Rotom's meta-learning framework for selecting and
//! combining augmented examples (paper §4–§5).
//!
//! The pieces:
//!
//! * [`FilterModel`] — the lightweight perceptron `M_F` that drops undesired
//!   augmented examples, trained with REINFORCE (Eq. 3);
//! * [`WeightModel`] — the LM-based regressor `M_W` that assigns example
//!   weights, trained through a finite-difference second-order gradient
//!   (Eq. 4);
//! * [`MetaTrainer`] — Algorithm 2: jointly trains `M`, `M_F`, and `M_W` by
//!   alternating target updates with policy updates driven by the validation
//!   loss at the virtual step `M' = M − η∇M`;
//! * [`sharpen`] — the two label-sharpening variants (Eq. 6–7) powering the
//!   semi-supervised extension.
//!
//! The target model is abstracted behind [`MetaTarget`], so the same trainer
//! drives the TinyLm classifier, the GRU baselines, or the bag-of-words toy
//! model in this crate's tests.

#![warn(missing_docs)]

pub mod filter;
pub mod sharpen;
pub mod target;
pub mod trainer;
pub mod weight;

pub use filter::FilterModel;
pub use sharpen::{guess_label, sharpen_v1, sharpen_v2};
pub use target::{MetaTarget, WeightedItem};
pub use trainer::{guard_step, AblationConfig, EpochStats, MetaConfig, MetaTrainer, SslConfig};
pub use weight::{l2_distance, WeightBatch, WeightModel};

use rotom_rng::rngs::StdRng;
use rotom_rng::RngExt;

/// Fisher–Yates shuffle (shared helper).
pub(crate) fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.random_range(0..=i);
        items.swap(i, j);
    }
}
