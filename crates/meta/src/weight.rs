//! The weighting model `M_W` (paper §4.1).
//!
//! ```text
//! M_W(x, x̂, y) = sigmoid(L_W(LM_W(x̂))) + ‖p_M(x̂) − y‖₂
//! ```
//!
//! `LM_W` is a language-model encoder with the same architecture as the
//! target model (here the TinyLm Transformer), `L_W` a single linear head.
//! Only the augmented sequence `x̂` is encoded (the paper skips `x` "to save
//! half of the computation"). The additive L2 distance term keeps the model
//! useful before it stabilizes — early in training it mimics
//! uncertainty-based sampling — and no gradient flows through it.
//!
//! `M_W` is trained by descending the validation loss through a
//! finite-difference approximation of the second-order gradient (Eq. 4):
//! with probes `M± = M ± ε∇M'Lossval`,
//!
//! ```text
//! ∇M_W(Lossval) ≈ −η (∇M_W Losstrain(M+, M_W) − ∇M_W Losstrain(M−, M_W)) / 2ε
//! ```
//!
//! which needs only the per-example losses `c±_i` under the two probes plus
//! one backward pass through `M_W`.

use rotom_nn::{
    recycle_tape, take_pooled_tape, Adam, CheckpointError, FwdCtx, Linear, NodeId, ParamStore,
    StateBag, Tape, TransformerConfig, TransformerEncoder,
};
use rotom_rng::rngs::StdRng;
use rotom_rng::SeedableRng;
use rotom_text::vocab::Vocab;

/// Weighting model: Transformer encoder + scalar head.
pub struct WeightModel {
    store: ParamStore,
    encoder: TransformerEncoder,
    head: Linear,
    vocab: Vocab,
    opt: Adam,
}

/// An in-flight weighting pass over one batch: the tape holding the weight
/// sub-graphs, the weight nodes, and their numeric values.
pub struct WeightBatch {
    tape: Tape,
    nodes: Vec<NodeId>,
    /// Raw (unnormalized) weight values `sigmoid(L_W(LM_W(x̂))) + l2`.
    pub raw: Vec<f32>,
}

impl WeightBatch {
    /// Batch-normalized weights with mean 1 (`w_i · B / Σw`), the form used
    /// in the weighted training loss.
    pub fn normalized(&self) -> Vec<f32> {
        let sum: f32 = self.raw.iter().sum();
        if sum <= 0.0 {
            return vec![1.0; self.raw.len()];
        }
        let scale = self.raw.len() as f32 / sum;
        self.raw.iter().map(|w| w * scale).collect()
    }
}

impl WeightModel {
    /// Create a weighting model over `vocab` with the given encoder config.
    pub fn new(vocab: Vocab, mut cfg: TransformerConfig, lr: f32, seed: u64) -> Self {
        cfg.vocab = vocab.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let encoder = TransformerEncoder::new(&mut store, &mut rng, "weight.enc", cfg.clone());
        let head = Linear::new(&mut store, &mut rng, "weight.head", cfg.d_model, 1);
        Self {
            store,
            encoder,
            head,
            vocab,
            opt: Adam::new(lr),
        }
    }

    /// Forward the weighting model over a batch of `(x̂ tokens, l2_term)`
    /// pairs (tokens borrowed — batch assembly need not clone them),
    /// returning the live batch for a later
    /// [`update_finite_difference`](Self::update_finite_difference).
    pub fn forward_batch(&self, items: &[(&[String], f32)]) -> WeightBatch {
        let mut tape = take_pooled_tape();
        let mut nodes = Vec::with_capacity(items.len());
        let mut raw = Vec::with_capacity(items.len());
        for (tokens, l2) in items {
            let ids = self.encode(tokens);
            let mut ctx = FwdCtx::eval(&self.store);
            let cls = self.encoder.encode_cls(&mut tape, &ids, &mut ctx);
            let z = self.head.forward(&mut tape, cls, &self.store);
            let s = tape.sigmoid(z);
            // The L2 term is constant w.r.t. M_W (and w.r.t. M — the paper
            // blocks its gradient), so it enters as an additive constant.
            let w = tape.add_const(s, *l2);
            nodes.push(w);
            raw.push(tape.value(w).item());
        }
        WeightBatch { tape, nodes, raw }
    }

    /// Compute the Eq.-4 estimate of `∇M_W(Lossval)` for one batch and leave
    /// it in the store's gradient buffers, also returning it as a flat vector
    /// aligned with [`flat_params`](Self::flat_params). `c_plus`/`c_minus`
    /// are the per-example losses under the probes `M±`; `eta` is the target
    /// optimizer's learning rate, `eps` the probe scale.
    ///
    /// Exposed separately from [`update_finite_difference`] so tests can
    /// compare the approximation against brute-force finite differences of
    /// the true validation loss.
    ///
    /// [`update_finite_difference`]: Self::update_finite_difference
    pub fn estimate_meta_grad(
        &mut self,
        batch: WeightBatch,
        c_plus: &[f32],
        c_minus: &[f32],
        eta: f32,
        eps: f32,
    ) -> Vec<f32> {
        let WeightBatch {
            mut tape,
            nodes,
            raw,
        } = batch;
        assert_eq!(nodes.len(), c_plus.len());
        assert_eq!(nodes.len(), c_minus.len());
        // Normalized weights w̃_i = w_i / Σw (in-graph so the gradient sees
        // the normalization), then
        //   objective = −η/(2ε) · Σ_i (c+_i − c−_i) · w̃_i · B
        // whose gradient w.r.t. M_W equals the Eq.-4 estimate of ∇Lossval.
        let total = tape.sum_nodes(&nodes);
        let inv = tape.recip(total);
        let b = nodes.len() as f32;
        let mut terms = Vec::with_capacity(nodes.len());
        for (i, &w) in nodes.iter().enumerate() {
            let wn = tape.mul(w, inv);
            let coeff = (c_plus[i] - c_minus[i]) * b;
            terms.push(tape.scale(wn, coeff));
        }
        let sum = tape.sum_nodes(&terms);
        let objective = tape.scale(sum, -eta / (2.0 * eps));
        let _ = raw; // values already consumed by the caller
        self.store.zero_grad();
        tape.backward(objective, &mut self.store);
        recycle_tape(tape);
        self.store.flat_grads()
    }

    /// Eq.-4 update. Estimates `∇M_W(Lossval)` via
    /// [`estimate_meta_grad`](Self::estimate_meta_grad) and descends it
    /// (clipped) with the model's Adam optimizer.
    pub fn update_finite_difference(
        &mut self,
        batch: WeightBatch,
        c_plus: &[f32],
        c_minus: &[f32],
        eta: f32,
        eps: f32,
    ) {
        if batch.nodes.is_empty() {
            recycle_tape(batch.tape);
            return;
        }
        let n = batch.nodes.len();
        let _ = self.estimate_meta_grad(batch, c_plus, c_minus, eta, eps);
        // Observed before clipping mutates the gradients: the raw Eq.-4
        // meta-gradient magnitude is the interesting signal.
        if rotom_nn::telemetry::enabled() {
            use rotom_nn::telemetry::Value;
            rotom_nn::telemetry::emit(
                "meta",
                "weight.fd_update",
                &[
                    ("examples", Value::U64(n as u64)),
                    ("meta_grad_norm", Value::F64(self.store.grad_norm() as f64)),
                    ("eta", Value::F64(eta as f64)),
                    ("eps", Value::F64(eps as f64)),
                ],
            );
        }
        self.store.clip_grad_norm(5.0);
        self.opt.step(&mut self.store);
    }

    /// Flat vector of all trainable `M_W` parameters (for inspection and
    /// brute-force finite-difference tests).
    pub fn flat_params(&self) -> Vec<f32> {
        self.store.flat_values()
    }

    /// Overwrite all trainable `M_W` parameters from a flat vector produced
    /// by [`flat_params`](Self::flat_params).
    pub fn set_flat_params(&mut self, flat: &[f32]) {
        self.store.set_flat(flat);
    }

    /// Save the weighting model's full training state (parameters +
    /// optimizer) into a checkpoint bag under `prefix`.
    pub fn save_state(&self, bag: &mut StateBag, prefix: &str) {
        bag.put_f32s(format!("{prefix}.params"), self.store.flat_values());
        self.opt.save_state(bag, &format!("{prefix}.adam"));
    }

    /// Restore state saved by [`save_state`](Self::save_state).
    pub fn load_state(&mut self, bag: &StateBag, prefix: &str) -> Result<(), CheckpointError> {
        let params = bag.get_f32s(&format!("{prefix}.params"))?;
        if params.len() != self.store.num_scalars() {
            return Err(CheckpointError::Mismatch(format!(
                "weight model {prefix:?}: {} parameters vs checkpoint {}",
                self.store.num_scalars(),
                params.len()
            )));
        }
        self.store.set_flat(params);
        self.opt
            .load_state(bag, &format!("{prefix}.adam"), &self.store)
    }

    /// Raw weight of a single example (diagnostic / inference use).
    pub fn weight_of(&self, tokens: &[String], l2: f32) -> f32 {
        let batch = self.forward_batch(&[(tokens, l2)]);
        let w = batch.raw[0];
        recycle_tape(batch.tape);
        w
    }

    fn encode(&self, tokens: &[String]) -> Vec<usize> {
        let mut ids = Vec::with_capacity(tokens.len() + 1);
        ids.push(self.vocab.special_id(rotom_text::token::CLS));
        ids.extend(self.vocab.encode_fallback(tokens));
        ids.truncate(64);
        ids
    }
}

/// `‖p − y‖₂`: the additive uncertainty term of Eq. 2.
pub fn l2_distance(p: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(p.len(), y.len());
    p.iter()
        .zip(y)
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f32>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_text::tokenize;

    fn refs(items: &[(Vec<String>, f32)]) -> Vec<(&[String], f32)> {
        items.iter().map(|(t, l2)| (t.as_slice(), *l2)).collect()
    }

    fn toy_model() -> WeightModel {
        let seqs: Vec<Vec<String>> =
            vec![tokenize("good plot bad sound fine story extra words here")];
        let refs: Vec<&[String]> = seqs.iter().map(|s| s.as_slice()).collect();
        let vocab = Vocab::build(refs, 64);
        let cfg = TransformerConfig {
            vocab: 0,
            d_model: 16,
            heads: 2,
            d_ff: 32,
            layers: 1,
            max_len: 16,
            dropout: 0.0,
        };
        WeightModel::new(vocab, cfg, 5e-3, 0)
    }

    #[test]
    fn raw_weights_in_expected_range() {
        let m = toy_model();
        let w = m.weight_of(&tokenize("good plot"), 0.3);
        // sigmoid ∈ (0,1) plus the l2 constant.
        assert!(w > 0.3 && w < 1.3, "weight {w}");
    }

    #[test]
    fn normalization_has_mean_one() {
        let m = toy_model();
        let items: Vec<(Vec<String>, f32)> = vec![
            (tokenize("good plot"), 0.1),
            (tokenize("bad sound"), 0.9),
            (tokenize("fine story"), 0.4),
        ];
        let batch = m.forward_batch(&refs(&items));
        let norm = batch.normalized();
        let mean: f32 = norm.iter().sum::<f32>() / norm.len() as f32;
        assert!((mean - 1.0).abs() < 1e-5);
    }

    #[test]
    fn l2_distance_basics() {
        assert_eq!(l2_distance(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((l2_distance(&[1.0, 0.0], &[0.0, 1.0]) - 2f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn finite_difference_update_shifts_weights() {
        // By Eq. 4, ∇_{w_i}Lossval = −η(c+_i − c−_i)/(2ε): an example whose
        // loss *rises* along the validation gradient (c+ > c−) has a
        // descending effect on the validation loss when up-weighted (training
        // on it pushes M against ∇Lossval). Example 0 (c+ − c− = 0.8) should
        // therefore gain weight relative to example 1 (c+ − c− = 0).
        let mut m = toy_model();
        let items: Vec<(Vec<String>, f32)> =
            vec![(tokenize("good plot"), 0.0), (tokenize("bad sound"), 0.0)];
        let before = m.forward_batch(&refs(&items)).normalized();
        for _ in 0..30 {
            let batch = m.forward_batch(&refs(&items));
            m.update_finite_difference(batch, &[1.0, 0.2], &[0.2, 0.2], 0.1, 0.01);
        }
        let after = m.forward_batch(&refs(&items)).normalized();
        assert!(
            after[0] - after[1] > before[0] - before[1],
            "example 0 should gain relative weight: {before:?} -> {after:?}"
        );
    }
}
