//! The target-model interface the meta-trainer drives.
//!
//! Algorithm 2 treats the target model `M` as a black box that can (a) score
//! sequences, (b) compute weighted batch losses with gradients, and (c) have
//! its parameters manipulated as flat vectors for the virtual step
//! `M' = M − η∇M` and the finite-difference probes `M± = M ± ε∇M'`.
//! Any sequence classifier implementing [`MetaTarget`] (the TinyLm stand-in
//! for RoBERTa/DistilBERT, the GRU baselines, …) can be meta-trained.

use rotom_rng::rngs::StdRng;

/// One weighted training item: input sequence, (soft) target distribution,
/// and the example weight assigned by the weighting model.
#[derive(Debug, Clone)]
pub struct WeightedItem {
    /// Input token sequence (the augmented sequence `x̂`).
    pub tokens: Vec<String>,
    /// Soft target distribution over classes (one-hot for hard labels,
    /// sharpened guesses for unlabeled examples).
    pub target: Vec<f32>,
    /// Example weight (normalized within the batch by the caller).
    pub weight: f32,
}

impl WeightedItem {
    /// Item with a hard label and unit weight.
    pub fn hard(tokens: Vec<String>, label: usize, num_classes: usize) -> Self {
        let mut target = vec![0.0; num_classes];
        target[label] = 1.0;
        Self {
            tokens,
            target,
            weight: 1.0,
        }
    }
}

/// A sequence classifier trainable by Rotom's meta-learning loop.
///
/// `Sync` is required so the trainer can score candidate examples across the
/// worker pool (forward passes are `&self` and side-effect free).
pub trait MetaTarget: Sync {
    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// `p_M(x)`: class distribution under the current parameters
    /// (evaluation mode, no side effects).
    fn predict_proba(&self, tokens: &[String]) -> Vec<f32>;

    /// Compute the weighted mean cross-entropy over `items`, backpropagate,
    /// and leave gradients in the parameter store (zeroing it first).
    /// Returns the loss value. `train` toggles dropout.
    fn weighted_loss_backward(
        &mut self,
        items: &[WeightedItem],
        train: bool,
        rng: &mut StdRng,
    ) -> f32;

    /// Forward-only per-example cross-entropy losses (evaluation mode).
    fn per_example_losses(&self, items: &[WeightedItem]) -> Vec<f32>;

    /// Flat snapshot of all trainable parameters.
    fn flat_params(&self) -> Vec<f32>;

    /// Overwrite all trainable parameters from a flat snapshot.
    fn set_flat_params(&mut self, flat: &[f32]);

    /// `params += alpha * delta` over the flat view.
    fn add_scaled(&mut self, delta: &[f32], alpha: f32);

    /// Flat view of the current gradients.
    fn flat_grads(&self) -> Vec<f32>;

    /// Apply one optimizer step from the gradients currently stored.
    fn optimizer_step(&mut self);

    /// The learning rate used by [`optimizer_step`](Self::optimizer_step)
    /// (Algorithm 2's `η` for the virtual step).
    fn learning_rate(&self) -> f32;

    /// L2 norm of the current gradients, for numeric-health monitoring.
    /// The default derives it from [`flat_grads`](Self::flat_grads);
    /// implementers with a cheaper store-level norm should override.
    fn grad_l2(&self) -> f32 {
        self.flat_grads().iter().map(|&g| g * g).sum::<f32>().sqrt()
    }
}
