//! The filtering model `M_F` (paper §4.1).
//!
//! A lightweight single-layer perceptron over hand-crafted features:
//!
//! ```text
//! M_F(x, x̂, y) = softmax(W_F · concat(onehot(y), p_M(x) · log(p_M(x)/p_M(x̂))) + b_F)
//! ```
//!
//! The element-wise KL features let the filter learn to drop augmentations
//! whose predicted distribution drifts too far from the original's; the
//! one-hot label lets it calibrate per class. Because the filter's binary
//! decision is not differentiable, it is trained with the REINFORCE
//! estimator (Eq. 3): the log-probability of the realized keep decisions is
//! scaled by the (constant) validation loss.

use rotom_nn::{
    recycle_tape, take_pooled_tape, Adam, CheckpointError, Initializer, ParamId, ParamStore,
    StateBag, Tensor,
};
use rotom_rng::rngs::StdRng;
use rotom_rng::{RngExt, SeedableRng};

/// Filtering model: perceptron over `2·|V|` features with 2 outputs
/// (drop / keep).
pub struct FilterModel {
    store: ParamStore,
    w: ParamId,
    b: ParamId,
    num_classes: usize,
    opt: Adam,
    /// Mean keep probability over the most recent batch (diagnostics).
    pub last_keep_rate: f32,
}

impl FilterModel {
    /// Create a filter for a `num_classes`-way task.
    pub fn new(num_classes: usize, lr: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let w = store.alloc(
            "filter.w",
            2 * num_classes,
            2,
            Initializer::Uniform(0.1),
            &mut rng,
        );
        let b = store.alloc("filter.b", 1, 2, Initializer::Zeros, &mut rng);
        Self {
            store,
            w,
            b,
            num_classes,
            opt: Adam::new(lr),
            last_keep_rate: 1.0,
        }
    }

    /// Feature vector `concat(onehot(y), p_M(x) · log(p_M(x)/p_M(x̂)))`.
    ///
    /// `target` may be a soft distribution (unlabeled guesses); probabilities
    /// are clamped away from zero for numerical stability.
    pub fn features(target: &[f32], p_orig: &[f32], p_aug: &[f32]) -> Vec<f32> {
        let k = target.len();
        debug_assert_eq!(p_orig.len(), k);
        debug_assert_eq!(p_aug.len(), k);
        let mut feat = Vec::with_capacity(2 * k);
        feat.extend_from_slice(target);
        for i in 0..k {
            let p = p_orig[i].max(1e-6);
            let q = p_aug[i].max(1e-6);
            feat.push(p * (p / q).ln());
        }
        feat
    }

    /// Probability that the example passes the filter.
    pub fn prob_keep(&self, features: &[f32]) -> f32 {
        assert_eq!(
            features.len(),
            2 * self.num_classes,
            "feature width mismatch"
        );
        let logits = self.logits(features);
        let p = rotom_nn::softmax_slice(&logits);
        p[1]
    }

    fn logits(&self, features: &[f32]) -> Vec<f32> {
        // Forward-only scoring on the inference plane: one fused
        // GEMM+bias call, no tape nodes and no input clone. The tiny shape
        // dispatches to the same naive kernel the tape's matmul would pick,
        // so values are bit-identical to the graph path used in
        // `reinforce_update`.
        let w = self.store.value(self.w);
        let mut out = vec![0.0f32; 2];
        rotom_nn::kernels::matmul_bias_act_into(
            features,
            w.data(),
            None,
            Some(self.store.value(self.b).data()),
            rotom_nn::kernels::Act::None,
            1,
            2 * self.num_classes,
            2,
            rotom_nn::RotomPool::global(),
            &mut out,
        );
        out
    }

    /// Sample the binary keep decision (explore-and-exploit: the output is a
    /// draw from the filter's distribution, not a hard argmax).
    pub fn sample_keep(&self, features: &[f32], rng: &mut StdRng) -> bool {
        rng.random_bool(self.prob_keep(features).clamp(0.0, 1.0) as f64)
    }

    /// REINFORCE update (Eq. 3): descend
    /// `∇_{M_F}(Lossval · Σ_{kept e} log p(M_F(e)=1))`,
    /// where `Lossval` is a constant baseline-free reward signal.
    ///
    /// `kept_features` are the feature vectors of the examples that passed
    /// the filter and formed the training batch.
    pub fn reinforce_update(&mut self, kept_features: &[Vec<f32>], loss_val: f32) {
        if kept_features.is_empty() {
            return;
        }
        let mut tape = take_pooled_tape();
        let wn = tape.param(self.w, &self.store);
        let bn = tape.param(self.b, &self.store);
        let mut log_probs = Vec::with_capacity(kept_features.len());
        for feat in kept_features {
            let x = tape.input(Tensor::row(feat.clone()));
            let z = tape.matmul(x, wn);
            let z = tape.add_row(z, bn);
            let lp = tape.log_softmax(z);
            // log p(keep) = log-softmax at index 1.
            log_probs.push(tape.slice_cols(lp, 1, 1));
        }
        let total = tape.sum_nodes(&log_probs);
        let objective = tape.scale(total, loss_val);
        self.store.zero_grad();
        tape.backward(objective, &mut self.store);
        recycle_tape(tape);
        // Observed after backward, before the Adam step mutates the store —
        // reads gradients only, so training is unchanged by telemetry.
        if rotom_nn::telemetry::enabled() {
            use rotom_nn::telemetry::Value;
            let grad_norm = self.store.grad_norm() as f64;
            rotom_nn::telemetry::emit(
                "meta",
                "filter.reinforce",
                &[
                    ("kept", Value::U64(kept_features.len() as u64)),
                    ("reward", Value::F64(loss_val as f64)),
                    ("grad_norm", Value::F64(grad_norm)),
                ],
            );
        }
        self.opt.step(&mut self.store);
    }

    /// Save the filter's full training state (parameters + optimizer) into a
    /// checkpoint bag under `prefix`.
    pub fn save_state(&self, bag: &mut StateBag, prefix: &str) {
        bag.put_f32s(format!("{prefix}.params"), self.store.flat_values());
        self.opt.save_state(bag, &format!("{prefix}.adam"));
    }

    /// Restore state saved by [`save_state`](Self::save_state).
    pub fn load_state(&mut self, bag: &StateBag, prefix: &str) -> Result<(), CheckpointError> {
        let params = bag.get_f32s(&format!("{prefix}.params"))?;
        if params.len() != self.store.num_scalars() {
            return Err(CheckpointError::Mismatch(format!(
                "filter {prefix:?}: {} parameters vs checkpoint {}",
                self.store.num_scalars(),
                params.len()
            )));
        }
        self.store.set_flat(params);
        self.opt
            .load_state(bag, &format!("{prefix}.adam"), &self.store)
    }

    /// Apply the filter to a batch: returns the kept indices, recording the
    /// realized keep-rate.
    pub fn filter_batch(&mut self, features: &[Vec<f32>], rng: &mut StdRng) -> Vec<usize> {
        let mut kept = Vec::with_capacity(features.len());
        let mut p_sum = 0.0f32;
        for (i, f) in features.iter().enumerate() {
            p_sum += self.prob_keep(f);
            if self.sample_keep(f, rng) {
                kept.push(i);
            }
        }
        if !features.is_empty() {
            self.last_keep_rate = p_sum / features.len() as f32;
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(k: usize) -> Vec<f32> {
        vec![1.0 / k as f32; k]
    }

    #[test]
    fn features_shape_and_zero_kl_for_identical() {
        let y = vec![1.0, 0.0];
        let p = vec![0.7, 0.3];
        let f = FilterModel::features(&y, &p, &p);
        assert_eq!(f.len(), 4);
        assert_eq!(&f[..2], &[1.0, 0.0]);
        assert!(f[2].abs() < 1e-5 && f[3].abs() < 1e-5);
    }

    #[test]
    fn kl_features_positive_total_for_divergent() {
        let y = vec![0.0, 1.0];
        let f = FilterModel::features(&y, &[0.9, 0.1], &[0.1, 0.9]);
        let kl: f32 = f[2] + f[3];
        assert!(kl > 0.0, "total KL must be positive, got {kl}");
    }

    #[test]
    fn prob_keep_in_unit_interval() {
        let m = FilterModel::new(2, 1e-2, 0);
        let f = FilterModel::features(&uniform(2), &uniform(2), &[0.9, 0.1]);
        let p = m.prob_keep(&f);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn reinforce_moves_keep_probability() {
        // With a *positive* validation loss, gradient descent on
        // Lossval·Σ log p(keep) decreases log p(keep) for the kept features:
        // keeping these examples led to high validation loss, so keep less.
        let mut m = FilterModel::new(2, 0.05, 1);
        let feat = FilterModel::features(&[1.0, 0.0], &[0.9, 0.1], &[0.2, 0.8]);
        let before = m.prob_keep(&feat);
        for _ in 0..20 {
            m.reinforce_update(&[feat.clone()], 2.0);
        }
        let after = m.prob_keep(&feat);
        assert!(after < before, "keep prob should fall: {before} -> {after}");
    }

    #[test]
    fn filter_batch_returns_valid_indices() {
        let mut m = FilterModel::new(2, 1e-2, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let feats: Vec<Vec<f32>> = (0..10)
            .map(|_| FilterModel::features(&uniform(2), &uniform(2), &uniform(2)))
            .collect();
        let kept = m.filter_batch(&feats, &mut rng);
        assert!(kept.iter().all(|&i| i < 10));
        assert!((0.0..=1.0).contains(&m.last_keep_rate));
    }
}
