//! The meta-training loop (paper Algorithm 2, plus the §5 SSL extension).
//!
//! Each step alternates two phases:
//!
//! 1. **Target update** — assemble a batch of augmented examples, drop the
//!    ones rejected by the filtering model (sampled, explore-and-exploit),
//!    weight the rest with the weighting model, and descend the weighted
//!    training loss.
//! 2. **Policy update** — take the virtual step `M' = M − η∇M Losstrain`,
//!    measure `Lossval` at `M'`, then update the filtering model by
//!    REINFORCE (Eq. 3) and the weighting model by the finite-difference
//!    second-order estimate (Eq. 4) using probes `M± = M ± ε∇M'Lossval`.
//!
//! With SSL enabled, a batch of unlabeled examples with sharpened guessed
//! labels joins every training batch; unlabeled examples bypass the filter
//! (to avoid amplifying class imbalance) but are weighted like any other.
//!
//! **Implementation note (REINFORCE baseline).** Eq. 3 uses the raw
//! validation loss as the reward signal; since a loss is always positive,
//! the raw estimator would uniformly suppress keep-probabilities. Like most
//! REINFORCE implementations we subtract a running-mean baseline, so
//! keeping a batch is reinforced exactly when it achieves a
//! *better-than-recent-average* validation loss. This is a pure
//! variance-reduction change: the estimator stays unbiased.

use crate::filter::FilterModel;
use crate::sharpen::guess_label;
use crate::target::{MetaTarget, WeightedItem};
use crate::weight::{l2_distance, WeightModel};
use rotom_nn::faultpoint::{self, FaultKind};
use rotom_nn::telemetry::{self, Value};
use rotom_nn::{
    CheckpointError, Halt, HealthMonitor, RotomPool, StateBag, TransformerConfig, Verdict,
};
use rotom_rng::rngs::StdRng;
use rotom_rng::{RngExt, SeedableRng};
use rotom_text::example::{AugExample, Example};
use rotom_text::vocab::Vocab;
use std::collections::VecDeque;

/// Semi-supervised learning options (§5).
#[derive(Debug, Clone)]
pub struct SslConfig {
    /// Temperature for `sharpen_v1` (paper default 0.5).
    pub temperature: f32,
    /// Confidence threshold for `sharpen_v2` / pseudo-labeling.
    pub threshold: f32,
    /// Minimum model confidence for an unlabeled example to enter the batch
    /// at all; below it the example is skipped this step (FixMatch-style
    /// gating — unconfident guesses are pure noise early in training).
    pub min_confidence: f32,
}

impl Default for SslConfig {
    fn default() -> Self {
        Self {
            temperature: 0.5,
            threshold: 0.8,
            min_confidence: 0.6,
        }
    }
}

/// Ablation switches for the meta-learning framework (used by the ablation
/// benchmark to quantify each component's contribution).
#[derive(Debug, Clone, Default)]
pub struct AblationConfig {
    /// Disable the filtering model (keep every augmented example).
    pub disable_filter: bool,
    /// Disable the weighting model (uniform weights, no Eq.-4 updates).
    pub disable_weighting: bool,
    /// Drop the additive L2 uncertainty term from Eq. 2.
    pub disable_l2: bool,
}

/// Meta-trainer hyper-parameters.
#[derive(Debug, Clone)]
pub struct MetaConfig {
    /// Training batch size (paper: 32).
    pub batch_size: usize,
    /// Validation batch size.
    pub val_batch_size: usize,
    /// Finite-difference probe scale ε (paper: 0.01).
    pub epsilon: f32,
    /// Learning rate of the weighting model.
    pub weight_lr: f32,
    /// Learning rate of the filtering model.
    pub filter_lr: f32,
    /// Enable the SSL extension.
    pub ssl: Option<SslConfig>,
    /// Component ablations (all off by default).
    pub ablation: AblationConfig,
    /// RNG seed for batch sampling and filter exploration.
    pub seed: u64,
}

impl Default for MetaConfig {
    fn default() -> Self {
        Self {
            batch_size: 16,
            val_batch_size: 16,
            epsilon: 0.01,
            weight_lr: 1e-3,
            filter_lr: 1e-2,
            ssl: None,
            ablation: AblationConfig::default(),
            seed: 0,
        }
    }
}

/// Statistics from one meta-training epoch.
#[derive(Debug, Clone, Default)]
pub struct EpochStats {
    /// Mean weighted training loss across steps.
    pub train_loss: f32,
    /// Mean validation loss at the virtual step across steps.
    pub val_loss: f32,
    /// Mean filter keep-rate.
    pub keep_rate: f32,
    /// Mean (raw) example weight.
    pub mean_weight: f32,
    /// Number of optimizer steps taken.
    pub steps: usize,
}

/// The Rotom meta-trainer: owns the filtering and weighting policy models
/// and drives Algorithm 2 over any [`MetaTarget`].
pub struct MetaTrainer {
    /// Filtering model `M_F`.
    pub filter: FilterModel,
    /// Weighting model `M_W`.
    pub weight: WeightModel,
    cfg: MetaConfig,
    rng: StdRng,
    /// Running-mean baseline for the REINFORCE reward.
    val_baseline: f32,
    baseline_initialized: bool,
}

impl MetaTrainer {
    /// Create a meta-trainer. `vocab`/`enc_cfg` configure the weighting
    /// model's LM encoder ("the same LM architecture as the target model").
    pub fn new(
        num_classes: usize,
        vocab: Vocab,
        enc_cfg: TransformerConfig,
        cfg: MetaConfig,
    ) -> Self {
        let filter = FilterModel::new(num_classes, cfg.filter_lr, cfg.seed ^ 0xf11);
        let weight = WeightModel::new(vocab, enc_cfg, cfg.weight_lr, cfg.seed ^ 0x3e1);
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0x7a9);
        Self {
            filter,
            weight,
            cfg,
            rng,
            val_baseline: 0.0,
            baseline_initialized: false,
        }
    }

    /// Run one epoch of Algorithm 2.
    ///
    /// * `train_aug` — this epoch's pool of augmented examples (identity +
    ///   simple DA + InvDA candidates, assembled by the caller).
    /// * `val` — validation examples (may alias the training set to save
    ///   labeling budget, as the paper does for EM/EDT).
    /// * `unlabeled_aug` — `(x, x̂)` pairs of unlabeled sequences for SSL;
    ///   ignored unless `cfg.ssl` is set.
    pub fn train_epoch<T: MetaTarget>(
        &mut self,
        target: &mut T,
        train_aug: &[AugExample],
        val: &[Example],
        unlabeled_aug: &[(Vec<String>, Vec<String>)],
    ) -> EpochStats {
        match self.train_epoch_guarded(target, train_aug, val, unlabeled_aug, None) {
            Ok(stats) => stats,
            // Without a guard no step can be ruled divergent.
            Err(halt) => unreachable!("unguarded epoch halted: {halt}"),
        }
    }

    /// [`train_epoch`](Self::train_epoch) with an optional numeric-health
    /// guard. With a guard, every optimizer step is checked (loss/grad
    /// finiteness, loss-spike window, armed faultpoints) *before* it is
    /// applied; a divergent step stops the epoch with a [`Halt`] so the
    /// driver can roll back to its last good checkpoint. With `None` the
    /// behavior (and the per-step allocation profile) is bit-identical to
    /// the unguarded loop.
    pub fn train_epoch_guarded<T: MetaTarget>(
        &mut self,
        target: &mut T,
        train_aug: &[AugExample],
        val: &[Example],
        unlabeled_aug: &[(Vec<String>, Vec<String>)],
        mut guard: Option<&mut HealthMonitor>,
    ) -> Result<EpochStats, Halt> {
        assert!(!train_aug.is_empty(), "empty augmented pool");
        assert!(!val.is_empty(), "empty validation set");
        let k = target.num_classes();
        let b = self.cfg.batch_size;
        let workers = RotomPool::global();
        let mut order: Vec<usize> = (0..train_aug.len()).collect();
        crate::shuffle(&mut order, &mut self.rng);

        let mut stats = EpochStats::default();
        let mut cursor = 0usize;
        while cursor < order.len() {
            // ----------------------------------------------------------
            // Batch assembly with filtering (+ refill on aggressive drops).
            // ----------------------------------------------------------
            let mut items: Vec<WeightedItem> = Vec::with_capacity(2 * b);
            let mut l2_terms: Vec<f32> = Vec::with_capacity(2 * b);
            let mut kept_features: Vec<Vec<f32>> = Vec::new();
            let mut keep_probs_sum = 0.0f32;
            let mut seen = 0usize;
            // Windowed prefetch of candidate scores. The target is read-only
            // while a batch is being assembled (the phase-1 step comes
            // after), so scoring one window ahead across the worker pool
            // yields exactly the values the serial loop would compute, in
            // the same order. Scores left over when the batch closes are
            // discarded — the optimizer step invalidates them.
            let mut scored: VecDeque<(Vec<f32>, Vec<f32>)> = VecDeque::new();
            let mut scored_to = cursor;
            while items.len() < b && cursor < order.len() {
                if scored.is_empty() {
                    let window = &order[scored_to..(scored_to + b).min(order.len())];
                    let t: &T = target;
                    scored.extend(workers.map(window.len(), |j| {
                        let e = &train_aug[window[j]];
                        (t.predict_proba(&e.orig), t.predict_proba(&e.aug))
                    }));
                    scored_to += window.len();
                }
                let e = &train_aug[order[cursor]];
                cursor += 1;
                seen += 1;
                let (p_orig, p_aug) = scored.pop_front().expect("prefetch window drained");
                let mut y = vec![0.0f32; k];
                y[e.label] = 1.0;
                let feat = FilterModel::features(&y, &p_orig, &p_aug);
                keep_probs_sum += self.filter.prob_keep(&feat);
                if !self.cfg.ablation.disable_filter
                    && !self.filter.sample_keep(&feat, &mut self.rng)
                {
                    continue;
                }
                let l2 = if self.cfg.ablation.disable_l2 {
                    0.0
                } else {
                    l2_distance(&p_aug, &y)
                };
                l2_terms.push(l2);
                kept_features.push(feat);
                items.push(WeightedItem {
                    tokens: e.aug.clone(),
                    target: y,
                    weight: 1.0,
                });
            }
            if items.is_empty() {
                continue;
            }
            let keep_rate = if seen > 0 {
                keep_probs_sum / seen as f32
            } else {
                1.0
            };

            // ----------------------------------------------------------
            // SSL: append a batch of unlabeled examples with guessed labels
            // (no filtering, to avoid class imbalance).
            // ----------------------------------------------------------
            if let Some(ssl) = &self.cfg.ssl {
                if !unlabeled_aug.is_empty() {
                    let n_unl = items.len();
                    let mut attempts = 0;
                    let mut added = 0;
                    while added < n_unl && attempts < 3 * n_unl {
                        attempts += 1;
                        let (x, x_hat) =
                            &unlabeled_aug[self.rng.random_range(0..unlabeled_aug.len())];
                        let p_x = target.predict_proba(x);
                        // Confidence gate: unconfident guesses are skipped
                        // this step (the weighting model handles the rest).
                        if p_x[rotom_nn::argmax(&p_x)] < ssl.min_confidence {
                            continue;
                        }
                        let guessed = guess_label(&p_x, ssl.temperature, ssl.threshold);
                        let p_aug = target.predict_proba(x_hat);
                        let l2 = if self.cfg.ablation.disable_l2 {
                            0.0
                        } else {
                            l2_distance(&p_aug, &guessed)
                        };
                        l2_terms.push(l2);
                        items.push(WeightedItem {
                            tokens: x_hat.clone(),
                            target: guessed,
                            weight: 1.0,
                        });
                        added += 1;
                    }
                }
            }

            // ----------------------------------------------------------
            // Weighting (M_W forward; weights enter phase 1 as constants).
            // ----------------------------------------------------------
            let weight_batch = if self.cfg.ablation.disable_weighting {
                None
            } else {
                let weight_inputs: Vec<(&[String], f32)> = items
                    .iter()
                    .zip(&l2_terms)
                    .map(|(it, &l2)| (it.tokens.as_slice(), l2))
                    .collect();
                let batch = self.weight.forward_batch(&weight_inputs);
                let normalized = batch.normalized();
                for (it, &w) in items.iter_mut().zip(&normalized) {
                    it.weight = w;
                }
                stats.mean_weight += batch.raw.iter().sum::<f32>() / batch.raw.len() as f32;
                Some(batch)
            };
            if self.cfg.ablation.disable_weighting {
                stats.mean_weight += 1.0;
            }

            // ----------------------------------------------------------
            // Phase 1: update the target model on the weighted batch.
            // ----------------------------------------------------------
            let train_loss = target.weighted_loss_backward(&items, true, &mut self.rng);
            if let Some(monitor) = guard.as_deref_mut() {
                guard_step(monitor, target, train_loss)?;
            }
            let g = target.flat_grads();
            target.optimizer_step();

            // ----------------------------------------------------------
            // Phase 2: virtual step, validation loss, policy updates.
            // ----------------------------------------------------------
            let eta = target.learning_rate();
            // M' = M − η·∇M Losstrain (paper line 8; M here is the
            // post-phase-1 parameters, matching the overloaded notation).
            target.add_scaled(&g, -eta);
            let val_batch: Vec<WeightedItem> =
                sample_items(val, self.cfg.val_batch_size, k, &mut self.rng);
            let val_loss = target.weighted_loss_backward(&val_batch, false, &mut self.rng);
            let v = target.flat_grads();
            // Restore M.
            target.add_scaled(&g, eta);

            // Probes M± = M ± ε·∇M'Lossval, per-example losses under each.
            if let Some(weight_batch) = weight_batch {
                let eps = self.cfg.epsilon;
                target.add_scaled(&v, eps);
                let c_plus = target.per_example_losses(&items);
                target.add_scaled(&v, -2.0 * eps);
                let c_minus = target.per_example_losses(&items);
                target.add_scaled(&v, eps);
                self.weight
                    .update_finite_difference(weight_batch, &c_plus, &c_minus, eta, eps);
            }

            // REINFORCE with a running-mean baseline (see module docs).
            let reward = if self.baseline_initialized {
                val_loss - self.val_baseline
            } else {
                0.0
            };
            if self.baseline_initialized {
                self.val_baseline = 0.9 * self.val_baseline + 0.1 * val_loss;
            } else {
                self.val_baseline = val_loss;
                self.baseline_initialized = true;
            }
            if !self.cfg.ablation.disable_filter {
                self.filter.reinforce_update(&kept_features, reward);
            }

            stats.train_loss += train_loss;
            stats.val_loss += val_loss;
            stats.keep_rate += keep_rate;
            stats.steps += 1;

            // ----------------------------------------------------------
            // Telemetry: one `step` record for the phase-1 target update
            // and one `meta` record for this batch's policy decisions.
            // Pure observation of values already computed above — consumes
            // no RNG, so runs are bit-identical with telemetry on or off.
            // ----------------------------------------------------------
            if telemetry::enabled() {
                let grad_norm = g.iter().map(|&v| v as f64 * v as f64).sum::<f64>().sqrt();
                telemetry::emit(
                    "step",
                    "meta.target_step",
                    &[
                        ("loss", Value::F64(train_loss as f64)),
                        ("lr", Value::F64(eta as f64)),
                        ("grad_norm", Value::F64(grad_norm)),
                        ("examples", Value::U64(items.len() as u64)),
                    ],
                );
                // 8-bucket sketch of the normalized M_W weights over [0, 2)
                // (mean-1 normalization centers them at bucket 3|4).
                let mut hist = [0u64; 8];
                let mut w_min = f32::INFINITY;
                let mut w_max = f32::NEG_INFINITY;
                let mut w_sum = 0.0f64;
                for it in &items {
                    let w = it.weight;
                    w_min = w_min.min(w);
                    w_max = w_max.max(w);
                    w_sum += w as f64;
                    let bucket = ((w / 0.25) as usize).min(7);
                    hist[bucket] += 1;
                }
                telemetry::emit(
                    "meta",
                    "meta.decision",
                    &[
                        ("keep_rate", Value::F64(keep_rate as f64)),
                        ("kept", Value::U64(kept_features.len() as u64)),
                        ("seen", Value::U64(seen as u64)),
                        ("val_loss", Value::F64(val_loss as f64)),
                        ("baseline", Value::F64(self.val_baseline as f64)),
                        ("reward", Value::F64(reward as f64)),
                        ("w_mean", Value::F64(w_sum / items.len() as f64)),
                        ("w_min", Value::F64(w_min as f64)),
                        ("w_max", Value::F64(w_max as f64)),
                        ("w_hist_0", Value::U64(hist[0])),
                        ("w_hist_1", Value::U64(hist[1])),
                        ("w_hist_2", Value::U64(hist[2])),
                        ("w_hist_3", Value::U64(hist[3])),
                        ("w_hist_4", Value::U64(hist[4])),
                        ("w_hist_5", Value::U64(hist[5])),
                        ("w_hist_6", Value::U64(hist[6])),
                        ("w_hist_7", Value::U64(hist[7])),
                    ],
                );
            }
        }
        if stats.steps > 0 {
            let n = stats.steps as f32;
            stats.train_loss /= n;
            stats.val_loss /= n;
            stats.keep_rate /= n;
            stats.mean_weight /= n;
        }
        Ok(stats)
    }

    /// Save the meta-trainer's full training state — both policy models
    /// (parameters + optimizers), the sampling RNG stream, and the REINFORCE
    /// baseline — into a checkpoint bag under `prefix`.
    pub fn save_state(&self, bag: &mut StateBag, prefix: &str) {
        self.filter.save_state(bag, &format!("{prefix}.filter"));
        self.weight.save_state(bag, &format!("{prefix}.weight"));
        bag.put_u64s(format!("{prefix}.rng"), self.rng.state().to_vec());
        bag.put_f32(format!("{prefix}.baseline"), self.val_baseline);
        bag.put_u64(
            format!("{prefix}.baseline_init"),
            self.baseline_initialized as u64,
        );
    }

    /// Restore state saved by [`save_state`](Self::save_state). A resumed
    /// trainer continues bit-identically to one that never stopped.
    pub fn load_state(&mut self, bag: &StateBag, prefix: &str) -> Result<(), CheckpointError> {
        self.filter.load_state(bag, &format!("{prefix}.filter"))?;
        self.weight.load_state(bag, &format!("{prefix}.weight"))?;
        let rng = bag.get_u64s(&format!("{prefix}.rng"))?;
        if rng.len() != 4 {
            return Err(CheckpointError::Mismatch(format!(
                "{prefix}.rng: expected 4 state words, found {}",
                rng.len()
            )));
        }
        self.rng = StdRng::from_state([rng[0], rng[1], rng[2], rng[3]]);
        self.val_baseline = bag.get_f32(&format!("{prefix}.baseline"))?;
        self.baseline_initialized = bag.get_u64(&format!("{prefix}.baseline_init"))? != 0;
        Ok(())
    }
}

/// Guard one optimizer step of any [`MetaTarget`] training loop: advance the
/// monitor's step counter, fire armed faultpoints (simulated kill, injected
/// NaN loss/gradient), and judge the step's numeric health *before* the
/// caller applies the update. Shared by the meta-trainer and the plain
/// fine-tuning loops so every training path gets identical protection.
///
/// A [`FaultKind::NanGrad`] injection corrupts the target's parameters with
/// NaNs (modeling a NaN update that reached the weights) — detection is
/// same-step, and the driver is expected to restore from its last good
/// checkpoint.
pub fn guard_step<T: MetaTarget + ?Sized>(
    monitor: &mut HealthMonitor,
    target: &mut T,
    loss: f32,
) -> Result<(), Halt> {
    let step = monitor.begin_step();
    faultpoint::maybe_kill(step);
    let mut loss = loss;
    let mut grad_norm = target.grad_l2();
    if faultpoint::fires(FaultKind::NanLoss, step) {
        loss = f32::NAN;
    }
    if faultpoint::fires(FaultKind::NanGrad, step) {
        let n = target.flat_params().len();
        target.add_scaled(&vec![f32::NAN; n], 1.0);
        grad_norm = f32::NAN;
    }
    match monitor.observe(loss, grad_norm) {
        Verdict::Healthy => Ok(()),
        Verdict::Diverged(reason) => Err(Halt { step, reason }),
    }
}

fn sample_items(pool: &[Example], n: usize, k: usize, rng: &mut StdRng) -> Vec<WeightedItem> {
    let n = n.min(pool.len()).max(1);
    (0..n)
        .map(|_| {
            let e = &pool[rng.random_range(0..pool.len())];
            WeightedItem::hard(e.tokens.clone(), e.label, k)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A hand-rolled bag-of-words logistic-regression target with manual
    /// gradients — small enough to verify the full meta loop end-to-end.
    struct BowTarget {
        vocab: HashMap<String, usize>,
        w: Vec<f32>,     // V x K
        grads: Vec<f32>, // V x K
        k: usize,
        lr: f32,
    }

    impl BowTarget {
        fn new(words: &[&str], k: usize, lr: f32) -> Self {
            let vocab: HashMap<String, usize> = words
                .iter()
                .enumerate()
                .map(|(i, w)| (w.to_string(), i))
                .collect();
            let v = vocab.len();
            Self {
                vocab,
                w: vec![0.0; v * k],
                grads: vec![0.0; v * k],
                k,
                lr,
            }
        }

        fn feats(&self, tokens: &[String]) -> Vec<f32> {
            let mut f = vec![0.0f32; self.vocab.len()];
            for t in tokens {
                if let Some(&i) = self.vocab.get(t) {
                    f[i] += 1.0;
                }
            }
            f
        }

        fn logits(&self, f: &[f32]) -> Vec<f32> {
            let mut z = vec![0.0f32; self.k];
            for (i, &fi) in f.iter().enumerate() {
                if fi != 0.0 {
                    for c in 0..self.k {
                        z[c] += fi * self.w[i * self.k + c];
                    }
                }
            }
            z
        }
    }

    impl MetaTarget for BowTarget {
        fn num_classes(&self) -> usize {
            self.k
        }
        fn predict_proba(&self, tokens: &[String]) -> Vec<f32> {
            rotom_nn::softmax_slice(&self.logits(&self.feats(tokens)))
        }
        fn weighted_loss_backward(
            &mut self,
            items: &[WeightedItem],
            _train: bool,
            _rng: &mut StdRng,
        ) -> f32 {
            self.grads.fill(0.0);
            let mut loss = 0.0f32;
            let n = items.len() as f32;
            for it in items {
                let f = self.feats(&it.tokens);
                let p = rotom_nn::softmax_slice(&self.logits(&f));
                for c in 0..self.k {
                    if it.target[c] > 0.0 {
                        loss -= it.weight * it.target[c] * p[c].max(1e-9).ln() / n;
                    }
                }
                for (i, &fi) in f.iter().enumerate() {
                    if fi != 0.0 {
                        for c in 0..self.k {
                            self.grads[i * self.k + c] +=
                                it.weight * fi * (p[c] - it.target[c]) / n;
                        }
                    }
                }
            }
            loss
        }
        fn per_example_losses(&self, items: &[WeightedItem]) -> Vec<f32> {
            items
                .iter()
                .map(|it| {
                    let p = self.predict_proba(&it.tokens);
                    -(0..self.k)
                        .map(|c| it.target[c] * p[c].max(1e-9).ln())
                        .sum::<f32>()
                })
                .collect()
        }
        fn flat_params(&self) -> Vec<f32> {
            self.w.clone()
        }
        fn set_flat_params(&mut self, flat: &[f32]) {
            self.w.copy_from_slice(flat);
        }
        fn add_scaled(&mut self, delta: &[f32], alpha: f32) {
            for (w, &d) in self.w.iter_mut().zip(delta) {
                *w += alpha * d;
            }
        }
        fn flat_grads(&self) -> Vec<f32> {
            self.grads.clone()
        }
        fn optimizer_step(&mut self) {
            let lr = self.lr;
            let g = self.grads.clone();
            self.add_scaled(&g, -lr);
        }
        fn learning_rate(&self) -> f32 {
            self.lr
        }
    }

    fn toy_data() -> (Vec<Example>, Vec<AugExample>) {
        // Two classes separated by "good"/"bad"; a minority of poisoned
        // augmentations flip a positive example's token to "bad" while
        // keeping the label (the classic label-corrupting DA failure of
        // Example 1.1 in the paper).
        let mk = |s: &str, y: usize| Example::new(s.split(' ').map(String::from).collect(), y);
        let train: Vec<Example> = (0..16)
            .map(|i| {
                if i % 2 == 0 {
                    mk("the plot is good stuff", 1)
                } else {
                    mk("the plot is bad stuff", 0)
                }
            })
            .collect();
        let mut aug: Vec<AugExample> = train.iter().map(AugExample::identity).collect();
        // Corrupted augmentations: label says positive, text says bad.
        for _ in 0..5 {
            aug.push(AugExample {
                orig: mk("the plot is good stuff", 1).tokens,
                aug: mk("the plot is bad stuff", 1).tokens,
                label: 1,
            });
        }
        (train, aug)
    }

    fn words() -> Vec<&'static str> {
        vec!["the", "plot", "is", "good", "bad", "stuff"]
    }

    fn trainer(ssl: bool) -> MetaTrainer {
        let seqs: Vec<Vec<String>> = vec![words().iter().map(|s| s.to_string()).collect()];
        let refs: Vec<&[String]> = seqs.iter().map(|s| s.as_slice()).collect();
        let vocab = Vocab::build(refs, 32);
        let enc = TransformerConfig {
            vocab: 0,
            d_model: 16,
            heads: 2,
            d_ff: 32,
            layers: 1,
            max_len: 12,
            dropout: 0.0,
        };
        let cfg = MetaConfig {
            batch_size: 4,
            val_batch_size: 8,
            filter_lr: 5e-2,
            ssl: ssl.then(SslConfig::default),
            ..Default::default()
        };
        MetaTrainer::new(2, vocab, enc, cfg)
    }

    #[test]
    fn meta_training_learns_despite_poisoned_augmentations() {
        // ~24% of the pool carries a corrupted label on text identical to
        // the clean negatives. The filter sees the corruption through its
        // KL features (the augmented text's predicted distribution diverges
        // from the original's) and the validation loss provides the reward
        // signal; the target must still classify both classes cleanly.
        let (train, aug) = toy_data();
        let mut target = BowTarget::new(&words(), 2, 0.5);
        let mut t = trainer(false);
        let mut last = EpochStats::default();
        for _ in 0..30 {
            last = t.train_epoch(&mut target, &aug, &train, &[]);
        }
        assert!(last.steps > 0);
        let p_good = target.predict_proba(&train[0].tokens);
        let p_bad = target.predict_proba(&train[1].tokens);
        assert!(p_good[1] > 0.7, "positive example scored {p_good:?}");
        assert!(p_bad[0] > 0.6, "negative example scored {p_bad:?}");
    }

    #[test]
    fn epoch_stats_are_populated() {
        let (train, aug) = toy_data();
        let mut target = BowTarget::new(&words(), 2, 0.2);
        let mut t = trainer(false);
        let stats = t.train_epoch(&mut target, &aug, &train, &[]);
        assert!(stats.steps >= 2);
        assert!(stats.train_loss > 0.0);
        assert!(stats.val_loss > 0.0);
        assert!((0.0..=1.0).contains(&stats.keep_rate));
        assert!(stats.mean_weight > 0.0);
    }

    #[test]
    fn ssl_consumes_unlabeled_pairs() {
        let (train, aug) = toy_data();
        let mk = |s: &str| s.split(' ').map(String::from).collect::<Vec<_>>();
        let unlabeled: Vec<(Vec<String>, Vec<String>)> = vec![
            (mk("the plot is good stuff"), mk("plot is good stuff")),
            (mk("the plot is bad stuff"), mk("the plot bad stuff")),
        ];
        let mut target = BowTarget::new(&words(), 2, 0.2);
        let mut t = trainer(true);
        // Must not panic and must still learn.
        for _ in 0..12 {
            t.train_epoch(&mut target, &aug, &train, &unlabeled);
        }
        let p_good = target.predict_proba(&mk("the plot is good stuff"));
        assert!(p_good[1] > 0.6);
    }

    #[test]
    fn ablations_disable_components() {
        let (train, aug) = toy_data();
        let mut target = BowTarget::new(&words(), 2, 0.2);
        let mut t = trainer(false);
        t.cfg.ablation = AblationConfig {
            disable_filter: true,
            disable_weighting: true,
            disable_l2: true,
        };
        let stats = t.train_epoch(&mut target, &aug, &train, &[]);
        // No filtering: every example enters a batch, so with batch 4 and a
        // 21-example pool we get at least 5 full steps.
        assert!(stats.steps >= 5, "steps {}", stats.steps);
        // Uniform weights (mean_weight accumulates exactly 1 per step).
        assert!((stats.mean_weight - 1.0).abs() < 1e-6);
    }

    #[test]
    fn guarded_epoch_with_healthy_run_matches_unguarded() {
        let (train, aug) = toy_data();
        let mut target_a = BowTarget::new(&words(), 2, 0.2);
        let mut target_b = BowTarget::new(&words(), 2, 0.2);
        let mut ta = trainer(false);
        let mut tb = trainer(false);
        let mut monitor = rotom_nn::HealthMonitor::new(rotom_nn::HealthConfig::default());
        for _ in 0..3 {
            let _ = ta.train_epoch(&mut target_a, &aug, &train, &[]);
            let _ = tb
                .train_epoch_guarded(&mut target_b, &aug, &train, &[], Some(&mut monitor))
                .unwrap();
        }
        assert_eq!(target_a.flat_params(), target_b.flat_params());
        assert!(monitor.step() > 0);
        assert!(monitor.events().is_empty());
    }

    #[test]
    fn state_roundtrip_resumes_bit_identically() {
        let (train, aug) = toy_data();
        // Uninterrupted reference: 4 epochs straight through.
        let mut target_a = BowTarget::new(&words(), 2, 0.2);
        let mut ta = trainer(false);
        for _ in 0..4 {
            let _ = ta.train_epoch(&mut target_a, &aug, &train, &[]);
        }
        // Checkpointed run: 2 epochs, full-state save through the text
        // format, restore into a *fresh* trainer, 2 more epochs.
        let mut target_b = BowTarget::new(&words(), 2, 0.2);
        let mut tb = trainer(false);
        for _ in 0..2 {
            let _ = tb.train_epoch(&mut target_b, &aug, &train, &[]);
        }
        let mut bag = StateBag::new();
        tb.save_state(&mut bag, "meta");
        bag.put_f32s("target", target_b.flat_params());
        let bag = StateBag::parse(&bag.serialize()).unwrap();
        let mut tc = trainer(false);
        tc.load_state(&bag, "meta").unwrap();
        let mut target_c = BowTarget::new(&words(), 2, 0.2);
        target_c.set_flat_params(bag.get_f32s("target").unwrap());
        for _ in 0..2 {
            let _ = tc.train_epoch(&mut target_c, &aug, &train, &[]);
        }
        assert_eq!(target_a.flat_params(), target_c.flat_params());
        assert_eq!(ta.val_baseline.to_bits(), tc.val_baseline.to_bits());
    }

    #[test]
    fn injected_nan_grad_halts_guarded_epoch() {
        let (train, aug) = toy_data();
        let mut target = BowTarget::new(&words(), 2, 0.2);
        let mut t = trainer(false);
        let mut monitor = rotom_nn::HealthMonitor::new(rotom_nn::HealthConfig::default());
        rotom_nn::faultpoint::arm("nan_grad@step=2").unwrap();
        let result = t.train_epoch_guarded(&mut target, &aug, &train, &[], Some(&mut monitor));
        rotom_nn::faultpoint::clear();
        let halt = result.unwrap_err();
        assert_eq!(halt.step, 2);
        assert!(halt.reason.contains("non-finite"), "{}", halt.reason);
        // The injected fault corrupted the parameters — exactly what the
        // driver's rollback must repair.
        assert!(target.flat_params().iter().any(|v| v.is_nan()));
    }

    #[test]
    fn parameters_restored_after_probes() {
        let (train, aug) = toy_data();
        let mut target = BowTarget::new(&words(), 2, 0.2);
        let mut t = trainer(false);
        let _ = t.train_epoch(&mut target, &aug, &train, &[]);
        // After an epoch, run a forward pass and record params; another
        // forward must not change them (probe arithmetic is balanced).
        let before = target.flat_params();
        let _ = target.predict_proba(&train[0].tokens);
        assert_eq!(before, target.flat_params());
    }
}
