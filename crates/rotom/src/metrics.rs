//! Evaluation metrics: accuracy and per-class precision / recall / F1.

/// Binary-classification counts for the positive class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrF1 {
    /// Precision of the positive class.
    pub precision: f32,
    /// Recall of the positive class.
    pub recall: f32,
    /// F1 of the positive class.
    pub f1: f32,
}

/// Accuracy over (prediction, gold) pairs.
pub fn accuracy(pred: &[usize], gold: &[usize]) -> f32 {
    assert_eq!(pred.len(), gold.len());
    if pred.is_empty() {
        return 0.0;
    }
    let correct = pred.iter().zip(gold).filter(|(a, b)| a == b).count();
    correct as f32 / pred.len() as f32
}

/// Precision/recall/F1 of class `positive` (the paper reports the positive
/// class's F1 for EM — "match" — and EDT — "dirty").
pub fn prf1(pred: &[usize], gold: &[usize], positive: usize) -> PrF1 {
    assert_eq!(pred.len(), gold.len());
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (&p, &g) in pred.iter().zip(gold) {
        match (p == positive, g == positive) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f32 / (tp + fp) as f32
    };
    let recall = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f32 / (tp + fn_) as f32
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrF1 {
        precision,
        recall,
        f1,
    }
}

/// Macro-averaged F1 across all classes.
pub fn macro_f1(pred: &[usize], gold: &[usize], num_classes: usize) -> f32 {
    (0..num_classes)
        .map(|c| prf1(pred, gold, c).f1)
        .sum::<f32>()
        / num_classes as f32
}

/// Mean and (sample) standard deviation of a slice.
pub fn mean_std(values: &[f32]) -> (f32, f32) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f32>() / values.len() as f32;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / (values.len() - 1) as f32;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn perfect_f1() {
        let m = prf1(&[1, 0, 1, 0], &[1, 0, 1, 0], 1);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn known_prf1() {
        // tp=1 (idx0), fp=1 (idx1), fn=1 (idx3)
        let m = prf1(&[1, 1, 0, 0], &[1, 0, 0, 1], 1);
        assert!((m.precision - 0.5).abs() < 1e-6);
        assert!((m.recall - 0.5).abs() < 1e-6);
        assert!((m.f1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn degenerate_no_positives() {
        let m = prf1(&[0, 0], &[0, 0], 1);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn macro_f1_averages() {
        let f = macro_f1(&[0, 1], &[0, 1], 2);
        assert_eq!(f, 1.0);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert!((s - 2f32.sqrt()).abs() < 1e-6);
    }
}
