//! Evaluation metrics: accuracy and per-class precision / recall / F1.

/// Binary-classification counts for the positive class.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrF1 {
    /// Precision of the positive class.
    pub precision: f32,
    /// Recall of the positive class.
    pub recall: f32,
    /// F1 of the positive class.
    pub f1: f32,
}

/// Accuracy over (prediction, gold) pairs.
///
/// # Panics
/// If the slices differ in length (a prediction/gold misalignment upstream);
/// the message names both lengths.
pub fn accuracy(pred: &[usize], gold: &[usize]) -> f32 {
    assert_eq!(
        pred.len(),
        gold.len(),
        "accuracy: {} predictions vs {} gold labels — the slices must align 1:1",
        pred.len(),
        gold.len()
    );
    if pred.is_empty() {
        return 0.0;
    }
    let correct = pred.iter().zip(gold).filter(|(a, b)| a == b).count();
    correct as f32 / pred.len() as f32
}

/// Precision/recall/F1 of class `positive` (the paper reports the positive
/// class's F1 for EM — "match" — and EDT — "dirty").
///
/// **All-negative-gold convention:** when no gold label equals `positive`
/// and no prediction does either (tp = fp = fn = 0), precision, recall, and
/// F1 are all reported as 0.0 — even though every prediction is correct.
/// There is simply no positive-class evidence to score, and 0.0 (rather
/// than a flattering 1.0 or a poisonous NaN) keeps macro-F1 averages and
/// the golden-run snapshots stable. Accuracy is the metric that credits
/// those runs.
///
/// # Panics
/// If the slices differ in length; the message names both lengths.
pub fn prf1(pred: &[usize], gold: &[usize], positive: usize) -> PrF1 {
    assert_eq!(
        pred.len(),
        gold.len(),
        "prf1: {} predictions vs {} gold labels — the slices must align 1:1",
        pred.len(),
        gold.len()
    );
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (&p, &g) in pred.iter().zip(gold) {
        match (p == positive, g == positive) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f32 / (tp + fp) as f32
    };
    let recall = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f32 / (tp + fn_) as f32
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrF1 {
        precision,
        recall,
        f1,
    }
}

/// Macro-averaged F1 across all classes.
pub fn macro_f1(pred: &[usize], gold: &[usize], num_classes: usize) -> f32 {
    (0..num_classes)
        .map(|c| prf1(pred, gold, c).f1)
        .sum::<f32>()
        / num_classes as f32
}

/// An ordered list of named scalar metrics with a plain-text serialization,
/// used by the golden-run regression suite (`tests/golden.rs`) to snapshot
/// final run metrics and compare them against checked-in blessed values.
///
/// The format is one `key value` pair per line, values printed with six
/// decimal places. Keys must match exactly (and in order) on comparison;
/// values compare within an absolute tolerance so cross-machine FMA rounding
/// differences in the kernels don't flip the suite.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(key, value)` pairs in serialization order.
    pub entries: Vec<(String, f32)>,
}

impl MetricsSnapshot {
    /// Empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one named metric.
    pub fn push(&mut self, key: impl Into<String>, value: f32) {
        let key = key.into();
        debug_assert!(
            !key.contains(char::is_whitespace),
            "snapshot keys must be whitespace-free: {key:?}"
        );
        self.entries.push((key, value));
    }

    /// Serialize as `key value` lines.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.entries {
            out.push_str(&format!("{k} {v:.6}\n"));
        }
        out
    }

    /// Parse the [`to_text`](Self::to_text) format. Blank lines and `#`
    /// comments are ignored.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut snap = Self::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let key = parts
                .next()
                .ok_or_else(|| format!("line {}: empty", lineno + 1))?;
            let value: f32 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing value", lineno + 1))?
                .parse()
                .map_err(|e| format!("line {}: bad value: {e}", lineno + 1))?;
            if parts.next().is_some() {
                return Err(format!("line {}: trailing tokens", lineno + 1));
            }
            snap.push(key, value);
        }
        Ok(snap)
    }

    /// Compare against `expected`: keys must match exactly and in order,
    /// values within `tol` absolute. Returns a list of human-readable
    /// mismatch descriptions (empty = match).
    pub fn diff(&self, expected: &MetricsSnapshot, tol: f32) -> Vec<String> {
        let mut errors = Vec::new();
        if self.entries.len() != expected.entries.len() {
            errors.push(format!(
                "entry count mismatch: got {}, expected {}",
                self.entries.len(),
                expected.entries.len()
            ));
        }
        for (i, ((gk, gv), (ek, ev))) in self.entries.iter().zip(&expected.entries).enumerate() {
            if gk != ek {
                errors.push(format!("key {i}: got {gk:?}, expected {ek:?}"));
            } else if (gv - ev).abs() > tol {
                errors.push(format!(
                    "{gk}: got {gv:.6}, expected {ev:.6} (|diff| {:.6} > tol {tol})",
                    (gv - ev).abs()
                ));
            }
        }
        errors
    }
}

/// Mean and (sample) standard deviation of a slice.
pub fn mean_std(values: &[f32]) -> (f32, f32) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f32>() / values.len() as f32;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / (values.len() - 1) as f32;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn perfect_f1() {
        let m = prf1(&[1, 0, 1, 0], &[1, 0, 1, 0], 1);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn known_prf1() {
        // tp=1 (idx0), fp=1 (idx1), fn=1 (idx3)
        let m = prf1(&[1, 1, 0, 0], &[1, 0, 0, 1], 1);
        assert!((m.precision - 0.5).abs() < 1e-6);
        assert!((m.recall - 0.5).abs() < 1e-6);
        assert!((m.f1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn degenerate_no_positives() {
        let m = prf1(&[0, 0], &[0, 0], 1);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn all_negative_gold_scores_zero_even_when_predictions_are_perfect() {
        // The documented convention: with no positive-class evidence at all
        // (tp = fp = fn = 0), P = R = F1 = 0.0 despite 100% accuracy.
        let pred = [0, 0, 0, 0];
        let gold = [0, 0, 0, 0];
        let m = prf1(&pred, &gold, 1);
        assert_eq!(
            m,
            PrF1 {
                precision: 0.0,
                recall: 0.0,
                f1: 0.0
            }
        );
        assert_eq!(accuracy(&pred, &gold), 1.0);
    }

    #[test]
    fn length_mismatch_panics_name_both_lengths() {
        let acc = std::panic::catch_unwind(|| accuracy(&[1, 0, 1], &[1, 0])).unwrap_err();
        let msg = acc.downcast_ref::<String>().expect("formatted message");
        assert!(
            msg.contains("3 predictions") && msg.contains("2 gold"),
            "{msg}"
        );
        let pr = std::panic::catch_unwind(|| prf1(&[1], &[1, 0], 1)).unwrap_err();
        let msg = pr.downcast_ref::<String>().expect("formatted message");
        assert!(
            msg.contains("1 predictions") && msg.contains("2 gold"),
            "{msg}"
        );
    }

    #[test]
    fn macro_f1_averages() {
        let f = macro_f1(&[0, 1], &[0, 1], 2);
        assert_eq!(f, 1.0);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert!((s - 2f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut s = MetricsSnapshot::new();
        s.push("f1", 0.8125);
        s.push("curve_0", 0.5);
        let text = s.to_text();
        let parsed = MetricsSnapshot::parse(&text).unwrap();
        assert!(parsed.diff(&s, 1e-6).is_empty());
    }

    #[test]
    fn snapshot_parse_skips_comments_and_blanks() {
        let parsed = MetricsSnapshot::parse("# header\n\nacc 0.75\n").unwrap();
        assert_eq!(parsed.entries, vec![("acc".to_string(), 0.75)]);
    }

    #[test]
    fn snapshot_parse_rejects_garbage() {
        assert!(MetricsSnapshot::parse("acc").is_err());
        assert!(MetricsSnapshot::parse("acc zero").is_err());
        assert!(MetricsSnapshot::parse("acc 0.5 extra").is_err());
    }

    #[test]
    fn snapshot_diff_reports_mismatches() {
        let mut a = MetricsSnapshot::new();
        a.push("f1", 0.8);
        let mut b = MetricsSnapshot::new();
        b.push("f1", 0.9);
        assert!(a.diff(&b, 0.05).len() == 1);
        assert!(a.diff(&b, 0.2).is_empty());
        let mut c = MetricsSnapshot::new();
        c.push("acc", 0.8);
        assert!(!a.diff(&c, 0.5).is_empty(), "key mismatch must be flagged");
    }
}
