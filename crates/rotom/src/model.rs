//! TinyLm — the target sequence classifier.
//!
//! The stand-in for RoBERTa / DistilBERT / BERT (paper §2.2): a Transformer
//! encoder whose `[CLS]` representation feeds a task-specific linear +
//! softmax head, optionally *pre-trained* with masked-token prediction on an
//! unlabeled task corpus before fine-tuning. The architecture is exactly
//! Figure 2, scaled to CPU.
//!
//! TinyLm implements [`MetaTarget`], so the same instance can be fine-tuned
//! plainly (Baseline / MixDA / InvDA methods) or driven by Rotom's
//! meta-trainer.

use crate::config::ModelConfig;
use rotom_augment::mixda::sample_lambda;
use rotom_meta::{MetaTarget, WeightedItem};
use rotom_nn::{
    kernels, recycle_tape, take_pooled_tape, with_infer_scratch, with_pooled_tape, Adam, Embedding,
    FwdCtx, Linear, NodeId, ParamStore, QuantMode, RotomPool, ScoreCache, Tape, TransformerEncoder,
};
use rotom_rng::rngs::StdRng;
use rotom_rng::{RngExt, SeedableRng};
use rotom_text::token::{CLS, MASK};
use rotom_text::vocab::Vocab;

/// The target model: Transformer encoder + classification head (+ MLM head
/// used only during pre-training).
pub struct TinyLm {
    store: ParamStore,
    encoder: TransformerEncoder,
    head: Linear,
    mlm_head: Linear,
    nsp_head: Linear,
    /// BERT-style segment embedding (0 before the [SEP], 1 after).
    seg_emb: Embedding,
    /// Duplicate-token flag embedding (1 when the source token appears on
    /// both sides of the [SEP]). See the module docs for why this input
    /// feature stands in for the pre-trained LM's cross-segment matching.
    dup_emb: Embedding,
    vocab: Vocab,
    cfg: ModelConfig,
    num_classes: usize,
    opt: Adam,
    lr: f32,
    rng: StdRng,
    /// Losses recorded during MLM pre-training (diagnostics).
    pub pretrain_losses: Vec<f32>,
    /// Optional memoization of tape-free logits (`ROTOM_SCORE_CACHE=<cap>`,
    /// or [`set_score_cache`](Self::set_score_cache)). Invalidated whenever
    /// any parameter changes, so hits are always bit-identical to recompute.
    score_cache: Option<ScoreCache>,
}

impl TinyLm {
    /// Build a model over `vocab` for a `num_classes`-way task.
    pub fn new(vocab: Vocab, num_classes: usize, cfg: &ModelConfig, lr: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let enc_cfg = cfg.encoder(vocab.len());
        let encoder = TransformerEncoder::new(&mut store, &mut rng, "lm.enc", enc_cfg);
        let head = Linear::new(&mut store, &mut rng, "lm.head", cfg.d_model, num_classes);
        let mlm_head = Linear::new(&mut store, &mut rng, "lm.mlm", cfg.d_model, vocab.len());
        let nsp_head = Linear::new(&mut store, &mut rng, "lm.nsp", cfg.d_model, 2);
        let seg_emb = Embedding::new(&mut store, &mut rng, "lm.seg", 2, cfg.d_model);
        let dup_emb = Embedding::new(&mut store, &mut rng, "lm.dup", 2, cfg.d_model);
        Self {
            store,
            encoder,
            head,
            mlm_head,
            nsp_head,
            seg_emb,
            dup_emb,
            vocab,
            cfg: cfg.clone(),
            num_classes,
            opt: Adam::new(lr),
            lr,
            rng,
            pretrain_losses: Vec::new(),
            score_cache: ScoreCache::from_env(),
        }
    }

    /// Build the vocabulary for a task corpus and construct the model.
    pub fn from_corpus(
        corpus: &[Vec<String>],
        num_classes: usize,
        cfg: &ModelConfig,
        lr: f32,
        seed: u64,
    ) -> Self {
        let refs: Vec<&[String]> = corpus.iter().map(|s| s.as_slice()).collect();
        let vocab = Vocab::build(refs, cfg.vocab_size);
        Self::new(vocab, num_classes, cfg, lr, seed)
    }

    /// The model's vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Encode tokens as `[CLS] + ids` (char-fallback), truncated to
    /// `max_len`, together with segment ids and duplicate-token flags.
    fn encode_input(&self, tokens: &[String]) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        use rotom_text::token::{is_structural, SEP};
        let (body_ids, src) = self.vocab.encode_fallback_map(tokens);
        // Per-source-token segment and duplicate flags.
        let sep_pos = tokens.iter().position(|t| t == SEP);
        let mut dup_flags = vec![0usize; tokens.len()];
        if let Some(sep) = sep_pos {
            use std::collections::HashSet;
            let left: HashSet<&str> = tokens[..sep]
                .iter()
                .filter(|t| !is_structural(t))
                .map(|t| t.as_str())
                .collect();
            let right: HashSet<&str> = tokens[sep + 1..]
                .iter()
                .filter(|t| !is_structural(t))
                .map(|t| t.as_str())
                .collect();
            for (i, t) in tokens.iter().enumerate() {
                if is_structural(t) {
                    continue;
                }
                let shared = left.contains(t.as_str()) && right.contains(t.as_str());
                dup_flags[i] = shared as usize;
            }
        }
        let mut ids = Vec::with_capacity(body_ids.len() + 1);
        let mut segs = Vec::with_capacity(body_ids.len() + 1);
        let mut dups = Vec::with_capacity(body_ids.len() + 1);
        ids.push(self.vocab.special_id(CLS));
        segs.push(0);
        dups.push(0);
        for (id, &s) in body_ids.into_iter().zip(&src) {
            ids.push(id);
            segs.push(match sep_pos {
                Some(sep) if s > sep => 1,
                _ => 0,
            });
            dups.push(dup_flags[s]);
        }
        ids.truncate(self.cfg.max_len);
        segs.truncate(self.cfg.max_len);
        dups.truncate(self.cfg.max_len);
        (ids, segs, dups)
    }

    fn cls_node(&self, tape: &mut Tape, tokens: &[String], ctx: &mut FwdCtx<'_>) -> NodeId {
        let (ids, segs, dups) = self.encode_input(tokens);
        let extras: [(&Embedding, &[usize]); 2] = [(&self.seg_emb, &segs), (&self.dup_emb, &dups)];
        self.encoder.encode_cls_with(tape, &ids, &extras, ctx)
    }

    /// Masked-LM pre-training over an unlabeled corpus (the "pre-trained LM"
    /// of §2.2): mask `mlm_rate` of the tokens (80% → `[MASK]`, 10% → random,
    /// 10% → unchanged, BERT-style) and predict the originals.
    pub fn pretrain_mlm(&mut self, corpus: &[Vec<String>], batch_size: usize) {
        if self.cfg.pretrain_epochs == 0 || corpus.is_empty() {
            return;
        }
        let mut opt = Adam::new(self.cfg.pretrain_lr);
        let mask_id = self.vocab.special_id(MASK);
        let vocab_len = self.vocab.len();
        for _ in 0..self.cfg.pretrain_epochs {
            let mut order: Vec<usize> = (0..corpus.len()).collect();
            for i in (1..order.len()).rev() {
                let j = self.rng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(batch_size) {
                let mut tape = take_pooled_tape();
                let mut losses = Vec::new();
                for &ci in chunk {
                    let (ids, _segs, _dups) = self.encode_input(&corpus[ci]);
                    let mut masked = ids.clone();
                    let mut positions = Vec::new();
                    let mut targets = Vec::new();
                    for (pos, &orig) in ids.iter().enumerate().skip(1) {
                        if !self.rng.random_bool(self.cfg.mlm_rate as f64) {
                            continue;
                        }
                        positions.push(pos);
                        targets.push(orig);
                        let roll: f64 = self.rng.random_range(0.0..1.0);
                        masked[pos] = if roll < 0.8 {
                            mask_id
                        } else if roll < 0.9 {
                            self.rng.random_range(0..vocab_len)
                        } else {
                            orig
                        };
                    }
                    if positions.is_empty() {
                        continue;
                    }
                    let mut ctx = FwdCtx::eval(&self.store);
                    let h = self.encoder.forward(&mut tape, &masked, &mut ctx);
                    let rows: Vec<NodeId> = positions
                        .iter()
                        .map(|&p| tape.slice_rows(h, p, 1))
                        .collect();
                    let gathered = tape.concat_rows(&rows);
                    let logits = self.mlm_head.forward(&mut tape, gathered, &self.store);
                    let mut one_hot = vec![0.0f32; targets.len() * vocab_len];
                    for (r, &t) in targets.iter().enumerate() {
                        one_hot[r * vocab_len + t] = 1.0;
                    }
                    losses.push(tape.cross_entropy(logits, &one_hot));
                }
                if losses.is_empty() {
                    recycle_tape(tape);
                    continue;
                }
                let loss = tape.mean_nodes(&losses);
                epoch_loss += tape.value(loss).item();
                batches += 1;
                self.store.zero_grad();
                tape.backward(loss, &mut self.store);
                recycle_tape(tape);
                self.store.clip_grad_norm(5.0);
                opt.step(&mut self.store);
            }
            self.pretrain_losses
                .push(epoch_loss / batches.max(1) as f32);
        }
    }

    /// Self-supervised *matched-view* pre-training for pair tasks (the
    /// stand-in for the cross-sequence comparison ability a pre-trained
    /// BERT/RoBERTa brings to entity matching; cf. BERT's next-sentence
    /// prediction). From unlabeled record serializations, positives are
    /// `R [SEP] corrupt(R)` (a corrupted view of the same record) and
    /// negatives are `R [SEP] R'` for a random other record; a dedicated
    /// binary head is trained on the `[CLS]` representation. No task labels
    /// are consumed.
    pub fn pretrain_pairs(&mut self, records: &[Vec<String>], epochs: usize, batch_size: usize) {
        if epochs == 0 || records.len() < 2 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(0x9a17 ^ records.len() as u64);
        let mut opt = Adam::new(self.cfg.pretrain_lr);
        let da_ctx = rotom_augment::DaContext::default();
        let ops = [
            rotom_augment::DaOp::TokenDel,
            rotom_augment::DaOp::TokenSwap,
            rotom_augment::DaOp::SpanDel,
            rotom_augment::DaOp::ColDel,
            rotom_augment::DaOp::ColShuffle,
        ];
        for _ in 0..epochs {
            let mut order: Vec<usize> = (0..records.len()).collect();
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(batch_size) {
                let mut tape = take_pooled_tape();
                let mut losses = Vec::with_capacity(chunk.len());
                for &ri in chunk {
                    let left = &records[ri];
                    let positive = rng.random_bool(0.5);
                    let right = if positive {
                        rotom_augment::corrupt(left, &ops, 3, &da_ctx, &mut rng)
                    } else if rng.random_bool(0.7) {
                        // Hard negative: a *sibling* view — the same record
                        // with 25–50% of its content tokens swapped for
                        // random vocabulary tokens. Distinguishing this from
                        // the corrupted positive is only possible by
                        // comparing tokens across the [SEP], which is the
                        // capability EM fine-tuning needs.
                        let mut sib = rotom_augment::corrupt(left, &ops, 1, &da_ctx, &mut rng);
                        let content: Vec<usize> = sib
                            .iter()
                            .enumerate()
                            .filter(|(_, t)| !rotom_text::token::is_special(t))
                            .map(|(i, _)| i)
                            .collect();
                        // Swap 1–3 content tokens for *plausible* tokens
                        // drawn from other records (same unigram
                        // distribution), mimicking sibling entities rather
                        // than random noise.
                        let n_swap = rng.random_range(1..=3usize).min(content.len().max(1));
                        for _ in 0..n_swap {
                            if content.is_empty() || records.len() < 2 {
                                break;
                            }
                            let pos = content[rng.random_range(0..content.len())];
                            let donor = &records[rng.random_range(0..records.len())];
                            let donor_content: Vec<&String> = donor
                                .iter()
                                .filter(|t| !rotom_text::token::is_special(t))
                                .collect();
                            if let Some(tok) =
                                donor_content.get(rng.random_range(0..donor_content.len().max(1)))
                            {
                                sib[pos] = (*tok).clone();
                            }
                        }
                        sib
                    } else {
                        let mut other = rng.random_range(0..records.len());
                        if other == ri {
                            other = (other + 1) % records.len();
                        }
                        records[other].clone()
                    };
                    let mut pair = left.clone();
                    pair.push(rotom_text::token::SEP.to_string());
                    pair.extend(right);
                    let cls = {
                        let mut ctx = FwdCtx::eval(&self.store);
                        self.cls_node(&mut tape, &pair, &mut ctx)
                    };
                    let logits = self.nsp_head.forward(&mut tape, cls, &self.store);
                    let target = if positive { [0.0, 1.0] } else { [1.0, 0.0] };
                    losses.push(tape.cross_entropy(logits, &target));
                }
                let loss = tape.mean_nodes(&losses);
                self.pretrain_losses.push(tape.value(loss).item());
                self.store.zero_grad();
                tape.backward(loss, &mut self.store);
                recycle_tape(tape);
                self.store.clip_grad_norm(5.0);
                opt.step(&mut self.store);
            }
        }
    }

    /// Initialize the task classification head from the matched-view
    /// pre-training head (binary tasks only). For entity matching the two
    /// heads share semantics — class 1 = "same entity" — so this transfers
    /// the pre-trained comparison circuit into the fine-tuning starting
    /// point, playing the role of RoBERTa's task-adjacent initialization.
    pub fn init_head_from_nsp(&mut self) {
        if self.num_classes != 2 {
            return;
        }
        let (nw, nb) = self.nsp_head.params();
        let (hw, hb) = self.head.params();
        let w = self.store.value(nw).clone();
        *self.store.value_mut(hw) = w;
        if let (Some(nb), Some(hb)) = (nb, hb) {
            let b = self.store.value(nb).clone();
            *self.store.value_mut(hb) = b;
        }
    }

    /// Predicted class for a sequence.
    pub fn predict(&self, tokens: &[String]) -> usize {
        rotom_nn::argmax(&self.predict_proba(tokens))
    }

    /// Enable (capacity > 0) or disable the score cache, replacing any
    /// environment-derived setting. Mainly for benchmarks and tests, which
    /// should not mutate process-wide environment variables.
    pub fn set_score_cache(&mut self, capacity: usize) {
        self.score_cache = (capacity > 0).then(|| ScoreCache::with_capacity(capacity));
    }

    /// The score cache, if enabled (telemetry / diagnostics).
    pub fn score_cache(&self) -> Option<&ScoreCache> {
        self.score_cache.as_ref()
    }

    /// Number of classes in the classification head's output.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Select the inference GEMM tier (f32 or quantized i8). Training is
    /// unaffected — the tape never consults the mode — and the f32 weights
    /// stay authoritative: quantized panels are derived lazily and
    /// invalidated by the same generation slots as the packed f32 panels.
    pub fn set_quant_mode(&mut self, mode: QuantMode) {
        self.store.set_quant_mode(mode);
    }

    /// The active inference GEMM tier.
    pub fn quant_mode(&self) -> QuantMode {
        self.store.quant_mode()
    }

    /// The parameter store's monotone generation fingerprint: the sum of
    /// every tensor's write-generation. Any parameter mutation — an
    /// optimizer step or a checkpoint load — strictly increases it, which
    /// is what lets score caches and serving planes attribute results to
    /// one exact parameter state.
    pub fn generation_sum(&self) -> u64 {
        self.store.generation_sum()
    }

    /// Score-cache fingerprint: the generation sum with the quant tier
    /// folded into the (practically unreachable) top bit, so switching
    /// between f32 and i8 inference invalidates cached scores exactly like
    /// a parameter write would.
    fn cache_fingerprint(&self) -> u64 {
        let quant_bit = (self.store.quant_mode() == QuantMode::I8) as u64;
        self.store.generation_sum() ^ (quant_bit << 63)
    }

    /// Tape-free class logits for a sequence — the inference plane's entry
    /// point. No graph nodes or gradient buffers are built; activations live
    /// in recycled per-thread workspaces and the forward GEMMs reuse the
    /// store's packed-panel weight cache read-only. Bit-identical to the
    /// tape forward in eval mode.
    fn infer_logits(&self, tokens: &[String]) -> Vec<f32> {
        let (ids, segs, dups) = self.encode_input(tokens);
        // Cache key: the full encoded input. `ids` alone is not sufficient
        // (segment/duplicate features are separate model inputs), so all
        // three streams are joined with an out-of-vocabulary separator.
        let key: Option<Vec<usize>> = self.score_cache.as_ref().map(|_| {
            let mut k = Vec::with_capacity(3 * ids.len() + 2);
            k.extend_from_slice(&ids);
            k.push(usize::MAX);
            k.extend_from_slice(&segs);
            k.push(usize::MAX);
            k.extend_from_slice(&dups);
            k
        });
        if let (Some(cache), Some(key)) = (&self.score_cache, &key) {
            if let Some(hit) = cache.lookup(self.cache_fingerprint(), key) {
                return hit;
            }
        }
        let pool = RotomPool::global();
        let logits = with_infer_scratch(|scratch| {
            let mut cls = scratch.take(self.cfg.d_model);
            let extras: [(&Embedding, &[usize]); 2] =
                [(&self.seg_emb, &segs), (&self.dup_emb, &dups)];
            self.encoder
                .infer_encode_cls_with(&ids, &extras, &self.store, pool, scratch, &mut cls);
            let mut logits = vec![0.0f32; self.num_classes];
            self.head
                .infer_forward(&cls, 1, kernels::Act::None, &self.store, pool, &mut logits);
            scratch.put(cls);
            logits
        });
        if let (Some(cache), Some(key)) = (&self.score_cache, &key) {
            cache.insert(self.cache_fingerprint(), key, &logits);
        }
        logits
    }

    /// Tape-free class probabilities for a whole batch, fanned out over
    /// `pool` (input order preserved). Equivalent to mapping
    /// [`predict_proba`](MetaTarget::predict_proba) but named to make the
    /// execution plane explicit at call sites.
    pub fn score_batch(&self, batch: &[Vec<String>], pool: &RotomPool) -> Vec<Vec<f32>> {
        pool.map(batch.len(), |i| {
            rotom_nn::softmax_slice(&self.infer_logits(&batch[i]))
        })
    }

    /// Class probabilities via the original tape-building forward. Kept for
    /// the inference-plane equivalence tests and benchmarks; regular callers
    /// should use [`predict_proba`](MetaTarget::predict_proba).
    pub fn predict_proba_tape(&self, tokens: &[String]) -> Vec<f32> {
        with_pooled_tape(|tape| {
            let mut ctx = FwdCtx::eval(&self.store);
            let cls = self.cls_node(tape, tokens, &mut ctx);
            let logits = self.head.forward(tape, cls, &self.store);
            rotom_nn::softmax_slice(tape.value(logits).row_slice(0))
        })
    }

    /// Per-example cross-entropy losses via the tape forward (equivalence
    /// baseline for [`MetaTarget::per_example_losses`]).
    pub fn per_example_losses_tape(&self, items: &[WeightedItem]) -> Vec<f32> {
        RotomPool::global().map(items.len(), |i| {
            let item = &items[i];
            with_pooled_tape(|tape| {
                let mut ctx = FwdCtx::eval(&self.store);
                let cls = self.cls_node(tape, &item.tokens, &mut ctx);
                let logits = self.head.forward(tape, cls, &self.store);
                let ce = tape.cross_entropy(logits, &item.target);
                tape.value(ce).item()
            })
        })
    }

    /// MixDA training step: interpolate the `[CLS]` representations of the
    /// original and augmented sequences with `λ ~ Beta(α, α)` folded to
    /// `[0.5, 1]`, classify the mix, and backpropagate. Returns the loss.
    pub fn mixda_loss_backward(
        &mut self,
        pairs: &[(Vec<String>, Vec<String>, usize)],
        alpha: f32,
        rng: &mut StdRng,
    ) -> f32 {
        let mut tape = take_pooled_tape();
        let mut losses = Vec::with_capacity(pairs.len());
        let dropout = self.cfg.dropout;
        for (orig, aug, label) in pairs {
            let lambda = sample_lambda(alpha, rng);
            let (h_orig, h_aug) = {
                let mut ctx = FwdCtx::train(&self.store, dropout, rng);
                let a = self.cls_node(&mut tape, orig, &mut ctx);
                let b = self.cls_node(&mut tape, aug, &mut ctx);
                (a, b)
            };
            let scaled_orig = tape.scale(h_orig, lambda);
            let scaled_aug = tape.scale(h_aug, 1.0 - lambda);
            let mixed = tape.add(scaled_orig, scaled_aug);
            let logits = self.head.forward(&mut tape, mixed, &self.store);
            let mut target = vec![0.0f32; self.num_classes];
            target[*label] = 1.0;
            losses.push(tape.cross_entropy(logits, &target));
        }
        let loss = tape.mean_nodes(&losses);
        let value = tape.value(loss).item();
        self.store.zero_grad();
        tape.backward(loss, &mut self.store);
        recycle_tape(tape);
        self.store.clip_grad_norm(5.0);
        value
    }

    /// Apply one optimizer step (after an explicit `*_loss_backward`).
    pub fn step(&mut self) {
        self.opt.step(&mut self.store);
    }

    /// Save all parameters to a checkpoint file (see
    /// [`rotom_nn::checkpoint`] for the format). The vocabulary and
    /// configuration are not stored; reconstruct the model with the same
    /// corpus/config/seed before [`load_checkpoint`](Self::load_checkpoint).
    pub fn save_checkpoint(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), rotom_nn::checkpoint::CheckpointError> {
        rotom_nn::checkpoint::save(&self.store, path)
    }

    /// Load parameters from a checkpoint written by
    /// [`save_checkpoint`](Self::save_checkpoint) into an identically
    /// constructed model.
    pub fn load_checkpoint(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), rotom_nn::checkpoint::CheckpointError> {
        rotom_nn::checkpoint::load(&mut self.store, path)
    }

    /// Save the model's full *training* state — parameters, optimizer
    /// moments, learning rate, and internal RNG stream — into a checkpoint
    /// bag under `prefix`. Together with
    /// [`load_train_state`](Self::load_train_state) on an identically
    /// constructed model, this makes fine-tuning resumable bit-identically.
    pub fn save_train_state(&self, bag: &mut rotom_nn::StateBag, prefix: &str) {
        bag.put_f32s(format!("{prefix}.params"), self.store.flat_values());
        self.opt.save_state(bag, &format!("{prefix}.adam"));
        bag.put_f32(format!("{prefix}.lr"), self.lr);
        bag.put_u64s(format!("{prefix}.rng"), self.rng.state().to_vec());
    }

    /// Restore state saved by [`save_train_state`](Self::save_train_state).
    pub fn load_train_state(
        &mut self,
        bag: &rotom_nn::StateBag,
        prefix: &str,
    ) -> Result<(), rotom_nn::CheckpointError> {
        let params = bag.get_f32s(&format!("{prefix}.params"))?;
        if params.len() != self.store.num_scalars() {
            return Err(rotom_nn::CheckpointError::Mismatch(format!(
                "model {prefix:?}: {} parameters vs checkpoint {}",
                self.store.num_scalars(),
                params.len()
            )));
        }
        self.store.set_flat(params);
        self.opt
            .load_state(bag, &format!("{prefix}.adam"), &self.store)?;
        self.lr = bag.get_f32(&format!("{prefix}.lr"))?;
        self.opt.set_lr(self.lr);
        let rng = bag.get_u64s(&format!("{prefix}.rng"))?;
        if rng.len() != 4 {
            return Err(rotom_nn::CheckpointError::Mismatch(format!(
                "{prefix}.rng: expected 4 state words, found {}",
                rng.len()
            )));
        }
        self.rng = StdRng::from_state([rng[0], rng[1], rng[2], rng[3]]);
        Ok(())
    }

    /// Scale the learning rate by `factor` (health-guard rollback decay),
    /// keeping the optimizer in sync.
    pub fn scale_lr(&mut self, factor: f32) {
        self.lr *= factor;
        self.opt.set_lr(self.lr);
    }

    /// Snapshot all trainable parameters (checkpoint selection).
    pub fn snapshot(&self) -> Vec<f32> {
        self.store.flat_values()
    }

    /// [`snapshot`](Self::snapshot) into a reusable buffer — the epoch loops
    /// overwrite one best-checkpoint buffer in place instead of allocating
    /// `O(|params|)` on every improvement.
    pub fn snapshot_into(&self, out: &mut Vec<f32>) {
        self.store.flat_values_into(out);
    }

    /// Restore a parameter snapshot.
    pub fn restore(&mut self, snap: &[f32]) {
        self.store.set_flat(snap);
    }
}

impl MetaTarget for TinyLm {
    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn predict_proba(&self, tokens: &[String]) -> Vec<f32> {
        rotom_nn::softmax_slice(&self.infer_logits(tokens))
    }

    fn weighted_loss_backward(
        &mut self,
        items: &[WeightedItem],
        train: bool,
        rng: &mut StdRng,
    ) -> f32 {
        assert!(!items.is_empty());
        let mut tape = take_pooled_tape();
        let mut losses = Vec::with_capacity(items.len());
        let dropout = if train { self.cfg.dropout } else { 0.0 };
        for item in items {
            let cls = {
                let mut ctx = if train {
                    FwdCtx::train(&self.store, dropout, rng)
                } else {
                    FwdCtx::eval(&self.store)
                };
                self.cls_node(&mut tape, &item.tokens, &mut ctx)
            };
            let logits = self.head.forward(&mut tape, cls, &self.store);
            let ce = tape.cross_entropy(logits, &item.target);
            losses.push(tape.scale(ce, item.weight));
        }
        let loss = tape.mean_nodes(&losses);
        let value = tape.value(loss).item();
        self.store.zero_grad();
        tape.backward(loss, &mut self.store);
        recycle_tape(tape);
        self.store.clip_grad_norm(5.0);
        value
    }

    fn per_example_losses(&self, items: &[WeightedItem]) -> Vec<f32> {
        // Forward-only and per-example independent: fan out across the pool
        // on the tape-free inference plane, then apply the tape's exact
        // cross-entropy arithmetic (shared softmax statistics, f64 target
        // accumulation) to the logits.
        RotomPool::global().map(items.len(), |i| {
            let item = &items[i];
            let logits = self.infer_logits(&item.tokens);
            let (max, sum) = with_infer_scratch(|scratch| {
                let mut probs = scratch.take(logits.len());
                let stats = kernels::softmax_row_fwd(&logits, None, &mut probs);
                scratch.put(probs);
                stats
            });
            let lse = sum.ln() + max;
            let mut loss = 0.0f64;
            for (j, &t) in item.target.iter().enumerate() {
                if t != 0.0 {
                    loss -= (t * (logits[j] - lse)) as f64;
                }
            }
            loss as f32
        })
    }

    fn flat_params(&self) -> Vec<f32> {
        self.store.flat_values()
    }

    fn set_flat_params(&mut self, flat: &[f32]) {
        self.store.set_flat(flat);
    }

    fn add_scaled(&mut self, delta: &[f32], alpha: f32) {
        self.store.add_scaled_flat(delta, alpha);
    }

    fn flat_grads(&self) -> Vec<f32> {
        self.store.flat_grads()
    }

    fn optimizer_step(&mut self) {
        self.opt.step(&mut self.store);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn grad_l2(&self) -> f32 {
        self.store.grad_norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_text::tokenize;

    fn corpus() -> Vec<Vec<String>> {
        vec![
            tokenize("the quick brown fox jumps"),
            tokenize("a lazy dog sleeps all day"),
            tokenize("the brown dog jumps high"),
            tokenize("a quick fox runs away fast"),
        ]
    }

    fn model() -> TinyLm {
        TinyLm::from_corpus(&corpus(), 2, &ModelConfig::test_tiny(), 1e-3, 0)
    }

    #[test]
    fn predict_proba_is_distribution() {
        let m = model();
        let p = m.predict_proba(&tokenize("the quick fox"));
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn mlm_pretraining_reduces_loss() {
        let mut m = model();
        let mut big_corpus = Vec::new();
        for _ in 0..6 {
            big_corpus.extend(corpus());
        }
        let mut cfg = ModelConfig::test_tiny();
        cfg.pretrain_epochs = 5;
        m.cfg = cfg;
        m.pretrain_mlm(&big_corpus, 8);
        let first = m.pretrain_losses[0];
        let last = *m.pretrain_losses.last().unwrap();
        assert!(last < first, "MLM loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn fine_tuning_fits_toy_labels() {
        let mut m = model();
        let items: Vec<WeightedItem> = vec![
            WeightedItem::hard(tokenize("the quick brown fox jumps"), 0, 2),
            WeightedItem::hard(tokenize("a lazy dog sleeps all day"), 1, 2),
        ];
        let mut rng = StdRng::seed_from_u64(1);
        let first = m.weighted_loss_backward(&items, true, &mut rng);
        for _ in 0..40 {
            m.weighted_loss_backward(&items, true, &mut rng);
            m.optimizer_step();
        }
        let last = m.weighted_loss_backward(&items, false, &mut rng);
        assert!(last < first * 0.5, "loss {first} -> {last}");
        assert_eq!(m.predict(&tokenize("the quick brown fox jumps")), 0);
        assert_eq!(m.predict(&tokenize("a lazy dog sleeps all day")), 1);
    }

    #[test]
    fn mixda_step_runs_and_learns() {
        let mut m = model();
        let pairs = vec![
            (
                tokenize("the quick brown fox jumps"),
                tokenize("the quick fox jumps"),
                0,
            ),
            (
                tokenize("a lazy dog sleeps all day"),
                tokenize("a lazy dog sleeps"),
                1,
            ),
        ];
        let mut rng = StdRng::seed_from_u64(5);
        let first = m.mixda_loss_backward(&pairs, 0.8, &mut rng);
        for _ in 0..40 {
            m.mixda_loss_backward(&pairs, 0.8, &mut rng);
            m.step();
        }
        let last = m.mixda_loss_backward(&pairs, 0.8, &mut rng);
        assert!(last < first, "mixda loss {first} -> {last}");
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut m = model();
        let snap = m.snapshot();
        let mut rng = StdRng::seed_from_u64(2);
        let items = vec![WeightedItem::hard(tokenize("the quick fox"), 0, 2)];
        m.weighted_loss_backward(&items, true, &mut rng);
        m.optimizer_step();
        assert_ne!(m.snapshot(), snap);
        m.restore(&snap);
        assert_eq!(m.snapshot(), snap);
    }

    #[test]
    fn checkpoint_file_roundtrip() {
        let m = model();
        let dir = std::env::temp_dir().join("rotom_tinylm_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.ckpt");
        m.save_checkpoint(&path).unwrap();
        let mut other = model();
        // Same construction seed → same shapes; different values after a
        // training step.
        let mut rng = StdRng::seed_from_u64(9);
        let items = vec![WeightedItem::hard(tokenize("the quick fox"), 0, 2)];
        other.weighted_loss_backward(&items, true, &mut rng);
        other.optimizer_step();
        assert_ne!(other.snapshot(), m.snapshot());
        other.load_checkpoint(&path).unwrap();
        assert_eq!(other.snapshot(), m.snapshot());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn infer_plane_matches_tape_bitwise() {
        let mut m = model();
        // Train a few steps so weights are not at init.
        let items: Vec<WeightedItem> = vec![
            WeightedItem::hard(tokenize("the quick brown fox jumps"), 0, 2),
            WeightedItem::hard(tokenize("a lazy dog sleeps all day"), 1, 2),
        ];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..3 {
            m.weighted_loss_backward(&items, true, &mut rng);
            m.optimizer_step();
        }
        for text in [
            "the quick fox",
            "a lazy dog sleeps [SEP] a lazy dog sleeps",
            "brown",
        ] {
            let toks = tokenize(text);
            assert_eq!(
                m.predict_proba(&toks),
                m.predict_proba_tape(&toks),
                "{text}"
            );
        }
        assert_eq!(
            m.per_example_losses(&items),
            m.per_example_losses_tape(&items)
        );
    }

    #[test]
    fn score_cache_hits_are_bit_identical_and_invalidate_on_update() {
        let mut m = model();
        m.set_score_cache(64);
        let toks = tokenize("the quick brown fox jumps");
        let cold = m.predict_proba(&toks);
        let warm = m.predict_proba(&toks);
        assert_eq!(cold, warm);
        let (hits, misses) = m.score_cache().unwrap().hit_miss();
        assert_eq!((hits, misses), (1, 1));
        // A parameter update must invalidate: the next score recomputes.
        let items = vec![WeightedItem::hard(tokenize("the quick fox"), 0, 2)];
        let mut rng = StdRng::seed_from_u64(4);
        m.weighted_loss_backward(&items, true, &mut rng);
        m.optimizer_step();
        let updated = m.predict_proba(&toks);
        assert_eq!(updated, m.predict_proba_tape(&toks));
        let (_, misses_after) = m.score_cache().unwrap().hit_miss();
        assert!(misses_after > misses, "post-update score must be a miss");
    }

    #[test]
    fn score_batch_matches_serial_predictions() {
        let m = model();
        let batch: Vec<Vec<String>> = corpus();
        let pool = RotomPool::new(4);
        let scores = m.score_batch(&batch, &pool);
        for (toks, probs) in batch.iter().zip(&scores) {
            assert_eq!(probs, &m.predict_proba(toks));
        }
    }

    #[test]
    fn truncation_respects_max_len() {
        let m = model();
        let long: Vec<String> = (0..100).map(|i| format!("tok{i}")).collect();
        // Must not panic; positional table is max_len wide.
        let p = m.predict_proba(&long);
        assert_eq!(p.len(), 2);
    }
}
