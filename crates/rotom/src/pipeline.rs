//! End-to-end training pipelines for the five compared methods (§6.1):
//! Baseline (plain LM fine-tuning), MixDA, InvDA, Rotom, and Rotom+SSL.
//!
//! All pipelines share the same skeleton: build a vocabulary from the task
//! corpus, MLM-pre-train the TinyLm encoder on unlabeled data (the
//! "pre-trained LM"), fine-tune with the method-specific recipe, select the
//! checkpoint with the best validation metric, and evaluate on the test set.

use crate::config::RotomConfig;
use crate::metrics::{accuracy, prf1, PrF1};
use crate::model::TinyLm;
use crate::runtime::{FtConfig, FtReport, FtSession};
use rotom_augment::{apply, apply_batch, DaContext, DaOp, InvDa};
use rotom_datasets::{TaskDataset, TaskKind};
use rotom_meta::{guard_step, MetaTarget, MetaTrainer, WeightedItem};
use rotom_nn::telemetry::{self, Value};
use rotom_nn::{CheckpointError, Halt, HealthMonitor, NonFinitePolicy, RotomPool, StateBag};
use rotom_rng::rngs::StdRng;
use rotom_rng::{RngCore, RngExt, SeedableRng};
use rotom_text::example::{AugExample, Example};
use rotom_text::vocab::Vocab;
use std::time::Instant;

/// The five methods compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Fine-tune the LM on the original examples only.
    Baseline,
    /// One simple DA operator applied with representation interpolation.
    MixDa,
    /// The seq2seq InvDA operator applied with the same interpolation.
    InvDa,
    /// Meta-learned filtering + weighting over original + MixDA + InvDA
    /// examples (Algorithm 2).
    Rotom,
    /// Rotom extended with semi-supervised consistency training (§5).
    RotomSsl,
}

impl Method {
    /// All methods in the order the paper's tables list them.
    pub const ALL: [Method; 5] = [
        Method::Baseline,
        Method::MixDa,
        Method::InvDa,
        Method::Rotom,
        Method::RotomSsl,
    ];

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::Baseline => "Baseline",
            Method::MixDa => "MixDA",
            Method::InvDa => "InvDA",
            Method::Rotom => "Rotom",
            Method::RotomSsl => "Rotom+SSL",
        }
    }
}

/// The single simple DA operator MixDA uses, "tuned as a hyper-parameter …
/// one operator that generally works well for each type of task".
pub fn default_op(kind: TaskKind) -> DaOp {
    match kind {
        TaskKind::EntityMatching => DaOp::SpanDel,
        TaskKind::ErrorDetection => DaOp::TokenDel,
        TaskKind::TextClassification => DaOp::TokenRepl,
    }
}

/// Result of one training run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Method name.
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Test accuracy.
    pub accuracy: f32,
    /// Positive-class precision/recall/F1 (meaningful for binary tasks).
    pub prf1: PrF1,
    /// Wall-clock training time in seconds (Figure 4).
    pub train_seconds: f32,
    /// Labeled examples used.
    pub train_size: usize,
    /// Per-epoch validation metric (F1 or accuracy per task kind), in epoch
    /// order — the "loss curve tail" snapshotted by the golden-run suite.
    pub val_curve: Vec<f32>,
}

impl RunResult {
    /// The headline metric the paper reports for this task kind: F1 for the
    /// binary EM/EDT tasks, accuracy for text classification.
    pub fn headline(&self, kind: TaskKind) -> f32 {
        match kind {
            TaskKind::TextClassification => self.accuracy,
            _ => self.prf1.f1,
        }
    }

    /// Deterministic metrics snapshot for golden-run comparison. Excludes
    /// wall-clock time (non-deterministic) and includes the per-epoch
    /// validation curve so trajectory changes are caught, not just final
    /// metrics.
    pub fn snapshot(&self) -> crate::metrics::MetricsSnapshot {
        let mut snap = crate::metrics::MetricsSnapshot::new();
        snap.push("accuracy", self.accuracy);
        snap.push("precision", self.prf1.precision);
        snap.push("recall", self.prf1.recall);
        snap.push("f1", self.prf1.f1);
        snap.push("train_size", self.train_size as f32);
        for (i, v) in self.val_curve.iter().enumerate() {
            snap.push(format!("val_curve_{i}"), *v);
        }
        snap
    }
}

/// A pre-trained TinyLm checkpoint shareable across methods and seeds (the
/// analogue of loading the same pre-trained RoBERTa for every fine-tuning
/// run). Built once per task with [`prepare_base`].
#[derive(Clone)]
pub struct PretrainedBase {
    vocab: Vocab,
    params: Vec<f32>,
    num_classes: usize,
}

/// Build the task vocabulary, run MLM (and, for entity matching,
/// matched-view pair) pre-training, and snapshot the result.
pub fn prepare_base(task: &TaskDataset, cfg: &RotomConfig, seed: u64) -> PretrainedBase {
    let corpus: Vec<Vec<String>> = task
        .unlabeled
        .iter()
        .chain(task.train_pool.iter().map(|e| &e.tokens))
        .cloned()
        .collect();
    let mut model = TinyLm::from_corpus(&corpus, task.num_classes, &cfg.model, cfg.train.lr, seed);
    let pretrain_sample: Vec<Vec<String>> = corpus.iter().take(400).cloned().collect();
    model.pretrain_mlm(&pretrain_sample, cfg.train.batch_size);
    if task.kind == TaskKind::EntityMatching {
        let halves: Vec<Vec<String>> = pretrain_sample
            .iter()
            .flat_map(
                |seq| match seq.iter().position(|t| t == rotom_text::token::SEP) {
                    Some(i) => vec![seq[..i].to_vec(), seq[i + 1..].to_vec()],
                    None => vec![seq.clone()],
                },
            )
            .filter(|h| !h.is_empty())
            .take(300)
            .collect();
        model.pretrain_pairs(
            &halves,
            cfg.model.pair_pretrain_epochs,
            cfg.train.batch_size,
        );
        model.init_head_from_nsp();
    }
    PretrainedBase {
        vocab: model.vocab().clone(),
        params: model.snapshot(),
        num_classes: task.num_classes,
    }
}

impl PretrainedBase {
    /// Instantiate a fresh fine-tunable model from the checkpoint.
    pub fn instantiate(&self, cfg: &RotomConfig, seed: u64) -> TinyLm {
        let mut model = TinyLm::new(
            self.vocab.clone(),
            self.num_classes,
            &cfg.model,
            cfg.train.lr,
            seed,
        );
        model.restore(&self.params);
        model
    }
}

/// Evaluate a model on labeled examples, scoring examples across the global
/// worker pool. Prediction is eval-mode (consumes no RNG) and results come
/// back in input order, so the outcome is identical to a serial loop.
pub fn evaluate(model: &TinyLm, test: &[Example]) -> (f32, PrF1) {
    evaluate_with_pool(model, test, RotomPool::global())
}

/// [`evaluate`] with an explicit pool (tests pin worker counts with this).
pub fn evaluate_with_pool(model: &TinyLm, test: &[Example], pool: &RotomPool) -> (f32, PrF1) {
    let pred: Vec<usize> = pool.map(test.len(), |i| model.predict(&test[i].tokens));
    let gold: Vec<usize> = test.iter().map(|e| e.label).collect();
    (accuracy(&pred, &gold), prf1(&pred, &gold, 1))
}

fn valid_metric(model: &TinyLm, valid: &[Example], kind: TaskKind) -> f32 {
    let (acc, f1) = evaluate(model, valid);
    match kind {
        TaskKind::TextClassification => acc,
        // For the binary tasks prefer F1 but fall back to accuracy when the
        // tiny validation sample has no positives.
        _ => {
            if valid.iter().any(|e| e.label == 1) {
                f1.f1
            } else {
                acc
            }
        }
    }
}

/// Run `method` on `task` with the given labeled train/valid split.
///
/// `invda` is the (optionally pre-trained, shareable across methods) InvDA
/// operator; when `None` and the method needs it, one is trained on the
/// task's unlabeled corpus.
pub fn run_method(
    task: &TaskDataset,
    train: &[Example],
    valid: &[Example],
    method: Method,
    cfg: &RotomConfig,
    invda: Option<&InvDa>,
    seed: u64,
) -> RunResult {
    run_method_with_base(task, train, valid, method, cfg, invda, None, seed)
}

/// [`run_method`] with an optional shared pre-trained checkpoint; when
/// `base` is `None`, pre-training runs inside the call.
#[allow(clippy::too_many_arguments)]
pub fn run_method_with_base(
    task: &TaskDataset,
    train: &[Example],
    valid: &[Example],
    method: Method,
    cfg: &RotomConfig,
    invda: Option<&InvDa>,
    base: Option<&PretrainedBase>,
    seed: u64,
) -> RunResult {
    run_method_impl(task, train, valid, method, cfg, invda, base, seed, None)
        .expect("training without a fault-tolerant session cannot fail")
}

/// [`run_method_with_base`] under the fault-tolerant runtime: periodic
/// crash-safe checkpoints, resume, and numeric-health guarding with
/// rollback (see [`FtConfig`]).
///
/// A resumed run is **bit-identical** to an uninterrupted one: everything
/// before the epoch loop is recomputed deterministically from `seed`, and
/// every piece of mutable loop state (model parameters, Adam moments,
/// learning rate, RNG streams, meta models, best snapshot, validation
/// curve) is restored from the checkpoint.
///
/// Errors surface torn/corrupt/mismatched checkpoints and I/O failures;
/// health incidents are reported in the returned [`FtReport`] instead.
#[allow(clippy::too_many_arguments)]
pub fn run_method_ft(
    task: &TaskDataset,
    train: &[Example],
    valid: &[Example],
    method: Method,
    cfg: &RotomConfig,
    invda: Option<&InvDa>,
    base: Option<&PretrainedBase>,
    seed: u64,
    ft: &FtConfig,
) -> Result<(RunResult, FtReport), CheckpointError> {
    let resume_bag = match (&ft.checkpoint, ft.resume) {
        (Some(path), true) if path.exists() => {
            Some(StateBag::load_path(path, NonFinitePolicy::Reject)?)
        }
        _ => None,
    };
    let tag = run_tag(method, cfg, train.len(), seed);
    let mut session = FtSession::new(ft.clone(), tag, resume_bag);
    let result = run_method_impl(
        task,
        train,
        valid,
        method,
        cfg,
        invda,
        base,
        seed,
        Some(&mut session),
    )?;
    Ok((result, session.report))
}

/// Identity of a run, embedded in every checkpoint: a checkpoint written by
/// a run with a different method/seed/schedule is rejected on resume.
fn run_tag(method: Method, cfg: &RotomConfig, train_len: usize, seed: u64) -> Vec<u64> {
    vec![
        method as u64,
        seed,
        cfg.train.epochs as u64,
        cfg.train.batch_size as u64,
        train_len as u64,
    ]
}

#[allow(clippy::too_many_arguments)]
fn run_method_impl(
    task: &TaskDataset,
    train: &[Example],
    valid: &[Example],
    method: Method,
    cfg: &RotomConfig,
    invda: Option<&InvDa>,
    base: Option<&PretrainedBase>,
    seed: u64,
    ft: Option<&mut FtSession>,
) -> Result<RunResult, CheckpointError> {
    assert!(!train.is_empty(), "empty training set");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);

    // Corpus for on-demand InvDA / pre-training.
    let mut corpus: Vec<Vec<String>> = task.unlabeled.clone();
    corpus.extend(train.iter().map(|e| e.tokens.clone()));

    // InvDA (train on demand when not shared).
    let needs_invda = matches!(method, Method::InvDa | Method::Rotom | Method::RotomSsl);
    let local_invda;
    let invda = if needs_invda {
        match invda {
            Some(m) => Some(m),
            None => {
                local_invda = InvDa::train(&corpus, cfg.invda.clone(), seed ^ 0x1d);
                Some(&local_invda)
            }
        }
    } else {
        None
    };

    let local_base;
    let base = match base {
        Some(b) => b,
        None => {
            local_base = prepare_base(task, cfg, seed);
            &local_base
        }
    };
    let mut model = base.instantiate(cfg, seed);

    let start = Instant::now();
    let body = match method {
        Method::Baseline => EpochBody::Plain,
        Method::MixDa => EpochBody::Mixda(MixSource::SimpleOp),
        Method::InvDa => EpochBody::Mixda(MixSource::InvDa(invda.expect("invda required"))),
        Method::Rotom | Method::RotomSsl => {
            let ssl = method == Method::RotomSsl;
            let mut meta_cfg = cfg.meta.clone();
            meta_cfg.ssl = if ssl {
                Some(meta_cfg.ssl.unwrap_or_default())
            } else {
                None
            };
            let enc_cfg = cfg.model.encoder(model.vocab().len());
            let trainer =
                MetaTrainer::new(task.num_classes, model.vocab().clone(), enc_cfg, meta_cfg);
            let unlabeled: Vec<Vec<String>> = if ssl {
                task.sample_unlabeled(cfg.train.max_unlabeled, cfg.train.seed)
            } else {
                Vec::new()
            };
            EpochBody::Rotom {
                task,
                invda: invda.expect("invda required"),
                trainer,
                unlabeled,
            }
        }
    };
    let val_curve = run_epoch_loop(&mut model, train, valid, task.kind, cfg, body, &mut rng, ft)?;
    let train_seconds = start.elapsed().as_secs_f32();

    let (acc, f1) = evaluate(&model, &task.test);
    Ok(RunResult {
        method: method.name().to_string(),
        dataset: task.name.clone(),
        accuracy: acc,
        prf1: f1,
        train_seconds,
        train_size: train.len(),
        val_curve,
    })
}

fn shuffled<'a>(items: &'a [Example], rng: &mut StdRng) -> Vec<&'a Example> {
    let mut refs: Vec<&Example> = items.iter().collect();
    for i in (1..refs.len()).rev() {
        let j = rng.random_range(0..=i);
        refs.swap(i, j);
    }
    refs
}

enum MixSource<'a> {
    SimpleOp,
    InvDa(&'a InvDa),
}

/// Method-specific state of one epoch-loop run. The loop skeleton
/// (shuffling, validation, checkpoint selection, fault tolerance) is shared
/// by [`run_epoch_loop`]; the body holds what differs per method.
enum EpochBody<'a> {
    /// Plain fine-tuning on the original examples.
    Plain,
    /// MixDA-style fine-tuning: λ-interpolation of the original and
    /// operator-augmented representations (simple op or InvDA).
    Mixda(MixSource<'a>),
    /// Rotom / Rotom+SSL: Algorithm 2 over a per-epoch augmented pool.
    Rotom {
        task: &'a TaskDataset,
        invda: &'a InvDa,
        trainer: MetaTrainer,
        unlabeled: Vec<Vec<String>>,
    },
}

/// Emit one `step` telemetry record for a finished backward pass, just
/// before the optimizer step is applied (gradients are still intact, so the
/// grad-norm is the one the update will consume). `step_start` is the
/// `Instant` captured at the top of the step when telemetry is enabled;
/// `None` means disabled and the function is a no-op. Reads model state
/// only — never consumes RNG, so runs are bit-identical either way.
fn emit_step_record(
    name: &str,
    model: &TinyLm,
    loss: f32,
    examples: usize,
    step_start: Option<std::time::Instant>,
) {
    let Some(start) = step_start else { return };
    let wall_us = start.elapsed().as_micros() as u64;
    let examples_per_sec = if wall_us > 0 {
        examples as f64 / (wall_us as f64 / 1e6)
    } else {
        0.0
    };
    telemetry::emit(
        "step",
        name,
        &[
            ("loss", Value::F64(loss as f64)),
            ("lr", Value::F64(model.learning_rate() as f64)),
            ("grad_norm", Value::F64(model.grad_l2() as f64)),
            ("examples", Value::U64(examples as u64)),
            ("wall_us", Value::U64(wall_us)),
            ("examples_per_sec", Value::F64(examples_per_sec)),
        ],
    );
}

/// Run one training epoch. With a guard, every optimizer step is health
/// checked (and subject to injected faults); `Err(Halt)` reports the first
/// divergent step without applying it.
fn run_one_epoch(
    model: &mut TinyLm,
    train: &[Example],
    valid: &[Example],
    kind: TaskKind,
    cfg: &RotomConfig,
    body: &mut EpochBody<'_>,
    rng: &mut StdRng,
    mut guard: Option<&mut HealthMonitor>,
) -> Result<(), Halt> {
    match body {
        EpochBody::Plain => {
            let k = model.num_classes();
            for chunk in shuffled(train, rng).chunks(cfg.train.batch_size) {
                let step_start = telemetry::enabled().then(std::time::Instant::now);
                let items: Vec<WeightedItem> = chunk
                    .iter()
                    .map(|e| WeightedItem::hard(e.tokens.clone(), e.label, k))
                    .collect();
                let loss = model.weighted_loss_backward(&items, true, rng);
                if let Some(monitor) = guard.as_deref_mut() {
                    guard_step(monitor, model, loss)?;
                }
                emit_step_record("train.step", model, loss, chunk.len(), step_start);
                model.optimizer_step();
            }
        }
        EpochBody::Mixda(source) => {
            let op = default_op(kind);
            let da_ctx = DaContext::default();
            let workers = RotomPool::global();
            for chunk in shuffled(train, rng).chunks(cfg.train.batch_size) {
                let step_start = telemetry::enabled().then(std::time::Instant::now);
                // Augment the whole chunk across the pool. One base seed
                // drawn from the caller RNG is sharded per example inside
                // the batch APIs, so the output is independent of the
                // worker count.
                let aug_seed = rng.next_u64();
                let inputs: Vec<&[String]> = chunk.iter().map(|e| e.tokens.as_slice()).collect();
                let augs = match &source {
                    MixSource::SimpleOp => apply_batch(op, &inputs, &da_ctx, aug_seed, workers),
                    MixSource::InvDa(m) => m.augment_batch(&inputs, aug_seed, workers),
                };
                let pairs: Vec<(Vec<String>, Vec<String>, usize)> = chunk
                    .iter()
                    .zip(augs)
                    .map(|(e, aug)| (e.tokens.clone(), aug, e.label))
                    .collect();
                let loss = model.mixda_loss_backward(&pairs, cfg.train.mixda_alpha, rng);
                if let Some(monitor) = guard.as_deref_mut() {
                    guard_step(monitor, model, loss)?;
                }
                emit_step_record("mixda.step", model, loss, chunk.len(), step_start);
                model.step();
            }
        }
        EpochBody::Rotom {
            task,
            invda,
            trainer,
            unlabeled,
        } => {
            let op = default_op(task.kind);
            let da_ctx = DaContext::default();
            let workers = RotomPool::global();
            // Per-epoch augmented pool: identity + one simple-DA variant +
            // one InvDA variant per training example. Both augmentation
            // families fan out across the worker pool; the base seeds drawn
            // from the caller RNG are sharded per example, keeping the pool
            // contents identical to a serial build at any `ROTOM_THREADS`.
            let inputs: Vec<&[String]> = train.iter().map(|e| e.tokens.as_slice()).collect();
            let simple_seed = rng.next_u64();
            let invda_seed = rng.next_u64();
            let simple_augs = apply_batch(op, &inputs, &da_ctx, simple_seed, workers);
            let invda_augs = invda.augment_batch(&inputs, invda_seed, workers);
            let mut pool: Vec<AugExample> = Vec::with_capacity(train.len() * 3);
            for ((e, simple), inv) in train.iter().zip(simple_augs).zip(invda_augs) {
                pool.push(AugExample::identity(e));
                pool.push(AugExample::from_example(e, simple));
                pool.push(AugExample::from_example(e, inv));
            }
            // Unlabeled (x, x̂) pairs for SSL: half simple-DA, half InvDA.
            // Same seed-sharding scheme, one worker task per unlabeled
            // sequence.
            let ssl_seed = rng.next_u64();
            let unlabeled_aug: Vec<(Vec<String>, Vec<String>)> =
                workers.map(unlabeled.len(), |i| {
                    let mut r = StdRng::seed_from_u64(rotom_rng::split_seed(ssl_seed, i as u64));
                    let x = &unlabeled[i];
                    let x_hat = if r.random_bool(0.5) {
                        apply(op, x, &da_ctx, &mut r)
                    } else {
                        invda.augment(x, &mut r)
                    };
                    (x.clone(), x_hat)
                });
            trainer.train_epoch_guarded(model, &pool, valid, &unlabeled_aug, guard)?;
        }
    }
    Ok(())
}

/// Capture the complete mutable state of the epoch loop into a [`StateBag`]:
/// enough that restoring it continues training bit-identically.
fn capture_state(
    session: &FtSession,
    epoch: usize,
    model: &TinyLm,
    body: &EpochBody<'_>,
    rng: &StdRng,
    best: &(f32, Vec<f32>),
    curve: &[f32],
) -> StateBag {
    let mut bag = StateBag::new();
    bag.put_u64s("run.tag", session.tag.clone());
    bag.put_u64("run.epoch", epoch as u64);
    bag.put_u64("run.steps", session.monitor.step());
    bag.put_u64("run.rollbacks", session.monitor.rollbacks() as u64);
    bag.put_u64s("loop.rng", rng.state().to_vec());
    bag.put_f32("best.metric", best.0);
    bag.put_f32s("best.params", best.1.clone());
    bag.put_f32s("curve", curve.to_vec());
    model.save_train_state(&mut bag, "model");
    if let EpochBody::Rotom { trainer, .. } = body {
        trainer.save_state(&mut bag, "meta");
    }
    bag
}

/// Inverse of [`capture_state`]. The rollback counter is deliberately *not*
/// restored here: a health rollback keeps its (incremented) count, while
/// crash resume restores it from the bag separately.
#[allow(clippy::too_many_arguments)]
fn restore_state(
    bag: &StateBag,
    session: &mut FtSession,
    model: &mut TinyLm,
    body: &mut EpochBody<'_>,
    rng: &mut StdRng,
    best: &mut (f32, Vec<f32>),
    curve: &mut Vec<f32>,
    epoch: &mut usize,
) -> Result<(), CheckpointError> {
    let tag = bag.get_u64s("run.tag")?;
    if tag != session.tag {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint belongs to a different run: tag {tag:?} vs expected {:?} \
             (method/seed/epochs/batch/train-size)",
            session.tag
        )));
    }
    model.load_train_state(bag, "model")?;
    if let EpochBody::Rotom { trainer, .. } = body {
        trainer.load_state(bag, "meta")?;
    }
    *epoch = bag.get_u64("run.epoch")? as usize;
    session.monitor.set_step(bag.get_u64("run.steps")?);
    let rng_state = bag.get_u64s("loop.rng")?;
    if rng_state.len() != 4 {
        return Err(CheckpointError::Mismatch(format!(
            "loop.rng: expected 4 state words, found {}",
            rng_state.len()
        )));
    }
    *rng = StdRng::from_state([rng_state[0], rng_state[1], rng_state[2], rng_state[3]]);
    best.0 = bag.get_f32("best.metric")?;
    best.1 = bag.get_f32s("best.params")?.to_vec();
    let model_params = bag.get_f32s("model.params")?.len();
    if best.1.len() != model_params {
        return Err(CheckpointError::Mismatch(format!(
            "best.params: {} values vs {} model parameters",
            best.1.len(),
            model_params
        )));
    }
    *curve = bag.get_f32s("curve")?.to_vec();
    Ok(())
}

/// The shared epoch loop: shuffle/train via [`run_one_epoch`], validate,
/// track the best checkpoint, and finish on the best parameters. Returns
/// the per-epoch validation-metric curve.
///
/// With a fault-tolerant session the loop additionally (a) restores itself
/// from a resume checkpoint, (b) captures the full loop state at every
/// epoch boundary (writing it out per [`FtConfig`]), and (c) reacts to
/// health halts by rolling back to the last good boundary with a decayed
/// learning rate — degrading to the best snapshot once the rollback budget
/// is exhausted. Without a session the behaviour (and every consumed RNG
/// draw) is identical to the plain loop.
#[allow(clippy::too_many_arguments)]
fn run_epoch_loop(
    model: &mut TinyLm,
    train: &[Example],
    valid: &[Example],
    kind: TaskKind,
    cfg: &RotomConfig,
    mut body: EpochBody<'_>,
    rng: &mut StdRng,
    mut ft: Option<&mut FtSession>,
) -> Result<Vec<f32>, CheckpointError> {
    let mut best = (f32::NEG_INFINITY, model.snapshot());
    let mut curve: Vec<f32> = Vec::with_capacity(cfg.train.epochs);
    let mut epoch = 0usize;

    if let Some(session) = ft.as_deref_mut() {
        if let Some(bag) = session.take_resume_bag() {
            restore_state(
                &bag, session, model, &mut body, rng, &mut best, &mut curve, &mut epoch,
            )?;
            session
                .monitor
                .set_rollbacks(bag.get_u64("run.rollbacks")? as u32);
            session.report.resumed_from_epoch = Some(epoch);
            session.last_good = Some(bag);
            telemetry::counter("ft.resume", 1);
        } else {
            // The pre-training state is the first rollback target, so a
            // divergence in epoch 0 also recovers.
            session.last_good = Some(capture_state(
                session, epoch, model, &body, rng, &best, &curve,
            ));
        }
    }

    while epoch < cfg.train.epochs {
        let epoch_span = telemetry::span("epoch");
        let epoch_start = telemetry::enabled().then(std::time::Instant::now);
        let outcome = run_one_epoch(
            model,
            train,
            valid,
            kind,
            cfg,
            &mut body,
            rng,
            ft.as_deref_mut().map(|s| &mut s.monitor),
        );
        drop(epoch_span);
        match outcome {
            Ok(()) => {
                let m = valid_metric(model, valid, kind);
                curve.push(m);
                if let Some(start) = epoch_start {
                    let secs = start.elapsed().as_secs_f64();
                    telemetry::gauge("epoch.valid_metric", m as f64);
                    telemetry::gauge(
                        "epoch.examples_per_sec",
                        if secs > 0.0 {
                            train.len() as f64 / secs
                        } else {
                            0.0
                        },
                    );
                    // Memory-plane gauges (ISSUE 3 arena): how many reset
                    // tapes are parked and how many floats they pin.
                    let (tapes, retained) = rotom_nn::pooled_tape_stats();
                    telemetry::gauge("arena.pooled_tapes", tapes as f64);
                    telemetry::gauge("arena.retained_floats", retained as f64);
                    telemetry::gauge(
                        "arena.tape_evictions",
                        rotom_nn::tape_eviction_count() as f64,
                    );
                    rotom_nn::kernels::profile::emit_gemm_gauges();
                }
                if m > best.0 {
                    best.0 = m;
                    model.snapshot_into(&mut best.1);
                }
                epoch += 1;
                if let Some(session) = ft.as_deref_mut() {
                    let bag = capture_state(session, epoch, model, &body, rng, &best, &curve);
                    session.on_epoch_end(epoch, &bag)?;
                    session.last_good = Some(bag);
                }
            }
            Err(halt) => {
                let session = ft
                    .as_deref_mut()
                    .expect("a health halt requires a fault-tolerant session");
                let bag = session
                    .last_good
                    .clone()
                    .expect("last-good state is captured before the first epoch");
                if session.monitor.can_rollback() {
                    restore_state(
                        &bag, session, model, &mut body, rng, &mut best, &mut curve, &mut epoch,
                    )?;
                    let scale = session
                        .monitor
                        .record_rollback(session.monitor.step(), halt.to_string());
                    model.scale_lr(scale);
                    session.last_good = Some(bag);
                    telemetry::counter("ft.rollback", 1);
                } else {
                    session.monitor.record_degraded(format!(
                        "rollback budget exhausted; finishing from best snapshot ({halt})"
                    ));
                    session.report.degraded = true;
                    break;
                }
            }
        }
    }
    model.restore(&best.1);
    if let Some(session) = ft {
        session.report.events = session.monitor.events().to_vec();
        session.report.steps = session.monitor.step();
    }
    Ok(curve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};

    fn tiny_task() -> TaskDataset {
        let cfg = TextClsConfig {
            train_pool: 60,
            test: 40,
            unlabeled: 40,
            seed: 5,
        };
        textcls::generate(TextClsFlavor::Sst2, &cfg)
    }

    #[test]
    fn baseline_beats_chance_on_tiny_sst2() {
        let task = tiny_task();
        let train = task.sample_train(40, 1);
        let mut cfg = RotomConfig::test_tiny();
        cfg.train.epochs = 6;
        cfg.train.lr = 1e-3;
        let r = run_method(&task, &train, &train, Method::Baseline, &cfg, None, 3);
        assert!(r.accuracy > 0.6, "accuracy {}", r.accuracy);
        assert!(r.train_seconds > 0.0);
    }

    #[test]
    fn all_methods_run_end_to_end() {
        let task = tiny_task();
        let train = task.sample_train(24, 2);
        let mut cfg = RotomConfig::test_tiny();
        cfg.train.epochs = 1;
        let corpus: Vec<Vec<String>> = task.unlabeled.clone();
        let invda = InvDa::train(&corpus, cfg.invda.clone(), 0);
        for method in Method::ALL {
            let r = run_method(&task, &train, &train, method, &cfg, Some(&invda), 4);
            assert_eq!(r.method, method.name());
            assert!(r.accuracy >= 0.0 && r.accuracy <= 1.0);
        }
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_serial() {
        let task = tiny_task();
        let cfg = RotomConfig::test_tiny();
        let base = prepare_base(&task, &cfg, 7);
        let model = base.instantiate(&cfg, 7);
        let serial = RotomPool::new(1);
        let (acc_ref, f1_ref) = evaluate_with_pool(&model, &task.test, &serial);
        for threads in [2, 3, 8] {
            let pool = RotomPool::new(threads);
            let (acc, f1) = evaluate_with_pool(&model, &task.test, &pool);
            assert_eq!(acc.to_bits(), acc_ref.to_bits(), "threads={threads}");
            assert_eq!(f1.f1.to_bits(), f1_ref.f1.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn default_ops_match_task_kinds() {
        assert_eq!(default_op(TaskKind::EntityMatching), DaOp::SpanDel);
        assert_eq!(default_op(TaskKind::ErrorDetection), DaOp::TokenDel);
        assert_eq!(default_op(TaskKind::TextClassification), DaOp::TokenRepl);
    }
}
