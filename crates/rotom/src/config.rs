//! Top-level configuration for Rotom runs.

use rotom_augment::InvDaConfig;
use rotom_meta::{MetaConfig, SslConfig};
use rotom_nn::TransformerConfig;

/// Target-model (TinyLm) hyper-parameters.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Model width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward width.
    pub d_ff: usize,
    /// Encoder layers.
    pub layers: usize,
    /// Maximum sequence length (including [CLS]).
    pub max_len: usize,
    /// Dropout probability during fine-tuning.
    pub dropout: f32,
    /// Vocabulary budget.
    pub vocab_size: usize,
    /// Masked-LM pre-training epochs over the unlabeled corpus (the
    /// "pre-trained LM" stand-in; 0 disables).
    pub pretrain_epochs: usize,
    /// Masking rate for MLM pre-training.
    pub mlm_rate: f32,
    /// Matched-view (NSP-style) pair pre-training epochs, used for pair
    /// tasks such as entity matching (0 disables).
    pub pair_pretrain_epochs: usize,
    /// Learning rate for MLM pre-training.
    pub pretrain_lr: f32,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            d_model: 32,
            heads: 4,
            d_ff: 64,
            layers: 2,
            max_len: 48,
            dropout: 0.1,
            vocab_size: 4096,
            pretrain_epochs: 2,
            mlm_rate: 0.15,
            pair_pretrain_epochs: 8,
            pretrain_lr: 1e-3,
        }
    }
}

impl ModelConfig {
    /// The encoder configuration derived from this model config.
    pub fn encoder(&self, vocab: usize) -> TransformerConfig {
        TransformerConfig {
            vocab,
            d_model: self.d_model,
            heads: self.heads,
            d_ff: self.d_ff,
            layers: self.layers,
            max_len: self.max_len,
            dropout: self.dropout,
        }
    }

    /// A minimal configuration for unit tests.
    pub fn test_tiny() -> Self {
        Self {
            d_model: 16,
            heads: 2,
            d_ff: 32,
            layers: 1,
            max_len: 24,
            vocab_size: 512,
            pretrain_epochs: 1,
            pair_pretrain_epochs: 1,
            ..Self::default()
        }
    }
}

/// Fine-tuning hyper-parameters (paper §6.1: batch 32, lr 3e-5, ≤40 epochs —
/// scaled to the CPU-sized stand-in models).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// MixDA Beta(α, α) interpolation parameter.
    pub mixda_alpha: f32,
    /// Maximum unlabeled examples consumed by Rotom+SSL (paper: 10,000).
    pub max_unlabeled: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 6,
            batch_size: 16,
            lr: 5e-4,
            mixda_alpha: 0.8,
            max_unlabeled: 10_000,
            seed: 0,
        }
    }
}

/// Everything a full Rotom run needs.
#[derive(Debug, Clone, Default)]
pub struct RotomConfig {
    /// Target-model configuration.
    pub model: ModelConfig,
    /// Fine-tuning configuration.
    pub train: TrainConfig,
    /// Meta-learning configuration (Rotom / Rotom+SSL methods).
    pub meta: MetaConfig,
    /// InvDA configuration.
    pub invda: InvDaConfig,
}

impl RotomConfig {
    /// Small-but-realistic defaults for the benchmark harness.
    pub fn bench_small() -> Self {
        let mut cfg = Self::default();
        cfg.model.d_model = 24;
        cfg.model.heads = 4;
        cfg.model.d_ff = 48;
        cfg.model.layers = 1;
        cfg.model.max_len = 40;
        cfg.model.pretrain_epochs = 1;
        cfg.train.epochs = 4;
        cfg.meta.batch_size = 12;
        cfg.invda.d_model = 24;
        cfg.invda.heads = 4;
        cfg.invda.d_ff = 48;
        cfg.invda.layers = 1;
        cfg.invda.epochs = 3;
        cfg.invda.max_len = 40;
        cfg.invda.max_gen_len = 36;
        cfg.invda.max_unique = 4;
        cfg
    }

    /// Minimal configuration for unit tests.
    pub fn test_tiny() -> Self {
        let mut cfg = Self::default();
        cfg.model = ModelConfig::test_tiny();
        cfg.train.epochs = 2;
        cfg.train.batch_size = 8;
        cfg.meta.batch_size = 6;
        cfg.meta.val_batch_size = 8;
        cfg.invda = InvDaConfig::test_tiny();
        cfg
    }

    /// Enable the SSL extension with default sharpening parameters.
    pub fn with_ssl(mut self) -> Self {
        self.meta.ssl = Some(SslConfig::default());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_config_propagates() {
        let m = ModelConfig::default();
        let enc = m.encoder(1234);
        assert_eq!(enc.vocab, 1234);
        assert_eq!(enc.d_model, m.d_model);
    }

    #[test]
    fn with_ssl_sets_ssl() {
        assert!(RotomConfig::test_tiny().meta.ssl.is_none());
        assert!(RotomConfig::test_tiny().with_ssl().meta.ssl.is_some());
    }
}
