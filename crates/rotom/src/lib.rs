//! `rotom` — a meta-learned data augmentation framework for entity matching,
//! data cleaning, text classification, and beyond.
//!
//! A from-scratch Rust reproduction of *Rotom* (Miao, Li, Wang — SIGMOD
//! 2021). Rotom casts all three tasks as sequence classification over
//! serialized inputs, fine-tunes a (pre-trained) language model, and boosts
//! low-resource performance with:
//!
//! * **InvDA** (`rotom_augment::invda`) — a seq2seq augmentation operator
//!   trained to invert multi-operator corruption;
//! * a **meta-learned policy** (`rotom_meta`) that filters and weights
//!   augmented examples by descending the validation loss jointly with the
//!   target model;
//! * a **semi-supervised extension** that feeds sharpened guessed labels for
//!   unlabeled data through the same weighting machinery.
//!
//! # Quickstart
//!
//! ```
//! use rotom::{run_method, Method, RotomConfig};
//! use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};
//!
//! // A small synthetic TREC-style intent classification task.
//! let cfg = TextClsConfig { train_pool: 60, test: 30, unlabeled: 30, seed: 1 };
//! let task = textcls::generate(TextClsFlavor::Trec, &cfg);
//! let train = task.sample_train(30, 0);
//!
//! let result = run_method(
//!     &task, &train, &train,
//!     Method::Baseline,
//!     &RotomConfig::test_tiny(),
//!     None,
//!     0,
//! );
//! println!("{}: accuracy {:.3}", result.dataset, result.accuracy);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod metrics;
pub mod model;
pub mod pipeline;
pub mod runtime;

pub use config::{ModelConfig, RotomConfig, TrainConfig};
pub use metrics::{accuracy, macro_f1, mean_std, prf1, MetricsSnapshot, PrF1};
pub use model::TinyLm;
pub use pipeline::{
    default_op, evaluate, prepare_base, run_method, run_method_ft, run_method_with_base, Method,
    PretrainedBase, RunResult,
};
pub use runtime::{FtConfig, FtReport};

// Re-export the observability plane (`ROTOM_TELEMETRY`) so downstream users
// and the report tooling share one record schema.
pub use rotom_nn::telemetry;

// Re-export the pieces users compose with.
pub use rotom_augment::{DaContext, DaOp, InvDa, InvDaConfig};
pub use rotom_datasets::{TaskDataset, TaskKind};
pub use rotom_meta::{
    AblationConfig, MetaConfig, MetaTarget, MetaTrainer, SslConfig, WeightedItem,
};
