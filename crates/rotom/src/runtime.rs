//! Fault-tolerant training runtime: periodic full-state checkpoints,
//! crash-safe resume, and health-guarded recovery.
//!
//! [`FtConfig`] configures a run of
//! [`run_method_ft`](crate::pipeline::run_method_ft):
//!
//! * **Checkpointing** — at every epoch boundary the complete training state
//!   (model parameters, optimizer moments, learning rate, every RNG stream,
//!   the meta models `M_F`/`M_W` with their optimizers, the best-snapshot
//!   and validation curve) is captured into a
//!   [`StateBag`](rotom_nn::StateBag) and, when a checkpoint path is set,
//!   written atomically with an integrity footer.
//! * **Resume** — with `resume = true`, a run restarts from the latest
//!   checkpoint and continues **bit-identically** to a run that was never
//!   interrupted: the deterministic pre-loop work (pre-training, InvDA,
//!   model construction) is replayed from the same seeds, then every mutable
//!   piece of loop state is restored from the bag.
//! * **Health guarding** — every optimizer step is monitored
//!   ([`HealthMonitor`]); a divergent step (non-finite loss/gradient, loss
//!   spike) rolls the run back to the last good epoch boundary with a
//!   decayed learning rate, and after `max_rollbacks` failed retries the run
//!   degrades gracefully to the best snapshot seen instead of panicking.
//!
//! Fault injection for tests and CI is provided by
//! [`rotom_nn::faultpoint`] (`ROTOM_FAULT=kill@step=37`, `nan_grad@step=12`,
//! `torn_checkpoint`, …).

use rotom_nn::{CheckpointError, HealthConfig, HealthEvent, HealthMonitor, StateBag};
use std::path::PathBuf;

/// Configuration of the fault-tolerant runtime.
#[derive(Debug, Clone, Default)]
pub struct FtConfig {
    /// Checkpoint file path. `None` keeps checkpoints in memory only (still
    /// enabling health rollback, but not crash resume).
    pub checkpoint: Option<PathBuf>,
    /// Resume from `checkpoint` if it exists (a missing file starts fresh).
    pub resume: bool,
    /// Write the checkpoint file every `n` epochs (0 behaves as 1).
    pub every_epochs: usize,
    /// Numeric-health tunables (spike window, rollback budget, LR decay).
    pub health: HealthConfig,
}

impl FtConfig {
    /// Checkpoint to `path` every epoch with default health guarding.
    pub fn with_checkpoint(path: impl Into<PathBuf>) -> Self {
        Self {
            checkpoint: Some(path.into()),
            ..Self::default()
        }
    }

    /// Same as [`with_checkpoint`](Self::with_checkpoint) but resuming from
    /// the file when present.
    pub fn resume_from(path: impl Into<PathBuf>) -> Self {
        Self {
            checkpoint: Some(path.into()),
            resume: true,
            ..Self::default()
        }
    }
}

/// What the fault-tolerant runtime did during a run.
#[derive(Debug, Clone, Default)]
pub struct FtReport {
    /// Epoch the run resumed from, when it resumed at all.
    pub resumed_from_epoch: Option<usize>,
    /// Number of checkpoint files written.
    pub checkpoints_written: usize,
    /// Every recorded health incident (divergences, rollbacks, degradation).
    pub events: Vec<HealthEvent>,
    /// Guarded optimizer steps along the surviving trajectory (the counter
    /// rewinds with rollbacks and is restored on resume).
    pub steps: u64,
    /// Whether the run exhausted its rollback budget and degraded to the
    /// best snapshot instead of finishing all epochs.
    pub degraded: bool,
}

/// Live state of one fault-tolerant run (created by `run_method_ft`,
/// threaded through the epoch loop).
pub(crate) struct FtSession {
    pub(crate) cfg: FtConfig,
    pub(crate) monitor: HealthMonitor,
    /// Full loop state at the last completed epoch boundary (or the initial
    /// state), used for health rollback even when no file path is set.
    pub(crate) last_good: Option<StateBag>,
    /// Checkpoint loaded from disk, consumed by the loop on startup.
    resume_bag: Option<StateBag>,
    pub(crate) report: FtReport,
    /// Run identity (method, seed, epoch budget, …) — a resumed checkpoint
    /// must match or the load is rejected.
    pub(crate) tag: Vec<u64>,
}

impl FtSession {
    pub(crate) fn new(cfg: FtConfig, tag: Vec<u64>, resume_bag: Option<StateBag>) -> Self {
        let monitor = HealthMonitor::new(cfg.health.clone());
        Self {
            cfg,
            monitor,
            last_good: None,
            resume_bag,
            report: FtReport::default(),
            tag,
        }
    }

    /// Take the resume checkpoint (first call only).
    pub(crate) fn take_resume_bag(&mut self) -> Option<StateBag> {
        self.resume_bag.take()
    }

    /// Persist `bag` if a checkpoint file is configured and `epoch` is due.
    pub(crate) fn on_epoch_end(
        &mut self,
        epoch: usize,
        bag: &StateBag,
    ) -> Result<(), CheckpointError> {
        let every = self.cfg.every_epochs.max(1);
        if let Some(path) = &self.cfg.checkpoint {
            if epoch % every == 0 {
                let _span = rotom_nn::telemetry::span("ft.checkpoint_write");
                bag.save_atomic(path)?;
                self.report.checkpoints_written += 1;
                rotom_nn::telemetry::counter("ft.checkpoint", 1);
            }
        }
        Ok(())
    }
}
