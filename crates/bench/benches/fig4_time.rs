//! Figure 4 — training time per domain (EM, EDT, TextCLS) for the baseline,
//! MixDA/InvDA, Rotom, and Rotom+SSL, averaged over the domain's datasets at
//! each labeling budget.
//!
//! The reproduction target is the *relative overhead*: the paper reports
//! Rotom at ~5.6× MixDA on average (max 9.8×), far below the 22× cost of a
//! grid search over operator pairs, with Rotom+SSL within 30% of Rotom.

use rotom::Method;
use rotom_bench::{print_table, Suite};
use rotom_datasets::edt::{self, EdtFlavor};
use rotom_datasets::em::{self, EmFlavor};
use rotom_datasets::textcls::{self, TextClsFlavor};
use rotom_datasets::TaskDataset;

struct Domain {
    name: &'static str,
    tasks: Vec<TaskDataset>,
    budgets: Vec<usize>,
    balanced: bool,
}

fn main() {
    let suite = Suite::from_env();
    println!(
        "Figure 4: training time (seconds) per domain and method ({:?} scale)",
        suite.scale
    );

    let quick = suite.scale == rotom_bench::Scale::Quick;
    let domains = vec![
        Domain {
            name: "EM",
            tasks: if quick {
                vec![em::generate(EmFlavor::DblpAcm, &suite.em).to_task()]
            } else {
                EmFlavor::ALL
                    .iter()
                    .map(|&f| em::generate(f, &suite.em).to_task())
                    .collect()
            },
            budgets: suite.em_budgets.clone(),
            balanced: false,
        },
        Domain {
            name: "EDT",
            tasks: if quick {
                vec![edt::generate(EdtFlavor::Beers, &suite.edt).to_task()]
            } else {
                EdtFlavor::ALL
                    .iter()
                    .map(|&f| edt::generate(f, &suite.edt).to_task())
                    .collect()
            },
            budgets: suite.edt_budgets.clone(),
            balanced: true,
        },
        Domain {
            name: "TextCLS",
            tasks: if quick {
                vec![textcls::generate(TextClsFlavor::Trec, &suite.textcls)]
            } else {
                TextClsFlavor::ALL
                    .iter()
                    .map(|&f| textcls::generate(f, &suite.textcls))
                    .collect()
            },
            budgets: suite.textcls_sizes.iter().map(|&s| 2 * s).collect(),
            balanced: false,
        },
    ];

    let header: Vec<String> = std::iter::once("Budget".to_string())
        .chain(Method::ALL.iter().map(|m| m.name().to_string()))
        .chain(std::iter::once("Rotom/MixDA".to_string()))
        .collect();

    for domain in domains {
        let ctxs: Vec<_> = domain.tasks.iter().map(|t| suite.prepare(t, 31)).collect();
        let rows: Vec<Vec<String>> = domain
            .budgets
            .iter()
            .map(|&budget| {
                let mut row = vec![budget.to_string()];
                let mut times = Vec::new();
                for method in Method::ALL {
                    let secs: f32 = domain
                        .tasks
                        .iter()
                        .zip(&ctxs)
                        .map(|(task, ctx)| {
                            suite
                                .run_avg(task, budget, method, ctx, domain.balanced)
                                .seconds
                        })
                        .sum::<f32>()
                        / domain.tasks.len() as f32;
                    times.push(secs);
                    row.push(format!("{secs:.2}"));
                }
                // Overhead ratio: Rotom vs MixDA (index 3 vs 1).
                let ratio = if times[1] > 0.0 {
                    times[3] / times[1]
                } else {
                    0.0
                };
                row.push(format!("{ratio:.1}x"));
                row
            })
            .collect();
        print_table(
            &format!("Figure 4: {} training time (s)", domain.name),
            &header,
            &rows,
        );
    }
}
