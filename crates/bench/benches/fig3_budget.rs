//! Figure 3 — F1 vs labeling budget, for EM (upper panel, budgets 300–750 in
//! the paper) and EDT (lower panel, 50–200 labeled cells), comparing the
//! five methods (plus Raha's 20-tuple horizontal line for EDT).
//!
//! Output: one series block per dataset, one row per budget — the series the
//! paper plots.

use rotom::Method;
use rotom_baselines::run_raha;
use rotom_bench::{pct, print_table, Suite};
use rotom_datasets::edt::{self, EdtFlavor};
use rotom_datasets::em::{self, EmFlavor};

fn main() {
    let suite = Suite::from_env();
    println!(
        "Figure 3: F1 vs labeling budget ({:?} scale; EM budgets {:?}, EDT budgets {:?})",
        suite.scale, suite.em_budgets, suite.edt_budgets
    );

    // In quick mode sweep a representative subset of datasets; full mode
    // sweeps all ten like the paper.
    let (em_flavors, edt_flavors): (Vec<EmFlavor>, Vec<EdtFlavor>) = match suite.scale {
        rotom_bench::Scale::Quick => (
            vec![EmFlavor::AbtBuy, EmFlavor::DblpAcm],
            vec![EdtFlavor::Beers, EdtFlavor::Movies],
        ),
        rotom_bench::Scale::Full => (EmFlavor::ALL.to_vec(), EdtFlavor::ALL.to_vec()),
    };

    let header: Vec<String> = std::iter::once("Budget".to_string())
        .chain(Method::ALL.iter().map(|m| m.name().to_string()))
        .collect();

    // Upper panel: EM.
    for flavor in em_flavors {
        let task = em::generate(flavor, &suite.em).to_task();
        let ctx = suite.prepare(&task, 23);
        let rows: Vec<Vec<String>> = suite
            .em_budgets
            .iter()
            .map(|&budget| {
                let mut row = vec![budget.to_string()];
                for method in Method::ALL {
                    let avg = suite.run_avg(&task, budget, method, &ctx, false);
                    row.push(pct(avg.mean));
                }
                row
            })
            .collect();
        print_table(
            &format!("Figure 3 (EM): {} — F1 vs budget", task.name),
            &header,
            &rows,
        );
    }

    // Lower panel: EDT (+ the Raha 20-tuple reference line).
    let mut edt_header = header.clone();
    edt_header.push("Raha(20-tpl)".to_string());
    for flavor in edt_flavors {
        let data = edt::generate(flavor, &suite.edt);
        let raha_f1 = run_raha(&data, 20, 0).prf1.f1;
        let task = data.to_task();
        let ctx = suite.prepare(&task, 29);
        let rows: Vec<Vec<String>> = suite
            .edt_budgets
            .iter()
            .map(|&budget| {
                let mut row = vec![budget.to_string()];
                for method in Method::ALL {
                    let avg = suite.run_avg(&task, budget, method, &ctx, true);
                    row.push(pct(avg.mean));
                }
                row.push(pct(raha_f1));
                row
            })
            .collect();
        print_table(
            &format!("Figure 3 (EDT): {} — F1 vs budget", task.name),
            &edt_header,
            &rows,
        );
    }
}
