//! Table 9 — F1 scores on the 5 error-detection datasets.
//!
//! Raha is given 20 labeled tuples; the LM methods get at most 200 labeled
//! cells (strictly fewer labels than Raha on wide tables). Training sets are
//! class-balanced between clean and dirty cells (§6.2).

use rotom::Method;
use rotom_baselines::run_raha;
use rotom_bench::{pct, print_table, Suite};
use rotom_datasets::edt::{self, EdtFlavor};

fn main() {
    let suite = Suite::from_env();
    let budget = *suite.edt_budgets.last().unwrap();
    println!(
        "Table 9: EDT F1 with Raha @ 20 tuples vs LM methods @ {budget} cells ({:?} scale)",
        suite.scale
    );

    let datasets: Vec<_> = EdtFlavor::ALL
        .iter()
        .map(|&f| edt::generate(f, &suite.edt))
        .collect();

    let mut header: Vec<String> = std::iter::once("Method".to_string())
        .chain(datasets.iter().map(|d| d.name.clone()))
        .collect();
    header.push("AVG".to_string());
    let mut rows: Vec<Vec<String>> = Vec::new();

    let push_row = |label: &str, scores: Vec<f32>, rows: &mut Vec<Vec<String>>| {
        let avg = scores.iter().sum::<f32>() / scores.len() as f32;
        let mut row = vec![label.to_string()];
        row.extend(scores.iter().map(|&s| pct(s)));
        row.push(pct(avg));
        rows.push(row);
    };

    // Raha with 20 labeled tuples.
    let raha_scores: Vec<f32> = datasets
        .iter()
        .map(|d| run_raha(d, 20, 0).prf1.f1)
        .collect();
    push_row("Raha (20-tpl)", raha_scores, &mut rows);

    // LM methods with ≤ `budget` labeled cells (balanced clean/dirty).
    let tasks: Vec<_> = datasets.iter().map(|d| d.to_task()).collect();
    let ctxs: Vec<_> = tasks.iter().map(|t| suite.prepare(t, 9)).collect();
    for method in Method::ALL {
        let label = if method == Method::Baseline {
            "TinyLm"
        } else {
            method.name()
        };
        let scores: Vec<f32> = tasks
            .iter()
            .zip(&ctxs)
            .map(|(task, ctx)| suite.run_avg(task, budget, method, ctx, true).mean)
            .collect();
        push_row(label, scores, &mut rows);
    }

    print_table("Table 9: Error-detection F1 (x100)", &header, &rows);
}
