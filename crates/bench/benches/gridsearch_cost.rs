//! Grid-search cost comparison (§6.6): the paper argues Rotom's ~5.6× meta
//! overhead is cheap next to the 22× cost of enumerating operator pairs.
//! This harness measures all four costs directly on one dataset per domain:
//! a single MixDA run, the single-operator grid, the operator-pair grid, and
//! Rotom — plus each strategy's resulting test metric.

use rotom::Method;
use rotom_baselines::gridsearch::{grid_search, Grid};
use rotom_bench::{pct, print_table, Suite};
use rotom_datasets::{
    edt::{self, EdtFlavor},
    em::{self, EmFlavor},
    textcls::{self, TextClsFlavor},
};

fn main() {
    let suite = Suite::from_env();
    println!("Grid-search cost vs Rotom ({:?} scale)", suite.scale);

    let tasks = vec![
        (
            em::generate(EmFlavor::WalmartAmazon, &suite.em).to_task(),
            240usize,
            false,
        ),
        (
            edt::generate(EdtFlavor::Beers, &suite.edt).to_task(),
            200,
            true,
        ),
        (
            textcls::generate(TextClsFlavor::Trec, &suite.textcls),
            100,
            false,
        ),
    ];

    let header: Vec<String> = vec![
        "Dataset".into(),
        "Strategy".into(),
        "Metric".into(),
        "Time(s)".into(),
        "vs MixDA".into(),
    ];
    let mut rows = Vec::new();

    for (task, budget, balanced) in tasks {
        let ctx = suite.prepare(&task, 47);
        let train = if balanced {
            task.sample_train_balanced(budget, 0)
        } else {
            task.sample_train(budget, 0)
        };

        let mixda = suite.run_avg(&task, budget, Method::MixDa, &ctx, balanced);
        let rotom = suite.run_avg(&task, budget, Method::Rotom, &ctx, balanced);
        let single = grid_search(
            &task,
            &train,
            &train,
            Grid::Single,
            &ctx.cfg,
            Some(&ctx.base),
            0,
        );
        let pairs = grid_search(
            &task,
            &train,
            &train,
            Grid::Pairs,
            &ctx.cfg,
            Some(&ctx.base),
            0,
        );

        let ratio = |t: f32| {
            if mixda.seconds > 0.0 {
                format!("{:.1}x", t / mixda.seconds)
            } else {
                "-".into()
            }
        };
        rows.push(vec![
            task.name.clone(),
            "MixDA (1 run)".into(),
            pct(mixda.mean),
            format!("{:.1}", mixda.seconds),
            "1.0x".into(),
        ]);
        rows.push(vec![
            String::new(),
            format!("Grid single ({} cfgs)", single.configurations),
            pct(single.best.headline(task.kind)),
            format!("{:.1}", single.total_seconds),
            ratio(single.total_seconds),
        ]);
        rows.push(vec![
            String::new(),
            format!("Grid pairs ({} cfgs)", pairs.configurations),
            pct(pairs.best.headline(task.kind)),
            format!("{:.1}", pairs.total_seconds),
            ratio(pairs.total_seconds),
        ]);
        rows.push(vec![
            String::new(),
            "Rotom".into(),
            pct(rotom.mean),
            format!("{:.1}", rotom.seconds),
            ratio(rotom.seconds),
        ]);
    }

    print_table(
        "Grid-search cost: metric and wall-clock vs a single MixDA run",
        &header,
        &rows,
    );
    println!(
        "\nPaper's claim (§6.6): Rotom ≈ 5.6x a single DA run on average (max 9.8x),\n\
         while enumerating operator pairs costs ≈ 22x — and Rotom needs no search."
    );
}
