//! Criterion micro-benchmarks for the performance-critical building blocks:
//! tensor matmul, the simple DA operators, InvDA generation, and one
//! plain-vs-meta training step (the per-step overhead behind Figure 4).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rotom::{ModelConfig, TinyLm};
use rotom_augment::{apply, DaContext, DaOp, InvDa, InvDaConfig};
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};
use rotom_meta::{MetaConfig, MetaTrainer, MetaTarget, WeightedItem};
use rotom_nn::Tensor;
use rotom_text::example::AugExample;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let a = Tensor::full(48, 48, 0.5);
    let b = Tensor::full(48, 48, 0.25);
    c.bench_function("tensor/matmul_48x48", |bch| {
        bch.iter(|| black_box(a.matmul(black_box(&b))))
    });
    c.bench_function("tensor/matmul_tb_48x48", |bch| {
        bch.iter(|| black_box(a.matmul_transpose_b(black_box(&b))))
    });
}

fn bench_da_ops(c: &mut Criterion) {
    let ctx = DaContext::default();
    let tokens: Vec<String> = "the quick brown fox jumps over the lazy dog near the river bank"
        .split(' ')
        .map(String::from)
        .collect();
    let mut group = c.benchmark_group("da_ops");
    for op in [DaOp::TokenDel, DaOp::TokenRepl, DaOp::TokenSwap, DaOp::SpanDel, DaOp::SpanShuffle] {
        group.bench_function(op.name(), |bch| {
            let mut rng = StdRng::seed_from_u64(0);
            bch.iter(|| black_box(apply(op, black_box(&tokens), &ctx, &mut rng)))
        });
    }
    group.finish();
}

fn toy_task() -> rotom_datasets::TaskDataset {
    let cfg = TextClsConfig { train_pool: 40, test: 20, unlabeled: 40, seed: 0 };
    textcls::generate(TextClsFlavor::Sst2, &cfg)
}

fn bench_invda_generate(c: &mut Criterion) {
    let task = toy_task();
    let model = InvDa::train(&task.unlabeled, InvDaConfig::test_tiny(), 0);
    let input = task.train_pool[0].tokens.clone();
    c.bench_function("invda/generate", |bch| {
        let mut rng = StdRng::seed_from_u64(1);
        bch.iter(|| black_box(model.generate(black_box(&input), &mut rng)))
    });
}

fn bench_train_steps(c: &mut Criterion) {
    let task = toy_task();
    let corpus: Vec<Vec<String>> = task.unlabeled.clone();
    let mcfg = ModelConfig::test_tiny();
    let items: Vec<WeightedItem> = task
        .train_pool
        .iter()
        .take(6)
        .map(|e| WeightedItem::hard(e.tokens.clone(), e.label, 2))
        .collect();
    let pool: Vec<AugExample> = task
        .train_pool
        .iter()
        .take(6)
        .map(|e| AugExample { orig: e.tokens.clone(), aug: e.tokens.clone(), label: e.label })
        .collect();
    let val: Vec<_> = task.train_pool.iter().take(6).cloned().collect();

    c.bench_function("train/plain_step", |bch| {
        let mut model = TinyLm::from_corpus(&corpus, 2, &mcfg, 1e-3, 0);
        let mut rng = StdRng::seed_from_u64(2);
        bch.iter(|| {
            model.weighted_loss_backward(black_box(&items), true, &mut rng);
            model.optimizer_step();
        })
    });

    c.bench_function("train/meta_epoch_6ex", |bch| {
        let mut model = TinyLm::from_corpus(&corpus, 2, &mcfg, 1e-3, 0);
        let enc = mcfg.encoder(model.vocab().len());
        let meta_cfg = MetaConfig { batch_size: 6, val_batch_size: 6, ..Default::default() };
        let mut trainer = MetaTrainer::new(2, model.vocab().clone(), enc, meta_cfg);
        bch.iter(|| {
            black_box(trainer.train_epoch(&mut model, black_box(&pool), &val, &[]));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_matmul, bench_da_ops, bench_invda_generate, bench_train_steps
}
criterion_main!(benches);
