//! Table 8 — F1 scores on the 5 EM datasets (plus 3 dirty variants) with at
//! most `em_headline_budget` training+validation examples.
//!
//! Rows follow the paper: DeepMatcher (full data), DM+TinyLm, TinyLm
//! baseline, Brunner et al., MixDA, InvDA, Rotom, Rotom+SSL.

use rotom::Method;
use rotom_baselines::deepmatcher::{DeepMatcher, DmConfig, DmEncoder};
use rotom_baselines::run_brunner;
use rotom_bench::{pct, print_table, Suite};
use rotom_datasets::em::{self, EmConfig, EmFlavor};

fn main() {
    let suite = Suite::from_env();
    let budget = suite.em_headline_budget();
    println!(
        "Table 8: EM F1 with at most {budget} train+valid examples ({:?} scale, {} seed(s))",
        suite.scale, suite.seeds
    );

    // Column per dataset: 5 clean + 3 dirty.
    let mut datasets = Vec::new();
    for flavor in EmFlavor::ALL {
        datasets.push(em::generate(flavor, &suite.em));
    }
    for flavor in EmFlavor::WITH_DIRTY {
        let cfg = EmConfig {
            dirty: true,
            ..suite.em.clone()
        };
        datasets.push(em::generate(flavor, &cfg));
    }

    let header: Vec<String> = std::iter::once("Method".to_string())
        .chain(datasets.iter().map(|d| d.name.clone()))
        .collect();
    let mut rows: Vec<Vec<String>> = Vec::new();

    // DeepMatcher trained on the FULL train pool (the paper's DM row uses
    // the full datasets) and the low-resource DM+TinyLm variant.
    for (label, encoder, full_data) in [
        ("DM (full)", DmEncoder::Gru, true),
        ("DM+TinyLm", DmEncoder::TinyLm, false),
    ] {
        let mut row = vec![label.to_string()];
        for data in &datasets {
            let n = if full_data {
                data.train_pairs.len()
            } else {
                budget.min(data.train_pairs.len())
            };
            let idx: Vec<usize> = (0..n).collect();
            let cfg = DmConfig {
                epochs: if full_data { 12 } else { 6 },
                encoder,
                ..Default::default()
            };
            let m = DeepMatcher::train(data, &idx, cfg, 0);
            row.push(pct(m.evaluate(data).f1));
        }
        rows.push(row);
    }

    // Brunner et al.: alternative serialization, baseline fine-tuning.
    {
        let mut row = vec!["Brunner et al.".to_string()];
        for data in &datasets {
            let r = run_brunner(
                data,
                budget,
                &suite.rotom_for(rotom_datasets::TaskKind::EntityMatching),
                0,
            );
            row.push(pct(r.prf1.f1));
        }
        rows.push(row);
    }

    // The five LM methods over the [COL]/[VAL] serialization.
    let tasks: Vec<_> = datasets.iter().map(|d| d.to_task()).collect();
    let ctxs: Vec<_> = tasks.iter().map(|t| suite.prepare(t, 7)).collect();
    for method in Method::ALL {
        let label = if method == Method::Baseline {
            "TinyLm"
        } else {
            method.name()
        };
        let mut row = vec![label.to_string()];
        for (task, ctx) in tasks.iter().zip(&ctxs) {
            let avg = suite.run_avg(task, budget, method, ctx, false);
            row.push(pct(avg.mean));
        }
        rows.push(row);
    }

    print_table("Table 8: EM F1 (x100)", &header, &rows);
}
