//! Per-error-kind recall (beyond the paper): the synthetic EDT generators
//! record *which* kind of error each dirty cell carries (typo / format /
//! missing / violation — Raha's taxonomy), so we can break down what each
//! detector actually catches. Raha's pattern features excel at format
//! breaks; the LM sees typos through its character fallback.

use rotom::pipeline::run_method_with_base;
use rotom::Method;
use rotom_baselines::raha::Raha;
use rotom_bench::{print_table, Suite};
use rotom_datasets::edt::{self, EdtFlavor, ErrorKind};
use rotom_meta::MetaTarget;

const KINDS: [(ErrorKind, &str); 4] = [
    (ErrorKind::Typo, "typo"),
    (ErrorKind::Format, "format"),
    (ErrorKind::Missing, "missing"),
    (ErrorKind::Violation, "violation"),
];

fn main() {
    let suite = Suite::from_env();
    println!(
        "EDT per-error-kind recall on the test tuples ({:?} scale)",
        suite.scale
    );

    for flavor in [EdtFlavor::Beers, EdtFlavor::Hospital] {
        let data = edt::generate(flavor, &suite.edt);
        let task = data.to_task();

        // Raha with 20 tuples.
        let raha = Raha::train(&data, 20, 0);

        // Rotom with the largest cell budget.
        let ctx = suite.prepare(&task, 53);
        let budget = *suite.edt_budgets.last().unwrap();
        let train = task.sample_train_balanced(budget, 0);
        // Re-train a model through the pipeline, then score cells directly.
        let run = run_method_with_base(
            &task,
            &train,
            &train,
            Method::Rotom,
            &ctx.cfg,
            Some(&ctx.invda),
            Some(&ctx.base),
            0,
        );
        // The pipeline returns metrics, not the model, so rebuild the same
        // model for per-cell scoring via the shared deterministic base.
        let mut model = ctx.base.instantiate(&ctx.cfg, 0);
        // One quick fine-tune pass mirroring the baseline (enough to score
        // per-kind behaviour deterministically for the breakdown).
        let items: Vec<rotom_meta::WeightedItem> = train
            .iter()
            .map(|e| rotom_meta::WeightedItem::hard(e.tokens.clone(), e.label, 2))
            .collect();
        let mut rng: rotom_rng::rngs::StdRng = rotom_rng::SeedableRng::seed_from_u64(1);
        for _ in 0..ctx.cfg.train.epochs {
            for chunk in items.chunks(ctx.cfg.train.batch_size) {
                model.weighted_loss_backward(chunk, true, &mut rng);
                model.optimizer_step();
            }
        }

        let mut header = vec!["Detector".to_string()];
        header.extend(KINDS.iter().map(|(_, n)| n.to_string()));
        header.push("overall F1".to_string());
        let mut rows = Vec::new();

        // Per-kind recall for both detectors over the test tuples.
        let mut raha_hits = [0usize; 4];
        let mut lm_hits = [0usize; 4];
        let mut totals = [0usize; 4];
        for &r in &data.test_rows {
            for c in 0..data.columns.len() {
                let Some(kind) = data.kinds[r][c] else {
                    continue;
                };
                let ki = KINDS.iter().position(|(k, _)| *k == kind).unwrap();
                totals[ki] += 1;
                if raha.predict(&data, r, c) {
                    raha_hits[ki] += 1;
                }
                let ex = {
                    let attr = &data.columns[c];
                    rotom_text::serialize::serialize_cell(
                        attr,
                        data.rows[r].get(attr).unwrap_or(""),
                    )
                };
                if model.predict(&ex) == 1 {
                    lm_hits[ki] += 1;
                }
            }
        }
        let fmt = |hits: &[usize; 4]| -> Vec<String> {
            KINDS
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    if totals[i] == 0 {
                        "-".to_string()
                    } else {
                        format!(
                            "{:.0}% ({}/{})",
                            100.0 * hits[i] as f32 / totals[i] as f32,
                            hits[i],
                            totals[i]
                        )
                    }
                })
                .collect()
        };
        let mut raha_row = vec!["Raha (20-tpl)".to_string()];
        raha_row.extend(fmt(&raha_hits));
        raha_row.push(format!("{:.1}", raha.evaluate(&data).f1 * 100.0));
        rows.push(raha_row);
        let mut lm_row = vec!["TinyLm fine-tuned".to_string()];
        lm_row.extend(fmt(&lm_hits));
        lm_row.push(format!("{:.1}", run.prf1.f1 * 100.0));
        rows.push(lm_row);

        print_table(&format!("Per-kind recall: {}", data.name), &header, &rows);
    }
}
