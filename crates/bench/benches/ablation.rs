//! Ablation study (beyond the paper, per DESIGN.md): quantify each
//! meta-learning component by disabling it — the filtering model, the
//! weighting model, and the L2 uncertainty term of Eq. 2 — on one dataset
//! per domain.

use rotom::pipeline::run_method_with_base;
use rotom::{AblationConfig, Method};
use rotom_bench::{pct, print_table, Suite};
use rotom_datasets::{
    edt::{self, EdtFlavor},
    em::{self, EmFlavor},
    textcls::{self, TextClsFlavor},
};

fn main() {
    let suite = Suite::from_env();
    println!(
        "Ablation: Rotom components on one dataset per domain ({:?} scale)",
        suite.scale
    );

    let tasks = vec![
        (
            em::generate(EmFlavor::WalmartAmazon, &suite.em).to_task(),
            240usize,
            false,
        ),
        (
            edt::generate(EdtFlavor::Beers, &suite.edt).to_task(),
            200,
            true,
        ),
        (
            textcls::generate(TextClsFlavor::Trec, &suite.textcls),
            100,
            false,
        ),
    ];

    let variants: Vec<(&str, AblationConfig)> = vec![
        ("Rotom (full)", AblationConfig::default()),
        (
            "- filtering",
            AblationConfig {
                disable_filter: true,
                ..Default::default()
            },
        ),
        (
            "- weighting",
            AblationConfig {
                disable_weighting: true,
                ..Default::default()
            },
        ),
        (
            "- L2 term",
            AblationConfig {
                disable_l2: true,
                ..Default::default()
            },
        ),
        (
            "- both models",
            AblationConfig {
                disable_filter: true,
                disable_weighting: true,
                disable_l2: true,
            },
        ),
    ];

    let mut header = vec!["Variant".to_string()];
    header.extend(tasks.iter().map(|(t, _, _)| t.name.clone()));
    let mut rows = Vec::new();
    let ctxs: Vec<_> = tasks.iter().map(|(t, _, _)| suite.prepare(t, 41)).collect();

    for (label, ablation) in variants {
        let mut row = vec![label.to_string()];
        for ((task, budget, balanced), ctx) in tasks.iter().zip(&ctxs) {
            let mut cfg = ctx.cfg.clone();
            cfg.meta.ablation = ablation.clone();
            let train = if *balanced {
                task.sample_train_balanced(*budget, 0)
            } else {
                task.sample_train(*budget, 0)
            };
            let r = run_method_with_base(
                task,
                &train,
                &train,
                Method::Rotom,
                &cfg,
                Some(&ctx.invda),
                Some(&ctx.base),
                0,
            );
            row.push(pct(r.headline(task.kind)));
        }
        rows.push(row);
    }

    print_table("Ablation: headline metric (x100)", &header, &rows);
}
