//! Table 11 — Rotom vs Hu et al. '19 and Kumar et al. '20, each under that
//! work's own sampling regime:
//!
//! * Hu et al.: 40 training examples per class, 5 per class for validation.
//!   Paper datasets: IMDB / SST-5 / TREC. IMDB's long reviews exceed the
//!   stand-in max length, so SST-2 substitutes (same binary sentiment
//!   semantics; noted in DESIGN.md).
//! * Kumar et al.: a uniform 1% sample of the training set, 5 per class for
//!   validation. Datasets: SNIPS / SST-2 / TREC.

use rotom::{Method, RunResult};
use rotom_baselines::{run_hu, run_kumar, HuVariant, KumarVariant};
use rotom_bench::{pct, print_table, Suite};
use rotom_datasets::task::{sample_without_replacement, TaskDataset};
use rotom_datasets::textcls::{self, TextClsFlavor};
use rotom_rng::rngs::StdRng;
use rotom_rng::SeedableRng;
use rotom_text::example::Example;

/// Sample `n` examples per class.
fn per_class_sample(task: &TaskDataset, per_class: usize, seed: u64) -> Vec<Example> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for c in 0..task.num_classes {
        let pool: Vec<Example> = task
            .train_pool
            .iter()
            .filter(|e| e.label == c)
            .cloned()
            .collect();
        out.extend(sample_without_replacement(&pool, per_class, &mut rng));
    }
    out
}

fn print_panel(
    title: &str,
    tasks: &[TaskDataset],
    runs: Vec<(String, Vec<RunResult>)>,
    baseline_idx: usize,
) {
    let mut header = vec!["Method".to_string()];
    header.extend(tasks.iter().map(|t| t.name.clone()));
    let base: Vec<f32> = runs[baseline_idx].1.iter().map(|r| r.accuracy).collect();
    let rows: Vec<Vec<String>> = runs
        .iter()
        .enumerate()
        .map(|(i, (label, results))| {
            let mut row = vec![label.clone()];
            for (j, r) in results.iter().enumerate() {
                if i == baseline_idx {
                    row.push(pct(r.accuracy));
                } else {
                    let d = r.accuracy - base[j];
                    row.push(format!(
                        "{} ({}{})",
                        pct(r.accuracy),
                        if d >= 0.0 { "+" } else { "" },
                        pct(d)
                    ));
                }
            }
            row
        })
        .collect();
    print_table(title, &header, &rows);
}

fn main() {
    let suite = Suite::from_env();
    println!(
        "Table 11: Rotom vs Hu et al. '19 and Kumar et al. '20 ({:?} scale)",
        suite.scale
    );

    // ------------------------------------------------------------------
    // Panel A — Hu et al. regime: 40 per class (quick scale: 20).
    // ------------------------------------------------------------------
    let per_class = match suite.scale {
        rotom_bench::Scale::Quick => 20,
        rotom_bench::Scale::Full => 40,
    };
    let hu_flavors = [
        TextClsFlavor::Sst2,
        TextClsFlavor::Sst5,
        TextClsFlavor::Trec,
    ];
    let hu_tasks: Vec<_> = hu_flavors
        .iter()
        .map(|&f| textcls::generate(f, &suite.textcls))
        .collect();
    let mut hu_runs: Vec<(String, Vec<RunResult>)> = Vec::new();
    {
        let mut rows: Vec<(String, Vec<RunResult>)> = vec![
            ("TinyLm".into(), Vec::new()),
            ("MixDA".into(), Vec::new()),
            ("InvDA".into(), Vec::new()),
            ("Rotom".into(), Vec::new()),
            (HuVariant::LearnedDa.name().into(), Vec::new()),
            (HuVariant::LearnedDaPlusWeighting.name().into(), Vec::new()),
        ];
        for task in &hu_tasks {
            let train = per_class_sample(task, per_class, 1);
            let valid = per_class_sample(task, 5, 2);
            let tctx = suite.prepare(task, 13);
            for (ri, method) in [
                Method::Baseline,
                Method::MixDa,
                Method::InvDa,
                Method::Rotom,
            ]
            .iter()
            .enumerate()
            {
                let r = rotom::pipeline::run_method_with_base(
                    task,
                    &train,
                    &valid,
                    *method,
                    &tctx.cfg,
                    Some(&tctx.invda),
                    Some(&tctx.base),
                    0,
                );
                rows[ri].1.push(r);
            }
            rows[4].1.push(run_hu(
                task,
                &train,
                &valid,
                HuVariant::LearnedDa,
                &tctx.cfg,
                0,
            ));
            rows[5].1.push(run_hu(
                task,
                &train,
                &valid,
                HuVariant::LearnedDaPlusWeighting,
                &tctx.cfg,
                0,
            ));
        }
        hu_runs.append(&mut rows);
    }
    print_panel(
        &format!(
            "Table 11a: Hu et al. regime ({per_class}/class; paper's IMDB → SST-2, see DESIGN.md)"
        ),
        &hu_tasks,
        hu_runs,
        0,
    );

    // ------------------------------------------------------------------
    // Panel B — Kumar et al. regime: 1% of the training pool.
    // ------------------------------------------------------------------
    let kumar_flavors = [
        TextClsFlavor::Snips,
        TextClsFlavor::Sst2,
        TextClsFlavor::Trec,
    ];
    let kumar_tasks: Vec<_> = kumar_flavors
        .iter()
        .map(|&f| textcls::generate(f, &suite.textcls))
        .collect();
    let mut kumar_runs: Vec<(String, Vec<RunResult>)> = vec![
        ("TinyLm".into(), Vec::new()),
        ("MixDA".into(), Vec::new()),
        ("InvDA".into(), Vec::new()),
        ("Rotom".into(), Vec::new()),
        (KumarVariant::CgBart.name().into(), Vec::new()),
        (KumarVariant::CgBert.name().into(), Vec::new()),
    ];
    for task in &kumar_tasks {
        // "1%" of the original large pools ≈ a few dozen examples; at least
        // 2 per class so every label is present.
        let n = (task.train_pool.len() / 10).max(task.num_classes * 2);
        let train = task.sample_train(n, 3);
        let valid = per_class_sample(task, 5, 4);
        let tctx = suite.prepare(task, 17);
        for (ri, method) in [
            Method::Baseline,
            Method::MixDa,
            Method::InvDa,
            Method::Rotom,
        ]
        .iter()
        .enumerate()
        {
            let r = rotom::pipeline::run_method_with_base(
                task,
                &train,
                &valid,
                *method,
                &tctx.cfg,
                Some(&tctx.invda),
                Some(&tctx.base),
                0,
            );
            kumar_runs[ri].1.push(r);
        }
        kumar_runs[4].1.push(run_kumar(
            task,
            &train,
            &valid,
            KumarVariant::CgBart,
            &tctx.cfg,
            0,
        ));
        kumar_runs[5].1.push(run_kumar(
            task,
            &train,
            &valid,
            KumarVariant::CgBert,
            &tctx.cfg,
            0,
        ));
    }
    print_panel(
        "Table 11b: Kumar et al. regime (1% samples)",
        &kumar_tasks,
        kumar_runs,
        0,
    );
}
