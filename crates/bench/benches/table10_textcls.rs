//! Table 10 — accuracy on the 8 TextCLS datasets, varying the train/valid
//! sample size (paper: 100/300/500), for the five methods. The AVG column
//! reports the mean accuracy and the delta against the baseline at the same
//! size (the paper's "(+x.xx)" annotation).

use rotom::Method;
use rotom_bench::{pct, print_table, Suite};
use rotom_datasets::textcls::{self, TextClsFlavor};

fn main() {
    let suite = Suite::from_env();
    println!(
        "Table 10: TextCLS accuracy at sizes {:?} ({:?} scale, {} seed(s))",
        suite.textcls_sizes, suite.scale, suite.seeds
    );

    let tasks: Vec<_> = TextClsFlavor::ALL
        .iter()
        .map(|&f| textcls::generate(f, &suite.textcls))
        .collect();
    let ctxs: Vec<_> = tasks.iter().map(|t| suite.prepare(t, 11)).collect();

    let mut header: Vec<String> = vec!["Method".to_string(), "Size".to_string()];
    header.extend(tasks.iter().map(|t| t.name.clone()));
    header.push("AVG".to_string());

    let mut rows: Vec<Vec<String>> = Vec::new();
    // Baseline averages per size, for the delta annotation.
    let mut baseline_avg: Vec<f32> = Vec::new();

    for method in Method::ALL {
        for (si, &size) in suite.textcls_sizes.iter().enumerate() {
            let label = if method == Method::Baseline {
                "TinyLm".to_string()
            } else {
                method.name().to_string()
            };
            let mut row = vec![label, size.to_string()];
            let mut scores = Vec::with_capacity(tasks.len());
            for (task, ctx) in tasks.iter().zip(&ctxs) {
                let avg = suite.run_avg(task, size, method, ctx, false);
                scores.push(avg.mean);
                row.push(pct(avg.mean));
            }
            let avg = scores.iter().sum::<f32>() / scores.len() as f32;
            if method == Method::Baseline {
                baseline_avg.push(avg);
                row.push(pct(avg));
            } else {
                let delta = avg - baseline_avg[si];
                row.push(format!(
                    "{} ({}{})",
                    pct(avg),
                    if delta >= 0.0 { "+" } else { "" },
                    pct(delta)
                ));
            }
            rows.push(row);
        }
    }

    print_table("Table 10: TextCLS accuracy (x100)", &header, &rows);
}
