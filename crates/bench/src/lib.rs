//! `rotom-bench` — the experiment harness regenerating every table and
//! figure of the paper's evaluation (§6).
//!
//! Each `benches/*.rs` target (all `harness = false`) prints one table or
//! figure in the same row/series layout the paper uses. Absolute numbers
//! differ (CPU-sized stand-in models over synthetic benchmarks); the
//! *shape* — which method wins, by roughly what factor, where the
//! crossovers fall — is the reproduction target (see EXPERIMENTS.md).
//!
//! Scale is controlled by the `ROTOM_BENCH_SCALE` environment variable:
//! `quick` (default; single-digit minutes per table on one CPU core) or
//! `full` (closer to the paper's budgets; tens of minutes). `ROTOM_SEEDS`
//! overrides the number of repetitions (paper: 5).

#![warn(missing_docs)]

use rotom::pipeline::{prepare_base, run_method_with_base, PretrainedBase};
use rotom::{mean_std, Method, RotomConfig, RunResult};
use rotom_augment::InvDa;
use rotom_datasets::{EdtConfig, EmConfig, TaskDataset, TaskKind, TextClsConfig};

/// Harness scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: small pools, 1 seed.
    Quick,
    /// Paper-shaped: larger pools, more seeds.
    Full,
}

impl Scale {
    /// Read the scale from `ROTOM_BENCH_SCALE` (default `quick`).
    pub fn from_env() -> Self {
        match std::env::var("ROTOM_BENCH_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }
}

/// All knobs of one benchmark campaign.
#[derive(Debug, Clone)]
pub struct Suite {
    /// Scale the suite was built at.
    pub scale: Scale,
    /// Number of seeds (paper: 5).
    pub seeds: u64,
    /// EM generator config.
    pub em: EmConfig,
    /// EDT generator config.
    pub edt: EdtConfig,
    /// TextCLS generator config.
    pub textcls: TextClsConfig,
    /// Rotom training config.
    pub rotom: RotomConfig,
    /// Labeled train+valid budgets for the EM experiments (paper: 300–750).
    pub em_budgets: Vec<usize>,
    /// Labeled-cell budgets for the EDT experiments (paper: 50–200).
    pub edt_budgets: Vec<usize>,
    /// Train/valid sizes for the TextCLS experiments (paper: 100/300/500).
    pub textcls_sizes: Vec<usize>,
}

impl Suite {
    /// Build the suite for a scale.
    pub fn new(scale: Scale) -> Self {
        let seeds = std::env::var("ROTOM_SEEDS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(match scale {
                Scale::Quick => 1,
                Scale::Full => 3,
            });
        let mut rotom = RotomConfig::bench_small();
        match scale {
            Scale::Quick => Self {
                scale,
                seeds,
                em: EmConfig {
                    num_entities: 160,
                    train_pairs: 400,
                    test_pairs: 200,
                    ..Default::default()
                },
                edt: EdtConfig {
                    rows: Some(120),
                    ..Default::default()
                },
                textcls: TextClsConfig {
                    train_pool: 400,
                    test: 200,
                    unlabeled: 200,
                    ..Default::default()
                },
                rotom: {
                    rotom.train.epochs = 3;
                    rotom
                },
                em_budgets: vec![120, 240],
                edt_budgets: vec![50, 200],
                textcls_sizes: vec![100, 200],
            },
            Scale::Full => Self {
                scale,
                seeds,
                em: EmConfig {
                    num_entities: 400,
                    train_pairs: 1000,
                    test_pairs: 400,
                    ..Default::default()
                },
                edt: EdtConfig::default(),
                textcls: TextClsConfig::default(),
                rotom: {
                    rotom.train.epochs = 5;
                    rotom
                },
                em_budgets: vec![300, 450, 600, 750],
                edt_budgets: vec![50, 100, 150, 200],
                textcls_sizes: vec![100, 300, 500],
            },
        }
    }

    /// Suite at the scale selected by the environment.
    pub fn from_env() -> Self {
        Self::new(Scale::from_env())
    }

    /// The headline EM budget (largest in the sweep — the "≤750" of
    /// Table 8).
    pub fn em_headline_budget(&self) -> usize {
        *self.em_budgets.last().unwrap()
    }

    /// Per-domain training configuration (different sequence lengths, model
    /// sizes, and fine-tuning schedules suit the three task families; the
    /// paper likewise varies LM and epoch count per domain).
    pub fn rotom_for(&self, kind: TaskKind) -> RotomConfig {
        let mut cfg = self.rotom.clone();
        cfg.model.d_model = 32;
        cfg.model.heads = 4;
        cfg.model.d_ff = 64;
        cfg.model.layers = 2;
        match kind {
            TaskKind::EntityMatching => {
                cfg.model.max_len = 72;
                cfg.model.pretrain_epochs = 1;
                cfg.model.pair_pretrain_epochs = 30;
                cfg.train.epochs = 5;
                cfg.train.lr = 5e-4;
                cfg.invda.max_len = 72;
                cfg.invda.max_gen_len = 64;
            }
            TaskKind::ErrorDetection => {
                cfg.model.max_len = 40;
                cfg.model.pretrain_epochs = 1;
                cfg.model.pair_pretrain_epochs = 0;
                cfg.train.epochs = 12;
                cfg.train.lr = 3e-3;
            }
            TaskKind::TextClassification => {
                cfg.model.max_len = 32;
                cfg.model.pretrain_epochs = 2;
                cfg.model.pair_pretrain_epochs = 0;
                cfg.train.epochs = 5;
                cfg.train.lr = 1e-3;
            }
        }
        cfg
    }

    /// Prepare the per-dataset shared state: the domain config, the
    /// pre-trained TinyLm base, and the InvDA operator — all shared across
    /// methods, budgets, and seeds (the paper reuses the same pre-trained
    /// RoBERTa and per-task InvDA the same way).
    pub fn prepare(&self, task: &TaskDataset, seed: u64) -> TaskContext {
        let cfg = self.rotom_for(task.kind);
        let base = prepare_base(task, &cfg, seed);
        let corpus = task.sample_unlabeled(300, seed);
        let corpus = if corpus.is_empty() {
            task.train_pool
                .iter()
                .map(|e| e.tokens.clone())
                .take(200)
                .collect()
        } else {
            corpus
        };
        let invda = InvDa::train(&corpus, cfg.invda.clone(), seed);
        TaskContext { cfg, base, invda }
    }

    /// Run a method over `seeds` repetitions and average the headline
    /// metric.
    pub fn run_avg(
        &self,
        task: &TaskDataset,
        budget: usize,
        method: Method,
        ctx: &TaskContext,
        balanced: bool,
    ) -> AvgResult {
        let mut metrics = Vec::new();
        let mut seconds = Vec::new();
        let mut results = Vec::new();
        for seed in 0..self.seeds {
            let train = if balanced {
                task.sample_train_balanced(budget, seed)
            } else {
                task.sample_train(budget, seed)
            };
            let r = run_method_with_base(
                task,
                &train,
                &train,
                method,
                &ctx.cfg,
                Some(&ctx.invda),
                Some(&ctx.base),
                seed,
            );
            metrics.push(r.headline(task.kind));
            seconds.push(r.train_seconds);
            results.push(r);
        }
        let (mean, std) = mean_std(&metrics);
        let (sec_mean, _) = mean_std(&seconds);
        AvgResult {
            mean,
            std,
            seconds: sec_mean,
            results,
        }
    }
}

/// Shared per-dataset state: domain config, pre-trained base, and InvDA.
pub struct TaskContext {
    /// Domain-tuned configuration.
    pub cfg: RotomConfig,
    /// Pre-trained TinyLm checkpoint.
    pub base: PretrainedBase,
    /// Trained InvDA operator.
    pub invda: InvDa,
}

/// Seed-averaged outcome of one (dataset, method, budget) cell.
#[derive(Debug, Clone)]
pub struct AvgResult {
    /// Mean headline metric across seeds.
    pub mean: f32,
    /// Standard deviation across seeds.
    pub std: f32,
    /// Mean training seconds.
    pub seconds: f32,
    /// Underlying per-seed results.
    pub results: Vec<RunResult>,
}

/// Render a fixed-width table: header row + body rows.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1)))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format a metric with the paper's percentage convention (e.g. `78.03`).
pub fn pct(v: f32) -> String {
    format!("{:.2}", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_is_small() {
        let s = Suite::new(Scale::Quick);
        assert!(s.em.train_pairs <= 500);
        assert_eq!(s.em_headline_budget(), 240);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.7803), "78.03");
    }

    #[test]
    fn per_domain_configs_differ_where_it_matters() {
        let s = Suite::new(Scale::Quick);
        let em = s.rotom_for(TaskKind::EntityMatching);
        let edt = s.rotom_for(TaskKind::ErrorDetection);
        let txt = s.rotom_for(TaskKind::TextClassification);
        // EM needs pair pre-training and long sequences; the others don't.
        assert!(em.model.pair_pretrain_epochs > 0);
        assert_eq!(edt.model.pair_pretrain_epochs, 0);
        assert_eq!(txt.model.pair_pretrain_epochs, 0);
        assert!(em.model.max_len > edt.model.max_len);
        assert!(edt.model.max_len > txt.model.max_len);
    }

    #[test]
    fn full_scale_is_larger() {
        let q = Suite::new(Scale::Quick);
        let f = Suite::new(Scale::Full);
        assert!(f.em.train_pairs > q.em.train_pairs);
        assert!(f.em_budgets.last() > q.em_budgets.last());
    }
}
