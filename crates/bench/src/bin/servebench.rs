//! Serving benchmark: end-to-end request latency (p50/p99) and sustained
//! requests/sec through `rotom-serve` — real sockets, real HTTP, the
//! windowed batcher, and the tape-free scoring plane — written to
//! `BENCH_serve.json`.
//!
//! The server runs **in-process** on an ephemeral port at scoring-pool
//! widths 1 and 8 (the pool width is a per-batcher setting, so unlike
//! `inferbench` no child re-exec is needed). Four client threads issue
//! keep-alive `POST /classify` requests as fast as the server answers
//! them; per-request wall times give exact p50/p99 (sorted samples, not
//! histogram buckets). The first run records the `baseline` section;
//! later runs update `current` and the `trajectory` ratios. A separate
//! `quant` section compares f32 vs i8 serving throughput and latency on
//! 40-token inputs (long enough that the i8 tier engages).
//!
//! Usage:
//!   cargo run --release --offline --bin servebench            # regenerate
//!   cargo run --release --offline --bin servebench -- --check # + fail on
//!     >20% req/sec regression or p99 latency tripling
//!
//! `ROTOM_BENCH_SCALE=quick` shrinks the request count for CI smoke runs.

use rotom_serve::{
    demo_model, demo_model_config, Client, Endpoint, Server, ServerConfig, TaskPlane,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const THREAD_COUNTS: [usize; 2] = [1, 8];
const CLIENTS: usize = 4;
const OUT_FILE: &str = "BENCH_serve.json";

#[derive(Debug, Clone, Copy)]
struct Sample {
    threads: usize,
    req_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    mean_batch_fill: f64,
}

/// A small rotating input set: realistic token lengths, no cache to
/// help, every request does real forward work.
fn short_bodies() -> Vec<String> {
    [
        "a luminous heartfelt film with a stunning lead performance",
        "tedious and shapeless beyond any hope of rescue",
        "the plot works even when the pacing does not",
        "crisp writing elevates familiar material",
    ]
    .iter()
    .map(|t| format!("{{\"inputs\": [{}]}}", rotom_serve::json::quote(t)))
    .collect()
}

/// Heavier bodies for the quant on/off comparison: 8 inputs of 40 tokens
/// per request, so each round trip is dominated by scoring rather than the
/// batch window + HTTP overhead the short set measures.
fn long_bodies() -> Vec<String> {
    let words = [
        "a", "movie", "of", "rare", "depth", "and", "feeling", "that", "never", "loses",
    ];
    (0..4)
        .map(|i| {
            let inputs: Vec<String> = (0..8)
                .map(|k| {
                    let text: Vec<&str> =
                        (0..40).map(|j| words[(i + k + j) % words.len()]).collect();
                    rotom_serve::json::quote(&text.join(" "))
                })
                .collect();
            format!("{{\"inputs\": [{}]}}", inputs.join(", "))
        })
        .collect()
}

fn bench_config(threads: usize, window: Duration) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        window,
        max_batch: 32,
        score_threads: threads,
        score_cache: 0, // measure scoring, not memoization
        seed: 7,
        ..ServerConfig::default()
    }
}

/// Run one measured configuration: boot the server with a `threads`-wide
/// scoring pool over the default demo model and the standard 1ms window,
/// hammer it from `CLIENTS` keep-alive connections, and return throughput
/// + exact latency quantiles.
fn run_config(threads: usize, requests_per_client: usize) -> Sample {
    let server = Server::start(bench_config(threads, Duration::from_millis(1)))
        .expect("servebench: server boots");
    measure(server, threads, requests_per_client, short_bodies())
}

/// Quant on/off configuration: an inference-scale classifier (d_model 128,
/// matching `inferbench`) served via [`Server::start_with_planes`], with a
/// 100µs window so the round trip is scoring-bound rather than
/// window-bound. The stock demo model (d_model 32) sits right at the i8
/// tier's size threshold, where quantize overhead cancels the GEMM win —
/// this row measures the tier on a model shaped like what serving is for.
fn run_quant_config(threads: usize, requests_per_client: usize, quant: bool) -> Sample {
    let mut model_cfg = demo_model_config();
    model_cfg.d_model = 128;
    model_cfg.heads = 8;
    model_cfg.d_ff = 256;
    let planes = Endpoint::ALL.map(|e| {
        let (model, name) = demo_model(e.task_kind(), &model_cfg, 7);
        let plane = TaskPlane::new(e, name, model);
        if quant {
            plane.set_quant_mode(rotom_nn::QuantMode::I8);
        }
        plane
    });
    let server = Server::start_with_planes(
        bench_config(threads, Duration::from_micros(100)),
        Arc::new(planes),
    )
    .expect("servebench: quant server boots");
    measure(server, threads, requests_per_client, long_bodies())
}

/// Hammer a booted server from `CLIENTS` keep-alive connections and return
/// throughput + exact latency quantiles. Shuts the server down.
fn measure(
    server: Server,
    threads: usize,
    requests_per_client: usize,
    bodies: Vec<String>,
) -> Sample {
    let addr = server.local_addr();
    let bodies: Arc<Vec<String>> = Arc::new(bodies);

    // Warmup: one request per client count so connection setup and first
    // forward passes stay out of the measured window.
    {
        let mut c = Client::connect(addr).expect("warmup connect");
        for body in bodies.iter() {
            let resp = c.post("/classify", body).expect("warmup request");
            assert_eq!(resp.status, 200, "warmup failed: {}", resp.body);
        }
    }

    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|ci| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connect");
                let mut latencies_us = Vec::with_capacity(requests_per_client);
                for i in 0..requests_per_client {
                    let body = &bodies[(ci + i) % bodies.len()];
                    let t = Instant::now();
                    let resp = client.post("/classify", body).expect("request");
                    latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
                    assert_eq!(resp.status, 200, "{}", resp.body);
                }
                latencies_us
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let elapsed = start.elapsed().as_secs_f64();

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let quantile = |q: f64| -> f64 {
        let idx = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[idx]
    };
    let total = latencies.len();
    let m = server.metrics();
    let batches = m.batches.load(std::sync::atomic::Ordering::Relaxed);
    let jobs = m.batched_jobs.load(std::sync::atomic::Ordering::Relaxed);
    server.shutdown();

    Sample {
        threads,
        req_per_sec: total as f64 / elapsed,
        p50_us: quantile(0.5),
        p99_us: quantile(0.99),
        mean_batch_fill: if batches == 0 {
            0.0
        } else {
            jobs as f64 / batches as f64
        },
    }
}

/// How hard the overload row leans on the server: clients vs. a
/// deliberately capacity-starved config (see `run_overload_config`).
const OVERLOAD_CLIENTS: usize = 8;
/// The deadline budget the overload row serves under; the p99 gate for
/// accepted requests is a multiple of this.
const OVERLOAD_DEADLINE: Duration = Duration::from_millis(50);

#[derive(Debug, Clone, Copy)]
struct OverloadSample {
    threads: usize,
    offered_rps: f64,
    accepted_rps: f64,
    accepted: u64,
    shed: u64,
    p99_accepted_us: f64,
}

/// Overload row: offered load far above capacity (8 hammering clients, a
/// queue capped at 4 jobs, a 50ms deadline budget) — the point is not
/// throughput but *degradation shape*. Admission control must shed the
/// excess with `503` + `Retry-After` while the p99 latency of **accepted**
/// requests stays bounded by the deadline budget instead of collapsing
/// into an unbounded queue wait. Every response must be a 200 or a shed —
/// anything else fails the bench.
fn run_overload_config(threads: usize, requests_per_client: usize) -> OverloadSample {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        window: Duration::from_millis(1),
        max_batch: 4,
        score_threads: threads,
        score_cache: 0,
        seed: 7,
        max_queue: 4,
        deadline: OVERLOAD_DEADLINE,
        ..ServerConfig::default()
    })
    .expect("servebench: overload server boots");
    let addr = server.local_addr();
    let bodies: Arc<Vec<String>> = Arc::new(long_bodies());

    let start = Instant::now();
    let handles: Vec<_> = (0..OVERLOAD_CLIENTS)
        .map(|ci| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("overload connect");
                let mut latencies_us = Vec::with_capacity(requests_per_client);
                let mut shed = 0u64;
                for i in 0..requests_per_client {
                    let body = &bodies[(ci + i) % bodies.len()];
                    let t = Instant::now();
                    let resp = client.post("/classify", body).expect("overload request");
                    match resp.status {
                        200 => latencies_us.push(t.elapsed().as_secs_f64() * 1e6),
                        503 => {
                            assert!(
                                resp.retry_after_secs.is_some(),
                                "sheds must carry Retry-After: {}",
                                resp.body
                            );
                            shed += 1;
                        }
                        other => panic!("overload run saw status {other}: {}", resp.body),
                    }
                }
                (latencies_us, shed)
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    let mut shed = 0u64;
    for h in handles {
        let (lat, s) = h.join().expect("overload client thread");
        latencies.extend(lat);
        shed += s;
    }
    let elapsed = start.elapsed().as_secs_f64();
    server.shutdown();

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let accepted = latencies.len() as u64;
    let p99 = if latencies.is_empty() {
        0.0
    } else {
        let idx = ((0.99 * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len()) - 1;
        latencies[idx]
    };
    OverloadSample {
        threads,
        offered_rps: (accepted + shed) as f64 / elapsed,
        accepted_rps: accepted as f64 / elapsed,
        accepted,
        shed,
        p99_accepted_us: p99,
    }
}

/// Pull samples out of one JSON section of a previous `BENCH_serve.json`.
/// Hand-rolled: the workspace carries no serde.
fn parse_section(json: &str, section: &str) -> Vec<Sample> {
    let key = format!("\"{section}\": [");
    let Some(start) = json.find(&key) else {
        return Vec::new();
    };
    let body = &json[start + key.len()..];
    let Some(end) = body.find(']') else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for obj in body[..end].split('}') {
        if !obj.contains("\"threads\"") {
            continue;
        }
        let num = |k: &str| -> Option<f64> {
            let pat = format!("\"{k}\": ");
            let s = obj.find(&pat)? + pat.len();
            let rest = &obj[s..];
            let e = rest
                .find(|c: char| c != '-' && c != '+' && c != '.' && c != 'e' && !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..e].parse().ok()
        };
        if let (Some(t), Some(rps), Some(p50), Some(p99), Some(fill)) = (
            num("threads"),
            num("requests_per_sec"),
            num("p50_latency_us"),
            num("p99_latency_us"),
            num("mean_batch_fill"),
        ) {
            out.push(Sample {
                threads: t as usize,
                req_per_sec: rps,
                p50_us: p50,
                p99_us: p99,
                mean_batch_fill: fill,
            });
        }
    }
    out
}

fn write_section(json: &mut String, name: &str, samples: &[Sample]) {
    let _ = writeln!(json, "  \"{name}\": [");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"requests_per_sec\": {:.2}, \"p50_latency_us\": {:.1}, \"p99_latency_us\": {:.1}, \"mean_batch_fill\": {:.2}}}",
            s.threads, s.req_per_sec, s.p50_us, s.p99_us, s.mean_batch_fill
        );
        json.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let quick = std::env::var("ROTOM_BENCH_SCALE").as_deref() == Ok("quick");
    let requests_per_client = if quick { 24 } else { 96 };

    let current: Vec<Sample> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            let s = run_config(t, requests_per_client);
            println!(
                "serve /classify, {} score thread(s), {} clients: {:.0} req/s | p50 {:.0}µs p99 {:.0}µs | batch fill {:.2}",
                s.threads, CLIENTS, s.req_per_sec, s.p50_us, s.p99_us, s.mean_batch_fill
            );
            s
        })
        .collect();

    // Quant on/off comparison: inference-scale model, 40-token inputs,
    // scoring-bound window (see `run_quant_config`). Informational, not
    // gated: the serving ratio is diluted by HTTP + batching overhead, so
    // the hard speedup floor lives in `inferbench --check` where the GEMMs
    // are measured directly.
    let quant_rows: Vec<(Sample, Sample)> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            let f = run_quant_config(t, requests_per_client, false);
            let q = run_quant_config(t, requests_per_client, true);
            println!(
                "serve /classify 40-token, {} score thread(s): f32 {:.0} req/s (p99 {:.0}µs) | i8 {:.0} req/s (p99 {:.0}µs) | {:.2}x",
                t,
                f.req_per_sec,
                f.p99_us,
                q.req_per_sec,
                q.p99_us,
                q.req_per_sec / f.req_per_sec
            );
            (f, q)
        })
        .collect();

    // Overload rows: offered load > capacity; gated on shape, not speed.
    let overload_rows: Vec<OverloadSample> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            let o = run_overload_config(t, requests_per_client);
            println!(
                "serve overload, {} score thread(s), {} clients: offered {:.0} req/s | accepted {:.0} req/s ({}) | shed {} | accepted p99 {:.0}µs",
                o.threads, OVERLOAD_CLIENTS, o.offered_rps, o.accepted_rps, o.accepted, o.shed, o.p99_accepted_us
            );
            o
        })
        .collect();

    let old = std::fs::read_to_string(OUT_FILE).unwrap_or_default();
    let baseline = {
        let b = parse_section(&old, "baseline");
        if b.is_empty() {
            println!("no existing baseline; recording this run as the baseline");
            current.clone()
        } else {
            b
        }
    };

    // Regression gate (ci.sh): sustained req/sec within 20% of the
    // checked-in current numbers. The p99 gate is deliberately loose (3x):
    // at a few hundred samples the tail is scheduler noise, so it only
    // catches step-function regressions (a lost batch window, a stall),
    // while throughput — averaged over every request — carries the tight
    // bound.
    if check {
        let prev = parse_section(&old, "current");
        let mut failed = false;
        for p in &prev {
            let Some(now) = current.iter().find(|s| s.threads == p.threads) else {
                continue;
            };
            if now.req_per_sec < 0.8 * p.req_per_sec {
                eprintln!(
                    "servebench: req/sec regression at {} thread(s): {:.0} -> {:.0} (>20%)",
                    p.threads, p.req_per_sec, now.req_per_sec
                );
                failed = true;
            }
            if now.p99_us > 3.0 * p.p99_us {
                eprintln!(
                    "servebench: p99 latency regression at {} thread(s): {:.0}µs -> {:.0}µs (>3x)",
                    p.threads, p.p99_us, now.p99_us
                );
                failed = true;
            }
        }
        // Overload gates are absolute (no baseline): under 2x+ capacity
        // offered load, excess must actually shed, and the p99 of accepted
        // requests must stay within a small multiple of the deadline budget
        // — the signature of admission control working. The 4x headroom
        // absorbs scheduler noise; latency *collapse* (unbounded queueing)
        // is orders of magnitude, not 4x.
        let p99_bound_us = 4.0 * OVERLOAD_DEADLINE.as_secs_f64() * 1e6;
        for o in &overload_rows {
            if o.shed == 0 {
                eprintln!(
                    "servebench: overload at {} thread(s) shed nothing — queue cap not enforced",
                    o.threads
                );
                failed = true;
            }
            if o.accepted == 0 {
                eprintln!(
                    "servebench: overload at {} thread(s) accepted nothing — shedding everything",
                    o.threads
                );
                failed = true;
            }
            if o.p99_accepted_us > p99_bound_us {
                eprintln!(
                    "servebench: overload at {} thread(s): accepted p99 {:.0}µs exceeds {:.0}µs bound",
                    o.threads, o.p99_accepted_us, p99_bound_us
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }

    let mut json = String::from("{\n");
    json.push_str(
        "  \"workload\": \"rotom-serve POST /classify, 4 keep-alive clients, 1ms batch window, demo SST-2 model\",\n",
    );
    write_section(&mut json, "baseline", &baseline);
    write_section(&mut json, "current", &current);
    json.push_str("  \"quant\": [\n");
    for (i, (f, q)) in quant_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"f32_requests_per_sec\": {:.2}, \"i8_requests_per_sec\": {:.2}, \"i8_speedup\": {:.3}, \"f32_p50_latency_us\": {:.1}, \"i8_p50_latency_us\": {:.1}, \"f32_p99_latency_us\": {:.1}, \"i8_p99_latency_us\": {:.1}}}",
            f.threads,
            f.req_per_sec,
            q.req_per_sec,
            q.req_per_sec / f.req_per_sec,
            f.p50_us,
            q.p50_us,
            f.p99_us,
            q.p99_us
        );
        json.push_str(if i + 1 < quant_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"overload\": [\n");
    for (i, o) in overload_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"clients\": {OVERLOAD_CLIENTS}, \"deadline_ms\": {}, \"offered_requests_per_sec\": {:.2}, \"accepted_requests_per_sec\": {:.2}, \"accepted\": {}, \"shed\": {}, \"p99_accepted_latency_us\": {:.1}}}",
            o.threads,
            OVERLOAD_DEADLINE.as_millis(),
            o.offered_rps,
            o.accepted_rps,
            o.accepted,
            o.shed,
            o.p99_accepted_us
        );
        json.push_str(if i + 1 < overload_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"trajectory\": [\n");
    for (i, s) in current.iter().enumerate() {
        let b = baseline
            .iter()
            .find(|x| x.threads == s.threads)
            .copied()
            .unwrap_or(*s);
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"throughput_ratio\": {:.3}, \"p99_ratio\": {:.3}}}",
            s.threads,
            s.req_per_sec / b.req_per_sec,
            s.p99_us / b.p99_us
        );
        json.push_str(if i + 1 < current.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(OUT_FILE, &json).expect("write BENCH_serve.json");
    println!("wrote {OUT_FILE}");
}
