//! Perf smoke benchmark: std-`Instant` timings for the compute core.
//!
//! Times square matmul at 64/256/512 (naive reference vs serial tiled vs
//! pool-parallel tiled) plus one InvDA augmentation batch (serial vs
//! parallel fan-out), and writes the results to `BENCH_compute.json` so
//! successive PRs have a perf trajectory to compare against.
//!
//! Run with `cargo run --release --offline --bin perfsmoke`.

use rotom_augment::{InvDa, InvDaConfig};
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};
use rotom_nn::kernels;
use rotom_nn::RotomPool;
use rotom_rng::rngs::StdRng;
use rotom_rng::{RngExt, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Median-of-runs wall time for `f`, in seconds.
fn time_median(runs: usize, mut f: impl FnMut()) -> f64 {
    // One untimed warmup to populate caches and page in buffers.
    f();
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct MatmulRow {
    size: usize,
    naive_s: f64,
    tiled_serial_s: f64,
    tiled_parallel_s: f64,
}

fn bench_matmul(size: usize, pool: &RotomPool) -> MatmulRow {
    let mut rng = StdRng::seed_from_u64(size as u64);
    let a: Vec<f32> = (0..size * size)
        .map(|_| rng.random_range(-1.0f32..1.0))
        .collect();
    let b: Vec<f32> = (0..size * size)
        .map(|_| rng.random_range(-1.0f32..1.0))
        .collect();
    // Fewer runs for the big sizes; medians are stable well before 10 runs.
    let runs = if size >= 512 { 5 } else { 9 };
    let serial = RotomPool::new(1);
    let naive_s = time_median(runs, || {
        std::hint::black_box(kernels::matmul_naive(&a, &b, size, size, size));
    });
    let tiled_serial_s = time_median(runs, || {
        std::hint::black_box(kernels::matmul_with_pool(&a, &b, size, size, size, &serial));
    });
    let tiled_parallel_s = time_median(runs, || {
        std::hint::black_box(kernels::matmul_with_pool(&a, &b, size, size, size, pool));
    });
    MatmulRow {
        size,
        naive_s,
        tiled_serial_s,
        tiled_parallel_s,
    }
}

struct ForwardRow {
    op: &'static str,
    rows: usize,
    cols: usize,
    time_s: f64,
}

/// Forward-only SIMD kernels from the inference plane: softmax, layernorm
/// and GELU over a `rows x cols` activation block (one attention-score /
/// hidden-state sized panel per call).
fn bench_forward_kernels() -> Vec<ForwardRow> {
    let (rows, cols) = (256, 256);
    let mut rng = StdRng::seed_from_u64(41);
    let x: Vec<f32> = (0..rows * cols)
        .map(|_| rng.random_range(-2.0f32..2.0))
        .collect();
    let gamma: Vec<f32> = (0..cols).map(|_| rng.random_range(0.5f32..1.5)).collect();
    let beta: Vec<f32> = (0..cols).map(|_| rng.random_range(-0.5f32..0.5)).collect();
    let mut out = vec![0.0f32; rows * cols];
    let softmax_s = time_median(9, || {
        kernels::softmax_fwd(&x, None, rows, cols, &mut out);
        std::hint::black_box(&mut out);
    });
    let layernorm_s = time_median(9, || {
        kernels::layernorm_fwd(&x, &gamma, &beta, 1e-5, rows, cols, &mut out);
        std::hint::black_box(&mut out);
    });
    let gelu_s = time_median(9, || {
        kernels::gelu_fwd(&x, &mut out);
        std::hint::black_box(&mut out);
    });
    vec![
        ForwardRow {
            op: "softmax_fwd",
            rows,
            cols,
            time_s: softmax_s,
        },
        ForwardRow {
            op: "layernorm_fwd",
            rows,
            cols,
            time_s: layernorm_s,
        },
        ForwardRow {
            op: "gelu_fwd",
            rows,
            cols,
            time_s: gelu_s,
        },
    ]
}

struct AugmentRow {
    batch: usize,
    serial_s: f64,
    parallel_s: f64,
}

fn bench_invda(pool: &RotomPool) -> AugmentRow {
    let data_cfg = TextClsConfig {
        train_pool: 32,
        test: 8,
        unlabeled: 24,
        seed: 5,
    };
    let task = textcls::generate(TextClsFlavor::Sst2, &data_cfg);
    let model = InvDa::train(&task.unlabeled, InvDaConfig::test_tiny(), 5);
    let inputs: Vec<&[String]> = task
        .train_pool
        .iter()
        .map(|e| e.tokens.as_slice())
        .collect();
    let serial = RotomPool::new(1);
    // Fresh model caches per timing pass would conflate generation with
    // lookup; clear between runs so every pass measures the full fan-out.
    let serial_s = time_median(3, || {
        model.clear_cache();
        std::hint::black_box(model.augment_batch(&inputs, 17, &serial));
    });
    let parallel_s = time_median(3, || {
        model.clear_cache();
        std::hint::black_box(model.augment_batch(&inputs, 17, pool));
    });
    AugmentRow {
        batch: inputs.len(),
        serial_s,
        parallel_s,
    }
}

fn main() {
    let pool = RotomPool::global();
    println!("perfsmoke: {} worker thread(s)", pool.threads());

    let mut rows = Vec::new();
    for size in [64, 256, 512] {
        let row = bench_matmul(size, pool);
        println!(
            "matmul {0}x{0}x{0}: naive {1:.3} ms | tiled serial {2:.3} ms ({3:.2}x) | tiled parallel {4:.3} ms ({5:.2}x)",
            size,
            row.naive_s * 1e3,
            row.tiled_serial_s * 1e3,
            row.naive_s / row.tiled_serial_s,
            row.tiled_parallel_s * 1e3,
            row.naive_s / row.tiled_parallel_s,
        );
        rows.push(row);
    }

    let fwd = bench_forward_kernels();
    for r in &fwd {
        println!("{} {}x{}: {:.1} us", r.op, r.rows, r.cols, r.time_s * 1e6);
    }

    let aug = bench_invda(pool);
    println!(
        "invda batch={}: serial {:.1} ms | parallel {:.1} ms ({:.2}x)",
        aug.batch,
        aug.serial_s * 1e3,
        aug.parallel_s * 1e3,
        aug.serial_s / aug.parallel_s,
    );

    // Hand-rolled JSON (the workspace carries no serde).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"threads\": {},", pool.threads());
    json.push_str("  \"matmul\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"size\": {}, \"naive_s\": {:.6e}, \"tiled_serial_s\": {:.6e}, \"tiled_parallel_s\": {:.6e}, \"speedup_serial\": {:.3}, \"speedup_parallel\": {:.3}}}",
            r.size,
            r.naive_s,
            r.tiled_serial_s,
            r.tiled_parallel_s,
            r.naive_s / r.tiled_serial_s,
            r.naive_s / r.tiled_parallel_s,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"forward_kernels\": [\n");
    for (i, r) in fwd.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"op\": \"{}\", \"rows\": {}, \"cols\": {}, \"time_s\": {:.6e}}}",
            r.op, r.rows, r.cols, r.time_s,
        );
        json.push_str(if i + 1 < fwd.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"invda_augment\": {{\"batch\": {}, \"serial_s\": {:.6e}, \"parallel_s\": {:.6e}, \"speedup\": {:.3}}}",
        aug.batch,
        aug.serial_s,
        aug.parallel_s,
        aug.serial_s / aug.parallel_s,
    );
    json.push_str("}\n");
    std::fs::write("BENCH_compute.json", &json).expect("write BENCH_compute.json");
    println!("wrote BENCH_compute.json");
}
