//! Million-record blocking benchmark: index-build records/sec, streamed
//! candidate pairs/sec, recall vs exhaustive `blocked()` on a verification
//! slice, and a peak-allocation RSS proxy, written to `BENCH_blocking.json`.
//!
//! Two rows per thread count:
//!
//! * **scale** — a stopword-free [`EmCorpus`] of `--records` entities
//!   (default 1M, the acceptance floor). The index is built in streamed
//!   chunks, then the full left side streams through
//!   [`stream_candidates`] under a bounded candidate buffer. Recall is
//!   measured against exhaustive [`block_candidates`] on a 2000x2000
//!   verification slice (the corpus has no high-df token, so the exact
//!   token tier is feasible and the comparison honest).
//! * **stress** — a 200k corpus with 3 stopwords welded onto every record,
//!   which makes exhaustive `blocked(min_shared=2)` degenerate toward the
//!   cross product. The df ceiling must prune the stopword posting lists
//!   (`tokens_pruned >= 3`) while match-pair recall (left i vs right i)
//!   stays >= 0.95, with the LSH tier enabled as the recovery net.
//!
//! Because `ROTOM_THREADS` is read once per process, the parent re-executes
//! itself per thread count (1 and 8) and aggregates children's results. The
//! first run records `baseline`; later runs preserve it and update
//! `current`.
//!
//! Usage:
//!   cargo run --release --offline --bin blockbench                # regenerate
//!   cargo run --release --offline --bin blockbench -- --check     # + gates
//!   cargo run --release --offline --bin blockbench -- --records N # resize

use rotom_datasets::blocking::{stream_candidates, BlockingConfig, IndexBuilder, LshParams};
use rotom_datasets::em::{block_candidates, CorpusConfig, CorpusSide, EmCorpus};
use rotom_nn::RotomPool;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Global allocator tracking live bytes and their high-water mark — the
/// peak-RSS proxy. Dealloc sizes come from the layout, so the live counter
/// is exact for everything allocated through this process.
struct CountingAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let grown = new_size.saturating_sub(layout.size());
        if grown > 0 {
            note_alloc(grown);
        } else {
            LIVE.fetch_sub((layout.size() - new_size) as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const THREAD_COUNTS: [usize; 2] = [1, 8];
const CHILD_ENV: &str = "BLOCKBENCH_CHILD";
const RECORDS_ENV: &str = "BLOCKBENCH_RECORDS";
const OUT_FILE: &str = "BENCH_blocking.json";
const CHUNK: usize = 8192;
const SLICE: usize = 2000;
const STRESS_RECORDS: usize = 200_000;

#[derive(Debug, Clone, Copy)]
struct Sample {
    threads: usize,
    records: usize,
    index_records_per_sec: f64,
    pairs_per_sec: f64,
    candidates: u64,
    recall: f64,
    peak_mb: f64,
    stress_pruned_tokens: f64,
    stress_recall: f64,
}

/// One measured child: scale row then stress row at the current
/// `ROTOM_THREADS`, printed as a parseable result line.
fn run_child(records: usize) {
    let pool = RotomPool::global();
    let corpus = EmCorpus::new(CorpusConfig {
        num_entities: records,
        ..Default::default()
    });

    // --- scale row: streamed build, streamed candidates, slice recall ---
    let cfg = BlockingConfig {
        min_shared: 2,
        df_ceiling: Some(4096),
        lsh: Some(LshParams::default()),
        max_buffered_pairs: 1 << 16,
        ..Default::default()
    };
    let max_buffered = cfg.max_buffered_pairs;
    let t0 = Instant::now();
    let mut builder = IndexBuilder::new(cfg);
    for chunk in corpus.chunks(CorpusSide::Right, CHUNK) {
        builder.add_chunk(&chunk, pool);
    }
    let index = builder.finish();
    let build_secs = t0.elapsed().as_secs_f64();

    // Stream every left record; keep only the verification slice's pairs.
    let t1 = Instant::now();
    let mut slice_pairs: Vec<(usize, usize)> = Vec::new();
    let stats = stream_candidates(
        &index,
        corpus.chunks(CorpusSide::Left, CHUNK),
        pool,
        |batch| {
            slice_pairs.extend(
                batch
                    .iter()
                    .filter(|&&(l, r)| l < SLICE && r < SLICE)
                    .copied(),
            );
        },
    );
    let stream_secs = t1.elapsed().as_secs_f64();
    assert_eq!(stats.left_records, records);
    assert!(
        stats.peak_buffered_pairs <= max_buffered + records,
        "candidate buffer unbounded: peak {}",
        stats.peak_buffered_pairs
    );

    // Exhaustive token-overlap blocking on the slice; every exhaustive pair
    // the pipeline misses costs recall.
    let slice = SLICE.min(records);
    let left_slice = corpus.chunk(CorpusSide::Left, 0..slice);
    let right_slice = corpus.chunk(CorpusSide::Right, 0..slice);
    let exhaustive = block_candidates(&left_slice, &right_slice, 2);
    slice_pairs.sort_unstable();
    let hit = exhaustive
        .iter()
        .filter(|p| slice_pairs.binary_search(p).is_ok())
        .count();
    let recall = hit as f64 / exhaustive.len().max(1) as f64;

    // --- stress row: stopworded corpus, pruning must engage ---
    let stress = EmCorpus::new(CorpusConfig {
        num_entities: STRESS_RECORDS.min(records),
        stopwords: 3,
        ..Default::default()
    });
    let stress_cfg = BlockingConfig {
        min_shared: 2,
        df_ceiling: Some(1024),
        lsh: Some(LshParams::default()),
        ..Default::default()
    };
    let mut sb = IndexBuilder::new(stress_cfg);
    for chunk in stress.chunks(CorpusSide::Right, CHUNK) {
        sb.add_chunk(&chunk, pool);
    }
    let sindex = sb.finish();
    let pruned = sindex.stats().tokens_pruned;
    let n_stress = stress.num_entities();
    let mut matched = 0usize;
    let mut streamed = 0usize;
    stream_candidates(
        &sindex,
        stress.chunks(CorpusSide::Left, CHUNK),
        pool,
        |batch| {
            matched += batch.iter().filter(|&&(l, r)| l == r).count();
            streamed += batch.len();
        },
    );
    let stress_recall = matched as f64 / n_stress as f64;
    // Pruning is the whole point: without it each stopword posting list has
    // every record and each probe degenerates to a corpus scan.
    assert!(
        streamed < n_stress * n_stress / 10,
        "stress candidates not pruned: {streamed}"
    );

    println!(
        "BLOCKBENCH threads={} records={} index_records_per_sec={:.2} pairs_per_sec={:.2} \
         candidates={} recall={:.6} peak_mb={:.1} stress_pruned_tokens={} stress_recall={:.6}",
        pool.threads(),
        records,
        records as f64 / build_secs,
        stats.candidates as f64 / stream_secs,
        stats.candidates,
        recall,
        PEAK.load(Ordering::Relaxed) as f64 / (1024.0 * 1024.0),
        pruned,
        stress_recall,
    );
}

/// Extract `key=value` from a child's result line.
fn field(line: &str, key: &str) -> f64 {
    let pat = format!("{key}=");
    let start = line.find(&pat).unwrap_or_else(|| panic!("missing {key}")) + pat.len();
    let rest = &line[start..];
    let end = rest.find(' ').unwrap_or(rest.len());
    rest[..end].parse().expect("numeric field")
}

/// Pull samples out of one JSON section of a previous `BENCH_blocking.json`.
/// Hand-rolled: the workspace carries no serde.
fn parse_section(json: &str, section: &str) -> Vec<Sample> {
    let key = format!("\"{section}\": [");
    let Some(start) = json.find(&key) else {
        return Vec::new();
    };
    let body = &json[start + key.len()..];
    let Some(end) = body.find(']') else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for obj in body[..end].split('}') {
        if !obj.contains("\"threads\"") {
            continue;
        }
        let num = |k: &str| -> Option<f64> {
            let pat = format!("\"{k}\": ");
            let s = obj.find(&pat)? + pat.len();
            let rest = &obj[s..];
            let e = rest
                .find(|c: char| c != '-' && c != '+' && c != '.' && c != 'e' && !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..e].parse().ok()
        };
        let get = |k: &str| num(k).unwrap_or(0.0);
        if let Some(t) = num("threads") {
            out.push(Sample {
                threads: t as usize,
                records: get("records") as usize,
                index_records_per_sec: get("index_records_per_sec"),
                pairs_per_sec: get("pairs_per_sec"),
                candidates: get("candidates") as u64,
                recall: get("recall"),
                peak_mb: get("peak_mb"),
                stress_pruned_tokens: get("stress_pruned_tokens"),
                stress_recall: get("stress_recall"),
            });
        }
    }
    out
}

fn write_section(json: &mut String, name: &str, samples: &[Sample]) {
    let _ = writeln!(json, "  \"{name}\": [");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"records\": {}, \"index_records_per_sec\": {:.2}, \
             \"pairs_per_sec\": {:.2}, \"candidates\": {}, \"recall\": {:.6}, \
             \"peak_mb\": {:.1}, \"stress_pruned_tokens\": {}, \"stress_recall\": {:.6}}}",
            s.threads,
            s.records,
            s.index_records_per_sec,
            s.pairs_per_sec,
            s.candidates,
            s.recall,
            s.peak_mb,
            s.stress_pruned_tokens as u64,
            s.stress_recall
        );
        json.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
}

fn main() {
    let records: usize = std::env::var(RECORDS_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    if std::env::var(CHILD_ENV).is_ok() {
        run_child(records);
        return;
    }
    let args: Vec<String> = std::env::args().collect();
    let check = args.iter().any(|a| a == "--check");
    let records = args
        .iter()
        .position(|a| a == "--records")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(records);
    let exe = std::env::current_exe().expect("current_exe");

    let mut current = Vec::new();
    for &threads in &THREAD_COUNTS {
        let out = std::process::Command::new(&exe)
            .env(CHILD_ENV, "1")
            .env(RECORDS_ENV, records.to_string())
            .env("ROTOM_THREADS", threads.to_string())
            .output()
            .expect("spawn blockbench child");
        assert!(
            out.status.success(),
            "child (threads={threads}) failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout
            .lines()
            .find(|l| l.starts_with("BLOCKBENCH "))
            .expect("child result line");
        let sample = Sample {
            threads,
            records: field(line, "records") as usize,
            index_records_per_sec: field(line, "index_records_per_sec"),
            pairs_per_sec: field(line, "pairs_per_sec"),
            candidates: field(line, "candidates") as u64,
            recall: field(line, "recall"),
            peak_mb: field(line, "peak_mb"),
            stress_pruned_tokens: field(line, "stress_pruned_tokens"),
            stress_recall: field(line, "stress_recall"),
        };
        println!(
            "blocking, {} thread(s): {:.0} rec/s indexed, {:.0} pairs/s, recall {:.4}, \
             peak {:.0} MB, stress pruned {} recall {:.4}",
            sample.threads,
            sample.index_records_per_sec,
            sample.pairs_per_sec,
            sample.recall,
            sample.peak_mb,
            sample.stress_pruned_tokens as u64,
            sample.stress_recall
        );
        current.push(sample);
    }

    let old = std::fs::read_to_string(OUT_FILE).unwrap_or_default();
    let baseline = {
        let b = parse_section(&old, "baseline");
        if b.is_empty() {
            println!("no existing baseline; recording this run as the baseline");
            current.clone()
        } else {
            b
        }
    };

    // Acceptance + regression gates (ci.sh runs with --check).
    if check {
        for s in &current {
            assert!(
                s.records >= 1_000_000,
                "blockbench: scale row must index >= 1M records (got {})",
                s.records
            );
            assert!(
                s.recall >= 0.95,
                "blockbench: recall {} < 0.95 at {} thread(s)",
                s.recall,
                s.threads
            );
            assert!(
                s.stress_pruned_tokens >= 3.0,
                "blockbench: df ceiling pruned {} tokens (expected >= 3 stopwords)",
                s.stress_pruned_tokens
            );
            assert!(
                s.stress_recall >= 0.95,
                "blockbench: stress match recall {} < 0.95",
                s.stress_recall
            );
        }
        let prev = parse_section(&old, "current");
        for p in &prev {
            let Some(now) = current.iter().find(|s| s.threads == p.threads) else {
                continue;
            };
            if p.records == now.records && now.pairs_per_sec < 0.8 * p.pairs_per_sec {
                eprintln!(
                    "blockbench: pairs/sec regression at {} thread(s): {:.0} -> {:.0} (>20%)",
                    p.threads, p.pairs_per_sec, now.pairs_per_sec
                );
                std::process::exit(1);
            }
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"workload\": \"sharded blocking: {records}-record EmCorpus, min_shared 2, \
         df_ceiling 4096, lsh 8x2, chunk {CHUNK}; stress {STRESS_RECORDS} records + 3 stopwords, \
         df_ceiling 1024\",",
    );
    write_section(&mut json, "baseline", &baseline);
    write_section(&mut json, "current", &current);
    json.push_str("  \"speedup\": [\n");
    for (i, s) in current.iter().enumerate() {
        let b = baseline
            .iter()
            .find(|x| x.threads == s.threads)
            .copied()
            .unwrap_or(*s);
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"pairs_per_sec_ratio\": {:.3}, \"index_ratio\": {:.3}}}",
            s.threads,
            s.pairs_per_sec / b.pairs_per_sec.max(1e-9),
            s.index_records_per_sec / b.index_records_per_sec.max(1e-9)
        );
        json.push_str(if i + 1 < current.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(OUT_FILE, &json).expect("write BENCH_blocking.json");
    println!("wrote {OUT_FILE}");
}
