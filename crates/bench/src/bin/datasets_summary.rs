//! Tables 6 & 7 — the dataset inventory: sizes and class counts of every
//! generated benchmark, in the layout of the paper's dataset tables.

use rotom_bench::{print_table, Suite};
use rotom_datasets::edt::{self, EdtFlavor};
use rotom_datasets::em::{self, EmFlavor};
use rotom_datasets::textcls::{self, TextClsFlavor};

fn main() {
    let suite = Suite::from_env();

    // Table 6 (left): EM datasets.
    let mut rows = Vec::new();
    for flavor in EmFlavor::ALL {
        let d = em::generate(flavor, &suite.em);
        let has_dirty = EmFlavor::WITH_DIRTY.contains(&flavor);
        rows.push(vec![
            format!("{}{}", d.name, if has_dirty { "*" } else { "" }),
            d.train_pairs.len().to_string(),
            d.test_pairs.len().to_string(),
            d.train_pairs
                .iter()
                .filter(|p| p.is_match)
                .count()
                .to_string(),
        ]);
    }
    print_table(
        "Table 6 (EM): generated datasets (* = dirty variant available)",
        &[
            "Dataset".into(),
            "#Train+Valid".into(),
            "#Test".into(),
            "#Pos".into(),
        ],
        &rows,
    );

    // Table 6 (right): EDT datasets.
    let mut rows = Vec::new();
    for flavor in EdtFlavor::ALL {
        let d = edt::generate(flavor, &suite.edt);
        let test_cells = d.test_rows.len() * d.columns.len();
        rows.push(vec![
            d.name.clone(),
            format!("{} / {}", test_cells, d.test_rows.len()),
            d.rows.len().to_string(),
            d.num_errors().to_string(),
        ]);
    }
    print_table(
        "Table 6 (EDT): generated datasets",
        &[
            "Dataset".into(),
            "Test (#cell,#tpl)".into(),
            "Table (#tpl)".into(),
            "#Errors".into(),
        ],
        &rows,
    );

    // Table 7: TextCLS datasets.
    let mut rows = Vec::new();
    for flavor in TextClsFlavor::ALL {
        let d = textcls::generate(flavor, &suite.textcls);
        let semantics = match flavor {
            TextClsFlavor::Ag => "News topic",
            TextClsFlavor::Am2 | TextClsFlavor::Am5 => "Product review sentiment",
            TextClsFlavor::Atis => "Airline reservation intent",
            TextClsFlavor::Snips => "Voice assistant intent",
            TextClsFlavor::Sst2 | TextClsFlavor::Sst5 => "Movie review sentiment",
            TextClsFlavor::Trec => "Open-domain question intent",
        };
        rows.push(vec![
            d.name.clone(),
            d.num_classes.to_string(),
            format!("({}, {})", d.train_pool.len(), d.test.len()),
            semantics.to_string(),
        ]);
    }
    print_table(
        "Table 7: TextCLS datasets",
        &[
            "Dataset".into(),
            "#classes".into(),
            "(#Train, #Test)".into(),
            "Class semantics".into(),
        ],
        &rows,
    );
}
