//! Summarize a `ROTOM_TELEMETRY` JSONL capture into human-readable tables.
//!
//! ```text
//! telemetry_report <run.jsonl>                    # summary tables
//! telemetry_report <run.jsonl> --check            # schema/sanity gate (CI)
//! telemetry_report <run.jsonl> --check --require step,meta,aug,pool
//! ```
//!
//! `--check` exits nonzero unless the capture is non-empty, every line
//! parses against the record schema (`ts_step` + `kind` + `name`), and
//! every `keep_rate` field lies in `[0, 1]`. `--require` additionally
//! demands that each named record kind appears at least once — the CI smoke
//! uses it to prove a training run exercised the step, meta-decision,
//! augmentation, and pool instrumentation.

use rotom::telemetry::{parse_line, Record};
use rotom_bench::print_table;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Running aggregate for one `(kind, name)` stream.
#[derive(Default)]
struct Agg {
    count: u64,
    /// Sum/min/max per numeric field key, in first-seen order.
    fields: Vec<(String, f64, f64, f64)>,
}

impl Agg {
    fn add(&mut self, rec: &Record) {
        self.count += 1;
        for (k, v) in &rec.fields {
            let Some(x) = v.as_f64() else { continue };
            match self.fields.iter_mut().find(|(fk, ..)| fk == k) {
                Some((_, sum, min, max)) => {
                    *sum += x;
                    *min = min.min(x);
                    *max = max.max(x);
                }
                None => self.fields.push((k.clone(), x, x, x)),
            }
        }
    }
}

fn fmt(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut check = false;
    let mut require: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--require" => {
                let Some(kinds) = it.next() else {
                    eprintln!("--require needs a comma-separated kind list");
                    return ExitCode::FAILURE;
                };
                require.extend(kinds.split(',').map(|s| s.trim().to_string()));
            }
            "--help" | "-h" => {
                eprintln!("usage: telemetry_report <run.jsonl> [--check] [--require k1,k2,..]");
                return ExitCode::SUCCESS;
            }
            _ if path.is_none() => path = Some(a),
            other => {
                eprintln!("unexpected argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: telemetry_report <run.jsonl> [--check] [--require k1,k2,..]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("telemetry_report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut records: Vec<Record> = Vec::new();
    let mut parse_errors = 0usize;
    let mut keep_rate_violations = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(rec) => {
                for (k, v) in &rec.fields {
                    if k == "keep_rate" {
                        match v.as_f64() {
                            Some(r) if (0.0..=1.0).contains(&r) => {}
                            _ => {
                                eprintln!("line {}: keep_rate {v:?} outside [0, 1]", lineno + 1);
                                keep_rate_violations += 1;
                            }
                        }
                    }
                }
                records.push(rec);
            }
            Err(e) => {
                eprintln!("line {}: {e}", lineno + 1);
                parse_errors += 1;
            }
        }
    }

    // Aggregate per (kind, name), keyed so kinds group together.
    let mut aggs: BTreeMap<(String, String), Agg> = BTreeMap::new();
    for rec in &records {
        aggs.entry((rec.kind.clone(), rec.name.clone()))
            .or_default()
            .add(rec);
    }

    let header: Vec<String> = ["kind", "name", "count", "field", "mean", "min", "max"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for ((kind, name), agg) in &aggs {
        if agg.fields.is_empty() {
            rows.push(vec![
                kind.clone(),
                name.clone(),
                agg.count.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        for (i, (field, sum, min, max)) in agg.fields.iter().enumerate() {
            rows.push(vec![
                if i == 0 { kind.clone() } else { String::new() },
                if i == 0 { name.clone() } else { String::new() },
                if i == 0 {
                    agg.count.to_string()
                } else {
                    String::new()
                },
                field.clone(),
                fmt(sum / agg.count as f64),
                fmt(*min),
                fmt(*max),
            ]);
        }
    }
    print_table(&format!("telemetry: {path}"), &header, &rows);
    println!(
        "\n{} records, {} streams, {} parse errors",
        records.len(),
        aggs.len(),
        parse_errors
    );

    if !check {
        return ExitCode::SUCCESS;
    }
    let mut failed = false;
    if records.is_empty() {
        eprintln!("CHECK FAIL: no telemetry records in {path}");
        failed = true;
    }
    if parse_errors > 0 {
        eprintln!("CHECK FAIL: {parse_errors} line(s) failed schema validation");
        failed = true;
    }
    if keep_rate_violations > 0 {
        eprintln!("CHECK FAIL: {keep_rate_violations} keep_rate value(s) outside [0, 1]");
        failed = true;
    }
    for kind in &require {
        if !aggs.keys().any(|(k, _)| k == kind) {
            eprintln!("CHECK FAIL: no records of required kind {kind:?}");
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("CHECK OK: schema-valid, {} records", records.len());
        ExitCode::SUCCESS
    }
}
