//! Inference-plane benchmark: scored examples/sec on the tape path vs the
//! tape-free path, InvDA decode tokens/sec, and score-cache hit throughput,
//! written to `BENCH_infer.json`.
//!
//! The workload is batch-64 classifier scoring with an inference-scale
//! model (d_model 128, 1 layer): the tape baseline maps
//! [`TinyLm::predict_proba_tape`] over the batch with the same worker pool
//! the tape-free [`TinyLm::score_batch`] uses, so the comparison isolates
//! the execution plane (tape nodes + arena writes vs forward-only kernels
//! with the CLS band tail), not the parallelism. Decode throughput drives
//! [`InvDa::generate`] through the forward-only decoder.
//!
//! Because `ROTOM_THREADS` is read once per process, the parent re-executes
//! itself once per thread count (1 and 8) and aggregates the children's
//! results. The first run records its numbers as the `baseline` section;
//! later runs preserve the existing baseline and update `current`.
//!
//! Usage:
//!   cargo run --release --offline --bin inferbench            # regenerate
//!   cargo run --release --offline --bin inferbench -- --check # + fail on
//!     >20% throughput regression or tape-free speedup dropping below 2x

use rotom::config::RotomConfig;
use rotom::TinyLm;
use rotom_augment::InvDa;
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};
use rotom_nn::RotomPool;
use rotom_rng::rngs::StdRng;
use rotom_rng::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

const THREAD_COUNTS: [usize; 2] = [1, 8];
const CHILD_ENV: &str = "INFERBENCH_CHILD";
const OUT_FILE: &str = "BENCH_infer.json";
const BATCH: usize = 64;

/// Best (minimum) wall time for `f` over `runs` timed passes, in seconds
/// (one untimed warmup). Min-time is the robust estimator on a shared
/// machine: interference from co-tenants only ever adds time, so the
/// fastest pass is the closest observation of the code's real cost — the
/// median was swinging ±30% run-to-run at 8 threads, which made the
/// regression gates fire on noise.
fn time_best(runs: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    threads: usize,
    tape_eps: f64,
    infer_eps: f64,
    speedup: f64,
    quant_eps: f64,
    decode_tok_s: f64,
    cache_eps: f64,
    cache_hit_rate: f64,
}

/// One measured child process: run the scoring and decode workloads at the
/// current `ROTOM_THREADS` setting and print a parseable result line.
fn run_child() {
    let data_cfg = TextClsConfig {
        train_pool: BATCH,
        test: 8,
        unlabeled: 24,
        seed: 11,
    };
    let task = textcls::generate(TextClsFlavor::Sst2, &data_cfg);
    let mut cfg = RotomConfig::bench_small();
    // Inference-scale classifier: wide enough that one batch pass dominates
    // the pool's per-dispatch cost (thread spawns are ~1ms, which would
    // otherwise swamp a d_model=24 batch and hide the plane difference).
    cfg.model.d_model = 128;
    cfg.model.heads = 8;
    cfg.model.d_ff = 256;
    cfg.model.layers = 1;
    cfg.model.max_len = 48;
    // Scoring throughput does not depend on trained weights; skip the
    // pretraining phases so the child spends its time in the measured loop.
    cfg.model.pretrain_epochs = 0;
    cfg.model.pair_pretrain_epochs = 0;
    cfg.invda.epochs = 1;
    let batch: Vec<Vec<String>> = task.train_pool.iter().map(|e| e.tokens.clone()).collect();
    let mut model = TinyLm::from_corpus(&batch, task.num_classes, &cfg.model, 5e-4, 7);
    assert!(model.score_cache().is_none(), "cache must start disabled");

    let pool = RotomPool::global();
    let quick = std::env::var("ROTOM_BENCH_SCALE").as_deref() == Ok("quick");
    let passes = if quick { 3 } else { 9 };

    // Tape baseline: the pre-inference-plane scoring path, fanned out over
    // the same pool `score_batch` uses.
    let tape_s = time_best(passes, || {
        std::hint::black_box(pool.map(batch.len(), |i| model.predict_proba_tape(&batch[i])));
    });
    // Tape-free plane.
    let infer_s = time_best(passes, || {
        std::hint::black_box(model.score_batch(&batch, pool));
    });
    let tape_eps = batch.len() as f64 / tape_s;
    let infer_eps = batch.len() as f64 / infer_s;

    // Quantized i8 tier: same tape-free workload with the store flipped to
    // i8 GEMMs (measured while the cache is still disabled, so every pass
    // runs the full forward). Restored to f32 before the cache rows below.
    model.set_quant_mode(rotom_nn::QuantMode::I8);
    let quant_s = time_best(passes, || {
        std::hint::black_box(model.score_batch(&batch, pool));
    });
    model.set_quant_mode(rotom_nn::QuantMode::F32);
    let quant_eps = batch.len() as f64 / quant_s;

    // InvDA decode: forward-only seq2seq generation, tokens emitted per
    // second. The RNG is reseeded per pass so the token count is the same
    // in every pass.
    let invda = InvDa::train(&task.unlabeled, cfg.invda, 5);
    let inputs: Vec<&[String]> = task.train_pool[..16]
        .iter()
        .map(|e| e.tokens.as_slice())
        .collect();
    let mut decode_tokens = 0usize;
    let decode_s = time_best(if quick { 2 } else { 3 }, || {
        let mut rng = StdRng::seed_from_u64(23);
        decode_tokens = 0;
        for toks in &inputs {
            decode_tokens += invda.generate(toks, &mut rng).len();
        }
    });
    assert!(decode_tokens > 0, "decode emitted no tokens");
    let decode_tok_s = decode_tokens as f64 / decode_s;

    // Score cache: populate once, then measure steady-state hit throughput.
    model.set_score_cache(4096);
    std::hint::black_box(model.score_batch(&batch, pool));
    let cache_s = time_best(passes, || {
        std::hint::black_box(model.score_batch(&batch, pool));
    });
    let (hits, misses) = model.score_cache().expect("cache enabled").hit_miss();
    assert!(hits > 0, "repeat scoring must hit the cache");
    assert_eq!(
        model.score_cache().expect("cache enabled").evictions(),
        0,
        "capacity 4096 holds the whole batch-64 working set"
    );
    let cache_hit_rate = hits as f64 / (hits + misses) as f64;
    let cache_eps = batch.len() as f64 / cache_s;

    // Eviction path: shrink the cache below the working set so every pass
    // churns through LRU eviction, and pin the capacity/eviction behavior
    // the steady-state row above never exercises (its 4096-entry cache
    // holds all 64 inputs). Scoring stays bit-identical either way; this
    // guards the bookkeeping, not the numbers.
    model.set_score_cache(BATCH / 2);
    let full = model.score_batch(&batch, pool);
    let evicting = model.score_batch(&batch, pool);
    assert_eq!(full, evicting, "eviction churn must not change scores");
    let cache = model.score_cache().expect("cache enabled");
    assert!(
        cache.evictions() > 0,
        "batch-64 through a {}-entry cache must evict",
        BATCH / 2
    );
    assert!(
        cache.len() <= BATCH / 2,
        "cache must stay within capacity ({} entries)",
        cache.len()
    );
    cache.emit_gauges();
    model.set_score_cache(0);

    println!(
        "INFERBENCH threads={} tape_eps={:.2} infer_eps={:.2} speedup={:.3} quant_eps={:.2} decode_tok_s={:.2} cache_eps={:.2} cache_hit_rate={:.4}",
        pool.threads(),
        tape_eps,
        infer_eps,
        infer_eps / tape_eps,
        quant_eps,
        decode_tok_s,
        cache_eps,
        cache_hit_rate,
    );
}

/// Extract `key=value` from a child's result line.
fn field(line: &str, key: &str) -> f64 {
    let pat = format!("{key}=");
    let start = line.find(&pat).unwrap_or_else(|| panic!("missing {key}")) + pat.len();
    let rest = &line[start..];
    let end = rest.find(' ').unwrap_or(rest.len());
    rest[..end].parse().expect("numeric field")
}

/// Pull samples out of one JSON section (`"baseline"` or `"current"`) of a
/// previous `BENCH_infer.json`. Hand-rolled: the workspace carries no serde.
fn parse_section(json: &str, section: &str) -> Vec<Sample> {
    let key = format!("\"{section}\": [");
    let Some(start) = json.find(&key) else {
        return Vec::new();
    };
    let body = &json[start + key.len()..];
    let Some(end) = body.find(']') else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for obj in body[..end].split('}') {
        if !obj.contains("\"threads\"") {
            continue;
        }
        let num = |k: &str| -> Option<f64> {
            let pat = format!("\"{k}\": ");
            let s = obj.find(&pat)? + pat.len();
            let rest = &obj[s..];
            let e = rest
                .find(|c: char| c != '-' && c != '+' && c != '.' && c != 'e' && !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..e].parse().ok()
        };
        if let (Some(t), Some(tape), Some(infer), Some(dec), Some(cache), Some(rate)) = (
            num("threads"),
            num("tape_examples_per_sec"),
            num("infer_examples_per_sec"),
            num("decode_tokens_per_sec"),
            num("cache_hit_examples_per_sec"),
            num("cache_hit_rate"),
        ) {
            out.push(Sample {
                threads: t as usize,
                tape_eps: tape,
                infer_eps: infer,
                speedup: infer / tape,
                // Absent in pre-quant files; 0.0 marks "not measured" and
                // is skipped by the quant gates below.
                quant_eps: num("quant_examples_per_sec").unwrap_or(0.0),
                decode_tok_s: dec,
                cache_eps: cache,
                cache_hit_rate: rate,
            });
        }
    }
    out
}

fn write_section(json: &mut String, name: &str, samples: &[Sample]) {
    let _ = writeln!(json, "  \"{name}\": [");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"tape_examples_per_sec\": {:.2}, \"infer_examples_per_sec\": {:.2}, \"speedup_vs_tape\": {:.3}, \"quant_examples_per_sec\": {:.2}, \"quant_speedup_vs_f32\": {:.3}, \"decode_tokens_per_sec\": {:.2}, \"cache_hit_examples_per_sec\": {:.2}, \"cache_hit_rate\": {:.4}}}",
            s.threads, s.tape_eps, s.infer_eps, s.speedup, s.quant_eps, s.quant_eps / s.infer_eps, s.decode_tok_s, s.cache_eps, s.cache_hit_rate
        );
        json.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
}

fn main() {
    if std::env::var(CHILD_ENV).is_ok() {
        run_child();
        return;
    }
    let check = std::env::args().any(|a| a == "--check");
    let exe = std::env::current_exe().expect("current_exe");

    let mut current = Vec::new();
    for &threads in &THREAD_COUNTS {
        let out = std::process::Command::new(&exe)
            .env(CHILD_ENV, "1")
            .env("ROTOM_THREADS", threads.to_string())
            .output()
            .expect("spawn inferbench child");
        assert!(
            out.status.success(),
            "child (threads={threads}) failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout
            .lines()
            .find(|l| l.starts_with("INFERBENCH "))
            .expect("child result line");
        let sample = Sample {
            threads,
            tape_eps: field(line, "tape_eps"),
            infer_eps: field(line, "infer_eps"),
            speedup: field(line, "speedup"),
            quant_eps: field(line, "quant_eps"),
            decode_tok_s: field(line, "decode_tok_s"),
            cache_eps: field(line, "cache_eps"),
            cache_hit_rate: field(line, "cache_hit_rate"),
        };
        println!(
            "batch-{} scoring, {} thread(s): tape {:.0} ex/s | tape-free {:.0} ex/s ({:.2}x) | i8 {:.0} ex/s ({:.2}x f32) | cache hits {:.0} ex/s (rate {:.2}) | decode {:.0} tok/s",
            BATCH,
            sample.threads,
            sample.tape_eps,
            sample.infer_eps,
            sample.speedup,
            sample.quant_eps,
            sample.quant_eps / sample.infer_eps,
            sample.cache_eps,
            sample.cache_hit_rate,
            sample.decode_tok_s,
        );
        current.push(sample);
    }

    let old = std::fs::read_to_string(OUT_FILE).unwrap_or_default();
    let baseline = {
        let b = parse_section(&old, "baseline");
        if b.is_empty() {
            println!("no existing baseline; recording this run as the baseline");
            current.clone()
        } else {
            b
        }
    };

    // Regression gate (ci.sh): tape-free scoring must stay within 20% of the
    // previously checked-in current numbers, and the tape-free plane must
    // keep its >=2x advantage over the tape path at every thread count.
    if check {
        let prev = parse_section(&old, "current");
        let mut failed = false;
        for p in &prev {
            let Some(now) = current.iter().find(|s| s.threads == p.threads) else {
                continue;
            };
            if now.infer_eps < 0.8 * p.infer_eps {
                eprintln!(
                    "inferbench: examples/sec regression at {} thread(s): {:.0} -> {:.0} (>20%)",
                    p.threads, p.infer_eps, now.infer_eps
                );
                failed = true;
            }
            if now.decode_tok_s < 0.8 * p.decode_tok_s {
                eprintln!(
                    "inferbench: decode tokens/sec regression at {} thread(s): {:.0} -> {:.0} (>20%)",
                    p.threads, p.decode_tok_s, now.decode_tok_s
                );
                failed = true;
            }
        }
        for s in &current {
            if s.speedup < 2.0 {
                eprintln!(
                    "inferbench: tape-free speedup at {} thread(s) is {:.2}x (< 2x floor)",
                    s.threads, s.speedup
                );
                failed = true;
            }
            if s.quant_eps < 1.5 * s.infer_eps {
                eprintln!(
                    "inferbench: i8 quant speedup at {} thread(s) is {:.2}x over f32 (< 1.5x floor)",
                    s.threads,
                    s.quant_eps / s.infer_eps
                );
                failed = true;
            }
        }
        // Trajectory gate: long-horizon drift against the recorded baseline
        // must stay within 10%, even when each per-PR step passed the 20%
        // current-vs-previous gate above (slow slides compound silently
        // otherwise).
        for s in &current {
            let Some(b) = baseline.iter().find(|x| x.threads == s.threads) else {
                continue;
            };
            for (what, now, base) in [
                ("infer examples/sec", s.infer_eps, b.infer_eps),
                ("decode tokens/sec", s.decode_tok_s, b.decode_tok_s),
            ] {
                if now < 0.9 * base {
                    eprintln!(
                        "inferbench: {what} trajectory slide at {} thread(s): ratio {:.3} vs baseline (< 0.9)",
                        s.threads,
                        now / base
                    );
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
    }

    let mut json = String::from("{\n");
    json.push_str(
        "  \"workload\": \"TinyLm batch-64 scoring (d_model=128, L=1) + InvDA decode (bench_small)\",\n",
    );
    write_section(&mut json, "baseline", &baseline);
    write_section(&mut json, "current", &current);
    json.push_str("  \"trajectory\": [\n");
    for (i, s) in current.iter().enumerate() {
        let b = baseline
            .iter()
            .find(|x| x.threads == s.threads)
            .copied()
            .unwrap_or(*s);
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"infer_ratio\": {:.3}, \"decode_ratio\": {:.3}}}",
            s.threads,
            s.infer_eps / b.infer_eps,
            s.decode_tok_s / b.decode_tok_s
        );
        json.push_str(if i + 1 < current.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(OUT_FILE, &json).expect("write BENCH_infer.json");
    println!("wrote {OUT_FILE}");
}
