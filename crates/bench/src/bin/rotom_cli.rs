//! `rotom-cli` — run any (dataset, method) combination from the command
//! line.
//!
//! ```sh
//! rotom_cli <dataset> <method> [budget] [seed]
//!
//! datasets: abt-buy amazon-google dblp-acm dblp-scholar walmart-amazon
//!           (append "-dirty" for the dirty EM variants)
//!           beers hospital movies rayyan tax
//!           ag am-2 am-5 atis snips sst-2 sst-5 trec
//! methods:  baseline mixda invda rotom rotom-ssl
//! ```

use rotom::{Method, RunResult};
use rotom_bench::Suite;
use rotom_datasets::{
    edt::{self, EdtFlavor},
    em::{self, EmConfig, EmFlavor},
    textcls::{self, TextClsFlavor},
    TaskDataset, TaskKind,
};
use std::process::ExitCode;

fn parse_dataset(name: &str, suite: &Suite) -> Option<TaskDataset> {
    let lower = name.to_lowercase();
    let (em_name, dirty) = match lower.strip_suffix("-dirty") {
        Some(base) => (base.to_string(), true),
        None => (lower.clone(), false),
    };
    let em_flavor = match em_name.as_str() {
        "abt-buy" => Some(EmFlavor::AbtBuy),
        "amazon-google" => Some(EmFlavor::AmazonGoogle),
        "dblp-acm" => Some(EmFlavor::DblpAcm),
        "dblp-scholar" => Some(EmFlavor::DblpScholar),
        "walmart-amazon" => Some(EmFlavor::WalmartAmazon),
        _ => None,
    };
    if let Some(f) = em_flavor {
        let cfg = EmConfig {
            dirty,
            ..suite.em.clone()
        };
        return Some(em::generate(f, &cfg).to_task());
    }
    let edt_flavor = match lower.as_str() {
        "beers" => Some(EdtFlavor::Beers),
        "hospital" => Some(EdtFlavor::Hospital),
        "movies" => Some(EdtFlavor::Movies),
        "rayyan" => Some(EdtFlavor::Rayyan),
        "tax" => Some(EdtFlavor::Tax),
        _ => None,
    };
    if let Some(f) = edt_flavor {
        return Some(edt::generate(f, &suite.edt).to_task());
    }
    let text_flavor = match lower.as_str() {
        "ag" => Some(TextClsFlavor::Ag),
        "am-2" => Some(TextClsFlavor::Am2),
        "am-5" => Some(TextClsFlavor::Am5),
        "atis" => Some(TextClsFlavor::Atis),
        "snips" => Some(TextClsFlavor::Snips),
        "sst-2" => Some(TextClsFlavor::Sst2),
        "sst-5" => Some(TextClsFlavor::Sst5),
        "trec" => Some(TextClsFlavor::Trec),
        _ => None,
    };
    text_flavor.map(|f| textcls::generate(f, &suite.textcls))
}

fn parse_method(name: &str) -> Option<Method> {
    match name.to_lowercase().as_str() {
        "baseline" | "tinylm" => Some(Method::Baseline),
        "mixda" => Some(Method::MixDa),
        "invda" => Some(Method::InvDa),
        "rotom" => Some(Method::Rotom),
        "rotom-ssl" | "rotom+ssl" | "ssl" => Some(Method::RotomSsl),
        _ => None,
    }
}

fn report(task: &TaskDataset, r: &RunResult) {
    println!("dataset : {}", r.dataset);
    println!("method  : {}", r.method);
    println!("train   : {} labeled examples", r.train_size);
    println!("accuracy: {:.2}%", r.accuracy * 100.0);
    if task.num_classes == 2 {
        println!(
            "P/R/F1  : {:.2} / {:.2} / {:.2}",
            r.prf1.precision, r.prf1.recall, r.prf1.f1
        );
    }
    println!("time    : {:.1}s", r.train_seconds);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: rotom_cli <dataset> <method> [budget] [seed]");
        eprintln!("run with an unknown dataset name to list the options");
        return ExitCode::FAILURE;
    }
    let suite = Suite::from_env();
    let task = match parse_dataset(&args[0], &suite) {
        Some(t) => t,
        None => {
            eprintln!(
                "unknown dataset '{}'; choose from: abt-buy amazon-google dblp-acm \
                 dblp-scholar walmart-amazon (+ -dirty), beers hospital movies rayyan tax, \
                 ag am-2 am-5 atis snips sst-2 sst-5 trec",
                args[0]
            );
            return ExitCode::FAILURE;
        }
    };
    let method = match parse_method(&args[1]) {
        Some(m) => m,
        None => {
            eprintln!(
                "unknown method '{}'; choose from: baseline mixda invda rotom rotom-ssl",
                args[1]
            );
            return ExitCode::FAILURE;
        }
    };
    let budget: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0);

    let ctx = suite.prepare(&task, seed);
    let balanced = task.kind == TaskKind::ErrorDetection;
    let avg = suite.run_avg(&task, budget, method, &ctx, balanced);
    report(&task, &avg.results[0]);
    ExitCode::SUCCESS
}
