//! End-to-end meta-training step benchmark: steps/sec and bytes allocated
//! per steady-state step, written to `BENCH_train.json`.
//!
//! The workload is one Rotom Algorithm-2 step driven by [`MetaTrainer`] over
//! a TinyLm target (the hot loop of every pipeline run): batch assembly with
//! windowed prefetch scoring, weighting-model forward, phase-1 weighted
//! backward + optimizer step, phase-2 virtual step, validation backward and
//! the two finite-difference probes. Allocation is measured with a counting
//! global allocator local to this binary.
//!
//! Because `ROTOM_THREADS` is read once per process, the parent re-executes
//! itself once per thread count (1 and 8) and aggregates the children's
//! results. The first run records its numbers as the `baseline` section;
//! later runs preserve the existing baseline and update `current`, so the
//! file carries the perf trajectory across PRs.
//!
//! Usage:
//!   cargo run --release --offline --bin trainbench            # regenerate
//!   cargo run --release --offline --bin trainbench -- --check # + fail on
//!                                                 >20% steps/sec regression

use rotom::config::ModelConfig;
use rotom::TinyLm;
use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};
use rotom_meta::{MetaConfig, MetaTrainer};
use rotom_text::example::AugExample;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Global allocator that counts every byte handed out (allocations and the
/// grown portion of reallocations, across all threads).
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let grown = new_size.saturating_sub(layout.size());
        ALLOCATED.fetch_add(grown as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const THREAD_COUNTS: [usize; 2] = [1, 8];
const CHILD_ENV: &str = "TRAINBENCH_CHILD";
const OUT_FILE: &str = "BENCH_train.json";

#[derive(Debug, Clone, Copy)]
struct Sample {
    threads: usize,
    steps_per_sec: f64,
    bytes_per_step: f64,
}

/// One measured child process: run the meta-training hot loop at the current
/// `ROTOM_THREADS` setting and print a parseable result line.
fn run_child() {
    // Deterministic small-but-realistic task: the default TinyLm encoder
    // (d_model 32, 2 layers) over a synthetic sentiment task; the augmented
    // pool is identity augmentations so no InvDA model is involved.
    let data_cfg = TextClsConfig {
        train_pool: 64,
        test: 8,
        unlabeled: 8,
        seed: 11,
    };
    let task = textcls::generate(TextClsFlavor::Sst2, &data_cfg);
    let mut model_cfg = ModelConfig::default();
    model_cfg.pretrain_epochs = 0;
    model_cfg.pair_pretrain_epochs = 0;
    let corpus: Vec<Vec<String>> = task.train_pool.iter().map(|e| e.tokens.clone()).collect();
    let mut target = TinyLm::from_corpus(&corpus, task.num_classes, &model_cfg, 5e-4, 7);
    let aug: Vec<AugExample> = task.train_pool.iter().map(AugExample::identity).collect();
    let meta_cfg = MetaConfig {
        batch_size: 16,
        val_batch_size: 16,
        seed: 3,
        ..Default::default()
    };
    let enc_cfg = model_cfg.encoder(target.vocab().len());
    let mut trainer = MetaTrainer::new(task.num_classes, target.vocab().clone(), enc_cfg, meta_cfg);

    let quick = std::env::var("ROTOM_BENCH_SCALE").as_deref() == Ok("quick");
    let (warmup_epochs, blocks, epochs_per_block) = if quick { (1, 1, 2) } else { (2, 5, 3) };

    for _ in 0..warmup_epochs {
        trainer.train_epoch(&mut target, &aug, &task.train_pool, &[]);
    }

    // Best-of-blocks steps/sec: on a shared machine wall time is hostage to
    // co-tenants, and the fastest block is the tightest estimate of machine
    // capacity. Bytes/step is taken over the whole measured run (allocation
    // is deterministic).
    let bytes_before = ALLOCATED.load(Ordering::Relaxed);
    let mut rates = Vec::with_capacity(blocks);
    let mut steps = 0usize;
    for _ in 0..blocks {
        let t0 = Instant::now();
        let mut block_steps = 0usize;
        for _ in 0..epochs_per_block {
            let stats = trainer.train_epoch(&mut target, &aug, &task.train_pool, &[]);
            block_steps += stats.steps;
        }
        rates.push(block_steps as f64 / t0.elapsed().as_secs_f64());
        steps += block_steps;
    }
    let bytes = ALLOCATED.load(Ordering::Relaxed) - bytes_before;
    assert!(steps > 0, "no optimizer steps taken");
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let threads = rotom_nn::RotomPool::global().threads();
    println!(
        "TRAINBENCH threads={} steps={} steps_per_sec={:.6} bytes_per_step={:.1}",
        threads,
        steps,
        rates[rates.len() - 1],
        bytes as f64 / steps as f64,
    );
}

/// Extract `key=value` from a child's result line.
fn field(line: &str, key: &str) -> f64 {
    let pat = format!("{key}=");
    let start = line.find(&pat).unwrap_or_else(|| panic!("missing {key}")) + pat.len();
    let rest = &line[start..];
    let end = rest.find(' ').unwrap_or(rest.len());
    rest[..end].parse().expect("numeric field")
}

/// Pull `(threads, steps_per_sec, bytes_per_step)` triples out of one JSON
/// section (`"baseline"` or `"current"`) of a previous `BENCH_train.json`.
/// Hand-rolled: the workspace carries no serde.
fn parse_section(json: &str, section: &str) -> Vec<Sample> {
    let key = format!("\"{section}\": [");
    let Some(start) = json.find(&key) else {
        return Vec::new();
    };
    let body = &json[start + key.len()..];
    let Some(end) = body.find(']') else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for obj in body[..end].split('}') {
        if !obj.contains("\"threads\"") {
            continue;
        }
        let num = |k: &str| -> Option<f64> {
            let pat = format!("\"{k}\": ");
            let s = obj.find(&pat)? + pat.len();
            let rest = &obj[s..];
            let e = rest
                .find(|c: char| c != '-' && c != '+' && c != '.' && c != 'e' && !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..e].parse().ok()
        };
        if let (Some(t), Some(sps), Some(bps)) =
            (num("threads"), num("steps_per_sec"), num("bytes_per_step"))
        {
            out.push(Sample {
                threads: t as usize,
                steps_per_sec: sps,
                bytes_per_step: bps,
            });
        }
    }
    out
}

fn write_section(json: &mut String, name: &str, samples: &[Sample]) {
    let _ = writeln!(json, "  \"{name}\": [");
    for (i, s) in samples.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"steps_per_sec\": {:.4}, \"bytes_per_step\": {:.1}}}",
            s.threads, s.steps_per_sec, s.bytes_per_step
        );
        json.push_str(if i + 1 < samples.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
}

fn main() {
    if std::env::var(CHILD_ENV).is_ok() {
        run_child();
        return;
    }
    let check = std::env::args().any(|a| a == "--check");
    let exe = std::env::current_exe().expect("current_exe");

    let mut current = Vec::new();
    for &threads in &THREAD_COUNTS {
        let out = std::process::Command::new(&exe)
            .env(CHILD_ENV, "1")
            .env("ROTOM_THREADS", threads.to_string())
            .output()
            .expect("spawn trainbench child");
        assert!(
            out.status.success(),
            "child (threads={threads}) failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout
            .lines()
            .find(|l| l.starts_with("TRAINBENCH "))
            .expect("child result line");
        let sample = Sample {
            threads,
            steps_per_sec: field(line, "steps_per_sec"),
            bytes_per_step: field(line, "bytes_per_step"),
        };
        println!(
            "meta train step, {} thread(s): {:.2} steps/s, {:.0} bytes/step",
            sample.threads, sample.steps_per_sec, sample.bytes_per_step
        );
        current.push(sample);
    }

    let old = std::fs::read_to_string(OUT_FILE).unwrap_or_default();
    let baseline = {
        let b = parse_section(&old, "baseline");
        if b.is_empty() {
            println!("no existing baseline; recording this run as the baseline");
            current.clone()
        } else {
            b
        }
    };

    // Regression gate (ci.sh): new steps/sec must stay within 20% of the
    // previously checked-in current numbers.
    if check {
        let prev = parse_section(&old, "current");
        for p in &prev {
            let Some(now) = current.iter().find(|s| s.threads == p.threads) else {
                continue;
            };
            if now.steps_per_sec < 0.8 * p.steps_per_sec {
                eprintln!(
                    "trainbench: steps/sec regression at {} thread(s): {:.2} -> {:.2} (>20%)",
                    p.threads, p.steps_per_sec, now.steps_per_sec
                );
                std::process::exit(1);
            }
        }
    }

    let mut json = String::from("{\n");
    json.push_str(
        "  \"workload\": \"MetaTrainer::train_epoch, TinyLm d_model=32 L=2, batch 16, pool 64\",\n",
    );
    write_section(&mut json, "baseline", &baseline);
    write_section(&mut json, "current", &current);
    json.push_str("  \"speedup\": [\n");
    for (i, s) in current.iter().enumerate() {
        let b = baseline
            .iter()
            .find(|x| x.threads == s.threads)
            .copied()
            .unwrap_or(*s);
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"steps_per_sec_ratio\": {:.3}, \"bytes_reduction\": {:.2}}}",
            s.threads,
            s.steps_per_sec / b.steps_per_sec,
            b.bytes_per_step / s.bytes_per_step.max(1.0)
        );
        json.push_str(if i + 1 < current.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(OUT_FILE, &json).expect("write BENCH_train.json");
    println!("wrote {OUT_FILE}");
}
