//! DeepMatcher-style entity matching baselines (Mudgal et al., SIGMOD'18).
//!
//! DM is "a hybrid neural net consisting of RNN layers and the Attention
//! mechanism" trained directly on entity pairs (no pre-trained LM). We build
//! its hybrid variant: per-record GRU encodings with soft cross-record
//! attention, a symmetric comparison layer, and an MLP classifier.
//!
//! `DmEncoder::TinyLm` reproduces the paper's DM+RoBERTa ablation: the same
//! comparison head over the [CLS] encodings of a Transformer encoder.

use rotom::metrics::PrF1;
use rotom::ModelConfig;
use rotom_datasets::em::{EmDataset, LabeledPair};
use rotom_nn::{
    recycle_tape, take_pooled_tape, with_pooled_tape, Adam, Embedding, FwdCtx, Gru, Linear, NodeId,
    ParamStore, Tape, TransformerEncoder,
};
use rotom_rng::rngs::StdRng;
use rotom_rng::{RngExt, SeedableRng};
use rotom_text::serialize::serialize_record;
use rotom_text::vocab::Vocab;

/// Which sequence encoder the comparison head runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmEncoder {
    /// GRU + soft attention (classic DeepMatcher hybrid).
    Gru,
    /// Transformer [CLS] encoder (the DM+RoBERTa variant).
    TinyLm,
}

/// DeepMatcher configuration.
#[derive(Debug, Clone)]
pub struct DmConfig {
    /// Embedding / hidden width.
    pub hidden: usize,
    /// Max tokens per record.
    pub max_len: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Vocabulary budget.
    pub vocab_size: usize,
    /// Encoder variant.
    pub encoder: DmEncoder,
}

impl Default for DmConfig {
    fn default() -> Self {
        Self {
            hidden: 24,
            max_len: 24,
            epochs: 5,
            batch_size: 16,
            lr: 1e-3,
            vocab_size: 4096,
            encoder: DmEncoder::Gru,
        }
    }
}

enum EncoderImpl {
    Gru { emb: Embedding, gru: Gru },
    TinyLm(TransformerEncoder),
}

/// The DeepMatcher model.
pub struct DeepMatcher {
    store: ParamStore,
    encoder: EncoderImpl,
    attn_proj: Linear,
    compare: Linear,
    out: Linear,
    vocab: Vocab,
    cfg: DmConfig,
}

impl DeepMatcher {
    /// Train DeepMatcher on an EM dataset's training pairs.
    pub fn train(data: &EmDataset, train_idx: &[usize], cfg: DmConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let corpus: Vec<Vec<String>> = data
            .train_pairs
            .iter()
            .flat_map(|p| [serialize_record(&p.left), serialize_record(&p.right)])
            .collect();
        let refs: Vec<&[String]> = corpus.iter().map(|s| s.as_slice()).collect();
        let vocab = Vocab::build(refs, cfg.vocab_size);

        let mut store = ParamStore::new();
        let h = cfg.hidden;
        let encoder = match cfg.encoder {
            DmEncoder::Gru => EncoderImpl::Gru {
                emb: Embedding::new(&mut store, &mut rng, "dm.emb", vocab.len(), h),
                gru: Gru::new(&mut store, &mut rng, "dm.gru", h, h),
            },
            DmEncoder::TinyLm => {
                let mut mc = ModelConfig::default();
                mc.d_model = h;
                mc.heads = if h % 4 == 0 { 4 } else { 2 };
                mc.d_ff = 2 * h;
                mc.layers = 1;
                mc.max_len = cfg.max_len;
                EncoderImpl::TinyLm(TransformerEncoder::new(
                    &mut store,
                    &mut rng,
                    "dm.lm",
                    mc.encoder(vocab.len()),
                ))
            }
        };
        let attn_proj = Linear::new(&mut store, &mut rng, "dm.attn", h, h);
        let compare = Linear::new(&mut store, &mut rng, "dm.cmp", 4 * h, h);
        let out = Linear::new(&mut store, &mut rng, "dm.out", h, 2);
        let mut model = Self {
            store,
            encoder,
            attn_proj,
            compare,
            out,
            vocab,
            cfg,
        };
        model.fit(data, train_idx, &mut rng, seed);
        model
    }

    fn fit(&mut self, data: &EmDataset, train_idx: &[usize], rng: &mut StdRng, _seed: u64) {
        let mut opt = Adam::new(self.cfg.lr);
        let mut idx = train_idx.to_vec();
        for _ in 0..self.cfg.epochs {
            for i in (1..idx.len()).rev() {
                let j = rng.random_range(0..=i);
                idx.swap(i, j);
            }
            for chunk in idx.chunks(self.cfg.batch_size) {
                let mut tape = take_pooled_tape();
                let mut losses = Vec::with_capacity(chunk.len());
                for &pi in chunk {
                    let pair = &data.train_pairs[pi];
                    let logits = self.pair_logits(&mut tape, pair);
                    let target = if pair.is_match {
                        [0.0, 1.0]
                    } else {
                        [1.0, 0.0]
                    };
                    losses.push(tape.cross_entropy(logits, &target));
                }
                let loss = tape.mean_nodes(&losses);
                self.store.zero_grad();
                tape.backward(loss, &mut self.store);
                recycle_tape(tape);
                self.store.clip_grad_norm(5.0);
                opt.step(&mut self.store);
            }
        }
    }

    fn encode_record(&self, tape: &mut Tape, tokens: &[String]) -> (NodeId, NodeId) {
        let mut ids = self.vocab.encode(tokens);
        ids.truncate(self.cfg.max_len);
        if ids.is_empty() {
            ids.push(self.vocab.special_id(rotom_text::token::PAD));
        }
        match &self.encoder {
            EncoderImpl::Gru { emb, gru } => {
                let e = emb.forward(tape, &self.store, &ids);
                let states = gru.forward(tape, e, &self.store);
                // Mean-pooled summary: more robust than the last state for
                // the bag-of-attributes records EM serializes.
                let pooled = tape.mean_rows(states);
                (states, pooled)
            }
            EncoderImpl::TinyLm(enc) => {
                let mut ctx = FwdCtx::eval(&self.store);
                let states = enc.forward(tape, &ids, &mut ctx);
                let cls = tape.slice_rows(states, 0, 1);
                (states, cls)
            }
        }
    }

    fn pair_logits(&self, tape: &mut Tape, pair: &LabeledPair) -> NodeId {
        let left = serialize_record(&pair.left);
        let right = serialize_record(&pair.right);
        let (l_states, l_sum) = self.encode_record(tape, &left);
        let (r_states, _r_sum) = self.encode_record(tape, &right);
        // Soft attention of the left summary over the right states:
        // scores = proj(l_sum) · R^T, context = softmax(scores) · R.
        let q = self.attn_proj.forward(tape, l_sum, &self.store);
        let scores = tape.matmul_tb(q, r_states);
        let attn = tape.softmax(scores);
        let r_ctx = tape.matmul(attn, r_states);
        let _ = l_states;
        // Symmetric comparison features [l, r, |l−r| ≈ (l−r), l⊙r].
        let diff = tape.sub(l_sum, r_ctx);
        let prod = tape.mul(l_sum, r_ctx);
        let feats = tape.concat_cols(&[l_sum, r_ctx, diff, prod]);
        let hidden = self.compare.forward(tape, feats, &self.store);
        let hidden = tape.relu(hidden);
        self.out.forward(tape, hidden, &self.store)
    }

    /// Predict match (true) / no-match for a pair.
    pub fn predict(&self, pair: &LabeledPair) -> bool {
        with_pooled_tape(|tape| {
            let logits = self.pair_logits(tape, pair);
            let row = tape.value(logits).row_slice(0);
            row[1] > row[0]
        })
    }

    /// Positive-class F1 on the dataset's test pairs.
    pub fn evaluate(&self, data: &EmDataset) -> PrF1 {
        let pred: Vec<usize> = data
            .test_pairs
            .iter()
            .map(|p| self.predict(p) as usize)
            .collect();
        let gold: Vec<usize> = data
            .test_pairs
            .iter()
            .map(|p| p.is_match as usize)
            .collect();
        rotom::prf1(&pred, &gold, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_datasets::em::{generate, EmConfig, EmFlavor};

    fn quick_data() -> EmDataset {
        let cfg = EmConfig {
            num_entities: 120,
            train_pairs: 300,
            test_pairs: 80,
            ..Default::default()
        };
        generate(EmFlavor::DblpAcm, &cfg)
    }

    /// DM is data-hungry (the paper trains it on the *full* datasets); with
    /// a few hundred pairs and a dozen epochs it should clear chance-level
    /// F1 but stay far from the LM methods — exactly the Table 8 story.
    #[test]
    fn gru_variant_learns_to_match() {
        let data = quick_data();
        let idx: Vec<usize> = (0..data.train_pairs.len()).collect();
        let cfg = DmConfig {
            epochs: 12,
            hidden: 24,
            lr: 3e-3,
            ..Default::default()
        };
        let m = DeepMatcher::train(&data, &idx, cfg, 0);
        let f1 = m.evaluate(&data).f1;
        assert!(f1 > 0.4, "DM F1 too low: {f1}");
    }

    #[test]
    fn tinylm_variant_runs() {
        let data = quick_data();
        let idx: Vec<usize> = (0..80).collect();
        let cfg = DmConfig {
            epochs: 2,
            hidden: 16,
            encoder: DmEncoder::TinyLm,
            ..Default::default()
        };
        let m = DeepMatcher::train(&data, &idx, cfg, 1);
        let f1 = m.evaluate(&data).f1;
        assert!((0.0..=1.0).contains(&f1));
    }
}
