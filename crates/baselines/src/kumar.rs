//! Kumar et al. (2020): "Data augmentation using pre-trained transformer
//! models" — label-conditioned generation.
//!
//! Kumar et al. fine-tune a generative LM to produce new training examples
//! conditioned on the class label, then train the classifier on the
//! augmented set *without any filtering* — which is exactly the gap Rotom's
//! meta-learned policy closes (paper §6.5).
//!
//! Two variants mirror the paper's table:
//!
//! * **CG w. BART** — a seq2seq model generates an example from the label
//!   token alone (free-form conditional generation);
//! * **CG w. BERT** — the seq2seq model *infills* a masked version of a real
//!   example, conditioned on the label token (conditional masked
//!   reconstruction).

use rotom::{Method, RotomConfig, RunResult};
use rotom_augment::{InvDa, InvDaConfig};
use rotom_datasets::TaskDataset;
use rotom_rng::rngs::StdRng;
use rotom_rng::{RngExt, SeedableRng};
use rotom_text::example::Example;
use rotom_text::token::MASK;
use std::time::Instant;

/// Which conditional-generation variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KumarVariant {
    /// Free-form generation from the label token (BART-style).
    CgBart,
    /// Conditional masked infilling (BERT-style).
    CgBert,
}

impl KumarVariant {
    /// Table-11 row label.
    pub fn name(self) -> &'static str {
        match self {
            KumarVariant::CgBart => "Kumar et al. +CG w. BART",
            KumarVariant::CgBert => "Kumar et al. +CG w. BERT",
        }
    }
}

fn label_token(label: usize) -> String {
    format!("label_{label}")
}

/// Build the conditional-generation training corpus: for BART, pairs of
/// (label token → example); for BERT, (label token + masked example →
/// example). InvDA's seq2seq trainer consumes a *corpus* and corrupts it
/// itself, so instead we construct a dedicated seq2seq via InvDA's machinery
/// by prefixing every sequence with its label token and letting corruption
/// act on the content.
fn conditional_corpus(train: &[Example]) -> Vec<Vec<String>> {
    train
        .iter()
        .map(|e| {
            let mut seq = vec![label_token(e.label)];
            seq.extend(e.tokens.iter().cloned());
            seq
        })
        .collect()
}

/// Generate `per_example` synthetic examples per training example with the
/// chosen variant.
pub fn generate_examples(
    train: &[Example],
    variant: KumarVariant,
    invda_cfg: &InvDaConfig,
    per_example: usize,
    seed: u64,
) -> Vec<Example> {
    let corpus = conditional_corpus(train);
    let mut cfg = invda_cfg.clone();
    match variant {
        KumarVariant::CgBart => {
            // Aggressive corruption: the model must regenerate most of the
            // sequence from the label prefix.
            cfg.num_corruptions = 6;
        }
        KumarVariant::CgBert => {
            cfg.num_corruptions = 2;
        }
    }
    let model = InvDa::train(&corpus, cfg, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc6);
    let mut out = Vec::with_capacity(train.len() * per_example);
    for e in train {
        for _ in 0..per_example {
            let prompt: Vec<String> = match variant {
                KumarVariant::CgBart => vec![label_token(e.label)],
                KumarVariant::CgBert => {
                    // Mask ~30% of the tokens, keep the label prefix.
                    let mut seq = vec![label_token(e.label)];
                    for t in &e.tokens {
                        if rng.random_bool(0.3) {
                            seq.push(MASK.to_string());
                        } else {
                            seq.push(t.clone());
                        }
                    }
                    seq
                }
            };
            let mut generated = model.generate(&prompt, &mut rng);
            // Strip any label tokens the decoder emits.
            generated.retain(|t| !t.starts_with("label_") && t != MASK);
            if !generated.is_empty() {
                out.push(Example::new(generated, e.label));
            }
        }
    }
    out
}

/// Run the Kumar et al. baseline: generate, augment 1:1, fine-tune plainly.
pub fn run_kumar(
    task: &TaskDataset,
    train: &[Example],
    valid: &[Example],
    variant: KumarVariant,
    cfg: &RotomConfig,
    seed: u64,
) -> RunResult {
    let start = Instant::now();
    let synthetic = generate_examples(train, variant, &cfg.invda, 1, seed);
    let mut augmented = train.to_vec();
    augmented.extend(synthetic);
    let mut r = rotom::run_method(task, &augmented, valid, Method::Baseline, cfg, None, seed);
    r.method = variant.name().to_string();
    r.train_size = train.len();
    r.train_seconds = start.elapsed().as_secs_f32();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};

    fn task() -> TaskDataset {
        let cfg = TextClsConfig {
            train_pool: 40,
            test: 30,
            unlabeled: 30,
            seed: 4,
        };
        textcls::generate(TextClsFlavor::Trec, &cfg)
    }

    #[test]
    fn conditional_corpus_prefixes_labels() {
        let train = vec![Example::new(vec!["hello".into()], 3)];
        let corpus = conditional_corpus(&train);
        assert_eq!(corpus[0][0], "label_3");
    }

    #[test]
    fn generation_produces_labeled_examples() {
        let task = task();
        let train = task.sample_train(18, 0);
        let cfg = InvDaConfig::test_tiny();
        let synth = generate_examples(&train, KumarVariant::CgBart, &cfg, 1, 0);
        assert!(!synth.is_empty());
        for e in &synth {
            assert!(e.label < 6);
            assert!(!e.tokens.iter().any(|t| t.starts_with("label_")));
        }
    }

    #[test]
    fn kumar_variants_run() {
        let task = task();
        let train = task.sample_train(18, 1);
        let mut cfg = RotomConfig::test_tiny();
        cfg.train.epochs = 1;
        for variant in [KumarVariant::CgBart, KumarVariant::CgBert] {
            let r = run_kumar(&task, &train, &train, variant, &cfg, 1);
            assert!((0.0..=1.0).contains(&r.accuracy), "{}", r.method);
        }
    }
}
