//! Operator grid search — the hyper-parameter-search baseline Rotom's
//! meta-learning replaces.
//!
//! Pre-Rotom practice (§2.3, §6.6): "enumerate and pick the best-performing
//! single DA operator", or worse, try operator *pairs* — the paper puts the
//! pair grid at a 22× training-cost overhead. This module implements both
//! grids faithfully: train one model per configuration, select by validation
//! metric, report the winner and the total cost, so Figure 4's cost
//! comparison can be measured rather than asserted.

use rotom::pipeline::{run_method_with_base, PretrainedBase};
use rotom::{Method, RotomConfig, RunResult};
use rotom_augment::{apply, DaContext, DaOp};
use rotom_datasets::{TaskDataset, TaskKind};
use rotom_text::example::Example;
use std::time::Instant;

/// Which grid to search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grid {
    /// One operator at a time (the common practice the paper cites).
    Single,
    /// Ordered pairs of token/span-level operators (the 22× grid of §6.6).
    Pairs,
}

/// Outcome of a grid search.
#[derive(Debug, Clone)]
pub struct GridSearchResult {
    /// The winning configuration's test result.
    pub best: RunResult,
    /// Human-readable description of the winning operators.
    pub best_ops: String,
    /// Number of configurations trained.
    pub configurations: usize,
    /// Total wall-clock seconds across all configurations.
    pub total_seconds: f32,
}

fn applicable_ops(kind: TaskKind, grid: Grid) -> Vec<Vec<DaOp>> {
    let singles: Vec<DaOp> = match kind {
        TaskKind::EntityMatching => DaOp::ALL.to_vec(),
        TaskKind::ErrorDetection => {
            let mut v = DaOp::TEXT_LEVEL.to_vec();
            v.push(DaOp::ColShuffle);
            v.push(DaOp::ColDel);
            v
        }
        TaskKind::TextClassification => DaOp::TEXT_LEVEL.to_vec(),
    };
    match grid {
        Grid::Single => singles.into_iter().map(|o| vec![o]).collect(),
        Grid::Pairs => {
            // The paper counts ordered combinations of 2 token-/span-level
            // operators.
            let base = DaOp::TEXT_LEVEL;
            let mut out = Vec::new();
            for &a in &base {
                for &b in &base {
                    out.push(vec![a, b]);
                }
            }
            out
        }
    }
}

/// Train one model per grid configuration (each epoch augments every
/// example with the configuration's operator sequence, MixDA-free plain
/// training on original + augmented examples), select by validation metric.
pub fn grid_search(
    task: &TaskDataset,
    train: &[Example],
    valid: &[Example],
    grid: Grid,
    cfg: &RotomConfig,
    base: Option<&PretrainedBase>,
    seed: u64,
) -> GridSearchResult {
    let configs = applicable_ops(task.kind, grid);
    let start = Instant::now();
    let mut best: Option<(f32, RunResult, String)> = None;
    let da_ctx = DaContext::default();
    for (ci, ops) in configs.iter().enumerate() {
        // Materialize the augmented training set for this configuration.
        let mut augmented = train.to_vec();
        let mut rng = rotom_rng::SeedableRng::seed_from_u64(seed ^ (ci as u64) << 20);
        for e in train {
            let mut t = e.tokens.clone();
            for &op in ops {
                t = apply(op, &t, &da_ctx, &mut rng);
            }
            augmented.push(Example::new(t, e.label));
        }
        let r = run_method_with_base(
            task,
            &augmented,
            valid,
            Method::Baseline,
            cfg,
            None,
            base,
            seed,
        );
        let val_metric = r.headline(task.kind);
        let label = ops.iter().map(|o| o.name()).collect::<Vec<_>>().join("+");
        if best.as_ref().map_or(true, |(m, _, _)| val_metric > *m) {
            best = Some((val_metric, r, label));
        }
    }
    let (_, mut best_run, best_ops) = best.expect("non-empty grid");
    best_run.method = format!("GridSearch[{best_ops}]");
    GridSearchResult {
        best: best_run,
        best_ops,
        configurations: configs.len(),
        total_seconds: start.elapsed().as_secs_f32(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};

    #[test]
    fn grid_sizes_match_paper_arithmetic() {
        // 6 token/span-level operators → 36 ordered pairs; the paper's "22x"
        // compares the pair grid (plus re-training) against a single run and
        // our count reproduces the combinatorial blow-up it refers to.
        assert_eq!(
            applicable_ops(TaskKind::TextClassification, Grid::Pairs).len(),
            36
        );
        assert_eq!(
            applicable_ops(TaskKind::TextClassification, Grid::Single).len(),
            6
        );
        assert_eq!(
            applicable_ops(TaskKind::EntityMatching, Grid::Single).len(),
            9
        );
    }

    #[test]
    fn single_grid_runs_and_reports_cost() {
        let dcfg = TextClsConfig {
            train_pool: 40,
            test: 30,
            unlabeled: 20,
            seed: 6,
        };
        let task = textcls::generate(TextClsFlavor::Sst2, &dcfg);
        let train = task.sample_train(20, 0);
        let mut cfg = RotomConfig::test_tiny();
        cfg.train.epochs = 1;
        let result = grid_search(&task, &train, &train, Grid::Single, &cfg, None, 0);
        assert_eq!(result.configurations, 6);
        assert!(result.total_seconds > 0.0);
        assert!(result.best.method.starts_with("GridSearch["));
    }
}
