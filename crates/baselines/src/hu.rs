//! Hu et al. (NeurIPS'19): "Learning data manipulation for augmentation and
//! weighting".
//!
//! Two components, evaluated separately in the paper's Table 11:
//!
//! * **Learned DA** — an augmentation operator that modifies *at most one
//!   token*, replacing it with a token drawn from a learned substitution
//!   distribution; the distribution is trained with the validation loss as a
//!   REINFORCE reward.
//! * **Learned weighting** — per-example weights optimized so that the
//!   weighted update descends the validation loss (we reuse the same
//!   finite-difference probe machinery the Rotom weighting model uses, but
//!   over a *per-example weight table* instead of an LM — matching Hu et
//!   al.'s direct parameterization).
//!
//! The experimental contrast with Rotom (paper §6.5) is architectural: the
//! learned operator can only make single-token edits (far less diverse than
//! InvDA) and the weighting has no filtering stage.

use rotom::{evaluate, Method, RotomConfig, RunResult, TinyLm};
use rotom_datasets::TaskDataset;
use rotom_meta::{MetaTarget, WeightedItem};
use rotom_rng::rngs::StdRng;
use rotom_rng::{RngExt, SeedableRng};
use rotom_text::example::Example;
use std::time::Instant;

/// Which Hu et al. component is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HuVariant {
    /// Learned single-token augmentation only.
    LearnedDa,
    /// Learned augmentation + learned example weighting.
    LearnedDaPlusWeighting,
}

impl HuVariant {
    /// Table-11 row label.
    pub fn name(self) -> &'static str {
        match self {
            HuVariant::LearnedDa => "Hu et al. +Learned DA",
            HuVariant::LearnedDaPlusWeighting => "Hu et al. +Weighting",
        }
    }
}

/// A learned single-token substitution operator.
pub struct LearnedDaOp {
    /// Candidate substitution tokens (the corpus content vocabulary).
    candidates: Vec<String>,
    /// Logits of the substitution distribution.
    logits: Vec<f32>,
    lr: f32,
}

impl LearnedDaOp {
    /// Initialize a uniform substitution distribution over the corpus
    /// content tokens (capped for tractability).
    pub fn new(corpus: &[Vec<String>], cap: usize, lr: f32) -> Self {
        let mut seen = std::collections::HashMap::new();
        for seq in corpus {
            for tok in seq {
                if !rotom_text::token::is_special(tok) {
                    *seen.entry(tok.clone()).or_insert(0usize) += 1;
                }
            }
        }
        let mut ranked: Vec<(String, usize)> = seen.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let candidates: Vec<String> = ranked.into_iter().take(cap).map(|(t, _)| t).collect();
        let logits = vec![0.0f32; candidates.len()];
        Self {
            candidates,
            logits,
            lr,
        }
    }

    fn sample_token(&self, rng: &mut StdRng) -> (usize, String) {
        let probs = rotom_nn::softmax_slice(&self.logits);
        let mut r = rng.random_range(0.0..1.0f32);
        for (i, &p) in probs.iter().enumerate() {
            if r < p {
                return (i, self.candidates[i].clone());
            }
            r -= p;
        }
        let last = self.candidates.len() - 1;
        (last, self.candidates[last].clone())
    }

    /// Apply: replace one uniformly chosen non-special token with a sampled
    /// candidate. Returns the augmented tokens and the sampled candidate
    /// index (for the REINFORCE update).
    pub fn apply(&self, tokens: &[String], rng: &mut StdRng) -> (Vec<String>, Option<usize>) {
        let eligible: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !rotom_text::token::is_special(t))
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() || self.candidates.is_empty() {
            return (tokens.to_vec(), None);
        }
        let pos = eligible[rng.random_range(0..eligible.len())];
        let (ci, tok) = self.sample_token(rng);
        let mut out = tokens.to_vec();
        out[pos] = tok;
        (out, Some(ci))
    }

    /// REINFORCE update: reward > 0 reinforces the sampled candidates.
    pub fn update(&mut self, used: &[usize], reward: f32) {
        if used.is_empty() {
            return;
        }
        let probs = rotom_nn::softmax_slice(&self.logits);
        for &ci in used {
            // ∇ log softmax_ci = e_ci − probs; apply only the dominant term
            // plus a uniform pull-down (exact for single samples).
            for (j, l) in self.logits.iter_mut().enumerate() {
                let indicator = if j == ci { 1.0 } else { 0.0 };
                *l += self.lr * reward * (indicator - probs[j]);
            }
        }
    }
}

/// Run the Hu et al. baseline on a task.
pub fn run_hu(
    task: &TaskDataset,
    train: &[Example],
    valid: &[Example],
    variant: HuVariant,
    cfg: &RotomConfig,
    seed: u64,
) -> RunResult {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x40);
    let mut corpus: Vec<Vec<String>> = task.unlabeled.clone();
    corpus.extend(train.iter().map(|e| e.tokens.clone()));
    let mut model = TinyLm::from_corpus(&corpus, task.num_classes, &cfg.model, cfg.train.lr, seed);
    model.pretrain_mlm(
        &corpus.iter().take(200).cloned().collect::<Vec<_>>(),
        cfg.train.batch_size,
    );

    let mut op = LearnedDaOp::new(&corpus, 256, 0.1);
    // Per-example weight logits (Hu et al.'s direct parameterization).
    let mut weight_logits = vec![0.0f32; train.len()];
    let weighting = variant == HuVariant::LearnedDaPlusWeighting;
    let k = task.num_classes;

    let start = Instant::now();
    let mut best = (f32::NEG_INFINITY, model.flat_params());
    let mut val_curve = Vec::with_capacity(cfg.train.epochs);
    let mut prev_val = f32::INFINITY;
    for _ in 0..cfg.train.epochs {
        let mut order: Vec<usize> = (0..train.len()).collect();
        for i in (1..order.len()).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut used_candidates = Vec::new();
        for chunk in order.chunks(cfg.train.batch_size) {
            let weights = rotom_nn::softmax_slice(&weight_logits);
            let mean_w: f32 = 1.0 / train.len() as f32;
            let items: Vec<WeightedItem> = chunk
                .iter()
                .flat_map(|&i| {
                    let e = &train[i];
                    let w = if weighting {
                        (weights[i] / mean_w).min(4.0)
                    } else {
                        1.0
                    };
                    let (aug, ci) = op.apply(&e.tokens, &mut rng);
                    if let Some(ci) = ci {
                        used_candidates.push(ci);
                    }
                    let mut orig = WeightedItem::hard(e.tokens.clone(), e.label, k);
                    orig.weight = w;
                    let mut aug_item = WeightedItem::hard(aug, e.label, k);
                    aug_item.weight = w;
                    [orig, aug_item]
                })
                .collect();
            model.weighted_loss_backward(&items, true, &mut rng);
            let g = model.flat_grads();
            model.optimizer_step();

            if weighting {
                // Probe the validation alignment of each example (same
                // finite-difference trick as Rotom, applied to the raw
                // per-example weight table).
                let eta = model.learning_rate();
                model.add_scaled(&g, -eta);
                let val_items: Vec<WeightedItem> = valid
                    .iter()
                    .take(cfg.meta.val_batch_size)
                    .map(|e| WeightedItem::hard(e.tokens.clone(), e.label, k))
                    .collect();
                model.weighted_loss_backward(&val_items, false, &mut rng);
                let v = model.flat_grads();
                model.add_scaled(&g, eta);
                let eps = cfg.meta.epsilon;
                let probe_items: Vec<WeightedItem> = chunk
                    .iter()
                    .map(|&i| WeightedItem::hard(train[i].tokens.clone(), train[i].label, k))
                    .collect();
                model.add_scaled(&v, eps);
                let c_plus = model.per_example_losses(&probe_items);
                model.add_scaled(&v, -2.0 * eps);
                let c_minus = model.per_example_losses(&probe_items);
                model.add_scaled(&v, eps);
                for (j, &i) in chunk.iter().enumerate() {
                    // Positive (c+ − c−) ⇒ up-weighting descends Lossval.
                    weight_logits[i] += 0.5 * (c_plus[j] - c_minus[j]) / (2.0 * eps) * eta;
                }
            }
        }
        // Validation-driven REINFORCE for the DA operator.
        let (val_acc, val_f1) = evaluate(&model, valid);
        let val_metric = match task.kind {
            rotom_datasets::TaskKind::TextClassification => val_acc,
            _ => val_f1.f1.max(val_acc * 0.5),
        };
        let val_loss = 1.0 - val_metric;
        let reward = prev_val - val_loss; // improvement
        prev_val = val_loss;
        op.update(&used_candidates, reward);
        val_curve.push(val_metric);
        if val_metric > best.0 {
            best = (val_metric, model.flat_params());
        }
    }
    model.set_flat_params(&best.1);
    let train_seconds = start.elapsed().as_secs_f32();

    let (acc, f1) = evaluate(&model, &task.test);
    RunResult {
        method: variant.name().to_string(),
        dataset: task.name.clone(),
        accuracy: acc,
        prf1: f1,
        train_seconds,
        train_size: train.len(),
        val_curve,
    }
}

/// The BERT-baseline row of Hu et al.'s table (plain fine-tuning in their
/// exact sampling regime).
pub fn run_hu_baseline(
    task: &TaskDataset,
    train: &[Example],
    valid: &[Example],
    cfg: &RotomConfig,
    seed: u64,
) -> RunResult {
    let mut r = rotom::run_method(task, train, valid, Method::Baseline, cfg, None, seed);
    r.method = "BERT (Hu setting)".to_string();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_datasets::textcls::{self, TextClsConfig, TextClsFlavor};

    fn task() -> TaskDataset {
        let cfg = TextClsConfig {
            train_pool: 60,
            test: 40,
            unlabeled: 40,
            seed: 8,
        };
        textcls::generate(TextClsFlavor::Sst2, &cfg)
    }

    #[test]
    fn learned_op_changes_at_most_one_token() {
        let corpus = vec![vec!["a".to_string(), "b".to_string(), "c".to_string()]];
        let op = LearnedDaOp::new(&corpus, 10, 0.1);
        let mut rng = StdRng::seed_from_u64(0);
        let tokens: Vec<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let (aug, _) = op.apply(&tokens, &mut rng);
        let diff = aug.iter().zip(&tokens).filter(|(a, b)| a != b).count();
        assert!(diff <= 1);
        assert_eq!(aug.len(), tokens.len());
    }

    #[test]
    fn reinforce_shifts_distribution() {
        let corpus = vec![vec!["a".to_string(), "b".to_string()]];
        let mut op = LearnedDaOp::new(&corpus, 10, 0.5);
        for _ in 0..10 {
            op.update(&[0], 1.0);
        }
        let probs = rotom_nn::softmax_slice(&op.logits);
        assert!(probs[0] > probs[1], "{probs:?}");
    }

    #[test]
    fn hu_variants_run() {
        let task = task();
        let train = task.sample_train(20, 1);
        let mut cfg = RotomConfig::test_tiny();
        cfg.train.epochs = 2;
        for variant in [HuVariant::LearnedDa, HuVariant::LearnedDaPlusWeighting] {
            let r = run_hu(&task, &train, &train, variant, &cfg, 2);
            assert!((0.0..=1.0).contains(&r.accuracy), "{}", r.method);
        }
    }
}
