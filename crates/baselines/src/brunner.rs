//! Brunner & Stockinger (EDBT'20): Transformer-based EM with an alternative
//! serialization.
//!
//! "The model architecture is similar to Ditto but uses a different method
//! to serialize entity records" — instead of `[COL]`/`[VAL]` markers, the
//! attribute values are concatenated directly and the two entities are
//! joined by `[SEP]`. Everything else (TinyLm encoder, [CLS] head,
//! fine-tuning) is shared with the Rotom baseline.

use rotom::{run_method, Method, RotomConfig, RunResult};
use rotom_datasets::em::EmDataset;
use rotom_datasets::{TaskDataset, TaskKind};
use rotom_text::example::Example;
use rotom_text::token::SEP;
use rotom_text::tokenize;
use rotom_text::Record;

/// Brunner et al. serialization: attribute values only, no markers.
pub fn serialize_plain(r: &Record) -> Vec<String> {
    let mut out = Vec::new();
    for (_, value) in &r.attrs {
        out.extend(tokenize(value));
    }
    out
}

/// Serialize an entity pair in the Brunner et al. format.
pub fn serialize_plain_pair(a: &Record, b: &Record) -> Vec<String> {
    let mut out = serialize_plain(a);
    out.push(SEP.to_string());
    out.extend(serialize_plain(b));
    out
}

/// Re-serialize an EM dataset with the plain format.
pub fn to_plain_task(data: &EmDataset) -> TaskDataset {
    let ser = |p: &rotom_datasets::LabeledPair| serialize_plain_pair(&p.left, &p.right);
    TaskDataset {
        name: format!("{} (brunner)", data.name),
        kind: TaskKind::EntityMatching,
        num_classes: 2,
        train_pool: data
            .train_pairs
            .iter()
            .map(|p| Example::new(ser(p), p.is_match as usize))
            .collect(),
        test: data
            .test_pairs
            .iter()
            .map(|p| Example::new(ser(p), p.is_match as usize))
            .collect(),
        unlabeled: data.train_pairs.iter().map(ser).collect(),
    }
}

/// Run the Brunner et al. baseline: plain-serialized task, baseline
/// fine-tuning.
pub fn run_brunner(data: &EmDataset, train_size: usize, cfg: &RotomConfig, seed: u64) -> RunResult {
    let task = to_plain_task(data);
    let train = task.sample_train(train_size, seed);
    let mut r = run_method(&task, &train, &train, Method::Baseline, cfg, None, seed);
    r.method = "Brunner et al.".to_string();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_datasets::em::{generate, EmConfig, EmFlavor};

    #[test]
    fn plain_serialization_has_no_markers() {
        let r = Record::new(vec![("title", "effective joins"), ("year", "2001")]);
        let toks = serialize_plain(&r);
        assert!(!toks.iter().any(|t| t == "[COL]" || t == "[VAL]"));
        assert!(toks.contains(&"effective".to_string()));
        // Attribute *names* are dropped in this format.
        assert!(!toks.contains(&"title".to_string()));
    }

    #[test]
    fn plain_pair_keeps_one_sep() {
        let r = Record::new(vec![("title", "a b")]);
        let toks = serialize_plain_pair(&r, &r);
        assert_eq!(toks.iter().filter(|t| *t == SEP).count(), 1);
    }

    #[test]
    fn brunner_baseline_runs() {
        let cfg = EmConfig {
            num_entities: 30,
            train_pairs: 60,
            test_pairs: 30,
            ..Default::default()
        };
        let data = generate(EmFlavor::DblpAcm, &cfg);
        let mut rcfg = RotomConfig::test_tiny();
        rcfg.train.epochs = 1;
        let r = run_brunner(&data, 30, &rcfg, 0);
        assert_eq!(r.method, "Brunner et al.");
        assert!((0.0..=1.0).contains(&r.accuracy));
    }
}
