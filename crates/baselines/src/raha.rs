//! Raha-style error detection (Mahdavi et al., SIGMOD'19).
//!
//! Raha is "the SOTA error detection system based on ensemble learning":
//! it runs a battery of unsupervised error-detection strategies over every
//! column, turns their votes into per-cell feature vectors, and trains
//! per-column classifiers from a small set of user-labeled *tuples*
//! (20 in the paper's configuration).
//!
//! Our reproduction keeps that shape: six detector families (frequency,
//! pattern, length, numeric-range, missing-value, whitespace-format) feed a
//! per-column logistic regression trained on the labeled tuples' cells, with
//! an ensemble-vote fallback for columns whose labeled cells are single-class.

use rotom::metrics::{prf1, PrF1};
use rotom_datasets::edt::EdtDataset;
use rotom_rng::rngs::StdRng;
use rotom_rng::{RngExt, SeedableRng};
use std::collections::HashMap;

const MISSING_TOKENS: [&str; 5] = ["", "n/a", "null", "-", "unknown"];

/// Per-column statistics backing the unsupervised detectors.
struct ColumnStats {
    value_counts: HashMap<String, usize>,
    pattern_counts: HashMap<String, usize>,
    mean_len: f32,
    std_len: f32,
    numeric_rate: f32,
    mean_num: f32,
    std_num: f32,
    whitespace_rate: f32,
    n: usize,
}

/// Character-class signature: digits → `d`, letters → `a`, whitespace → `s`,
/// everything else verbatim. Collapses repeats ("(866) 246" → "(d) d").
fn pattern_of(value: &str) -> String {
    let mut out = String::new();
    let mut last = '\0';
    for c in value.chars() {
        let cls = if c.is_ascii_digit() {
            'd'
        } else if c.is_alphabetic() {
            'a'
        } else if c.is_whitespace() {
            's'
        } else {
            c
        };
        if cls != last {
            out.push(cls);
            last = cls;
        }
    }
    out
}

impl ColumnStats {
    fn build(values: &[&str]) -> Self {
        let n = values.len().max(1);
        let mut value_counts = HashMap::new();
        let mut pattern_counts = HashMap::new();
        let mut lens = Vec::with_capacity(n);
        let mut nums = Vec::new();
        let mut ws = 0usize;
        for &v in values {
            *value_counts.entry(v.to_string()).or_insert(0) += 1;
            *pattern_counts.entry(pattern_of(v)).or_insert(0) += 1;
            lens.push(v.len() as f32);
            if let Ok(x) = v.parse::<f32>() {
                nums.push(x);
            }
            if v.contains(' ') {
                ws += 1;
            }
        }
        let mean = |xs: &[f32]| xs.iter().sum::<f32>() / xs.len().max(1) as f32;
        let std = |xs: &[f32], m: f32| {
            (xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len().max(1) as f32).sqrt()
        };
        let mean_len = mean(&lens);
        let std_len = std(&lens, mean_len).max(1e-3);
        let mean_num = mean(&nums);
        let std_num = std(&nums, mean_num).max(1e-3);
        Self {
            value_counts,
            pattern_counts,
            mean_len,
            std_len,
            numeric_rate: nums.len() as f32 / n as f32,
            mean_num,
            std_num,
            whitespace_rate: ws as f32 / n as f32,
            n,
        }
    }

    /// Detector feature vector for one cell value.
    fn features(&self, value: &str) -> Vec<f32> {
        let freq = *self.value_counts.get(value).unwrap_or(&0) as f32 / self.n as f32;
        let pat_freq =
            *self.pattern_counts.get(&pattern_of(value)).unwrap_or(&0) as f32 / self.n as f32;
        let len_z = ((value.len() as f32 - self.mean_len) / self.std_len)
            .abs()
            .min(10.0);
        let is_num = value.parse::<f32>().is_ok();
        let num_z = match value.parse::<f32>() {
            Ok(x) if self.numeric_rate > 0.5 => {
                ((x - self.mean_num) / self.std_num).abs().min(10.0)
            }
            _ => 0.0,
        };
        let num_mismatch = if self.numeric_rate > 0.8 && !is_num {
            1.0
        } else {
            0.0
        };
        let missing = MISSING_TOKENS.contains(&value.to_lowercase().as_str()) as u8 as f32;
        let ws_mismatch = {
            let has = value.contains(' ');
            if self.whitespace_rate > 0.8 && !has {
                1.0
            } else if self.whitespace_rate < 0.2 && has {
                1.0
            } else {
                0.0
            }
        };
        let has_upper = value.chars().any(|c| c.is_ascii_uppercase()) as u8 as f32;
        vec![
            1.0,
            freq,
            pat_freq,
            len_z / 10.0,
            num_z / 10.0,
            num_mismatch,
            missing,
            ws_mismatch,
            has_upper,
        ]
    }

    /// Unsupervised ensemble vote: count detectors flagging the cell.
    fn votes(&self, value: &str) -> usize {
        let f = self.features(value);
        let mut v = 0;
        if f[1] < 1.5 / self.n as f32 {
            v += 1; // rare value
        }
        if f[2] < 0.1 {
            v += 1; // rare pattern
        }
        if f[3] > 0.3 {
            v += 1; // length outlier
        }
        if f[4] > 0.3 {
            v += 1; // numeric outlier
        }
        v += (f[5] + f[6] + f[7]) as usize; // hard violations
        v
    }
}

/// Per-column logistic regression over the detector features.
struct LogReg {
    w: Vec<f32>,
    usable: bool,
    fallback_positive: bool,
}

impl LogReg {
    fn train(xs: &[Vec<f32>], ys: &[bool], rng: &mut StdRng) -> Self {
        let pos = ys.iter().filter(|&&y| y).count();
        if pos == 0 || pos == ys.len() {
            // Single-class labels: fall back to the unsupervised ensemble.
            return Self {
                w: Vec::new(),
                usable: false,
                fallback_positive: pos > 0,
            };
        }
        let d = xs[0].len();
        let mut w: Vec<f32> = (0..d).map(|_| rng.random_range(-0.01..0.01)).collect();
        let lr = 0.5f32;
        for _ in 0..300 {
            let mut grad = vec![0.0f32; d];
            for (x, &y) in xs.iter().zip(ys) {
                let z: f32 = x.iter().zip(&w).map(|(a, b)| a * b).sum();
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - y as u8 as f32;
                for (g, &xi) in grad.iter_mut().zip(x) {
                    *g += err * xi / xs.len() as f32;
                }
            }
            for (wi, g) in w.iter_mut().zip(&grad) {
                *wi -= lr * g;
            }
        }
        Self {
            w,
            usable: true,
            fallback_positive: false,
        }
    }

    fn predict(&self, x: &[f32], votes: usize) -> bool {
        if !self.usable {
            // Ensemble vote threshold, biased by the single observed class.
            return if self.fallback_positive {
                votes >= 1
            } else {
                votes >= 2
            };
        }
        let z: f32 = x.iter().zip(&self.w).map(|(a, b)| a * b).sum();
        z > 0.0
    }
}

/// A trained Raha instance.
pub struct Raha {
    stats: Vec<ColumnStats>,
    models: Vec<LogReg>,
}

/// Result of a Raha run.
#[derive(Debug, Clone)]
pub struct RahaResult {
    /// Positive-class (dirty) metrics over the test cells.
    pub prf1: PrF1,
    /// Number of labeled tuples consumed.
    pub labeled_tuples: usize,
}

impl Raha {
    /// Train on `labeled_tuples` uniformly sampled non-test rows (Raha's
    /// interactive tuple labeling, batched).
    pub fn train(data: &EdtDataset, labeled_tuples: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let stats: Vec<ColumnStats> = (0..data.columns.len())
            .map(|c| {
                let values: Vec<&str> = data
                    .rows
                    .iter()
                    .map(|r| r.get(&data.columns[c]).unwrap_or(""))
                    .collect();
                ColumnStats::build(&values)
            })
            .collect();

        let mut candidates: Vec<usize> = (0..data.rows.len())
            .filter(|r| !data.test_rows.contains(r))
            .collect();
        for i in (1..candidates.len()).rev() {
            let j = rng.random_range(0..=i);
            candidates.swap(i, j);
        }
        let labeled = &candidates[..labeled_tuples.min(candidates.len())];

        let models: Vec<LogReg> = (0..data.columns.len())
            .map(|c| {
                let mut xs = Vec::with_capacity(labeled.len());
                let mut ys = Vec::with_capacity(labeled.len());
                for &r in labeled {
                    let value = data.rows[r].get(&data.columns[c]).unwrap_or("");
                    xs.push(stats[c].features(value));
                    ys.push(data.mask[r][c]);
                }
                LogReg::train(&xs, &ys, &mut rng)
            })
            .collect();
        Self { stats, models }
    }

    /// Predict whether the cell at `(row, col)` is erroneous.
    pub fn predict(&self, data: &EdtDataset, row: usize, col: usize) -> bool {
        let value = data.rows[row].get(&data.columns[col]).unwrap_or("");
        let x = self.stats[col].features(value);
        let votes = self.stats[col].votes(value);
        self.models[col].predict(&x, votes)
    }

    /// Evaluate on the held-out test tuples.
    pub fn evaluate(&self, data: &EdtDataset) -> PrF1 {
        let mut pred = Vec::new();
        let mut gold = Vec::new();
        for &r in &data.test_rows {
            for c in 0..data.columns.len() {
                pred.push(self.predict(data, r, c) as usize);
                gold.push(data.mask[r][c] as usize);
            }
        }
        prf1(&pred, &gold, 1)
    }
}

/// Convenience: train + evaluate in one call (the Table 9 "Raha (20-tpl)"
/// row).
pub fn run_raha(data: &EdtDataset, labeled_tuples: usize, seed: u64) -> RahaResult {
    let raha = Raha::train(data, labeled_tuples, seed);
    RahaResult {
        prf1: raha.evaluate(data),
        labeled_tuples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_datasets::edt::{generate, EdtConfig, EdtFlavor};

    #[test]
    fn pattern_signature_collapses() {
        assert_eq!(pattern_of("(866) 246-6453"), "(d)sd-d");
        assert_eq!(pattern_of("abc"), "a");
        assert_eq!(pattern_of("12.5"), "d.d");
    }

    #[test]
    fn raha_beats_chance_on_beers() {
        let data = generate(EdtFlavor::Beers, &EdtConfig::default());
        let result = run_raha(&data, 20, 0);
        assert!(result.prf1.f1 > 0.4, "Raha F1 too low: {:?}", result.prf1);
    }

    #[test]
    fn raha_runs_on_all_flavors() {
        let cfg = EdtConfig {
            rows: Some(80),
            ..Default::default()
        };
        for flavor in EdtFlavor::ALL {
            let data = generate(flavor, &cfg);
            let result = run_raha(&data, 20, 1);
            assert!(result.prf1.f1 >= 0.0, "{}", data.name);
        }
    }

    #[test]
    fn more_labels_do_not_hurt_much() {
        let data = generate(EdtFlavor::Hospital, &EdtConfig::default());
        let few = run_raha(&data, 5, 2).prf1.f1;
        let many = run_raha(&data, 40, 2).prf1.f1;
        assert!(many + 0.15 >= few, "labels hurt: {few} -> {many}");
    }
}
