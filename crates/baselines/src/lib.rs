//! `rotom-baselines` — the comparison systems of the paper's evaluation.
//!
//! * [`deepmatcher`] — DeepMatcher (GRU + attention hybrid) and the
//!   DM+TinyLm variant (Table 8);
//! * [`brunner`] — Brunner & Stockinger's alternative serialization over the
//!   same LM (Table 8);
//! * [`raha`] — the Raha ensemble error-detection system (Table 9);
//! * [`gridsearch`] — the operator-enumeration practice Rotom replaces
//!   (the 22× cost comparison of §6.6);
//! * [`hu`] — Hu et al.'s learned DA + learned weighting (Table 11, left);
//! * [`kumar`] — Kumar et al.'s label-conditioned generation (Table 11,
//!   right).

#![warn(missing_docs)]

pub mod brunner;
pub mod deepmatcher;
pub mod gridsearch;
pub mod hu;
pub mod kumar;
pub mod raha;

pub use brunner::{run_brunner, serialize_plain, serialize_plain_pair};
pub use deepmatcher::{DeepMatcher, DmConfig, DmEncoder};
pub use gridsearch::{grid_search, Grid, GridSearchResult};
pub use hu::{run_hu, run_hu_baseline, HuVariant, LearnedDaOp};
pub use kumar::{generate_examples, run_kumar, KumarVariant};
pub use raha::{run_raha, Raha, RahaResult};
