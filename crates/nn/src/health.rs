//! Numeric-health guarding for the training loop.
//!
//! Meta-gradients (REINFORCE + the DARTS-style finite difference of
//! Algorithm 2) are noisy; a single NaN or loss explosion must not silently
//! destroy a long run. [`HealthMonitor`] watches every optimizer step for
//! non-finite loss/gradients and for loss spikes against a sliding window,
//! and the training driver reacts to a [`Verdict::Diverged`] by rolling back
//! to the last good checkpoint with a decayed learning rate — degrading to
//! the best snapshot seen so far once the rollback budget is exhausted,
//! instead of panicking.

use std::collections::VecDeque;

/// Tunables for divergence detection and recovery.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Length of the sliding loss window used for spike detection. The spike
    /// check only engages once the window is full.
    pub spike_window: usize,
    /// A step diverges if its loss exceeds `spike_factor ×` the window mean.
    pub spike_factor: f32,
    /// How many rollbacks to attempt before degrading to the best snapshot.
    pub max_rollbacks: u32,
    /// Multiplier applied to the learning rate on each rollback (compounds:
    /// the k-th rollback restarts at `lr · lr_decay^k`, so retries do not
    /// replay the identical diverging trajectory).
    pub lr_decay: f32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            spike_window: 8,
            spike_factor: 4.0,
            max_rollbacks: 3,
            lr_decay: 0.5,
        }
    }
}

/// The per-step health outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The step is numerically sound.
    Healthy,
    /// The step diverged; the reason explains how.
    Diverged(String),
}

/// A recorded health incident (divergence, rollback, degradation).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEvent {
    /// Global step at which the incident happened.
    pub step: u64,
    /// Incident class: `"diverged"`, `"rollback"`, or `"degraded"`.
    pub kind: String,
    /// Human-readable explanation.
    pub detail: String,
}

/// A request from the guarded training loop to stop the current epoch and
/// let the driver recover (roll back or degrade).
#[derive(Debug, Clone)]
pub struct Halt {
    /// Global step at which divergence was detected.
    pub step: u64,
    /// Why the step was ruled divergent.
    pub reason: String,
}

impl std::fmt::Display for Halt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "training halted at step {}: {}", self.step, self.reason)
    }
}

/// Sliding-window numeric-health monitor. One instance lives for a whole
/// (possibly resumed) run; its step counter is part of the checkpointed
/// state so resumed runs see the same step numbering.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    window: VecDeque<f32>,
    step: u64,
    rollbacks: u32,
    events: Vec<HealthEvent>,
}

impl HealthMonitor {
    /// Create a monitor with the given tunables.
    pub fn new(cfg: HealthConfig) -> Self {
        Self {
            window: VecDeque::with_capacity(cfg.spike_window),
            cfg,
            step: 0,
            rollbacks: 0,
            events: Vec::new(),
        }
    }

    /// Global step counter (number of optimizer steps begun).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Restore the step counter (on resume / rollback).
    pub fn set_step(&mut self, step: u64) {
        self.step = step;
    }

    /// Rollbacks consumed so far.
    pub fn rollbacks(&self) -> u32 {
        self.rollbacks
    }

    /// Restore the rollback count (on resume).
    pub fn set_rollbacks(&mut self, rollbacks: u32) {
        self.rollbacks = rollbacks;
    }

    /// The recovery tunables.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Recorded incidents, oldest first.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// Advance to the next step and return its (1-based) number.
    pub fn begin_step(&mut self) -> u64 {
        self.step += 1;
        self.step
    }

    /// Judge the step that [`begin_step`](Self::begin_step) opened from its
    /// loss and gradient norm. Healthy losses feed the spike window;
    /// divergent steps are recorded and leave the window untouched.
    pub fn observe(&mut self, loss: f32, grad_norm: f32) -> Verdict {
        let reason = if !loss.is_finite() {
            Some(format!("non-finite loss {loss}"))
        } else if !grad_norm.is_finite() {
            Some(format!("non-finite gradient norm {grad_norm}"))
        } else if self.window.len() == self.cfg.spike_window {
            let mean = self.window.iter().sum::<f32>() / self.window.len() as f32;
            if mean > 0.0 && loss > self.cfg.spike_factor * mean {
                Some(format!(
                    "loss spike: {loss} > {} × window mean {mean}",
                    self.cfg.spike_factor
                ))
            } else {
                None
            }
        } else {
            None
        };
        match reason {
            Some(reason) => {
                self.events.push(HealthEvent {
                    step: self.step,
                    kind: "diverged".to_string(),
                    detail: reason.clone(),
                });
                Verdict::Diverged(reason)
            }
            None => {
                if self.window.len() == self.cfg.spike_window {
                    self.window.pop_front();
                }
                self.window.push_back(loss);
                Verdict::Healthy
            }
        }
    }

    /// Whether the rollback budget allows another recovery attempt.
    pub fn can_rollback(&self) -> bool {
        self.rollbacks < self.cfg.max_rollbacks
    }

    /// Consume one rollback: reset the spike window (the restored trajectory
    /// re-fills it) and record the event. Returns the compounded LR scale
    /// `lr_decay^rollbacks` the driver should apply to the restored state.
    pub fn record_rollback(&mut self, restored_step: u64, detail: String) -> f32 {
        self.rollbacks += 1;
        self.window.clear();
        self.events.push(HealthEvent {
            step: restored_step,
            kind: "rollback".to_string(),
            detail,
        });
        self.cfg.lr_decay.powi(self.rollbacks as i32)
    }

    /// Record that the run gave up retrying and degraded to the best
    /// snapshot.
    pub fn record_degraded(&mut self, detail: String) {
        self.events.push(HealthEvent {
            step: self.step,
            kind: "degraded".to_string(),
            detail,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(HealthConfig {
            spike_window: 3,
            spike_factor: 4.0,
            max_rollbacks: 2,
            lr_decay: 0.5,
        })
    }

    #[test]
    fn healthy_steps_stay_healthy() {
        let mut m = monitor();
        for loss in [1.0, 0.9, 1.1, 0.8, 1.0] {
            m.begin_step();
            assert_eq!(m.observe(loss, 0.5), Verdict::Healthy);
        }
        assert_eq!(m.step(), 5);
        assert!(m.events().is_empty());
    }

    #[test]
    fn non_finite_loss_and_grad_diverge() {
        let mut m = monitor();
        m.begin_step();
        assert!(matches!(m.observe(f32::NAN, 0.5), Verdict::Diverged(_)));
        m.begin_step();
        assert!(matches!(
            m.observe(1.0, f32::INFINITY),
            Verdict::Diverged(_)
        ));
        assert_eq!(m.events().len(), 2);
    }

    #[test]
    fn spike_detection_needs_full_window() {
        let mut m = monitor();
        // Window not full yet: even a huge loss passes.
        m.begin_step();
        assert_eq!(m.observe(100.0, 0.1), Verdict::Healthy);
        for loss in [1.0, 1.0] {
            m.begin_step();
            assert_eq!(m.observe(loss, 0.1), Verdict::Healthy);
        }
        // Window now [100, 1, 1], mean 34 → 4×mean = 136: 135 passes.
        m.begin_step();
        assert_eq!(m.observe(135.0, 0.1), Verdict::Healthy);
        // Window [1, 1, 135], mean ~45.7 → spike at 200.
        m.begin_step();
        assert!(matches!(m.observe(200.0, 0.1), Verdict::Diverged(_)));
    }

    #[test]
    fn rollback_budget_and_compounded_decay() {
        let mut m = monitor();
        assert!(m.can_rollback());
        assert_eq!(m.record_rollback(0, "first".into()), 0.5);
        assert!(m.can_rollback());
        assert_eq!(m.record_rollback(0, "second".into()), 0.25);
        assert!(!m.can_rollback());
        m.record_degraded("out of retries".into());
        let kinds: Vec<_> = m.events().iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, ["rollback", "rollback", "degraded"]);
    }

    #[test]
    fn rollback_clears_spike_window() {
        let mut m = monitor();
        for loss in [1.0, 1.0, 1.0] {
            m.begin_step();
            m.observe(loss, 0.1);
        }
        m.record_rollback(0, "test".into());
        // Window cleared: the spike check is disengaged until it refills.
        m.begin_step();
        assert_eq!(m.observe(1000.0, 0.1), Verdict::Healthy);
    }
}
