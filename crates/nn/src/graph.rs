//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a DAG of tensor operations as it is built; nodes are
//! appended in topological order, so a single reverse sweep computes all
//! gradients. Parameters live outside the tape in a
//! [`ParamStore`](crate::params::ParamStore): `param` nodes snapshot the
//! current value at construction time (so finite-difference probes that
//! mutate the store cannot corrupt an in-flight graph) and `backward`
//! accumulates gradients back into the store.
//!
//! # Memory plane
//!
//! Training replays the same graph shapes every step, so the tape recycles
//! its own memory instead of round-tripping through the allocator:
//!
//! * Every node value, gradient, and heavy op payload is drawn from a
//!   per-tape [`BufArena`] — a free list keyed by element count. After
//!   [`Tape::reset`] returns those buffers, the next identically-shaped
//!   graph allocates nothing.
//! * Whole tapes are recycled through a global pool
//!   ([`take_pooled_tape`] / [`recycle_tape`] / [`with_pooled_tape`]), so
//!   hot loops that build one tape per batch reuse warm arenas across
//!   batches and across pool workers.
//! * `param` nodes capture the store's pack slot ([`ParamStore::packs`])
//!   alongside the value snapshot; forward matmuls and the `dA = dC·Bᵀ`
//!   backward contraction fill and reuse packed panels lazily, paying pack
//!   cost at most once per parameter generation — and only for GEMMs that
//!   actually dispatch to the tiled path.
//! * Backward accumulates in place: op rules write into arena buffers and
//!   donate them to the consumer via `add_grad_owned` instead of the old
//!   clone-then-add pattern.
//!
//! All of this is bit-transparent: dispatch thresholds and accumulation
//! orders are unchanged, so results are identical to the allocating paths.
//!
//! The op set is deliberately small — exactly what a Transformer
//! encoder/decoder, the Rotom filtering/weighting models, and the baseline
//! RNNs need.

use crate::kernels;
use crate::params::{ParamId, ParamPacks, ParamStore};
use crate::pool::RotomPool;
use crate::tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

/// Additive attention mask: `0.0` for visible positions, `-1e9` for hidden.
pub type AttnMask = Tensor;

// Some op payloads (layer-norm eps) are only read during the forward
// computation that creates the node; they are kept in the enum for
// debuggability and future introspection.
#[allow(dead_code)]
enum Op {
    /// Leaf holding a constant (input) value.
    Input,
    /// Leaf holding a snapshot of a parameter value, plus the store's pack
    /// slot for that snapshot's generation (direct panels for forward
    /// `A·B`, transposed for the backward `dC·Bᵀ` contraction). The `Arc`
    /// pins the slot the snapshot was taken from, so a later store update
    /// cannot invalidate it under an in-flight graph; panels fill lazily,
    /// only when a GEMM against this leaf takes the tiled path.
    Param {
        id: ParamId,
        packs: Arc<ParamPacks>,
    },
    /// Row-gather from an embedding table parameter.
    Embedding {
        table: ParamId,
        indices: Vec<usize>,
    },
    /// `a (m x k) * b (k x n)`.
    Matmul(NodeId, NodeId),
    /// `a (m x k) * b^T (n x k)`.
    MatmulTb(NodeId, NodeId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    /// Broadcast add of a `1 x n` row to every row of an `m x n` matrix.
    AddRow(NodeId, NodeId),
    /// Broadcast multiply of a `1 x n` row into every row of an `m x n` matrix.
    MulRow(NodeId, NodeId),
    Scale(NodeId, f32),
    AddConst(NodeId, f32),
    Relu(NodeId),
    /// GELU (tanh approximation); `t` caches the forward `tanh` values so
    /// the backward rule skips the libm call (bit-identical reuse).
    Gelu {
        a: NodeId,
        t: Vec<f32>,
    },
    Tanh(NodeId),
    Sigmoid(NodeId),
    /// Row-wise softmax (the additive mask, if any, is folded into the
    /// forward value and not needed by the backward rule).
    Softmax(NodeId),
    /// Row-wise log-softmax.
    LogSoftmax(NodeId),
    /// Row-wise layer normalization; `gamma`/`beta` are `1 x n` nodes.
    LayerNorm {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        eps: f32,
        /// Cached per-row (mean, inv_std) from the forward pass.
        cache: Vec<(f32, f32)>,
    },
    /// Inverted dropout; `mask` holds `0` or `1/(1-p)` per element.
    Dropout {
        x: NodeId,
        mask: Vec<f32>,
    },
    ConcatCols(Vec<NodeId>),
    ConcatRows(Vec<NodeId>),
    SliceCols {
        x: NodeId,
        start: usize,
        len: usize,
    },
    SliceRows {
        x: NodeId,
        start: usize,
        len: usize,
    },
    /// Mean over rows: `m x n -> 1 x n`.
    MeanRows(NodeId),
    /// Sum of equal-shaped nodes.
    SumNodes(Vec<NodeId>),
    /// Multiply a tensor by a `1x1` scalar node.
    MulScalar {
        x: NodeId,
        s: NodeId,
    },
    /// Mean cross-entropy over rows of logits against soft targets.
    CrossEntropy {
        logits: NodeId,
        /// Row-major `m x C` soft target distribution.
        targets: Vec<f32>,
        /// Cached softmax of logits (reused by the backward rule).
        probs: Vec<f32>,
    },
    /// Sum of all elements: `m x n -> 1 x 1`.
    SumAll(NodeId),
    /// Elementwise reciprocal `1 / x`.
    Recip(NodeId),
    /// Elementwise square root (inputs must be positive).
    Sqrt(NodeId),
}

struct Node {
    op: Op,
    value: Tensor,
    grad: Option<Tensor>,
}

/// Retained-floats cap per tape arena (32 MB). A training tape for the
/// models in this workspace retains a few hundred KB; the cap only guards
/// against pathological one-off graphs pinning memory forever.
const ARENA_CAP_FLOATS: usize = 8 << 20;

/// Free-list of `f32` buffers keyed by exact element count. `take_*` pops a
/// recycled buffer or allocates; `put` returns one for reuse. After one
/// warm-up pass over a graph shape, steady-state traffic is allocation-free.
///
/// Buckets live in a small vector scanned linearly: a training graph has a
/// few dozen distinct buffer sizes, and `take`/`put` sit on the per-node hot
/// path where a hashed lookup (SipHash on a `usize`) costs more than the
/// scan. Freshly used sizes move to the front so steady-state lookups hit
/// within the first few entries.
#[derive(Default)]
struct BufArena {
    free: Vec<(usize, Vec<Vec<f32>>)>,
    retained: usize,
}

impl BufArena {
    /// Index of the bucket for `len`, moved one slot toward the front per
    /// hit so hot sizes bubble up.
    fn bucket(&mut self, len: usize) -> Option<usize> {
        let i = self.free.iter().position(|(l, _)| *l == len)?;
        if i > 0 {
            self.free.swap(i - 1, i);
            Some(i - 1)
        } else {
            Some(i)
        }
    }

    /// A buffer of exactly `len` floats with arbitrary contents. Callers
    /// must fully overwrite it.
    fn take_dirty(&mut self, len: usize) -> Vec<f32> {
        if let Some(i) = self.bucket(len) {
            if let Some(buf) = self.free[i].1.pop() {
                self.retained -= len;
                return buf;
            }
        }
        vec![0.0; len]
    }

    /// A zero-filled buffer of exactly `len` floats.
    fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_dirty(len);
        buf.fill(0.0);
        buf
    }

    /// Return a buffer for reuse (dropped silently past the retention cap).
    fn put(&mut self, buf: Vec<f32>) {
        let len = buf.len();
        if len == 0 || self.retained + len > ARENA_CAP_FLOATS {
            return;
        }
        self.retained += len;
        match self.bucket(len) {
            Some(i) => self.free[i].1.push(buf),
            None => self.free.push((len, vec![buf])),
        }
    }
}

/// A gradient tape. Create one per forward pass (typically per batch) — or
/// better, reuse one via [`with_pooled_tape`] so its arena stays warm.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    arena: BufArena,
    /// Recycled `Vec<usize>` payloads (embedding indices).
    ids_pool: Vec<Vec<usize>>,
    /// Recycled `Vec<NodeId>` payloads (concat/sum fan-ins).
    nids_pool: Vec<Vec<NodeId>>,
    /// Recycled layer-norm (mean, inv_std) caches.
    ln_pool: Vec<Vec<(f32, f32)>>,
}

/// Small-vec pools keep at most this many spares each.
const SMALL_POOL_CAP: usize = 64;

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Self {
        Self {
            nodes: Vec::with_capacity(256),
            ..Self::default()
        }
    }

    /// Clear all nodes while retaining their buffers in the tape's arena, so
    /// the next graph of the same shapes allocates nothing. Node handles from
    /// before the reset must not be reused.
    pub fn reset(&mut self) {
        // Disjoint-field borrows: the drain holds `self.nodes`, recycling
        // touches only `self.arena` / the small pools.
        for node in self.nodes.drain(..) {
            let Node { op, value, grad } = node;
            self.arena.put(value.into_vec());
            if let Some(g) = grad {
                self.arena.put(g.into_vec());
            }
            match op {
                Op::Embedding { mut indices, .. } => {
                    if self.ids_pool.len() < SMALL_POOL_CAP {
                        indices.clear();
                        self.ids_pool.push(indices);
                    }
                }
                Op::Dropout { mask, .. } => self.arena.put(mask),
                Op::Gelu { t, .. } => self.arena.put(t),
                Op::LayerNorm { mut cache, .. } => {
                    if self.ln_pool.len() < SMALL_POOL_CAP {
                        cache.clear();
                        self.ln_pool.push(cache);
                    }
                }
                Op::CrossEntropy { targets, probs, .. } => {
                    self.arena.put(targets);
                    self.arena.put(probs);
                }
                Op::ConcatCols(mut v) | Op::ConcatRows(mut v) | Op::SumNodes(mut v) => {
                    if self.nids_pool.len() < SMALL_POOL_CAP {
                        v.clear();
                        self.nids_pool.push(v);
                    }
                }
                _ => {}
            }
        }
    }

    fn push(&mut self, op: Op, value: Tensor) -> NodeId {
        self.nodes.push(Node {
            op,
            value,
            grad: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Gradient of a node after [`backward`](Self::backward); zeros if the
    /// node did not participate.
    pub fn grad(&self, id: NodeId) -> Tensor {
        match &self.nodes[id.0].grad {
            Some(g) => g.clone(),
            None => Tensor::zeros(self.nodes[id.0].value.rows(), self.nodes[id.0].value.cols()),
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    #[inline]
    fn shape(&self, id: NodeId) -> (usize, usize) {
        let v = &self.nodes[id.0].value;
        (v.rows(), v.cols())
    }

    /// Elementwise map of a node's value into an arena tensor.
    fn map_into(&mut self, a: NodeId, f: impl Fn(f32) -> f32) -> Tensor {
        let (r, c) = self.shape(a);
        let mut out = self.arena.take_dirty(r * c);
        for (o, &x) in out.iter_mut().zip(self.nodes[a.0].value.data()) {
            *o = f(x);
        }
        Tensor::from_vec(out, r, c)
    }

    /// Elementwise zip of two equal-shaped node values into an arena tensor.
    fn zip_into(&mut self, a: NodeId, b: NodeId, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let (r, c) = self.shape(a);
        assert_eq!((r, c), self.shape(b), "zip shape mismatch");
        let mut out = self.arena.take_dirty(r * c);
        for ((o, &x), &y) in out
            .iter_mut()
            .zip(self.nodes[a.0].value.data())
            .zip(self.nodes[b.0].value.data())
        {
            *o = f(x, y);
        }
        Tensor::from_vec(out, r, c)
    }

    /// Recycled `Vec<NodeId>` holding a copy of `parts`.
    fn nid_list(&mut self, parts: &[NodeId]) -> Vec<NodeId> {
        let mut v = self.nids_pool.pop().unwrap_or_default();
        v.extend_from_slice(parts);
        v
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Constant input leaf.
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(Op::Input, value)
    }

    /// Parameter leaf: snapshots the current value from the store, along
    /// with the store's pack slot for this generation (used by
    /// [`matmul`](Self::matmul) and the matmul backward rules). Cloning the
    /// slot is a refcount bump — no panels are built here.
    pub fn param(&mut self, id: ParamId, store: &ParamStore) -> NodeId {
        let (r, c) = {
            let v = store.value(id);
            (v.rows(), v.cols())
        };
        let mut buf = self.arena.take_dirty(r * c);
        buf.copy_from_slice(store.value(id).data());
        let packs = store.packs(id);
        self.push(Op::Param { id, packs }, Tensor::from_vec(buf, r, c))
    }

    /// Embedding lookup: gathers `indices` rows of the table parameter into
    /// an `indices.len() x d` matrix.
    pub fn embedding(&mut self, table: ParamId, store: &ParamStore, indices: &[usize]) -> NodeId {
        let t = store.value(table);
        let d = t.cols();
        let mut out = self.arena.take_dirty(indices.len() * d);
        for (r, &i) in indices.iter().enumerate() {
            out[r * d..(r + 1) * d].copy_from_slice(t.row_slice(i));
        }
        let mut idx = self.ids_pool.pop().unwrap_or_default();
        idx.extend_from_slice(indices);
        let value = Tensor::from_vec(out, indices.len(), d);
        self.push(
            Op::Embedding {
                table,
                indices: idx,
            },
            value,
        )
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// `a * b` (matrix product). When `b` is a parameter node and the shape
    /// dispatches to the tiled path, runs on the generation's cached panels
    /// (bit-identical to packing on the fly).
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (m, k) = self.shape(a);
        let (k2, n) = self.shape(b);
        assert_eq!(k, k2, "matmul shape mismatch: {m}x{k} * {k2}x{n}");
        let mut out = self.arena.take_dirty(m * n);
        {
            let av = self.nodes[a.0].value.data();
            let bn = &self.nodes[b.0];
            let bv = bn.value.data();
            let pool = RotomPool::global();
            let pk = match &bn.op {
                Op::Param { packs, .. } if m * k * n >= kernels::SMALL_FLOPS => {
                    packs.direct(&bn.value)
                }
                _ => None,
            };
            if let Some(pk) = pk {
                kernels::matmul_prepacked_into(av, bv, pk, m, k, n, pool, &mut out);
            } else {
                kernels::matmul_into(av, bv, m, k, n, pool, &mut out);
            }
        }
        self.push(Op::Matmul(a, b), Tensor::from_vec(out, m, n))
    }

    /// `a * b^T` without materializing the transpose.
    pub fn matmul_tb(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (m, k) = self.shape(a);
        let (n, k2) = self.shape(b);
        assert_eq!(k, k2, "matmul_tb shape mismatch: {m}x{k} * ({n}x{k2})^T");
        let mut out = self.arena.take_dirty(m * n);
        {
            let av = self.nodes[a.0].value.data();
            let bv = self.nodes[b.0].value.data();
            kernels::matmul_transpose_b_into(av, bv, m, k, n, RotomPool::global(), &mut out);
        }
        self.push(Op::MatmulTb(a, b), Tensor::from_vec(out, m, n))
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.zip_into(a, b, |x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.zip_into(a, b, |x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise `a ⊙ b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.zip_into(a, b, |x, y| x * y);
        self.push(Op::Mul(a, b), v)
    }

    /// Add a `1 x n` row vector node to every row of an `m x n` node.
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let (m, n) = self.shape(a);
        let (rr, rc) = self.shape(row);
        assert_eq!(rr, 1, "add_row expects a 1 x n row vector");
        assert_eq!(n, rc, "add_row width mismatch");
        let mut out = self.arena.take_dirty(m * n);
        {
            let av = self.nodes[a.0].value.data();
            let rv = self.nodes[row.0].value.data();
            for i in 0..m {
                for ((o, &x), &s) in out[i * n..(i + 1) * n]
                    .iter_mut()
                    .zip(&av[i * n..(i + 1) * n])
                    .zip(rv)
                {
                    *o = x + s;
                }
            }
        }
        self.push(Op::AddRow(a, row), Tensor::from_vec(out, m, n))
    }

    /// Multiply every row of an `m x n` node by a `1 x n` row vector node.
    pub fn mul_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let (m, n) = self.shape(a);
        let (rr, rc) = self.shape(row);
        assert_eq!(rr, 1, "mul_row expects a 1 x n row vector");
        assert_eq!(n, rc, "mul_row width mismatch");
        let mut out = self.arena.take_dirty(m * n);
        {
            let av = self.nodes[a.0].value.data();
            let rv = self.nodes[row.0].value.data();
            for i in 0..m {
                for ((o, &x), &s) in out[i * n..(i + 1) * n]
                    .iter_mut()
                    .zip(&av[i * n..(i + 1) * n])
                    .zip(rv)
                {
                    *o = x * s;
                }
            }
        }
        self.push(Op::MulRow(a, row), Tensor::from_vec(out, m, n))
    }

    /// `a * c` for a compile-time constant `c`.
    pub fn scale(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.map_into(a, |x| x * c);
        self.push(Op::Scale(a, c), v)
    }

    /// `a + c` elementwise for a constant `c`.
    pub fn add_const(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.map_into(a, |x| x + c);
        self.push(Op::AddConst(a, c), v)
    }

    // ------------------------------------------------------------------
    // Nonlinearities
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.map_into(a, |x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// GELU (tanh approximation). The forward `tanh` values are cached on
    /// the node for the backward rule — the expensive libm call is paid
    /// once, and reusing the identical value keeps gradients bit-identical
    /// to recomputation.
    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        let (m, n) = self.shape(a);
        let mut t = self.arena.take_dirty(m * n);
        let mut out = self.arena.take_dirty(m * n);
        {
            let av = self.nodes[a.0].value.data();
            for ((o, tt), &x) in out.iter_mut().zip(t.iter_mut()).zip(av) {
                let th = gelu_tanh(x);
                *tt = th;
                *o = 0.5 * x * (1.0 + th);
            }
        }
        self.push(Op::Gelu { a, t }, Tensor::from_vec(out, m, n))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.map_into(a, f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.map_into(a, |x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v)
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: NodeId) -> NodeId {
        self.masked_softmax(a, None)
    }

    /// Row-wise softmax with an optional additive mask (same shape as `a`).
    pub fn masked_softmax(&mut self, a: NodeId, mask: Option<&AttnMask>) -> NodeId {
        let (m, n) = self.shape(a);
        if let Some(mk) = mask {
            assert_eq!((mk.rows(), mk.cols()), (m, n), "mask shape mismatch");
        }
        let mut out = self.arena.take_dirty(m * n);
        {
            let x = &self.nodes[a.0].value;
            for i in 0..m {
                let mrow = mask.map(|mk| mk.row_slice(i));
                softmax_row(x.row_slice(i), mrow, &mut out[i * n..(i + 1) * n]);
            }
        }
        self.push(Op::Softmax(a), Tensor::from_vec(out, m, n))
    }

    /// Row-wise log-softmax.
    pub fn log_softmax(&mut self, a: NodeId) -> NodeId {
        let (m, n) = self.shape(a);
        let mut out = self.arena.take_dirty(m * n);
        {
            let x = &self.nodes[a.0].value;
            for i in 0..m {
                let row = x.row_slice(i);
                let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let lse = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
                for (o, &v) in out[i * n..(i + 1) * n].iter_mut().zip(row) {
                    *o = v - lse;
                }
            }
        }
        self.push(Op::LogSoftmax(a), Tensor::from_vec(out, m, n))
    }

    /// Row-wise layer normalization with learned `gamma`/`beta` row nodes.
    pub fn layer_norm(&mut self, x: NodeId, gamma: NodeId, beta: NodeId, eps: f32) -> NodeId {
        let (m, nc) = self.shape(x);
        assert_eq!(self.shape(gamma), (1, nc));
        assert_eq!(self.shape(beta), (1, nc));
        let n = nc as f32;
        let mut out = self.arena.take_dirty(m * nc);
        let mut cache = self.ln_pool.pop().unwrap_or_default();
        {
            let xv = &self.nodes[x.0].value;
            let g = self.nodes[gamma.0].value.data();
            let b = self.nodes[beta.0].value.data();
            cache.reserve(m);
            for i in 0..m {
                let row = xv.row_slice(i);
                let mean = row.iter().sum::<f32>() / n;
                let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
                let inv_std = 1.0 / (var + eps).sqrt();
                cache.push((mean, inv_std));
                for ((o, &v), (&gg, &bb)) in out[i * nc..(i + 1) * nc]
                    .iter_mut()
                    .zip(row)
                    .zip(g.iter().zip(b))
                {
                    *o = (v - mean) * inv_std * gg + bb;
                }
            }
        }
        self.push(
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
                cache,
            },
            Tensor::from_vec(out, m, nc),
        )
    }

    /// Inverted dropout with keep-probability `1 - p`. `mask_bits` must have
    /// one Bernoulli(1-p) draw per element; pass `None` to disable (eval).
    pub fn dropout(&mut self, x: NodeId, p: f32, mask_bits: Option<Vec<bool>>) -> NodeId {
        match mask_bits {
            None => x,
            Some(bits) => {
                let (m, n) = self.shape(x);
                assert_eq!(bits.len(), m * n, "dropout mask length mismatch");
                let keep = 1.0 - p;
                let mut mask = self.arena.take_dirty(m * n);
                for (o, &b) in mask.iter_mut().zip(&bits) {
                    *o = if b { 1.0 / keep } else { 0.0 };
                }
                let mut data = self.arena.take_dirty(m * n);
                for ((o, &v), &mv) in data.iter_mut().zip(self.nodes[x.0].value.data()).zip(&mask) {
                    *o = v * mv;
                }
                let value = Tensor::from_vec(data, m, n);
                self.push(Op::Dropout { x, mask }, value)
            }
        }
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Concatenate nodes along columns (all must share the row count).
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty());
        let rows = self.shape(parts[0]).0;
        let total: usize = parts.iter().map(|&p| self.shape(p).1).sum();
        let mut out = self.arena.take_dirty(rows * total);
        let mut off = 0;
        for &p in parts {
            let v = &self.nodes[p.0].value;
            assert_eq!(v.rows(), rows, "concat_cols row mismatch");
            let w = v.cols();
            for r in 0..rows {
                out[r * total + off..r * total + off + w].copy_from_slice(v.row_slice(r));
            }
            off += w;
        }
        let op = Op::ConcatCols(self.nid_list(parts));
        self.push(op, Tensor::from_vec(out, rows, total))
    }

    /// Concatenate nodes along rows (all must share the column count).
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty());
        let cols = self.shape(parts[0]).1;
        let total: usize = parts.iter().map(|&p| self.shape(p).0).sum();
        let mut out = self.arena.take_dirty(total * cols);
        let mut off = 0;
        for &p in parts {
            let v = &self.nodes[p.0].value;
            assert_eq!(v.cols(), cols, "concat_rows col mismatch");
            out[off..off + v.len()].copy_from_slice(v.data());
            off += v.len();
        }
        let op = Op::ConcatRows(self.nid_list(parts));
        self.push(op, Tensor::from_vec(out, total, cols))
    }

    /// Take columns `start..start+len`.
    pub fn slice_cols(&mut self, x: NodeId, start: usize, len: usize) -> NodeId {
        let (m, n) = self.shape(x);
        assert!(start + len <= n, "slice_cols out of bounds");
        let mut out = self.arena.take_dirty(m * len);
        {
            let v = &self.nodes[x.0].value;
            for r in 0..m {
                out[r * len..(r + 1) * len].copy_from_slice(&v.row_slice(r)[start..start + len]);
            }
        }
        self.push(
            Op::SliceCols { x, start, len },
            Tensor::from_vec(out, m, len),
        )
    }

    /// Take rows `start..start+len`.
    pub fn slice_rows(&mut self, x: NodeId, start: usize, len: usize) -> NodeId {
        let (m, n) = self.shape(x);
        assert!(start + len <= m, "slice_rows out of bounds");
        let mut out = self.arena.take_dirty(len * n);
        out.copy_from_slice(&self.nodes[x.0].value.data()[start * n..(start + len) * n]);
        self.push(
            Op::SliceRows { x, start, len },
            Tensor::from_vec(out, len, n),
        )
    }

    /// Mean over rows: `m x n -> 1 x n`.
    pub fn mean_rows(&mut self, x: NodeId) -> NodeId {
        let (rows, n) = self.shape(x);
        let m = rows as f32;
        let mut out = self.arena.take_zeroed(n);
        {
            let v = &self.nodes[x.0].value;
            for r in 0..rows {
                for (o, &s) in out.iter_mut().zip(v.row_slice(r)) {
                    *o += s / m;
                }
            }
        }
        self.push(Op::MeanRows(x), Tensor::from_vec(out, 1, n))
    }

    /// Elementwise sum of equal-shaped nodes.
    pub fn sum_nodes(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty());
        let (m, n) = self.shape(parts[0]);
        let mut out = self.arena.take_dirty(m * n);
        out.copy_from_slice(self.nodes[parts[0].0].value.data());
        let mut acc = Tensor::from_vec(out, m, n);
        for &p in &parts[1..] {
            acc.add_assign_from(&self.nodes[p.0].value);
        }
        let op = Op::SumNodes(self.nid_list(parts));
        self.push(op, acc)
    }

    /// Mean of equal-shaped nodes (convenience over sum + scale).
    pub fn mean_nodes(&mut self, parts: &[NodeId]) -> NodeId {
        let s = self.sum_nodes(parts);
        self.scale(s, 1.0 / parts.len() as f32)
    }

    /// Multiply tensor `x` by scalar node `s` (`1x1`).
    pub fn mul_scalar(&mut self, x: NodeId, s: NodeId) -> NodeId {
        assert_eq!(self.value(s).len(), 1, "mul_scalar expects 1x1 scalar node");
        let sv = self.value(s).item();
        let v = self.map_into(x, |a| a * sv);
        self.push(Op::MulScalar { x, s }, v)
    }

    /// Sum of all elements as a `1x1` node.
    pub fn sum_all(&mut self, x: NodeId) -> NodeId {
        let s = self.value(x).sum();
        let mut buf = self.arena.take_dirty(1);
        buf[0] = s;
        self.push(Op::SumAll(x), Tensor::from_vec(buf, 1, 1))
    }

    /// Elementwise reciprocal `1 / x` (used for in-graph weight
    /// normalization; inputs must be nonzero).
    pub fn recip(&mut self, x: NodeId) -> NodeId {
        let v = self.map_into(x, |a| 1.0 / a);
        self.push(Op::Recip(x), v)
    }

    /// Elementwise square root (used for in-graph L2 norms, e.g. the
    /// `‖p_M(x̂) − y‖₂` weighting term; inputs must be positive — the
    /// derivative diverges at zero).
    pub fn sqrt(&mut self, x: NodeId) -> NodeId {
        let v = self.map_into(x, f32::sqrt);
        self.push(Op::Sqrt(x), v)
    }

    /// Mean cross-entropy over logit rows against (soft) target rows.
    ///
    /// `targets` is row-major `m x C` and each row should be a probability
    /// distribution (one-hot for hard labels). The row softmax is computed
    /// once: its (max, sum) statistics give the log-sum-exp for the loss and
    /// the cached probabilities feed the backward rule.
    pub fn cross_entropy(&mut self, logits: NodeId, targets: &[f32]) -> NodeId {
        let (m, c) = self.shape(logits);
        assert_eq!(targets.len(), m * c, "target shape mismatch");
        let mut probs = self.arena.take_dirty(m * c);
        let mut loss = 0.0f64;
        {
            let lv = &self.nodes[logits.0].value;
            for i in 0..m {
                let row = lv.row_slice(i);
                let (max, sum) = softmax_row(row, None, &mut probs[i * c..(i + 1) * c]);
                let lse = sum.ln() + max;
                for j in 0..c {
                    let t = targets[i * c + j];
                    if t != 0.0 {
                        loss -= (t * (row[j] - lse)) as f64;
                    }
                }
            }
        }
        let mut tbuf = self.arena.take_dirty(m * c);
        tbuf.copy_from_slice(targets);
        let mut vbuf = self.arena.take_dirty(1);
        vbuf[0] = (loss / m as f64) as f32;
        self.push(
            Op::CrossEntropy {
                logits,
                targets: tbuf,
                probs,
            },
            Tensor::from_vec(vbuf, 1, 1),
        )
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Reverse sweep from `loss` (must be `1x1`), accumulating parameter
    /// gradients into `store`. Gradients add onto whatever is already in the
    /// store, so call [`ParamStore::zero_grad`] first for a fresh pass.
    pub fn backward(&mut self, loss: NodeId, store: &mut ParamStore) {
        assert_eq!(self.value(loss).len(), 1, "backward target must be scalar");
        let mut seed = self.arena.take_dirty(1);
        seed[0] = 1.0;
        self.nodes[loss.0].grad = Some(Tensor::from_vec(seed, 1, 1));
        for i in (0..=loss.0).rev() {
            let grad = match self.nodes[i].grad.take() {
                Some(g) => g,
                None => continue,
            };
            self.accumulate(i, &grad, store);
            // Leaf gradients are kept readable after the sweep.
            self.nodes[i].grad = Some(grad);
        }
    }

    /// `grad(id) += delta`, copying `delta` into an arena buffer when the
    /// node has no gradient yet.
    fn add_grad(&mut self, id: NodeId, delta: &Tensor) {
        if let Some(g) = &mut self.nodes[id.0].grad {
            g.add_assign_from(delta);
            return;
        }
        let mut buf = self.arena.take_dirty(delta.len());
        buf.copy_from_slice(delta.data());
        self.nodes[id.0].grad = Some(Tensor::from_vec(buf, delta.rows(), delta.cols()));
    }

    /// `grad(id) += delta`, donating `delta`'s buffer: it becomes the
    /// gradient when none exists yet, otherwise it is accumulated and
    /// recycled into the arena.
    fn add_grad_owned(&mut self, id: NodeId, delta: Tensor) {
        let node = &mut self.nodes[id.0];
        if let Some(g) = &mut node.grad {
            g.add_assign_from(&delta);
        } else {
            node.grad = Some(delta);
            return;
        }
        self.arena.put(delta.into_vec());
    }

    fn accumulate(&mut self, i: usize, grad: &Tensor, store: &mut ParamStore) {
        // Take op temporarily to appease the borrow checker; values of other
        // nodes are read through `self.nodes[..]`.
        let op = std::mem::replace(&mut self.nodes[i].op, Op::Input);
        match &op {
            Op::Input => {}
            Op::Param { id, .. } => {
                store.grad_mut(*id).add_assign_from(grad);
            }
            Op::Embedding { table, indices } => {
                let g = store.grad_mut(*table);
                for (r, &idx) in indices.iter().enumerate() {
                    let src = grad.row_slice(r);
                    for (d, &s) in g.row_slice_mut(idx).iter_mut().zip(src) {
                        *d += s;
                    }
                }
            }
            Op::Matmul(a, b) => {
                // dA = dC * B^T ; dB = A^T * dC — both transpose-free, and
                // dA runs on the prepacked transposed panels when B is a
                // parameter.
                let (m, n) = (grad.rows(), grad.cols());
                let k = self.nodes[a.0].value.cols();
                let mut da = self.arena.take_dirty(m * k);
                let mut db = self.arena.take_dirty(k * n);
                {
                    let av = self.nodes[a.0].value.data();
                    let bn = &self.nodes[b.0];
                    let bv = bn.value.data();
                    let pool = RotomPool::global();
                    let pt = match &bn.op {
                        Op::Param { packs, .. } if m * n * k >= kernels::SMALL_FLOPS => {
                            packs.transposed(&bn.value)
                        }
                        _ => None,
                    };
                    if let Some(pt) = pt {
                        kernels::matmul_transpose_b_prepacked_into(
                            grad.data(),
                            bv,
                            pt,
                            m,
                            n,
                            k,
                            pool,
                            &mut da,
                        );
                    } else {
                        kernels::matmul_transpose_b_into(grad.data(), bv, m, n, k, pool, &mut da);
                    }
                    kernels::matmul_transpose_a_into(av, grad.data(), m, k, n, pool, &mut db);
                }
                self.add_grad_owned(*a, Tensor::from_vec(da, m, k));
                self.add_grad_owned(*b, Tensor::from_vec(db, k, n));
            }
            Op::MatmulTb(a, b) => {
                // C = A * B^T ; dA = dC * B ; dB = dC^T * A
                let (m, n) = (grad.rows(), grad.cols());
                let k = self.nodes[a.0].value.cols();
                let mut da = self.arena.take_dirty(m * k);
                let mut db = self.arena.take_dirty(n * k);
                {
                    let av = self.nodes[a.0].value.data();
                    let bn = &self.nodes[b.0];
                    let bv = bn.value.data();
                    let pool = RotomPool::global();
                    let pk = match &bn.op {
                        Op::Param { packs, .. } if m * n * k >= kernels::SMALL_FLOPS => {
                            packs.direct(&bn.value)
                        }
                        _ => None,
                    };
                    if let Some(pk) = pk {
                        kernels::matmul_prepacked_into(grad.data(), bv, pk, m, n, k, pool, &mut da);
                    } else {
                        kernels::matmul_into(grad.data(), bv, m, n, k, pool, &mut da);
                    }
                    kernels::matmul_transpose_a_into(grad.data(), av, m, n, k, pool, &mut db);
                }
                self.add_grad_owned(*a, Tensor::from_vec(da, m, k));
                self.add_grad_owned(*b, Tensor::from_vec(db, n, k));
            }
            Op::Add(a, b) => {
                self.add_grad(*a, grad);
                self.add_grad(*b, grad);
            }
            Op::Sub(a, b) => {
                self.add_grad(*a, grad);
                let mut neg = self.arena.take_dirty(grad.len());
                for (o, &g) in neg.iter_mut().zip(grad.data()) {
                    *o = -g;
                }
                self.add_grad_owned(*b, Tensor::from_vec(neg, grad.rows(), grad.cols()));
            }
            Op::Mul(a, b) => {
                let (m, n) = (grad.rows(), grad.cols());
                let mut da = self.arena.take_dirty(m * n);
                let mut db = self.arena.take_dirty(m * n);
                {
                    let av = self.nodes[a.0].value.data();
                    let bv = self.nodes[b.0].value.data();
                    for ((o, &g), &y) in da.iter_mut().zip(grad.data()).zip(bv) {
                        *o = g * y;
                    }
                    for ((o, &g), &x) in db.iter_mut().zip(grad.data()).zip(av) {
                        *o = g * x;
                    }
                }
                self.add_grad_owned(*a, Tensor::from_vec(da, m, n));
                self.add_grad_owned(*b, Tensor::from_vec(db, m, n));
            }
            Op::AddRow(a, row) => {
                self.add_grad(*a, grad);
                let n = grad.cols();
                let mut rg = self.arena.take_zeroed(n);
                for r in 0..grad.rows() {
                    for (o, &g) in rg.iter_mut().zip(grad.row_slice(r)) {
                        *o += g;
                    }
                }
                self.add_grad_owned(*row, Tensor::from_vec(rg, 1, n));
            }
            Op::MulRow(a, row) => {
                let (m, n) = (grad.rows(), grad.cols());
                let mut da = self.arena.take_dirty(m * n);
                let mut rg = self.arena.take_zeroed(n);
                {
                    let rv = self.nodes[row.0].value.data();
                    let av = &self.nodes[a.0].value;
                    for r in 0..m {
                        for ((d, &g), &s) in da[r * n..(r + 1) * n]
                            .iter_mut()
                            .zip(grad.row_slice(r))
                            .zip(rv)
                        {
                            *d = g * s;
                        }
                        for ((o, &g), &a_) in
                            rg.iter_mut().zip(grad.row_slice(r)).zip(av.row_slice(r))
                        {
                            *o += g * a_;
                        }
                    }
                }
                self.add_grad_owned(*a, Tensor::from_vec(da, m, n));
                self.add_grad_owned(*row, Tensor::from_vec(rg, 1, n));
            }
            Op::Scale(a, c) => {
                let c = *c;
                let mut da = self.arena.take_dirty(grad.len());
                for (o, &g) in da.iter_mut().zip(grad.data()) {
                    *o = g * c;
                }
                self.add_grad_owned(*a, Tensor::from_vec(da, grad.rows(), grad.cols()));
            }
            Op::AddConst(a, _) => {
                self.add_grad(*a, grad);
            }
            Op::Relu(a) => {
                let da = self.bwd_zip(grad, a, |g, x| if x > 0.0 { g } else { 0.0 });
                self.add_grad_owned(*a, da);
            }
            Op::Gelu { a, t } => {
                // Reuses the forward-pass tanh cache `t`: the derivative
                // sees the identical tanh bits it would recompute.
                let mut da = self.arena.take_dirty(grad.len());
                {
                    let av = self.nodes[a.0].value.data();
                    for (((d, &g), &x), &th) in da.iter_mut().zip(grad.data()).zip(av).zip(t.iter())
                    {
                        *d = g * gelu_bwd_cached(x, th);
                    }
                }
                self.add_grad_owned(*a, Tensor::from_vec(da, grad.rows(), grad.cols()));
            }
            Op::Tanh(a) => {
                let da = self.bwd_zip_out(grad, i, |g, t| g * (1.0 - t * t));
                self.add_grad_owned(*a, da);
            }
            Op::Sigmoid(a) => {
                let da = self.bwd_zip_out(grad, i, |g, s| g * s * (1.0 - s));
                self.add_grad_owned(*a, da);
            }
            Op::Softmax(a) => {
                // dX_j = y_j * (g_j - Σ_k g_k y_k), row-wise.
                let (m, n) = (grad.rows(), grad.cols());
                let mut da = self.arena.take_dirty(m * n);
                {
                    let y = &self.nodes[i].value;
                    for r in 0..m {
                        let yr = y.row_slice(r);
                        let gr = grad.row_slice(r);
                        let dot: f32 = yr.iter().zip(gr).map(|(&yv, &gv)| yv * gv).sum();
                        for ((d, &yv), &gv) in da[r * n..(r + 1) * n].iter_mut().zip(yr).zip(gr) {
                            *d = yv * (gv - dot);
                        }
                    }
                }
                self.add_grad_owned(*a, Tensor::from_vec(da, m, n));
            }
            Op::LogSoftmax(a) => {
                // dX_j = g_j - softmax_j * Σ_k g_k, row-wise.
                let (m, n) = (grad.rows(), grad.cols());
                let mut da = self.arena.take_dirty(m * n);
                {
                    let y = &self.nodes[i].value;
                    for r in 0..m {
                        let yr = y.row_slice(r);
                        let gr = grad.row_slice(r);
                        let gsum: f32 = gr.iter().sum();
                        for ((d, &yv), &gv) in da[r * n..(r + 1) * n].iter_mut().zip(yr).zip(gr) {
                            *d = gv - yv.exp() * gsum;
                        }
                    }
                }
                self.add_grad_owned(*a, Tensor::from_vec(da, m, n));
            }
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps: _,
                cache,
            } => {
                let (m, nc) = (grad.rows(), grad.cols());
                let n = nc as f32;
                let mut dx = self.arena.take_dirty(m * nc);
                let mut dgamma = self.arena.take_zeroed(nc);
                let mut dbeta = self.arena.take_zeroed(nc);
                {
                    let xv = &self.nodes[x.0].value;
                    let gv = self.nodes[gamma.0].value.data();
                    for r in 0..m {
                        let (mean, inv_std) = cache[r];
                        let xr = xv.row_slice(r);
                        let gr = grad.row_slice(r);
                        // xhat_j = (x_j - mean) * inv_std
                        // dxhat_j = g_j * gamma_j
                        let mut sum_dxhat = 0.0f32;
                        let mut sum_dxhat_xhat = 0.0f32;
                        for j in 0..xr.len() {
                            let xhat = (xr[j] - mean) * inv_std;
                            let dxhat = gr[j] * gv[j];
                            sum_dxhat += dxhat;
                            sum_dxhat_xhat += dxhat * xhat;
                            dgamma[j] += gr[j] * xhat;
                            dbeta[j] += gr[j];
                        }
                        for j in 0..xr.len() {
                            let xhat = (xr[j] - mean) * inv_std;
                            let dxhat = gr[j] * gv[j];
                            dx[r * nc + j] =
                                inv_std * (dxhat - sum_dxhat / n - xhat * sum_dxhat_xhat / n);
                        }
                    }
                }
                self.add_grad_owned(*x, Tensor::from_vec(dx, m, nc));
                self.add_grad_owned(*gamma, Tensor::from_vec(dgamma, 1, nc));
                self.add_grad_owned(*beta, Tensor::from_vec(dbeta, 1, nc));
            }
            Op::Dropout { x, mask } => {
                let mut da = self.arena.take_dirty(grad.len());
                for ((o, &g), &mv) in da.iter_mut().zip(grad.data()).zip(mask) {
                    *o = g * mv;
                }
                self.add_grad_owned(*x, Tensor::from_vec(da, grad.rows(), grad.cols()));
            }
            Op::ConcatCols(parts) => {
                let mut off = 0;
                let rows = grad.rows();
                for &p in parts {
                    let w = self.nodes[p.0].value.cols();
                    let mut dp = self.arena.take_dirty(rows * w);
                    for r in 0..rows {
                        dp[r * w..(r + 1) * w].copy_from_slice(&grad.row_slice(r)[off..off + w]);
                    }
                    self.add_grad_owned(p, Tensor::from_vec(dp, rows, w));
                    off += w;
                }
            }
            Op::ConcatRows(parts) => {
                let mut off = 0;
                let cols = grad.cols();
                for &p in parts {
                    let h = self.nodes[p.0].value.rows();
                    let mut dp = self.arena.take_dirty(h * cols);
                    dp.copy_from_slice(&grad.data()[off * cols..(off + h) * cols]);
                    self.add_grad_owned(p, Tensor::from_vec(dp, h, cols));
                    off += h;
                }
            }
            Op::SliceCols { x, start, len } => {
                let (m, n) = self.shape(*x);
                let mut dx = self.arena.take_zeroed(m * n);
                for r in 0..m {
                    dx[r * n + start..r * n + start + len].copy_from_slice(grad.row_slice(r));
                }
                self.add_grad_owned(*x, Tensor::from_vec(dx, m, n));
            }
            Op::SliceRows { x, start, len } => {
                let (m, n) = self.shape(*x);
                let mut dx = self.arena.take_zeroed(m * n);
                dx[start * n..(start + len) * n].copy_from_slice(grad.data());
                self.add_grad_owned(*x, Tensor::from_vec(dx, m, n));
            }
            Op::MeanRows(x) => {
                let (rows, n) = self.shape(*x);
                let m = rows as f32;
                let mut dx = self.arena.take_dirty(rows * n);
                for r in 0..rows {
                    for (d, &g) in dx[r * n..(r + 1) * n].iter_mut().zip(grad.data()) {
                        *d = g / m;
                    }
                }
                self.add_grad_owned(*x, Tensor::from_vec(dx, rows, n));
            }
            Op::SumNodes(parts) => {
                for &p in parts {
                    self.add_grad(p, grad);
                }
            }
            Op::MulScalar { x, s } => {
                let sv = self.nodes[s.0].value.item();
                let mut dx = self.arena.take_dirty(grad.len());
                for (o, &g) in dx.iter_mut().zip(grad.data()) {
                    *o = g * sv;
                }
                self.add_grad_owned(*x, Tensor::from_vec(dx, grad.rows(), grad.cols()));
                let ds: f32 = grad
                    .data()
                    .iter()
                    .zip(self.nodes[x.0].value.data())
                    .map(|(&g, &xv)| g * xv)
                    .sum();
                let mut dsb = self.arena.take_dirty(1);
                dsb[0] = ds;
                self.add_grad_owned(*s, Tensor::from_vec(dsb, 1, 1));
            }
            Op::SumAll(x) => {
                let g = grad.item();
                let (m, n) = self.shape(*x);
                let mut dx = self.arena.take_dirty(m * n);
                dx.fill(g);
                self.add_grad_owned(*x, Tensor::from_vec(dx, m, n));
            }
            Op::Recip(x) => {
                // d(1/x)/dx = -1/x², and 1/x is this node's cached value.
                let dx = self.bwd_zip_out(grad, i, |g, inv| -g * inv * inv);
                self.add_grad_owned(*x, dx);
            }
            Op::Sqrt(x) => {
                // d√x/dx = 1/(2√x), and √x is this node's cached value.
                let dx = self.bwd_zip_out(grad, i, |g, s| g * 0.5 / s);
                self.add_grad_owned(*x, dx);
            }
            Op::CrossEntropy {
                logits,
                targets,
                probs,
            } => {
                let g = grad.item();
                let (m, c) = self.shape(*logits);
                let scale = g / m as f32;
                let mut dl = self.arena.take_dirty(m * c);
                for ((o, &p), &t) in dl.iter_mut().zip(probs.iter()).zip(targets.iter()) {
                    *o = (p - t) * scale;
                }
                self.add_grad_owned(*logits, Tensor::from_vec(dl, m, c));
            }
        }
        self.nodes[i].op = op;
    }

    /// `f(grad, input_value)` elementwise into an arena tensor.
    fn bwd_zip(&mut self, grad: &Tensor, a: &NodeId, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let mut out = self.arena.take_dirty(grad.len());
        for ((o, &g), &x) in out
            .iter_mut()
            .zip(grad.data())
            .zip(self.nodes[a.0].value.data())
        {
            *o = f(g, x);
        }
        Tensor::from_vec(out, grad.rows(), grad.cols())
    }

    /// `f(grad, output_value_of_node_i)` elementwise into an arena tensor.
    fn bwd_zip_out(&mut self, grad: &Tensor, i: usize, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let mut out = self.arena.take_dirty(grad.len());
        for ((o, &g), &y) in out
            .iter_mut()
            .zip(grad.data())
            .zip(self.nodes[i].value.data())
        {
            *o = f(g, y);
        }
        Tensor::from_vec(out, grad.rows(), grad.cols())
    }
}

// ---------------------------------------------------------------------------
// Global tape pool
// ---------------------------------------------------------------------------

/// Spare reset tapes kept globally (bounded so transient fan-outs cannot pin
/// unbounded arena memory).
const MAX_POOLED_TAPES: usize = 16;

/// Total arena floats the pooled tapes may pin together (128 MB). Each tape
/// is already capped individually ([`ARENA_CAP_FLOATS`]); this bounds the
/// pool as a whole so a burst of large-graph tapes cannot park
/// `MAX_POOLED_TAPES` worst-case arenas at once.
const MAX_POOLED_RETAINED_FLOATS: usize = 32 << 20;

static TAPE_POOL: Mutex<Vec<Tape>> = Mutex::new(Vec::new());

/// Tapes dropped (not pooled) by [`recycle_tape`] because the pool was full
/// or its retained-floats budget was exhausted.
static TAPE_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// Whether a tape retaining `incoming` floats must be dropped rather than
/// pooled, given the pool's current occupancy.
fn tape_should_evict(pool_len: usize, pooled_retained: usize, incoming: usize) -> bool {
    pool_len >= MAX_POOLED_TAPES || pooled_retained + incoming > MAX_POOLED_RETAINED_FLOATS
}

/// Take a tape from the global reuse pool (or a fresh one). Pair with
/// [`recycle_tape`]; prefer [`with_pooled_tape`] when the tape does not need
/// to outlive a scope.
pub fn take_pooled_tape() -> Tape {
    TAPE_POOL.lock().unwrap().pop().unwrap_or_default()
}

/// Reset `tape` (retaining its buffers) and return it to the global pool.
/// Tapes beyond the pool's size or retained-floats budget are dropped and
/// counted in [`tape_eviction_count`].
pub fn recycle_tape(mut tape: Tape) {
    tape.reset();
    let mut pool = TAPE_POOL.lock().unwrap();
    let pooled_retained: usize = pool.iter().map(|t| t.arena.retained).sum();
    if tape_should_evict(pool.len(), pooled_retained, tape.arena.retained) {
        TAPE_EVICTIONS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    pool.push(tape);
}

/// Cumulative count of tapes [`recycle_tape`] dropped instead of pooling
/// (process lifetime). Exposed as the `arena.tape_evictions` gauge.
pub fn tape_eviction_count() -> u64 {
    TAPE_EVICTIONS.load(Ordering::Relaxed)
}

/// Run `f` with a tape from the global pool, recycling it afterwards. The
/// warm arena makes repeated same-shape graphs allocation-free; results are
/// bit-identical to using a fresh [`Tape::new`].
pub fn with_pooled_tape<R>(f: impl FnOnce(&mut Tape) -> R) -> R {
    let mut tape = take_pooled_tape();
    let out = f(&mut tape);
    recycle_tape(tape);
    out
}

/// Snapshot of the global tape pool for the telemetry plane:
/// `(pooled_tapes, retained_floats)` — how many reset tapes are parked and
/// how many arena floats they pin in total. Read-only; never blocks writers
/// beyond one short lock.
pub fn pooled_tape_stats() -> (usize, usize) {
    let pool = TAPE_POOL.lock().unwrap();
    let retained: usize = pool.iter().map(|t| t.arena.retained).sum();
    (pool.len(), retained)
}

/// Row softmax into `out`; returns the `(max, sum)` statistics so callers
/// (cross-entropy) can derive the log-sum-exp without a second pass.
fn softmax_row(row: &[f32], mask: Option<&[f32]>, out: &mut [f32]) -> (f32, f32) {
    let mut max = f32::NEG_INFINITY;
    for (j, &v) in row.iter().enumerate() {
        let m = mask.map_or(0.0, |mm| mm[j]);
        max = max.max(v + m);
    }
    let mut sum = 0.0f32;
    for (j, &v) in row.iter().enumerate() {
        let m = mask.map_or(0.0, |mm| mm[j]);
        let e = (v + m - max).exp();
        out[j] = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
    (max, sum)
}

/// The `tanh` factor of the GELU tanh approximation — computed once in the
/// forward pass, cached on the node, and reused by the backward rule.
fn gelu_tanh(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    (C * (x + 0.044_715 * x * x * x)).tanh()
}

/// GELU derivative given the cached `t = gelu_tanh(x)`. With the identical
/// `t` bits, this equals recomputing the tanh from scratch.
fn gelu_bwd_cached(x: f32, t: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let dt = (1.0 - t * t) * C * (1.0 + 3.0 * 0.044_715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * dt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Initializer;
    use rotom_rng::rngs::StdRng;
    use rotom_rng::SeedableRng;

    #[test]
    fn tape_eviction_policy_bounds_count_and_retention() {
        assert!(!tape_should_evict(0, 0, 0));
        assert!(!tape_should_evict(
            MAX_POOLED_TAPES - 1,
            0,
            ARENA_CAP_FLOATS
        ));
        assert!(tape_should_evict(MAX_POOLED_TAPES, 0, 0));
        assert!(tape_should_evict(1, MAX_POOLED_RETAINED_FLOATS, 1));
        assert!(!tape_should_evict(1, MAX_POOLED_RETAINED_FLOATS - 8, 8));
    }

    #[test]
    fn tape_evictions_are_counted() {
        // Overfill the global pool; once it is at capacity, further
        // recycles must be dropped and counted. Bounded loop instead of a
        // fixed count: concurrent tests may pop tapes between our pushes.
        let before = tape_eviction_count();
        for _ in 0..1000 {
            recycle_tape(Tape::new());
            if tape_eviction_count() > before {
                return;
            }
        }
        panic!("recycling 1000 tapes never evicted (pool cap {MAX_POOLED_TAPES})");
    }

    #[test]
    fn matmul_forward_backward() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let w = store.alloc("w", 2, 2, Initializer::Uniform(1.0), &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![1.0, 2.0], 1, 2));
        let wp = tape.param(w, &store);
        let y = tape.matmul(x, wp);
        let loss = tape.sum_all(y);
        tape.backward(loss, &mut store);
        // d loss / d W = x^T * ones = [[1,1],[2,2]]
        assert_eq!(store.grad(w).data(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn cross_entropy_matches_log_softmax_nll() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let logits = tape.input(Tensor::from_vec(vec![0.3, -1.2, 2.0], 1, 3));
        let ce = tape.cross_entropy(logits, &[0.0, 0.0, 1.0]);
        let ls = tape.log_softmax(logits);
        let expected = -tape.value(ls).at(0, 2);
        assert!((tape.value(ce).item() - expected).abs() < 1e-5);
        tape.backward(ce, &mut store);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], 2, 3));
        let s = tape.softmax(x);
        for r in 0..2 {
            let sum: f32 = tape.value(s).row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn masked_softmax_zeroes_hidden_positions() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![1.0, 2.0, 3.0], 1, 3));
        let mask = Tensor::from_vec(vec![0.0, -1e9, 0.0], 1, 3);
        let s = tape.masked_softmax(x, Some(&mask));
        assert!(tape.value(s).at(0, 1) < 1e-6);
        let sum: f32 = tape.value(s).row_slice(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    /// Numerical gradient check across a composite graph touching most ops.
    #[test]
    fn gradcheck_composite() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut store = ParamStore::new();
        let w1 = store.alloc("w1", 3, 4, Initializer::Uniform(0.6), &mut rng);
        let b1 = store.alloc("b1", 1, 4, Initializer::Uniform(0.3), &mut rng);
        let gamma = store.alloc("g", 1, 4, Initializer::Ones, &mut rng);
        let beta = store.alloc("b", 1, 4, Initializer::Zeros, &mut rng);
        let w2 = store.alloc("w2", 4, 3, Initializer::Uniform(0.6), &mut rng);

        let xin = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.1, 0.9, -0.2], 2, 3);
        let targets = vec![1.0, 0.0, 0.0, 0.0, 0.5, 0.5];

        let run = |store: &mut ParamStore, backward: bool| -> f32 {
            let mut tape = Tape::new();
            let x = tape.input(xin.clone());
            let w1n = tape.param(w1, store);
            let b1n = tape.param(b1, store);
            let gn = tape.param(gamma, store);
            let bn = tape.param(beta, store);
            let w2n = tape.param(w2, store);
            let h = tape.matmul(x, w1n);
            let h = tape.add_row(h, b1n);
            let h = tape.gelu(h);
            let h = tape.layer_norm(h, gn, bn, 1e-5);
            let logits = tape.matmul(h, w2n);
            let loss = tape.cross_entropy(logits, &targets);
            let lv = tape.value(loss).item();
            if backward {
                store.zero_grad();
                tape.backward(loss, store);
            }
            lv
        };

        let _ = run(&mut store, true);
        let analytic = store.flat_grads();
        let theta = store.flat_values();
        let eps = 1e-3f32;
        let mut checked = 0;
        for k in (0..theta.len()).step_by(7) {
            let mut tp = theta.clone();
            tp[k] += eps;
            store.set_flat(&tp);
            let lp = run(&mut store, false);
            tp[k] -= 2.0 * eps;
            store.set_flat(&tp);
            let lm = run(&mut store, false);
            store.set_flat(&theta);
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic[k];
            let denom = a.abs().max(numeric.abs()).max(1e-3);
            assert!(
                ((a - numeric) / denom).abs() < 0.05,
                "grad mismatch at {k}: analytic {a} vs numeric {numeric}"
            );
            checked += 1;
        }
        assert!(checked > 3);
    }

    /// Generic finite-difference check for a graph built over a single
    /// parameter tensor.
    fn gradcheck_param(rows: usize, cols: usize, build: impl Fn(&mut Tape, NodeId) -> NodeId) {
        let mut rng = StdRng::seed_from_u64(77);
        let mut store = ParamStore::new();
        let w = store.alloc("w", rows, cols, Initializer::Uniform(0.7), &mut rng);
        let run = |store: &mut ParamStore, backward: bool| -> f32 {
            let mut tape = Tape::new();
            let wn = tape.param(w, store);
            let out = build(&mut tape, wn);
            let loss = if tape.value(out).len() == 1 {
                out
            } else {
                tape.sum_all(out)
            };
            let v = tape.value(loss).item();
            if backward {
                store.zero_grad();
                tape.backward(loss, store);
            }
            v
        };
        let _ = run(&mut store, true);
        let analytic = store.flat_grads();
        let theta = store.flat_values();
        let eps = 1e-3f32;
        for k in 0..theta.len() {
            let mut tp = theta.clone();
            tp[k] += eps;
            store.set_flat(&tp);
            let lp = run(&mut store, false);
            tp[k] -= 2.0 * eps;
            store.set_flat(&tp);
            let lm = run(&mut store, false);
            store.set_flat(&theta);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic[k] - numeric).abs() < 0.02 + 0.05 * numeric.abs(),
                "grad mismatch at {k}: {} vs {numeric}",
                analytic[k]
            );
        }
    }

    #[test]
    fn gradcheck_mul_row() {
        gradcheck_param(1, 4, |t, w| {
            let x = t.input(Tensor::from_vec(
                vec![0.3, -0.7, 1.2, 0.5, 0.1, -0.4, 0.8, -1.1],
                2,
                4,
            ));
            t.mul_row(x, w)
        });
    }

    #[test]
    fn gradcheck_concat_and_slice() {
        gradcheck_param(2, 3, |t, w| {
            let a = t.slice_cols(w, 0, 2);
            let b = t.slice_cols(w, 1, 2);
            let c = t.concat_cols(&[a, b]);
            let r = t.slice_rows(c, 1, 1);
            t.tanh(r)
        });
    }

    #[test]
    fn gradcheck_mean_rows_and_sigmoid() {
        gradcheck_param(3, 2, |t, w| {
            let m = t.mean_rows(w);
            t.sigmoid(m)
        });
    }

    #[test]
    fn gradcheck_log_softmax() {
        gradcheck_param(2, 3, |t, w| {
            let ls = t.log_softmax(w);
            let picked = t.slice_cols(ls, 1, 1);
            t.sum_all(picked)
        });
    }

    #[test]
    fn gradcheck_softmax_through_matmul() {
        gradcheck_param(2, 2, |t, w| {
            let s = t.softmax(w);
            let y = t.matmul(s, w);
            t.relu(y)
        });
    }

    /// Pins the cross-entropy backward rule to the softmax probabilities
    /// cached by the single-pass forward (soft targets exercise every prob).
    #[test]
    fn gradcheck_cross_entropy_soft_targets() {
        gradcheck_param(3, 4, |t, w| {
            let x = t.input(Tensor::from_vec(
                vec![
                    0.4, -0.6, 1.1, 0.2, -0.9, 0.7, 0.3, -0.2, 0.8, -1.0, 0.5, 0.6,
                ],
                3,
                4,
            ));
            let logits = t.mul(x, w);
            t.cross_entropy(
                logits,
                &[
                    0.7, 0.1, 0.1, 0.1, 0.25, 0.25, 0.25, 0.25, 0.0, 0.0, 0.5, 0.5,
                ],
            )
        });
    }

    #[test]
    fn gradcheck_sub_mul_chain() {
        gradcheck_param(1, 3, |t, w| {
            let a = t.scale(w, 2.0);
            let b = t.add_const(w, 0.3);
            let d = t.sub(a, b);
            let m = t.mul(d, w);
            t.gelu(m)
        });
    }

    #[test]
    fn gradcheck_concat_rows() {
        gradcheck_param(2, 2, |t, w| {
            let a = t.relu(w);
            let b = t.tanh(w);
            t.concat_rows(&[a, b])
        });
    }

    #[test]
    fn dropout_eval_mode_is_identity() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![1.0, 2.0], 1, 2));
        let y = tape.dropout(x, 0.5, None);
        assert_eq!(x, y);
    }

    #[test]
    fn dropout_train_scales_kept_values() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![2.0, 4.0], 1, 2));
        let y = tape.dropout(x, 0.5, Some(vec![true, false]));
        assert_eq!(tape.value(y).data(), &[4.0, 0.0]);
        let loss = tape.sum_all(y);
        tape.backward(loss, &mut store);
        assert_eq!(tape.grad(x).data(), &[2.0, 0.0]);
    }

    #[test]
    fn mul_scalar_gradients_flow_to_both() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![2.0, 3.0], 1, 2));
        let s = tape.input(Tensor::scalar(4.0));
        let y = tape.mul_scalar(x, s);
        let loss = tape.sum_all(y);
        tape.backward(loss, &mut store);
        assert_eq!(tape.grad(x).data(), &[4.0, 4.0]);
        assert_eq!(tape.grad(s).item(), 5.0);
    }

    #[test]
    fn recip_value_and_gradient() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![2.0, 4.0], 1, 2));
        let y = tape.recip(x);
        assert_eq!(tape.value(y).data(), &[0.5, 0.25]);
        let loss = tape.sum_all(y);
        tape.backward(loss, &mut store);
        // d(1/x)/dx = -1/x^2
        assert_eq!(tape.grad(x).data(), &[-0.25, -0.0625]);
    }

    #[test]
    fn embedding_scatter_adds() {
        let mut store = ParamStore::new();
        let table = store.push("emb", Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2));
        let mut tape = Tape::new();
        let e = tape.embedding(table, &store, &[0, 1, 0]);
        assert_eq!(tape.value(e).rows(), 3);
        let loss = tape.sum_all(e);
        tape.backward(loss, &mut store);
        // Row 0 gathered twice -> grad 2, row 1 once -> grad 1.
        assert_eq!(store.grad(table).data(), &[2.0, 2.0, 1.0, 1.0]);
    }

    /// A reused (reset) tape must reproduce a fresh tape's loss and
    /// gradients bit-for-bit — the arena is an allocation strategy, not a
    /// numerics change.
    #[test]
    fn reused_tape_is_bit_identical_to_fresh() {
        let mut rng = StdRng::seed_from_u64(123);
        let mut store = ParamStore::new();
        let w1 = store.alloc("w1", 8, 16, Initializer::Uniform(0.5), &mut rng);
        let w2 = store.alloc("w2", 16, 4, Initializer::Uniform(0.5), &mut rng);
        let xin: Vec<f32> = (0..48).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.1).collect();
        let targets = {
            let mut t = vec![0.0f32; 6 * 4];
            for r in 0..6 {
                t[r * 4 + r % 4] = 1.0;
            }
            t
        };
        let run = |tape: &mut Tape, store: &mut ParamStore| -> (f32, Vec<f32>) {
            let x = tape.input(Tensor::from_vec(xin.clone(), 6, 8));
            let w1n = tape.param(w1, store);
            let w2n = tape.param(w2, store);
            let h = tape.matmul(x, w1n);
            let h = tape.relu(h);
            let logits = tape.matmul(h, w2n);
            let loss = tape.cross_entropy(logits, &targets);
            let lv = tape.value(loss).item();
            store.zero_grad();
            tape.backward(loss, store);
            (lv, store.flat_grads())
        };
        let mut fresh = Tape::new();
        let (l0, g0) = run(&mut fresh, &mut store);
        let mut reused = Tape::new();
        for _ in 0..3 {
            let (l1, g1) = run(&mut reused, &mut store);
            assert_eq!(l0.to_bits(), l1.to_bits(), "loss drifted across reuse");
            assert_eq!(g0, g1, "gradients drifted across reuse");
            let nodes_before = reused.len();
            reused.reset();
            assert!(reused.is_empty());
            assert!(nodes_before > 0);
        }
        // And through the global pool helpers.
        let (l2, g2) = with_pooled_tape(|t| run(t, &mut store));
        assert_eq!(l0.to_bits(), l2.to_bits());
        assert_eq!(g0, g2);
    }
}
