//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a DAG of tensor operations as it is built; nodes are
//! appended in topological order, so a single reverse sweep computes all
//! gradients. Parameters live outside the tape in a
//! [`ParamStore`](crate::params::ParamStore): `param` nodes clone the current
//! value at construction time (so finite-difference probes that mutate the
//! store cannot corrupt an in-flight graph) and `backward` accumulates
//! gradients back into the store.
//!
//! The op set is deliberately small — exactly what a Transformer
//! encoder/decoder, the Rotom filtering/weighting models, and the baseline
//! RNNs need.

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

/// Additive attention mask: `0.0` for visible positions, `-1e9` for hidden.
pub type AttnMask = Tensor;

// Some op payloads (softmax mask, layer-norm eps) are only read during the
// forward computation that creates the node; they are kept in the enum for
// debuggability and future introspection.
#[allow(dead_code)]
enum Op {
    /// Leaf holding a constant (input) value.
    Input,
    /// Leaf holding a snapshot of a parameter value.
    Param(ParamId),
    /// Row-gather from an embedding table parameter.
    Embedding {
        table: ParamId,
        indices: Vec<usize>,
    },
    /// `a (m x k) * b (k x n)`.
    Matmul(NodeId, NodeId),
    /// `a (m x k) * b^T (n x k)`.
    MatmulTb(NodeId, NodeId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    /// Broadcast add of a `1 x n` row to every row of an `m x n` matrix.
    AddRow(NodeId, NodeId),
    /// Broadcast multiply of a `1 x n` row into every row of an `m x n` matrix.
    MulRow(NodeId, NodeId),
    Scale(NodeId, f32),
    AddConst(NodeId, f32),
    Relu(NodeId),
    Gelu(NodeId),
    Tanh(NodeId),
    Sigmoid(NodeId),
    /// Row-wise softmax with an optional additive mask.
    Softmax(NodeId, Option<AttnMask>),
    /// Row-wise log-softmax.
    LogSoftmax(NodeId),
    /// Row-wise layer normalization; `gamma`/`beta` are `1 x n` nodes.
    LayerNorm {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        eps: f32,
        /// Cached per-row (mean, inv_std) from the forward pass.
        cache: Vec<(f32, f32)>,
    },
    /// Inverted dropout; `mask` holds `0` or `1/(1-p)` per element.
    Dropout {
        x: NodeId,
        mask: Vec<f32>,
    },
    ConcatCols(Vec<NodeId>),
    ConcatRows(Vec<NodeId>),
    SliceCols {
        x: NodeId,
        start: usize,
        len: usize,
    },
    SliceRows {
        x: NodeId,
        start: usize,
        len: usize,
    },
    /// Mean over rows: `m x n -> 1 x n`.
    MeanRows(NodeId),
    /// Sum of equal-shaped nodes.
    SumNodes(Vec<NodeId>),
    /// Multiply a tensor by a `1x1` scalar node.
    MulScalar {
        x: NodeId,
        s: NodeId,
    },
    /// Mean cross-entropy over rows of logits against soft targets.
    CrossEntropy {
        logits: NodeId,
        /// Row-major `m x C` soft target distribution.
        targets: Vec<f32>,
        /// Cached softmax of logits.
        probs: Vec<f32>,
    },
    /// Sum of all elements: `m x n -> 1 x 1`.
    SumAll(NodeId),
    /// Elementwise reciprocal `1 / x`.
    Recip(NodeId),
    /// Elementwise square root (inputs must be positive).
    Sqrt(NodeId),
}

struct Node {
    op: Op,
    value: Tensor,
    grad: Option<Tensor>,
}

/// A gradient tape. Create one per forward pass (typically per batch).
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Create an empty tape.
    pub fn new() -> Self {
        Self {
            nodes: Vec::with_capacity(256),
        }
    }

    fn push(&mut self, op: Op, value: Tensor) -> NodeId {
        self.nodes.push(Node {
            op,
            value,
            grad: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Gradient of a node after [`backward`](Self::backward); zeros if the
    /// node did not participate.
    pub fn grad(&self, id: NodeId) -> Tensor {
        match &self.nodes[id.0].grad {
            Some(g) => g.clone(),
            None => Tensor::zeros(self.nodes[id.0].value.rows(), self.nodes[id.0].value.cols()),
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Constant input leaf.
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(Op::Input, value)
    }

    /// Parameter leaf: snapshots the current value from the store.
    pub fn param(&mut self, id: ParamId, store: &ParamStore) -> NodeId {
        self.push(Op::Param(id), store.value(id).clone())
    }

    /// Embedding lookup: gathers `indices` rows of the table parameter into
    /// an `indices.len() x d` matrix.
    pub fn embedding(&mut self, table: ParamId, store: &ParamStore, indices: &[usize]) -> NodeId {
        let t = store.value(table);
        let d = t.cols();
        let mut out = Vec::with_capacity(indices.len() * d);
        for &i in indices {
            out.extend_from_slice(t.row_slice(i));
        }
        let value = Tensor::from_vec(out, indices.len(), d);
        self.push(
            Op::Embedding {
                table,
                indices: indices.to_vec(),
            },
            value,
        )
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// `a * b` (matrix product).
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::Matmul(a, b), v)
    }

    /// `a * b^T` without materializing the transpose.
    pub fn matmul_tb(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul_transpose_b(self.value(b));
        self.push(Op::MatmulTb(a, b), v)
    }

    /// Elementwise `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    /// Elementwise `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    /// Elementwise `a ⊙ b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        self.push(Op::Mul(a, b), v)
    }

    /// Add a `1 x n` row vector node to every row of an `m x n` node.
    pub fn add_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let m = self.value(a);
        let r = self.value(row);
        assert_eq!(r.rows(), 1, "add_row expects a 1 x n row vector");
        assert_eq!(m.cols(), r.cols(), "add_row width mismatch");
        let mut out = m.clone();
        for i in 0..out.rows() {
            let dst = out.row_slice_mut(i);
            for (d, &s) in dst.iter_mut().zip(r.data()) {
                *d += s;
            }
        }
        self.push(Op::AddRow(a, row), out)
    }

    /// Multiply every row of an `m x n` node by a `1 x n` row vector node.
    pub fn mul_row(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let m = self.value(a);
        let r = self.value(row);
        assert_eq!(r.rows(), 1, "mul_row expects a 1 x n row vector");
        assert_eq!(m.cols(), r.cols(), "mul_row width mismatch");
        let mut out = m.clone();
        for i in 0..out.rows() {
            let dst = out.row_slice_mut(i);
            for (d, &s) in dst.iter_mut().zip(r.data()) {
                *d *= s;
            }
        }
        self.push(Op::MulRow(a, row), out)
    }

    /// `a * c` for a compile-time constant `c`.
    pub fn scale(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.value(a).map(|x| x * c);
        self.push(Op::Scale(a, c), v)
    }

    /// `a + c` elementwise for a constant `c`.
    pub fn add_const(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.value(a).map(|x| x + c);
        self.push(Op::AddConst(a, c), v)
    }

    // ------------------------------------------------------------------
    // Nonlinearities
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// GELU (tanh approximation).
    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(gelu_fwd);
        self.push(Op::Gelu(a), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v)
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: NodeId) -> NodeId {
        self.masked_softmax(a, None)
    }

    /// Row-wise softmax with an optional additive mask (same shape as `a`).
    pub fn masked_softmax(&mut self, a: NodeId, mask: Option<AttnMask>) -> NodeId {
        let x = self.value(a);
        if let Some(m) = &mask {
            assert_eq!(
                (m.rows(), m.cols()),
                (x.rows(), x.cols()),
                "mask shape mismatch"
            );
        }
        let mut out = Tensor::zeros(x.rows(), x.cols());
        for i in 0..x.rows() {
            let row = x.row_slice(i);
            let mrow = mask.as_ref().map(|m| m.row_slice(i));
            softmax_row(row, mrow, out.row_slice_mut(i));
        }
        self.push(Op::Softmax(a, mask), out)
    }

    /// Row-wise log-softmax.
    pub fn log_softmax(&mut self, a: NodeId) -> NodeId {
        let x = self.value(a);
        let mut out = Tensor::zeros(x.rows(), x.cols());
        for i in 0..x.rows() {
            let row = x.row_slice(i);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
            for (o, &v) in out.row_slice_mut(i).iter_mut().zip(row) {
                *o = v - lse;
            }
        }
        self.push(Op::LogSoftmax(a), out)
    }

    /// Row-wise layer normalization with learned `gamma`/`beta` row nodes.
    pub fn layer_norm(&mut self, x: NodeId, gamma: NodeId, beta: NodeId, eps: f32) -> NodeId {
        let xv = self.value(x);
        let g = self.value(gamma);
        let b = self.value(beta);
        assert_eq!(g.rows(), 1);
        assert_eq!(b.rows(), 1);
        assert_eq!(g.cols(), xv.cols());
        let n = xv.cols() as f32;
        let mut out = Tensor::zeros(xv.rows(), xv.cols());
        let mut cache = Vec::with_capacity(xv.rows());
        for i in 0..xv.rows() {
            let row = xv.row_slice(i);
            let mean = row.iter().sum::<f32>() / n;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n;
            let inv_std = 1.0 / (var + eps).sqrt();
            cache.push((mean, inv_std));
            for ((o, &v), (&gg, &bb)) in out
                .row_slice_mut(i)
                .iter_mut()
                .zip(row)
                .zip(g.data().iter().zip(b.data()))
            {
                *o = (v - mean) * inv_std * gg + bb;
            }
        }
        self.push(
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps,
                cache,
            },
            out,
        )
    }

    /// Inverted dropout with keep-probability `1 - p`. `mask_bits` must have
    /// one Bernoulli(1-p) draw per element; pass `None` to disable (eval).
    pub fn dropout(&mut self, x: NodeId, p: f32, mask_bits: Option<Vec<bool>>) -> NodeId {
        match mask_bits {
            None => x,
            Some(bits) => {
                let xv = self.value(x);
                assert_eq!(bits.len(), xv.len(), "dropout mask length mismatch");
                let keep = 1.0 - p;
                let mask: Vec<f32> = bits
                    .iter()
                    .map(|&b| if b { 1.0 / keep } else { 0.0 })
                    .collect();
                let data: Vec<f32> = xv.data().iter().zip(&mask).map(|(&v, &m)| v * m).collect();
                let value = Tensor::from_vec(data, xv.rows(), xv.cols());
                self.push(Op::Dropout { x, mask }, value)
            }
        }
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Concatenate nodes along columns (all must share the row count).
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty());
        let rows = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let mut out = Tensor::zeros(rows, total);
        let mut off = 0;
        for &p in parts {
            let v = self.value(p);
            assert_eq!(v.rows(), rows, "concat_cols row mismatch");
            for r in 0..rows {
                out.row_slice_mut(r)[off..off + v.cols()].copy_from_slice(v.row_slice(r));
            }
            off += v.cols();
        }
        self.push(Op::ConcatCols(parts.to_vec()), out)
    }

    /// Concatenate nodes along rows (all must share the column count).
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty());
        let cols = self.value(parts[0]).cols();
        let total: usize = parts.iter().map(|&p| self.value(p).rows()).sum();
        let mut data = Vec::with_capacity(total * cols);
        for &p in parts {
            let v = self.value(p);
            assert_eq!(v.cols(), cols, "concat_rows col mismatch");
            data.extend_from_slice(v.data());
        }
        self.push(
            Op::ConcatRows(parts.to_vec()),
            Tensor::from_vec(data, total, cols),
        )
    }

    /// Take columns `start..start+len`.
    pub fn slice_cols(&mut self, x: NodeId, start: usize, len: usize) -> NodeId {
        let v = self.value(x);
        assert!(start + len <= v.cols(), "slice_cols out of bounds");
        let mut out = Tensor::zeros(v.rows(), len);
        for r in 0..v.rows() {
            out.row_slice_mut(r)
                .copy_from_slice(&v.row_slice(r)[start..start + len]);
        }
        self.push(Op::SliceCols { x, start, len }, out)
    }

    /// Take rows `start..start+len`.
    pub fn slice_rows(&mut self, x: NodeId, start: usize, len: usize) -> NodeId {
        let v = self.value(x);
        assert!(start + len <= v.rows(), "slice_rows out of bounds");
        let mut data = Vec::with_capacity(len * v.cols());
        for r in start..start + len {
            data.extend_from_slice(v.row_slice(r));
        }
        self.push(
            Op::SliceRows { x, start, len },
            Tensor::from_vec(data, len, v.cols()),
        )
    }

    /// Mean over rows: `m x n -> 1 x n`.
    pub fn mean_rows(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x);
        let m = v.rows() as f32;
        let mut out = vec![0.0f32; v.cols()];
        for r in 0..v.rows() {
            for (o, &s) in out.iter_mut().zip(v.row_slice(r)) {
                *o += s / m;
            }
        }
        self.push(Op::MeanRows(x), Tensor::row(out))
    }

    /// Elementwise sum of equal-shaped nodes.
    pub fn sum_nodes(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty());
        let mut out = self.value(parts[0]).clone();
        for &p in &parts[1..] {
            out.axpy(1.0, self.value(p));
        }
        self.push(Op::SumNodes(parts.to_vec()), out)
    }

    /// Mean of equal-shaped nodes (convenience over sum + scale).
    pub fn mean_nodes(&mut self, parts: &[NodeId]) -> NodeId {
        let s = self.sum_nodes(parts);
        self.scale(s, 1.0 / parts.len() as f32)
    }

    /// Multiply tensor `x` by scalar node `s` (`1x1`).
    pub fn mul_scalar(&mut self, x: NodeId, s: NodeId) -> NodeId {
        assert_eq!(self.value(s).len(), 1, "mul_scalar expects 1x1 scalar node");
        let sv = self.value(s).item();
        let v = self.value(x).map(|a| a * sv);
        self.push(Op::MulScalar { x, s }, v)
    }

    /// Sum of all elements as a `1x1` node.
    pub fn sum_all(&mut self, x: NodeId) -> NodeId {
        let s = self.value(x).sum();
        self.push(Op::SumAll(x), Tensor::scalar(s))
    }

    /// Elementwise reciprocal `1 / x` (used for in-graph weight
    /// normalization; inputs must be nonzero).
    pub fn recip(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(|a| 1.0 / a);
        self.push(Op::Recip(x), v)
    }

    /// Elementwise square root (used for in-graph L2 norms, e.g. the
    /// `‖p_M(x̂) − y‖₂` weighting term; inputs must be positive — the
    /// derivative diverges at zero).
    pub fn sqrt(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f32::sqrt);
        self.push(Op::Sqrt(x), v)
    }

    /// Mean cross-entropy over logit rows against (soft) target rows.
    ///
    /// `targets` is row-major `m x C` and each row should be a probability
    /// distribution (one-hot for hard labels).
    pub fn cross_entropy(&mut self, logits: NodeId, targets: &[f32]) -> NodeId {
        let lv = self.value(logits);
        let (m, c) = (lv.rows(), lv.cols());
        assert_eq!(targets.len(), m * c, "target shape mismatch");
        let mut probs = vec![0.0f32; m * c];
        let mut loss = 0.0f64;
        for i in 0..m {
            let row = lv.row_slice(i);
            softmax_row(row, None, &mut probs[i * c..(i + 1) * c]);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
            for j in 0..c {
                let t = targets[i * c + j];
                if t != 0.0 {
                    loss -= (t * (row[j] - lse)) as f64;
                }
            }
        }
        let value = Tensor::scalar((loss / m as f64) as f32);
        self.push(
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                probs,
            },
            value,
        )
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Reverse sweep from `loss` (must be `1x1`), accumulating parameter
    /// gradients into `store`. Gradients add onto whatever is already in the
    /// store, so call [`ParamStore::zero_grad`] first for a fresh pass.
    pub fn backward(&mut self, loss: NodeId, store: &mut ParamStore) {
        assert_eq!(self.value(loss).len(), 1, "backward target must be scalar");
        self.nodes[loss.0].grad = Some(Tensor::scalar(1.0));
        for i in (0..=loss.0).rev() {
            let grad = match self.nodes[i].grad.take() {
                Some(g) => g,
                None => continue,
            };
            self.accumulate(i, &grad, store);
            // Leaf gradients are kept readable after the sweep.
            self.nodes[i].grad = Some(grad);
        }
    }

    fn add_grad(&mut self, id: NodeId, delta: &Tensor) {
        let node = &mut self.nodes[id.0];
        match &mut node.grad {
            Some(g) => g.axpy(1.0, delta),
            None => node.grad = Some(delta.clone()),
        }
    }

    fn accumulate(&mut self, i: usize, grad: &Tensor, store: &mut ParamStore) {
        // Take op temporarily to appease the borrow checker; values of other
        // nodes are read through `self.value`.
        let op = std::mem::replace(&mut self.nodes[i].op, Op::Input);
        match &op {
            Op::Input => {}
            Op::Param(pid) => {
                store.grad_mut(*pid).axpy(1.0, grad);
            }
            Op::Embedding { table, indices } => {
                let g = store.grad_mut(*table);
                for (r, &idx) in indices.iter().enumerate() {
                    let src = grad.row_slice(r);
                    for (d, &s) in g.row_slice_mut(idx).iter_mut().zip(src) {
                        *d += s;
                    }
                }
            }
            Op::Matmul(a, b) => {
                // dA = dC * B^T ; dB = A^T * dC
                let da = grad.matmul_transpose_b(self.value(*b));
                let db = self.value(*a).matmul_transpose_a(grad);
                self.add_grad(*a, &da);
                self.add_grad(*b, &db);
            }
            Op::MatmulTb(a, b) => {
                // C = A * B^T ; dA = dC * B ; dB = dC^T * A
                let da = grad.matmul(self.value(*b));
                let db = grad.matmul_transpose_a(self.value(*a));
                self.add_grad(*a, &da);
                self.add_grad(*b, &db);
            }
            Op::Add(a, b) => {
                self.add_grad(*a, grad);
                self.add_grad(*b, grad);
            }
            Op::Sub(a, b) => {
                self.add_grad(*a, grad);
                let neg = grad.map(|v| -v);
                self.add_grad(*b, &neg);
            }
            Op::Mul(a, b) => {
                let da = grad.zip(self.value(*b), |g, bv| g * bv);
                let db = grad.zip(self.value(*a), |g, av| g * av);
                self.add_grad(*a, &da);
                self.add_grad(*b, &db);
            }
            Op::AddRow(a, row) => {
                self.add_grad(*a, grad);
                let mut rg = vec![0.0f32; grad.cols()];
                for r in 0..grad.rows() {
                    for (o, &g) in rg.iter_mut().zip(grad.row_slice(r)) {
                        *o += g;
                    }
                }
                self.add_grad(*row, &Tensor::row(rg));
            }
            Op::MulRow(a, row) => {
                let rv = self.value(*row).clone();
                let av = self.value(*a).clone();
                let mut da = grad.clone();
                for r in 0..da.rows() {
                    for (d, &s) in da.row_slice_mut(r).iter_mut().zip(rv.data()) {
                        *d *= s;
                    }
                }
                self.add_grad(*a, &da);
                let mut rg = vec![0.0f32; grad.cols()];
                for r in 0..grad.rows() {
                    for ((o, &g), &a_) in rg.iter_mut().zip(grad.row_slice(r)).zip(av.row_slice(r))
                    {
                        *o += g * a_;
                    }
                }
                self.add_grad(*row, &Tensor::row(rg));
            }
            Op::Scale(a, c) => {
                let da = grad.map(|g| g * c);
                self.add_grad(*a, &da);
            }
            Op::AddConst(a, _) => {
                self.add_grad(*a, grad);
            }
            Op::Relu(a) => {
                let da = grad.zip(self.value(*a), |g, x| if x > 0.0 { g } else { 0.0 });
                self.add_grad(*a, &da);
            }
            Op::Gelu(a) => {
                let da = grad.zip(self.value(*a), |g, x| g * gelu_bwd(x));
                self.add_grad(*a, &da);
            }
            Op::Tanh(a) => {
                let y = &self.nodes[i].value;
                let da = grad.zip(y, |g, t| g * (1.0 - t * t));
                self.add_grad(*a, &da);
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[i].value;
                let da = grad.zip(y, |g, s| g * s * (1.0 - s));
                self.add_grad(*a, &da);
            }
            Op::Softmax(a, _) => {
                // dX_j = y_j * (g_j - Σ_k g_k y_k), row-wise.
                let y = self.nodes[i].value.clone();
                let mut da = Tensor::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let yr = y.row_slice(r);
                    let gr = grad.row_slice(r);
                    let dot: f32 = yr.iter().zip(gr).map(|(&yv, &gv)| yv * gv).sum();
                    for ((d, &yv), &gv) in da.row_slice_mut(r).iter_mut().zip(yr).zip(gr) {
                        *d = yv * (gv - dot);
                    }
                }
                self.add_grad(*a, &da);
            }
            Op::LogSoftmax(a) => {
                // dX_j = g_j - softmax_j * Σ_k g_k, row-wise.
                let y = self.nodes[i].value.clone();
                let mut da = Tensor::zeros(y.rows(), y.cols());
                for r in 0..y.rows() {
                    let yr = y.row_slice(r);
                    let gr = grad.row_slice(r);
                    let gsum: f32 = gr.iter().sum();
                    for ((d, &yv), &gv) in da.row_slice_mut(r).iter_mut().zip(yr).zip(gr) {
                        *d = gv - yv.exp() * gsum;
                    }
                }
                self.add_grad(*a, &da);
            }
            Op::LayerNorm {
                x,
                gamma,
                beta,
                eps: _,
                cache,
            } => {
                let xv = self.value(*x).clone();
                let gv = self.value(*gamma).clone();
                let n = xv.cols() as f32;
                let mut dx = Tensor::zeros(xv.rows(), xv.cols());
                let mut dgamma = vec![0.0f32; xv.cols()];
                let mut dbeta = vec![0.0f32; xv.cols()];
                for r in 0..xv.rows() {
                    let (mean, inv_std) = cache[r];
                    let xr = xv.row_slice(r);
                    let gr = grad.row_slice(r);
                    // xhat_j = (x_j - mean) * inv_std
                    // dxhat_j = g_j * gamma_j
                    let mut sum_dxhat = 0.0f32;
                    let mut sum_dxhat_xhat = 0.0f32;
                    for j in 0..xr.len() {
                        let xhat = (xr[j] - mean) * inv_std;
                        let dxhat = gr[j] * gv.data()[j];
                        sum_dxhat += dxhat;
                        sum_dxhat_xhat += dxhat * xhat;
                        dgamma[j] += gr[j] * xhat;
                        dbeta[j] += gr[j];
                    }
                    for j in 0..xr.len() {
                        let xhat = (xr[j] - mean) * inv_std;
                        let dxhat = gr[j] * gv.data()[j];
                        dx.row_slice_mut(r)[j] =
                            inv_std * (dxhat - sum_dxhat / n - xhat * sum_dxhat_xhat / n);
                    }
                }
                self.add_grad(*x, &dx);
                self.add_grad(*gamma, &Tensor::row(dgamma));
                self.add_grad(*beta, &Tensor::row(dbeta));
            }
            Op::Dropout { x, mask } => {
                let data: Vec<f32> = grad.data().iter().zip(mask).map(|(&g, &m)| g * m).collect();
                let da = Tensor::from_vec(data, grad.rows(), grad.cols());
                self.add_grad(*x, &da);
            }
            Op::ConcatCols(parts) => {
                let mut off = 0;
                for &p in parts {
                    let w = self.value(p).cols();
                    let rows = grad.rows();
                    let mut dp = Tensor::zeros(rows, w);
                    for r in 0..rows {
                        dp.row_slice_mut(r)
                            .copy_from_slice(&grad.row_slice(r)[off..off + w]);
                    }
                    self.add_grad(p, &dp);
                    off += w;
                }
            }
            Op::ConcatRows(parts) => {
                let mut off = 0;
                for &p in parts {
                    let h = self.value(p).rows();
                    let cols = grad.cols();
                    let mut data = Vec::with_capacity(h * cols);
                    for r in off..off + h {
                        data.extend_from_slice(grad.row_slice(r));
                    }
                    self.add_grad(p, &Tensor::from_vec(data, h, cols));
                    off += h;
                }
            }
            Op::SliceCols { x, start, len } => {
                let v = self.value(*x);
                let mut dx = Tensor::zeros(v.rows(), v.cols());
                for r in 0..v.rows() {
                    dx.row_slice_mut(r)[*start..start + len].copy_from_slice(grad.row_slice(r));
                }
                self.add_grad(*x, &dx);
            }
            Op::SliceRows { x, start, len } => {
                let v = self.value(*x);
                let mut dx = Tensor::zeros(v.rows(), v.cols());
                for r in 0..*len {
                    dx.row_slice_mut(start + r)
                        .copy_from_slice(grad.row_slice(r));
                }
                self.add_grad(*x, &dx);
            }
            Op::MeanRows(x) => {
                let v = self.value(*x);
                let m = v.rows() as f32;
                let mut dx = Tensor::zeros(v.rows(), v.cols());
                for r in 0..v.rows() {
                    for (d, &g) in dx.row_slice_mut(r).iter_mut().zip(grad.data()) {
                        *d = g / m;
                    }
                }
                self.add_grad(*x, &dx);
            }
            Op::SumNodes(parts) => {
                for &p in parts {
                    self.add_grad(p, grad);
                }
            }
            Op::MulScalar { x, s } => {
                let sv = self.value(*s).item();
                let dx = grad.map(|g| g * sv);
                self.add_grad(*x, &dx);
                let ds: f32 = grad
                    .data()
                    .iter()
                    .zip(self.value(*x).data())
                    .map(|(&g, &xv)| g * xv)
                    .sum();
                self.add_grad(*s, &Tensor::scalar(ds));
            }
            Op::SumAll(x) => {
                let g = grad.item();
                let v = self.value(*x);
                let dx = Tensor::full(v.rows(), v.cols(), g);
                self.add_grad(*x, &dx);
            }
            Op::Recip(x) => {
                // d(1/x)/dx = -1/x², and 1/x is this node's cached value.
                let y = self.nodes[i].value.clone();
                let dx = grad.zip(&y, |g, inv| -g * inv * inv);
                self.add_grad(*x, &dx);
            }
            Op::Sqrt(x) => {
                // d√x/dx = 1/(2√x), and √x is this node's cached value.
                let y = self.nodes[i].value.clone();
                let dx = grad.zip(&y, |g, s| g * 0.5 / s);
                self.add_grad(*x, &dx);
            }
            Op::CrossEntropy {
                logits,
                targets,
                probs,
            } => {
                let g = grad.item();
                let lv = self.value(*logits);
                let (m, c) = (lv.rows(), lv.cols());
                let scale = g / m as f32;
                let data: Vec<f32> = probs
                    .iter()
                    .zip(targets)
                    .map(|(&p, &t)| (p - t) * scale)
                    .collect();
                self.add_grad(*logits, &Tensor::from_vec(data, m, c));
            }
        }
        self.nodes[i].op = op;
    }
}

fn softmax_row(row: &[f32], mask: Option<&[f32]>, out: &mut [f32]) {
    let mut max = f32::NEG_INFINITY;
    for (j, &v) in row.iter().enumerate() {
        let m = mask.map_or(0.0, |mm| mm[j]);
        max = max.max(v + m);
    }
    let mut sum = 0.0f32;
    for (j, &v) in row.iter().enumerate() {
        let m = mask.map_or(0.0, |mm| mm[j]);
        let e = (v + m - max).exp();
        out[j] = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
}

fn gelu_fwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

fn gelu_bwd(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044_715 * x * x * x);
    let t = inner.tanh();
    let dt = (1.0 - t * t) * C * (1.0 + 3.0 * 0.044_715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * dt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Initializer;
    use rotom_rng::rngs::StdRng;
    use rotom_rng::SeedableRng;

    #[test]
    fn matmul_forward_backward() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let w = store.alloc("w", 2, 2, Initializer::Uniform(1.0), &mut rng);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![1.0, 2.0], 1, 2));
        let wp = tape.param(w, &store);
        let y = tape.matmul(x, wp);
        let loss = tape.sum_all(y);
        tape.backward(loss, &mut store);
        // d loss / d W = x^T * ones = [[1,1],[2,2]]
        assert_eq!(store.grad(w).data(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn cross_entropy_matches_log_softmax_nll() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let logits = tape.input(Tensor::from_vec(vec![0.3, -1.2, 2.0], 1, 3));
        let ce = tape.cross_entropy(logits, &[0.0, 0.0, 1.0]);
        let ls = tape.log_softmax(logits);
        let expected = -tape.value(ls).at(0, 2);
        assert!((tape.value(ce).item() - expected).abs() < 1e-5);
        tape.backward(ce, &mut store);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], 2, 3));
        let s = tape.softmax(x);
        for r in 0..2 {
            let sum: f32 = tape.value(s).row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn masked_softmax_zeroes_hidden_positions() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![1.0, 2.0, 3.0], 1, 3));
        let mask = Tensor::from_vec(vec![0.0, -1e9, 0.0], 1, 3);
        let s = tape.masked_softmax(x, Some(mask));
        assert!(tape.value(s).at(0, 1) < 1e-6);
        let sum: f32 = tape.value(s).row_slice(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    /// Numerical gradient check across a composite graph touching most ops.
    #[test]
    fn gradcheck_composite() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut store = ParamStore::new();
        let w1 = store.alloc("w1", 3, 4, Initializer::Uniform(0.6), &mut rng);
        let b1 = store.alloc("b1", 1, 4, Initializer::Uniform(0.3), &mut rng);
        let gamma = store.alloc("g", 1, 4, Initializer::Ones, &mut rng);
        let beta = store.alloc("b", 1, 4, Initializer::Zeros, &mut rng);
        let w2 = store.alloc("w2", 4, 3, Initializer::Uniform(0.6), &mut rng);

        let xin = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.1, 0.9, -0.2], 2, 3);
        let targets = vec![1.0, 0.0, 0.0, 0.0, 0.5, 0.5];

        let run = |store: &mut ParamStore, backward: bool| -> f32 {
            let mut tape = Tape::new();
            let x = tape.input(xin.clone());
            let w1n = tape.param(w1, store);
            let b1n = tape.param(b1, store);
            let gn = tape.param(gamma, store);
            let bn = tape.param(beta, store);
            let w2n = tape.param(w2, store);
            let h = tape.matmul(x, w1n);
            let h = tape.add_row(h, b1n);
            let h = tape.gelu(h);
            let h = tape.layer_norm(h, gn, bn, 1e-5);
            let logits = tape.matmul(h, w2n);
            let loss = tape.cross_entropy(logits, &targets);
            let lv = tape.value(loss).item();
            if backward {
                store.zero_grad();
                tape.backward(loss, store);
            }
            lv
        };

        let _ = run(&mut store, true);
        let analytic = store.flat_grads();
        let theta = store.flat_values();
        let eps = 1e-3f32;
        let mut checked = 0;
        for k in (0..theta.len()).step_by(7) {
            let mut tp = theta.clone();
            tp[k] += eps;
            store.set_flat(&tp);
            let lp = run(&mut store, false);
            tp[k] -= 2.0 * eps;
            store.set_flat(&tp);
            let lm = run(&mut store, false);
            store.set_flat(&theta);
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic[k];
            let denom = a.abs().max(numeric.abs()).max(1e-3);
            assert!(
                ((a - numeric) / denom).abs() < 0.05,
                "grad mismatch at {k}: analytic {a} vs numeric {numeric}"
            );
            checked += 1;
        }
        assert!(checked > 3);
    }

    /// Generic finite-difference check for a graph built over a single
    /// parameter tensor.
    fn gradcheck_param(rows: usize, cols: usize, build: impl Fn(&mut Tape, NodeId) -> NodeId) {
        let mut rng = StdRng::seed_from_u64(77);
        let mut store = ParamStore::new();
        let w = store.alloc("w", rows, cols, Initializer::Uniform(0.7), &mut rng);
        let run = |store: &mut ParamStore, backward: bool| -> f32 {
            let mut tape = Tape::new();
            let wn = tape.param(w, store);
            let out = build(&mut tape, wn);
            let loss = if tape.value(out).len() == 1 {
                out
            } else {
                tape.sum_all(out)
            };
            let v = tape.value(loss).item();
            if backward {
                store.zero_grad();
                tape.backward(loss, store);
            }
            v
        };
        let _ = run(&mut store, true);
        let analytic = store.flat_grads();
        let theta = store.flat_values();
        let eps = 1e-3f32;
        for k in 0..theta.len() {
            let mut tp = theta.clone();
            tp[k] += eps;
            store.set_flat(&tp);
            let lp = run(&mut store, false);
            tp[k] -= 2.0 * eps;
            store.set_flat(&tp);
            let lm = run(&mut store, false);
            store.set_flat(&theta);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic[k] - numeric).abs() < 0.02 + 0.05 * numeric.abs(),
                "grad mismatch at {k}: {} vs {numeric}",
                analytic[k]
            );
        }
    }

    #[test]
    fn gradcheck_mul_row() {
        gradcheck_param(1, 4, |t, w| {
            let x = t.input(Tensor::from_vec(
                vec![0.3, -0.7, 1.2, 0.5, 0.1, -0.4, 0.8, -1.1],
                2,
                4,
            ));
            t.mul_row(x, w)
        });
    }

    #[test]
    fn gradcheck_concat_and_slice() {
        gradcheck_param(2, 3, |t, w| {
            let a = t.slice_cols(w, 0, 2);
            let b = t.slice_cols(w, 1, 2);
            let c = t.concat_cols(&[a, b]);
            let r = t.slice_rows(c, 1, 1);
            t.tanh(r)
        });
    }

    #[test]
    fn gradcheck_mean_rows_and_sigmoid() {
        gradcheck_param(3, 2, |t, w| {
            let m = t.mean_rows(w);
            t.sigmoid(m)
        });
    }

    #[test]
    fn gradcheck_log_softmax() {
        gradcheck_param(2, 3, |t, w| {
            let ls = t.log_softmax(w);
            let picked = t.slice_cols(ls, 1, 1);
            t.sum_all(picked)
        });
    }

    #[test]
    fn gradcheck_softmax_through_matmul() {
        gradcheck_param(2, 2, |t, w| {
            let s = t.softmax(w);
            let y = t.matmul(s, w);
            t.relu(y)
        });
    }

    #[test]
    fn gradcheck_sub_mul_chain() {
        gradcheck_param(1, 3, |t, w| {
            let a = t.scale(w, 2.0);
            let b = t.add_const(w, 0.3);
            let d = t.sub(a, b);
            let m = t.mul(d, w);
            t.gelu(m)
        });
    }

    #[test]
    fn gradcheck_concat_rows() {
        gradcheck_param(2, 2, |t, w| {
            let a = t.relu(w);
            let b = t.tanh(w);
            t.concat_rows(&[a, b])
        });
    }

    #[test]
    fn dropout_eval_mode_is_identity() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![1.0, 2.0], 1, 2));
        let y = tape.dropout(x, 0.5, None);
        assert_eq!(x, y);
    }

    #[test]
    fn dropout_train_scales_kept_values() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![2.0, 4.0], 1, 2));
        let y = tape.dropout(x, 0.5, Some(vec![true, false]));
        assert_eq!(tape.value(y).data(), &[4.0, 0.0]);
        let loss = tape.sum_all(y);
        tape.backward(loss, &mut store);
        assert_eq!(tape.grad(x).data(), &[2.0, 0.0]);
    }

    #[test]
    fn mul_scalar_gradients_flow_to_both() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![2.0, 3.0], 1, 2));
        let s = tape.input(Tensor::scalar(4.0));
        let y = tape.mul_scalar(x, s);
        let loss = tape.sum_all(y);
        tape.backward(loss, &mut store);
        assert_eq!(tape.grad(x).data(), &[4.0, 4.0]);
        assert_eq!(tape.grad(s).item(), 5.0);
    }

    #[test]
    fn recip_value_and_gradient() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let x = tape.input(Tensor::from_vec(vec![2.0, 4.0], 1, 2));
        let y = tape.recip(x);
        assert_eq!(tape.value(y).data(), &[0.5, 0.25]);
        let loss = tape.sum_all(y);
        tape.backward(loss, &mut store);
        // d(1/x)/dx = -1/x^2
        assert_eq!(tape.grad(x).data(), &[-0.25, -0.0625]);
    }

    #[test]
    fn embedding_scatter_adds() {
        let mut store = ParamStore::new();
        let table = store.push("emb", Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2));
        let mut tape = Tape::new();
        let e = tape.embedding(table, &store, &[0, 1, 0]);
        assert_eq!(tape.value(e).rows(), 3);
        let loss = tape.sum_all(e);
        tape.backward(loss, &mut store);
        // Row 0 gathered twice -> grad 2, row 1 once -> grad 1.
        assert_eq!(store.grad(table).data(), &[2.0, 2.0, 1.0, 1.0]);
    }
}
