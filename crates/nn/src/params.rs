//! Parameter storage with flat-vector access.
//!
//! Rotom's meta-training algorithm manipulates model parameters directly:
//! the virtual step `M' = M − η·∇M`, the finite-difference probes
//! `M± = M ± ε·∇M'`, and snapshot/restore around them. `ParamStore` keeps all
//! parameters of a model in one place so these operations are O(|M|) slice
//! walks rather than per-layer bookkeeping.

use crate::init::Initializer;
use crate::kernels::{PackedB, QuantizedB, NR};
use crate::tensor::Tensor;
use rotom_rng::rngs::StdRng;
use std::sync::{Arc, OnceLock};

/// Numeric mode of the inference plane for one model (one [`ParamStore`]).
///
/// Consulted only by the forward-only layer twins (`Linear::infer_forward*`)
/// — the training tape never reads it, so training stays bit-exact f32
/// regardless of the mode. [`QuantMode::I8`] routes large-enough inference
/// GEMMs through the quantized i8 kernel with per-output-row weight scales
/// (see `kernels::matmul_bias_act_i8_into`); results then carry a bounded
/// quantization error instead of bit-identity with the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantMode {
    /// Full-precision inference, bit-identical to the tape forward.
    #[default]
    F32,
    /// Quantized i8 inference GEMMs (opt-in; `ROTOM_QUANT=i8` or
    /// `set_quant_mode`).
    I8,
}

impl QuantMode {
    /// Read the process-default mode from `ROTOM_QUANT` (`i8` enables the
    /// quantized tier; anything else, or unset, stays f32).
    pub fn from_env() -> Self {
        match std::env::var("ROTOM_QUANT") {
            Ok(v) if v.trim().eq_ignore_ascii_case("i8") => QuantMode::I8,
            _ => QuantMode::F32,
        }
    }

    /// Short label for metrics/telemetry.
    pub fn label(self) -> &'static str {
        match self {
            QuantMode::F32 => "f32",
            QuantMode::I8 => "i8",
        }
    }
}

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Lazily packed GEMM panels of one parameter *generation*.
///
/// The store hands out the current generation's slot via
/// [`ParamStore::packs`]; every value mutation swaps in a fresh slot, so a
/// tape that cloned the `Arc` at node-creation time keeps panels consistent
/// with its own value snapshot while the store moves on. Panels fill on
/// first use — a GEMM that dispatches to the naive kernel (below
/// [`SMALL_FLOPS`](crate::kernels::SMALL_FLOPS)) never pays for packing.
/// That laziness is what makes the cache affordable in the meta-training
/// loop, where every parameter is invalidated about five times per step
/// (virtual step, two probes, restore, optimizer): only the few matrices
/// whose GEMMs actually cross the tiled threshold get re-packed, at most
/// once per generation each.
///
/// Panel *presence* never changes results — the prepacked kernels are
/// bit-identical to cold packing and share the naive fall-back dispatch.
#[derive(Default)]
pub struct ParamPacks {
    direct: OnceLock<PackedB>,
    transposed: OnceLock<PackedB>,
    quant: OnceLock<QuantizedB>,
}

impl ParamPacks {
    /// Panels of `value` as the direct `B` operand of `A·B`, built on first
    /// use. `value` must be the snapshot this slot's generation was taken
    /// from (concurrent fills then race benignly: every caller packs
    /// identical bytes). `None` for shapes the tiled path cannot read
    /// (fewer than 2 rows or [`NR`] columns).
    pub fn direct(&self, value: &Tensor) -> Option<&PackedB> {
        let (rows, cols) = (value.rows(), value.cols());
        if rows < 2 || cols < NR {
            return None;
        }
        Some(
            self.direct
                .get_or_init(|| PackedB::pack_row_major(value.data(), rows, cols)),
        )
    }

    /// Panels of `value`'s *transpose* (the `Bᵀ` operand of the
    /// `dA = dC·Bᵀ` backward contraction), built on first use. Same snapshot
    /// contract as [`direct`](Self::direct). `None` when the transpose has
    /// no full strip (fewer than [`NR`] rows).
    pub fn transposed(&self, value: &Tensor) -> Option<&PackedB> {
        let (rows, cols) = (value.rows(), value.cols());
        if cols < 2 || rows < NR {
            return None;
        }
        Some(
            self.transposed
                .get_or_init(|| PackedB::pack_transposed(value.data(), cols, rows)),
        )
    }

    /// Quantized i8 panels of `value` as the direct `B` operand, built on
    /// first use under the same snapshot contract as
    /// [`direct`](Self::direct) — the slot lives and dies with the
    /// parameter generation, so a hot checkpoint swap (or any value
    /// mutation) invalidates the quantized weights exactly like the f32
    /// panels. Shape gate matches `direct` so quant and f32 dispatch agree
    /// on which weights are pack-eligible.
    pub fn quant(&self, value: &Tensor) -> Option<&QuantizedB> {
        let (rows, cols) = (value.rows(), value.cols());
        if rows < 2 || cols < NR {
            return None;
        }
        Some(
            self.quant
                .get_or_init(|| QuantizedB::quantize_row_major(value.data(), rows, cols)),
        )
    }
}

struct ParamEntry {
    name: String,
    value: Tensor,
    grad: Tensor,
    /// Frozen parameters are skipped by optimizers and flat updates.
    trainable: bool,
    /// Bumped on every value mutation; pairs with the pack cache so packing
    /// cost is paid at most once per generation, not once per matmul.
    generation: u64,
    /// Current generation's pack slot, shared with tapes via `Arc` (fills
    /// happen through `&self` because parameter reads run concurrently
    /// across pool workers during forward fan-out).
    packs: Arc<ParamPacks>,
}

impl ParamEntry {
    fn invalidate(&mut self) {
        self.generation += 1;
        // Reuse the slot allocation when no tape still holds it; otherwise
        // detach a fresh slot and let the tapes keep the old generation's.
        match Arc::get_mut(&mut self.packs) {
            Some(p) => *p = ParamPacks::default(),
            None => self.packs = Arc::new(ParamPacks::default()),
        }
    }
}

/// A flat store of named parameters with matching gradient buffers.
#[derive(Default)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
    /// Inference-plane numeric mode for the model owning this store (the
    /// training tape never reads it). Per-store, so e.g. each serving
    /// `TaskPlane` toggles quantization independently.
    quant_mode: QuantMode,
}

impl ParamStore {
    /// Create an empty store. The inference quant mode starts from the
    /// `ROTOM_QUANT` process default ([`QuantMode::from_env`]).
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
            quant_mode: QuantMode::from_env(),
        }
    }

    /// Inference-plane numeric mode (see [`QuantMode`]).
    pub fn quant_mode(&self) -> QuantMode {
        self.quant_mode
    }

    /// Set the inference-plane numeric mode. Takes effect on the next
    /// inference call; training is unaffected. Quantized panels are built
    /// lazily per generation, so toggling costs nothing until a quantized
    /// GEMM actually runs.
    pub fn set_quant_mode(&mut self, mode: QuantMode) {
        self.quant_mode = mode;
    }

    /// Register a parameter initialized by `init`.
    pub fn alloc(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        init: Initializer,
        rng: &mut StdRng,
    ) -> ParamId {
        let value = init.tensor(rows, cols, rng);
        self.push(name, value)
    }

    /// Register a parameter with an explicit initial value.
    pub fn push(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.entries.push(ParamEntry {
            name: name.into(),
            value,
            grad,
            trainable: true,
            generation: 0,
            packs: Arc::new(ParamPacks::default()),
        });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn num_params(&self) -> usize {
        self.entries.len()
    }

    /// Total number of scalar parameters across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Borrow a parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutably borrow a parameter value. Invalidates the packed-panel cache
    /// and bumps the generation counter (the borrow may mutate).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        let e = &mut self.entries[id.0];
        e.invalidate();
        &mut e.value
    }

    /// Split mutable/shared borrow of a parameter's value and gradient (the
    /// optimizer update loop: `value -= f(grad)` without cloning either).
    /// Invalidates the pack cache like [`value_mut`](Self::value_mut).
    pub fn value_grad_mut(&mut self, id: ParamId) -> (&mut Tensor, &Tensor) {
        let e = &mut self.entries[id.0];
        e.invalidate();
        (&mut e.value, &e.grad)
    }

    /// Mutation generation of a parameter: bumped every time the value is
    /// (potentially) written. Packs and other value-derived caches are valid
    /// exactly as long as the generation is unchanged.
    pub fn generation(&self, id: ParamId) -> u64 {
        self.entries[id.0].generation
    }

    /// Sum of all parameter generations — a cheap fingerprint of "has any
    /// value possibly changed". Monotonically non-decreasing (generations
    /// only ever grow), so value-derived caches such as the inference-plane
    /// score cache can compare one `u64` instead of walking every entry.
    pub fn generation_sum(&self) -> u64 {
        self.entries.iter().map(|e| e.generation).sum()
    }

    /// The current generation's pack slot for a parameter. Tapes clone the
    /// `Arc` when they snapshot the value, then fill panels lazily through
    /// [`ParamPacks::direct`]/[`ParamPacks::transposed`] only when a GEMM
    /// actually dispatches to the tiled path.
    pub fn packs(&self, id: ParamId) -> Arc<ParamPacks> {
        Arc::clone(&self.entries[id.0].packs)
    }

    /// Borrow a parameter gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Mutably borrow a parameter gradient.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].grad
    }

    /// Mark a parameter as frozen (excluded from optimization and flat updates).
    pub fn set_trainable(&mut self, id: ParamId, trainable: bool) {
        self.entries[id.0].trainable = trainable;
    }

    /// Whether the parameter participates in training.
    pub fn is_trainable(&self, id: ParamId) -> bool {
        self.entries[id.0].trainable
    }

    /// Iterate over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// Zero all gradient buffers.
    pub fn zero_grad(&mut self) {
        for e in &mut self.entries {
            e.grad.data_mut().fill(0.0);
        }
    }

    /// Concatenate all trainable parameter values into one vector.
    pub fn flat_values(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_scalars());
        self.flat_values_into(&mut out);
        out
    }

    /// [`flat_values`](Self::flat_values) into a caller buffer: clears and
    /// refills `out` in place, so a checkpoint buffer reused across epochs
    /// allocates only on first use (or growth).
    pub fn flat_values_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.num_scalars());
        for e in &self.entries {
            if e.trainable {
                out.extend_from_slice(e.value.data());
            }
        }
    }

    /// Concatenate all trainable parameter gradients into one vector.
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_scalars());
        for e in &self.entries {
            if e.trainable {
                out.extend_from_slice(e.grad.data());
            }
        }
        out
    }

    /// Overwrite all trainable values from a flat vector produced by
    /// [`flat_values`](Self::flat_values).
    pub fn set_flat(&mut self, flat: &[f32]) {
        let mut offset = 0;
        for e in &mut self.entries {
            if !e.trainable {
                continue;
            }
            let n = e.value.len();
            e.invalidate();
            e.value
                .data_mut()
                .copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
        assert_eq!(offset, flat.len(), "flat vector length mismatch");
    }

    /// In-place `values += alpha * delta` over all trainable parameters,
    /// where `delta` is a flat vector aligned with [`flat_values`](Self::flat_values).
    pub fn add_scaled_flat(&mut self, delta: &[f32], alpha: f32) {
        let mut offset = 0;
        for e in &mut self.entries {
            if !e.trainable {
                continue;
            }
            let n = e.value.len();
            e.invalidate();
            for (v, &d) in e
                .value
                .data_mut()
                .iter_mut()
                .zip(&delta[offset..offset + n])
            {
                *v += alpha * d;
            }
            offset += n;
        }
        assert_eq!(offset, delta.len(), "flat vector length mismatch");
    }

    /// Global L2 norm of all trainable gradients.
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .filter(|e| e.trainable)
            .map(|e| e.grad.data().iter().map(|g| g * g).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scale all trainable gradients so their global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for e in &mut self.entries {
                if e.trainable {
                    for g in e.grad.data_mut() {
                        *g *= scale;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_rng::SeedableRng;

    fn store() -> (ParamStore, ParamId, ParamId) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = ParamStore::new();
        let a = s.alloc("a", 2, 3, Initializer::Uniform(0.1), &mut rng);
        let b = s.alloc("b", 1, 4, Initializer::Zeros, &mut rng);
        (s, a, b)
    }

    #[test]
    fn flat_roundtrip() {
        let (mut s, _, _) = store();
        let flat = s.flat_values();
        assert_eq!(flat.len(), 10);
        let mut modified = flat.clone();
        for v in &mut modified {
            *v += 1.0;
        }
        s.set_flat(&modified);
        assert_eq!(s.flat_values(), modified);
    }

    #[test]
    fn add_scaled_flat_moves_values() {
        let (mut s, _, _) = store();
        let before = s.flat_values();
        let delta = vec![2.0; before.len()];
        s.add_scaled_flat(&delta, 0.5);
        let after = s.flat_values();
        for (b, a) in before.iter().zip(&after) {
            assert!((a - b - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn frozen_params_excluded_from_flat() {
        let (mut s, a, _) = store();
        s.set_trainable(a, false);
        assert_eq!(s.flat_values().len(), 4);
    }

    #[test]
    fn clip_grad_norm_bounds_norm() {
        let (mut s, a, _) = store();
        s.grad_mut(a).data_mut().fill(10.0);
        assert!(s.grad_norm() > 5.0);
        s.clip_grad_norm(1.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn zero_grad_clears() {
        let (mut s, a, _) = store();
        s.grad_mut(a).data_mut().fill(3.0);
        s.zero_grad();
        assert_eq!(s.grad_norm(), 0.0);
    }
}
