//! Parameter storage with flat-vector access.
//!
//! Rotom's meta-training algorithm manipulates model parameters directly:
//! the virtual step `M' = M − η·∇M`, the finite-difference probes
//! `M± = M ± ε·∇M'`, and snapshot/restore around them. `ParamStore` keeps all
//! parameters of a model in one place so these operations are O(|M|) slice
//! walks rather than per-layer bookkeeping.

use crate::init::Initializer;
use crate::tensor::Tensor;
use rotom_rng::rngs::StdRng;

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

struct ParamEntry {
    name: String,
    value: Tensor,
    grad: Tensor,
    /// Frozen parameters are skipped by optimizers and flat updates.
    trainable: bool,
}

/// A flat store of named parameters with matching gradient buffers.
#[derive(Default)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
}

impl ParamStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter initialized by `init`.
    pub fn alloc(
        &mut self,
        name: impl Into<String>,
        rows: usize,
        cols: usize,
        init: Initializer,
        rng: &mut StdRng,
    ) -> ParamId {
        let value = init.tensor(rows, cols, rng);
        self.push(name, value)
    }

    /// Register a parameter with an explicit initial value.
    pub fn push(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.entries.push(ParamEntry {
            name: name.into(),
            value,
            grad,
            trainable: true,
        });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn num_params(&self) -> usize {
        self.entries.len()
    }

    /// Total number of scalar parameters across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Borrow a parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Mutably borrow a parameter value.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].value
    }

    /// Borrow a parameter gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// Mutably borrow a parameter gradient.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.entries[id.0].grad
    }

    /// Mark a parameter as frozen (excluded from optimization and flat updates).
    pub fn set_trainable(&mut self, id: ParamId, trainable: bool) {
        self.entries[id.0].trainable = trainable;
    }

    /// Whether the parameter participates in training.
    pub fn is_trainable(&self, id: ParamId) -> bool {
        self.entries[id.0].trainable
    }

    /// Iterate over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.entries.len()).map(ParamId)
    }

    /// Zero all gradient buffers.
    pub fn zero_grad(&mut self) {
        for e in &mut self.entries {
            e.grad.data_mut().fill(0.0);
        }
    }

    /// Concatenate all trainable parameter values into one vector.
    pub fn flat_values(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_scalars());
        for e in &self.entries {
            if e.trainable {
                out.extend_from_slice(e.value.data());
            }
        }
        out
    }

    /// Concatenate all trainable parameter gradients into one vector.
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_scalars());
        for e in &self.entries {
            if e.trainable {
                out.extend_from_slice(e.grad.data());
            }
        }
        out
    }

    /// Overwrite all trainable values from a flat vector produced by
    /// [`flat_values`](Self::flat_values).
    pub fn set_flat(&mut self, flat: &[f32]) {
        let mut offset = 0;
        for e in &mut self.entries {
            if !e.trainable {
                continue;
            }
            let n = e.value.len();
            e.value
                .data_mut()
                .copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
        assert_eq!(offset, flat.len(), "flat vector length mismatch");
    }

    /// In-place `values += alpha * delta` over all trainable parameters,
    /// where `delta` is a flat vector aligned with [`flat_values`](Self::flat_values).
    pub fn add_scaled_flat(&mut self, delta: &[f32], alpha: f32) {
        let mut offset = 0;
        for e in &mut self.entries {
            if !e.trainable {
                continue;
            }
            let n = e.value.len();
            for (v, &d) in e
                .value
                .data_mut()
                .iter_mut()
                .zip(&delta[offset..offset + n])
            {
                *v += alpha * d;
            }
            offset += n;
        }
        assert_eq!(offset, delta.len(), "flat vector length mismatch");
    }

    /// Global L2 norm of all trainable gradients.
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .filter(|e| e.trainable)
            .map(|e| e.grad.data().iter().map(|g| g * g).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scale all trainable gradients so their global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for e in &mut self.entries {
                if e.trainable {
                    for g in e.grad.data_mut() {
                        *g *= scale;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_rng::SeedableRng;

    fn store() -> (ParamStore, ParamId, ParamId) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = ParamStore::new();
        let a = s.alloc("a", 2, 3, Initializer::Uniform(0.1), &mut rng);
        let b = s.alloc("b", 1, 4, Initializer::Zeros, &mut rng);
        (s, a, b)
    }

    #[test]
    fn flat_roundtrip() {
        let (mut s, _, _) = store();
        let flat = s.flat_values();
        assert_eq!(flat.len(), 10);
        let mut modified = flat.clone();
        for v in &mut modified {
            *v += 1.0;
        }
        s.set_flat(&modified);
        assert_eq!(s.flat_values(), modified);
    }

    #[test]
    fn add_scaled_flat_moves_values() {
        let (mut s, _, _) = store();
        let before = s.flat_values();
        let delta = vec![2.0; before.len()];
        s.add_scaled_flat(&delta, 0.5);
        let after = s.flat_values();
        for (b, a) in before.iter().zip(&after) {
            assert!((a - b - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn frozen_params_excluded_from_flat() {
        let (mut s, a, _) = store();
        s.set_trainable(a, false);
        assert_eq!(s.flat_values().len(), 4);
    }

    #[test]
    fn clip_grad_norm_bounds_norm() {
        let (mut s, a, _) = store();
        s.grad_mut(a).data_mut().fill(10.0);
        assert!(s.grad_norm() > 5.0);
        s.clip_grad_norm(1.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn zero_grad_clears() {
        let (mut s, a, _) = store();
        s.grad_mut(a).data_mut().fill(3.0);
        s.zero_grad();
        assert_eq!(s.grad_norm(), 0.0);
    }
}
