//! Forward-only inference plane: recycled activation workspaces and an
//! optional logit memoization cache.
//!
//! The autodiff [`Tape`](crate::graph::Tape) pays for node bookkeeping and
//! gradient-buffer reservation on every op — bookkeeping that forward-only
//! work (evaluation, M_F candidate scoring, InvDA decoding) never uses. The
//! inference plane executes the same arithmetic as the tape's forward pass
//! — **bit-for-bit** — but straight into preallocated `Vec<f32>`
//! workspaces:
//!
//! * [`InferScratch`] — an exact-length free-list of activation buffers. A
//!   forward pass takes buffers, runs the forward kernels in
//!   [`kernels`](crate::kernels), and returns them; steady-state scoring
//!   performs no heap allocation.
//! * [`with_infer_scratch`] — a process-global pool of `InferScratch`
//!   instances (mirroring the pooled-tape free list), so concurrent pool
//!   workers each grab a private workspace and recycle it across batches.
//! * [`ScoreCache`] — opt-in (`ROTOM_SCORE_CACHE=<capacity>`) FNV-keyed
//!   memoization of serialized input → logits, guarded by the parameter
//!   store's [`generation_sum`](crate::params::ParamStore::generation_sum)
//!   so any weight mutation invalidates every entry.
//!
//! Bit-identity with the tape forward is a hard invariant, not a tolerance:
//! golden runs pin evaluation accuracies and InvDA generations, so the layer
//! `infer_*` methods replicate the tape's kernel dispatch decisions and
//! scalar reduction orders exactly (see the "Inference plane" section of
//! DESIGN.md). Training stays on the tape path untouched.

use crate::telemetry::{self, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Activation workspaces
// ---------------------------------------------------------------------------

/// Cap on floats retained inside one [`InferScratch`] free list (4M floats =
/// 16 MiB): buffers beyond the cap are dropped on return instead of pooled.
const SCRATCH_CAP_FLOATS: usize = 4 << 20;

/// Number of [`InferScratch`] instances the global pool retains.
const MAX_POOLED_SCRATCH: usize = 8;

/// Exact-length free-list of activation buffers for forward-only passes.
///
/// `take(len)` hands out a buffer of exactly `len` elements with
/// **unspecified contents** — every inference kernel fully overwrites its
/// output, so no clearing pass is paid. `put` returns a buffer for reuse.
/// Buffers are bucketed by exact length because transformer activations
/// recur in a handful of shapes per model; a steady-state scoring loop hits
/// the free list for every buffer.
#[derive(Default)]
pub struct InferScratch {
    free: HashMap<usize, Vec<Vec<f32>>>,
    retained: usize,
}

impl InferScratch {
    /// Create an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a buffer of exactly `len` elements. Contents are unspecified
    /// (previous activations); the caller must fully overwrite them.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        if let Some(bucket) = self.free.get_mut(&len) {
            if let Some(v) = bucket.pop() {
                self.retained -= len;
                debug_assert_eq!(v.len(), len);
                return v;
            }
        }
        vec![0.0; len]
    }

    /// Return a buffer to the free list (dropped once the retained-float cap
    /// is reached).
    pub fn put(&mut self, v: Vec<f32>) {
        let len = v.len();
        if len == 0 || self.retained + len > SCRATCH_CAP_FLOATS {
            return;
        }
        self.retained += len;
        self.free.entry(len).or_default().push(v);
    }

    /// Floats currently held on the free list (diagnostics).
    pub fn retained_floats(&self) -> usize {
        self.retained
    }
}

/// Process-global free list of [`InferScratch`] instances. Pool workers are
/// scoped threads (fresh per call), so thread-locals never see reuse; a
/// global free list — the same shape as the pooled-tape list — carries
/// workspaces across batches and across pool invocations.
static SCRATCH_POOL: Mutex<Vec<InferScratch>> = Mutex::new(Vec::new());

/// Run `f` with a recycled [`InferScratch`], returning the workspace to the
/// global pool afterwards (up to a small retention cap).
pub fn with_infer_scratch<R>(f: impl FnOnce(&mut InferScratch) -> R) -> R {
    let mut scratch = SCRATCH_POOL.lock().unwrap().pop().unwrap_or_default();
    let out = f(&mut scratch);
    let mut pool = SCRATCH_POOL.lock().unwrap();
    if pool.len() < MAX_POOLED_SCRATCH {
        pool.push(scratch);
    }
    out
}

// ---------------------------------------------------------------------------
// Score cache
// ---------------------------------------------------------------------------

/// FNV-1a-64 over a token sequence (offset basis / prime of the reference
/// implementation), hashing each id's little-endian bytes.
fn fnv1a_tokens(tokens: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &t in tokens {
        for b in (t as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Sentinel slab index for "no entry" in the intrusive recency list.
const NIL: u32 = u32::MAX;

/// One cached scoring: full key (the FNV hash is only a bucket index),
/// logits, and intrusive doubly-linked recency pointers (slab indices) —
/// most-recently-used at the list head, eviction victim at the tail.
struct CacheEntry {
    key: Box<[usize]>,
    logits: Vec<f32>,
    hash: u64,
    prev: u32,
    next: u32,
}

struct CacheInner {
    /// Parameter-store generation fingerprint the entries were computed
    /// under; any mismatch wipes the map (weights changed).
    gen_sum: u64,
    /// FNV key → slab indices (full serialized key kept to guard
    /// collisions).
    map: HashMap<u64, Vec<u32>>,
    /// Entry storage; `free` lists recycled slots, so the slab never grows
    /// past capacity once warm.
    slab: Vec<CacheEntry>,
    free: Vec<u32>,
    /// Recency list endpoints: `head` = most recent touch, `tail` = LRU
    /// eviction victim.
    head: u32,
    tail: u32,
}

impl CacheInner {
    /// Unlink slot `idx` from the recency list (O(1)).
    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let e = &self.slab[idx as usize];
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slab[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n as usize].prev = prev,
        }
    }

    /// Link slot `idx` at the head (most-recently-used) position (O(1)).
    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let e = &mut self.slab[idx as usize];
            e.prev = NIL;
            e.next = old_head;
        }
        match old_head {
            NIL => self.tail = idx,
            h => self.slab[h as usize].prev = idx,
        }
        self.head = idx;
    }

    /// Entries currently stored.
    fn len(&self) -> usize {
        self.slab.len() - self.free.len()
    }
}

/// Memoization cache for forward-only scoring: serialized input tokens →
/// logits.
///
/// Entity-matching workloads are highly duplicative after blocking — the
/// same record pair is scored by the M_F filter, the weighting model's
/// feature extraction, and per-epoch evaluation. A hit returns a
/// **bit-identical clone** of the stored logits, so caching never changes
/// results; correctness is guarded two ways:
///
/// * entries are keyed by the exact token sequence (the FNV hash is only a
///   bucket index; the full key is compared on lookup), and
/// * the whole cache self-invalidates when the owning store's
///   [`generation_sum`](crate::params::ParamStore::generation_sum) moves —
///   that fingerprint is monotone, so stale entries can never resurface.
///
/// Off by default; enabled per-model via `ROTOM_SCORE_CACHE=<capacity>`
/// (entries). At capacity the least-recently-used entry is evicted in O(1):
/// entries live in a slab threaded onto an intrusive doubly-linked recency
/// list (head = most recent touch, tail = victim), so a hit is one unlink +
/// one relink and an eviction pops the tail — no scan at any capacity — and
/// the [`evictions`] counter records it. Cloning a `ScoreCache` yields a
/// fresh *empty* cache with the same capacity: clones of a model diverge
/// under training, so sharing entries across them would be unsound.
///
/// [`evictions`]: ScoreCache::evictions
pub struct ScoreCache {
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inner: Mutex<CacheInner>,
}

impl Clone for ScoreCache {
    fn clone(&self) -> Self {
        Self::with_capacity(self.capacity)
    }
}

impl ScoreCache {
    /// A cache bounded to `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inner: Mutex::new(CacheInner {
                gen_sum: 0,
                map: HashMap::new(),
                slab: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
            }),
        }
    }

    /// Build a cache from the `ROTOM_SCORE_CACHE` environment variable:
    /// `None` (caching off) unless it parses to a positive capacity.
    pub fn from_env() -> Option<Self> {
        let capacity: usize = std::env::var("ROTOM_SCORE_CACHE")
            .ok()?
            .trim()
            .parse()
            .ok()?;
        (capacity > 0).then(|| Self::with_capacity(capacity))
    }

    /// Look up the logits for `tokens` computed under parameter fingerprint
    /// `gen_sum`. Counts a hit or miss; a mismatched fingerprint clears the
    /// cache first (weights changed since the entries were stored). A hit
    /// refreshes the entry's LRU position.
    pub fn lookup(&self, gen_sum: u64, tokens: &[usize]) -> Option<Vec<f32>> {
        let mut inner = self.inner.lock().unwrap();
        Self::sync_generation(&mut inner, gen_sum);
        let key = fnv1a_tokens(tokens);
        let found = inner.map.get(&key).and_then(|bucket| {
            bucket
                .iter()
                .copied()
                .find(|&idx| inner.slab[idx as usize].key.as_ref() == tokens)
        });
        let hit = found.map(|idx| {
            // Refresh recency: unlink and relink at the head, both O(1).
            inner.detach(idx);
            inner.push_front(idx);
            inner.slab[idx as usize].logits.clone()
        });
        drop(inner);
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Store the logits for `tokens` computed under `gen_sum`. At capacity
    /// the least-recently-used entry is evicted to make room.
    pub fn insert(&self, gen_sum: u64, tokens: &[usize], logits: &[f32]) {
        let mut inner = self.inner.lock().unwrap();
        Self::sync_generation(&mut inner, gen_sum);
        let key = fnv1a_tokens(tokens);
        if inner.map.get(&key).is_some_and(|bucket| {
            bucket
                .iter()
                .any(|&idx| inner.slab[idx as usize].key.as_ref() == tokens)
        }) {
            return;
        }
        if inner.len() >= self.capacity && Self::evict_lru(&mut inner) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let entry = CacheEntry {
            key: tokens.to_vec().into_boxed_slice(),
            logits: logits.to_vec(),
            hash: key,
            prev: NIL,
            next: NIL,
        };
        let idx = match inner.free.pop() {
            Some(idx) => {
                inner.slab[idx as usize] = entry;
                idx
            }
            None => {
                inner.slab.push(entry);
                (inner.slab.len() - 1) as u32
            }
        };
        inner.push_front(idx);
        inner.map.entry(key).or_default().push(idx);
    }

    /// Wipe the map if `gen_sum` moved since the entries were stored.
    fn sync_generation(inner: &mut CacheInner, gen_sum: u64) {
        if inner.gen_sum != gen_sum {
            inner.map.clear();
            inner.slab.clear();
            inner.free.clear();
            inner.head = NIL;
            inner.tail = NIL;
            inner.gen_sum = gen_sum;
        }
    }

    /// Pop the recency-list tail — the least-recently-touched entry — in
    /// O(1) (plus a short bucket walk for the hash index, bounded by FNV
    /// collisions on 64-bit hashes, i.e. effectively 1). Returns whether a
    /// victim was actually removed.
    fn evict_lru(inner: &mut CacheInner) -> bool {
        let victim = inner.tail;
        if victim == NIL {
            return false;
        }
        inner.detach(victim);
        let hash = inner.slab[victim as usize].hash;
        if let Some(bucket) = inner.map.get_mut(&hash) {
            if let Some(pos) = bucket.iter().position(|&i| i == victim) {
                bucket.swap_remove(pos);
            }
            if bucket.is_empty() {
                inner.map.remove(&hash);
            }
        }
        // Drop the payload now; the slot itself is recycled via `free`.
        let e = &mut inner.slab[victim as usize];
        e.key = Box::default();
        e.logits = Vec::new();
        inner.free.push(victim);
        true
    }

    /// Cumulative `(hits, misses)` since construction.
    pub fn hit_miss(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Cumulative LRU evictions since construction (capacity pressure only;
    /// generation-change wipes are not evictions).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The configured capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Emit one `gauge` record with cumulative hit/miss counts and current
    /// occupancy. No-op when telemetry is disabled.
    pub fn emit_gauges(&self) {
        if !telemetry::enabled() {
            return;
        }
        let (hits, misses) = self.hit_miss();
        telemetry::emit(
            "gauge",
            "infer.score_cache",
            &[
                ("hits", Value::U64(hits)),
                ("misses", Value::U64(misses)),
                ("entries", Value::U64(self.len() as u64)),
                ("capacity", Value::U64(self.capacity as u64)),
                ("evictions", Value::U64(self.evictions())),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_recycles_exact_lengths() {
        let mut s = InferScratch::new();
        let mut a = s.take(16);
        a[0] = 42.0;
        let ptr = a.as_ptr();
        s.put(a);
        assert_eq!(s.retained_floats(), 16);
        let b = s.take(16);
        assert_eq!(b.as_ptr(), ptr, "same buffer handed back");
        assert_eq!(s.retained_floats(), 0);
        // A different length misses the bucket.
        let c = s.take(8);
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn scratch_pool_round_trips() {
        let out = with_infer_scratch(|s| {
            let v = s.take(32);
            let len = v.len();
            s.put(v);
            len
        });
        assert_eq!(out, 32);
    }

    #[test]
    fn score_cache_hit_returns_bit_identical_logits() {
        let cache = ScoreCache::with_capacity(8);
        let logits = vec![0.1f32, -2.5, 3.25];
        assert!(cache.lookup(1, &[3, 1, 4]).is_none());
        cache.insert(1, &[3, 1, 4], &logits);
        let hit = cache.lookup(1, &[3, 1, 4]).expect("hit");
        assert_eq!(hit, logits);
        assert_eq!(cache.hit_miss(), (1, 1));
    }

    #[test]
    fn score_cache_invalidates_on_generation_change() {
        let cache = ScoreCache::with_capacity(8);
        cache.insert(1, &[7], &[1.0]);
        assert!(cache.lookup(2, &[7]).is_none(), "stale generation");
        assert!(cache.is_empty());
    }

    #[test]
    fn score_cache_evicts_lru_at_capacity() {
        let cache = ScoreCache::with_capacity(2);
        cache.insert(1, &[1], &[1.0]);
        cache.insert(1, &[2], &[2.0]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 0);
        // Touch [1] so [2] becomes the LRU victim.
        assert_eq!(cache.lookup(1, &[1]), Some(vec![1.0]));
        cache.insert(1, &[3], &[3.0]);
        assert_eq!(cache.len(), 2, "stays at capacity");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.lookup(1, &[1]), Some(vec![1.0]), "recently used kept");
        assert!(cache.lookup(1, &[2]).is_none(), "LRU entry evicted");
        assert_eq!(cache.lookup(1, &[3]), Some(vec![3.0]));
    }

    #[test]
    fn score_cache_eviction_order_follows_touches() {
        let cache = ScoreCache::with_capacity(3);
        for t in 1u64..=3 {
            cache.insert(1, &[t as usize], &[t as f32]);
        }
        // Refresh insertion order 1,2,3 into touch order 2,3,1.
        cache.lookup(1, &[2]);
        cache.lookup(1, &[3]);
        cache.lookup(1, &[1]);
        cache.insert(1, &[4], &[4.0]);
        assert!(cache.lookup(1, &[2]).is_none(), "oldest touch evicted");
        cache.insert(1, &[5], &[5.0]);
        assert!(cache.lookup(1, &[3]).is_none(), "next-oldest evicted");
        assert_eq!(cache.lookup(1, &[1]), Some(vec![1.0]));
        assert_eq!(cache.evictions(), 2);
        // A duplicate insert of a live key neither grows nor evicts.
        cache.insert(1, &[1], &[1.0]);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn generation_wipe_is_not_an_eviction() {
        let cache = ScoreCache::with_capacity(2);
        cache.insert(1, &[1], &[1.0]);
        cache.insert(1, &[2], &[2.0]);
        cache.insert(2, &[1], &[10.0]);
        assert_eq!(cache.evictions(), 0, "wipe on generation change is free");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_matches_reference_model_under_random_churn() {
        // Drive the intrusive-list LRU with a few thousand random
        // lookup/insert operations and mirror every step in an obviously
        // correct Vec-based reference (touch moves to back, evict pops
        // front). Occupancy, eviction count, and membership must agree at
        // every step.
        use rotom_rng::rngs::StdRng;
        use rotom_rng::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x10c);
        for capacity in [1usize, 2, 7, 32] {
            let cache = ScoreCache::with_capacity(capacity);
            let mut reference: Vec<usize> = Vec::new(); // front = LRU
            let mut ref_evictions = 0u64;
            for _ in 0..4000 {
                let token = rng.random_range(0..64usize);
                if rng.random_range(0.0f32..1.0) < 0.5 {
                    let hit = cache.lookup(1, &[token]).is_some();
                    let ref_hit = reference.contains(&token);
                    assert_eq!(hit, ref_hit, "cap {capacity}: hit status for {token}");
                    if ref_hit {
                        reference.retain(|&t| t != token);
                        reference.push(token);
                    }
                } else {
                    cache.insert(1, &[token], &[token as f32]);
                    if !reference.contains(&token) {
                        if reference.len() >= capacity && !reference.is_empty() {
                            reference.remove(0);
                            ref_evictions += 1;
                        }
                        reference.push(token);
                    }
                }
                assert_eq!(cache.len(), reference.len(), "cap {capacity}: occupancy");
                assert_eq!(
                    cache.evictions(),
                    ref_evictions,
                    "cap {capacity}: eviction count"
                );
            }
            // Final membership check (hit/miss per possible token), without
            // perturbing what we assert: every lookup of a present token
            // refreshes both sides identically.
            for token in 0..64usize {
                let hit = cache.lookup(1, &[token]).is_some();
                let ref_hit = reference.contains(&token);
                assert_eq!(hit, ref_hit, "cap {capacity}: final membership {token}");
                if ref_hit {
                    reference.retain(|&t| t != token);
                    reference.push(token);
                }
            }
        }
    }

    #[test]
    fn clone_is_fresh_and_empty() {
        let cache = ScoreCache::with_capacity(4);
        cache.insert(1, &[9], &[9.0]);
        let clone = cache.clone();
        assert!(clone.is_empty());
        assert!(clone.lookup(1, &[9]).is_none());
    }
}
