//! Dense row-major `f32` tensors.
//!
//! The library only needs rank-1 and rank-2 tensors: sequences are `[T, d]`
//! matrices and batches are handled by building one tape sub-graph per
//! example. Keeping the representation this small makes every kernel easy to
//! audit and keeps the autodiff tape allocation-friendly.

use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// Invariant: `data.len() == rows * cols`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// Create a tensor from raw data. Panics if `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { data, rows, cols }
    }

    /// A `rows x cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// A `rows x cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// A `1 x 1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(vec![value], 1, 1)
    }

    /// A `1 x n` row vector.
    pub fn row(values: Vec<f32>) -> Self {
        let n = values.len();
        Self::from_vec(values, 1, n)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying data slice (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying data slice (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `1x1` tensor. Panics otherwise.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() requires a scalar tensor");
        self.data[0]
    }

    /// Matrix product `self (m x k) * other (k x n) -> m x n`.
    ///
    /// Dispatches to the register-tiled kernels in [`crate::kernels`]:
    /// small shapes run the plain i-k-j loop, large shapes run tiled and
    /// (above a threshold) row-parallel across [`crate::pool::RotomPool`].
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        Tensor::from_vec(
            crate::kernels::matmul(&self.data, &other.data, m, k, n),
            m,
            n,
        )
    }

    /// `self (m x k) * other^T (n x k) -> m x n`.
    ///
    /// Small shapes avoid materializing the transpose; large shapes
    /// transpose once and reuse the tiled kernel.
    pub fn matmul_transpose_b(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        Tensor::from_vec(
            crate::kernels::matmul_transpose_b(&self.data, &other.data, m, k, n),
            m,
            n,
        )
    }

    /// `self^T (k x m) * other (m x n) -> k x n` — the weight-gradient
    /// contraction used by matmul backward passes, without the caller
    /// materializing the transpose.
    pub fn matmul_transpose_a(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transpose_a shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        Tensor::from_vec(
            crate::kernels::matmul_transpose_a(&self.data, &other.data, m, k, n),
            k,
            n,
        )
    }

    /// `self^T (k x m)^T=(m x k)… ` — transpose of an `m x k` tensor,
    /// producing `k x m`.
    pub fn transpose(&self) -> Tensor {
        Tensor::from_vec(
            crate::kernels::transpose(&self.data, self.rows, self.cols),
            self.cols,
            self.rows,
        )
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(
            self.data.iter().map(|&v| f(v)).collect(),
            self.rows,
            self.cols,
        )
    }

    /// Elementwise binary zip. Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "zip shape mismatch"
        );
        Tensor::from_vec(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            self.rows,
            self.cols,
        )
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "axpy shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place `self += other` — the gradient-accumulation primitive of the
    /// backward pass. Bit-identical to `axpy(1.0, other)` (`1.0 * b` rounds
    /// to `b` exactly) without paying for the multiply; elementwise adds
    /// carry no cross-element dependency, so the loop auto-vectorizes.
    pub fn add_assign_from(&mut self, other: &Tensor) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_assign_from shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean norm of all elements.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_shape_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.at(1, 2), 6.0);
        assert_eq!(t.row_slice(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(vec![1.0; 5], 2, 3);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], 2, 2);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_transpose_b_agrees_with_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), 2, 3);
        let b = Tensor::from_vec((0..12).map(|v| (v as f32) * 0.5).collect(), 4, 3);
        let direct = a.matmul_transpose_b(&b);
        let explicit = a.matmul(&b.transpose());
        assert_eq!(direct.data(), explicit.data());
    }

    #[test]
    fn transpose_is_involution() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), 2, 3);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::zeros(1, 3);
        let b = Tensor::row(vec![1.0, 2.0, 3.0]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    mod properties {
        use super::*;
        use rotom_rng::rngs::StdRng;
        use rotom_rng::{RngExt, SeedableRng};

        const CASES: usize = 32;

        fn tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
            let data = (0..rows * cols)
                .map(|_| rng.random_range(-3.0f32..3.0))
                .collect();
            Tensor::from_vec(data, rows, cols)
        }

        fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
            assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
            for (&x, &y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() <= tol, "{x} vs {y}");
            }
        }

        /// Matmul distributes over addition: A(B + C) = AB + AC.
        #[test]
        fn matmul_distributes() {
            let mut rng = StdRng::seed_from_u64(0x7e57_0001);
            for _ in 0..CASES {
                let a = tensor(&mut rng, 3, 4);
                let b = tensor(&mut rng, 4, 2);
                let c = tensor(&mut rng, 4, 2);
                let sum = b.zip(&c, |x, y| x + y);
                let lhs = a.matmul(&sum);
                let mut rhs = a.matmul(&b);
                rhs.axpy(1.0, &a.matmul(&c));
                assert_close(&lhs, &rhs, 1e-3);
            }
        }

        /// (AB)^T = B^T A^T.
        #[test]
        fn transpose_of_product() {
            let mut rng = StdRng::seed_from_u64(0x7e57_0002);
            for _ in 0..CASES {
                let a = tensor(&mut rng, 2, 3);
                let b = tensor(&mut rng, 3, 4);
                let lhs = a.matmul(&b).transpose();
                let rhs = b.transpose().matmul(&a.transpose());
                assert_close(&lhs, &rhs, 1e-4);
            }
        }

        /// matmul_transpose_b agrees with the explicit transpose form.
        #[test]
        fn matmul_tb_consistent() {
            let mut rng = StdRng::seed_from_u64(0x7e57_0003);
            for _ in 0..CASES {
                let a = tensor(&mut rng, 3, 5);
                let b = tensor(&mut rng, 4, 5);
                let fast = a.matmul_transpose_b(&b);
                let slow = a.matmul(&b.transpose());
                assert_close(&fast, &slow, 1e-4);
            }
        }

        /// Norm is absolutely homogeneous: ‖αx‖ = |α|·‖x‖.
        #[test]
        fn norm_homogeneous() {
            let mut rng = StdRng::seed_from_u64(0x7e57_0004);
            for _ in 0..CASES {
                let a = tensor(&mut rng, 2, 6);
                let alpha: f32 = rng.random_range(-4.0f32..4.0);
                let scaled = a.map(|v| v * alpha);
                assert!((scaled.norm() - alpha.abs() * a.norm()).abs() < 1e-2);
            }
        }
    }
}
