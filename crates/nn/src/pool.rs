//! A std-only scoped worker pool for data-parallel fan-out.
//!
//! The training hot paths (tiled matmul row-splitting, batch scoring,
//! augmentation fan-out) all share the same shape: N independent work items,
//! results needed back in input order. [`RotomPool`] packages that pattern on
//! top of [`std::thread::scope`] — no `rayon`/`crossbeam`, no unsafe, no
//! `'static` bounds on the closures, because scoped threads may borrow from
//! the caller's stack.
//!
//! A pool value is a *sizing policy* (how many workers to use), not a set of
//! live threads: workers are spawned per call and joined before the call
//! returns, which keeps borrows sound and keeps idle cost at zero. Thread
//! spawn overhead (~10µs) is negligible against the millisecond-scale work
//! items these paths dispatch; anything smaller should stay below the
//! serial-fallback thresholds in [`crate::kernels`].
//!
//! The process-wide default is [`RotomPool::global`], sized from
//! [`std::thread::available_parallelism`] and overridable with the
//! `ROTOM_THREADS` environment variable (read once, at first use). Every
//! helper guarantees **deterministic, input-ordered results** regardless of
//! worker count: parallelism never changes observable output.

use std::any::Any;
use std::ops::Range;
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

use crate::telemetry;
use crate::telemetry::Value;

/// Per-dispatch telemetry collector: one `pool` record per pool call, with
/// queue-wait (spawn-to-start latency) and busy time per worker. Only
/// constructed while telemetry is enabled, so the disabled path costs one
/// branch and never reads the clock. The inline (single-worker) path reports
/// `workers=1` with zero wait, so `pool` records exist at every thread count.
struct PoolDispatch {
    ctx: &'static str,
    items: usize,
    start: Instant,
    timings: Mutex<Vec<(u64, u64)>>,
}

impl PoolDispatch {
    fn begin(ctx: &'static str, items: usize) -> Option<Self> {
        telemetry::enabled().then(|| PoolDispatch {
            ctx,
            items,
            start: Instant::now(),
            timings: Mutex::new(Vec::new()),
        })
    }

    /// Called at the top of a worker body: returns (wait_us, busy-start).
    fn worker_begin(&self) -> (u64, Instant) {
        (self.start.elapsed().as_micros() as u64, Instant::now())
    }

    /// Called at the end of a worker body with `worker_begin`'s return.
    fn worker_end(&self, (wait_us, busy_start): (u64, Instant)) {
        let busy_us = busy_start.elapsed().as_micros() as u64;
        if let Ok(mut t) = self.timings.lock() {
            t.push((wait_us, busy_us));
        }
    }

    /// Emit the aggregated `pool` record after all workers joined.
    fn finish(self) {
        let total_us = self.start.elapsed().as_micros() as u64;
        let timings = self.timings.into_inner().unwrap_or_default();
        let workers = timings.len().max(1);
        let wait_max = timings.iter().map(|&(w, _)| w).max().unwrap_or(0);
        let busy_max = timings.iter().map(|&(_, b)| b).max().unwrap_or(0);
        let busy_total: u64 = timings.iter().map(|&(_, b)| b).sum();
        telemetry::emit(
            "pool",
            self.ctx,
            &[
                ("workers", Value::U64(workers as u64)),
                ("items", Value::U64(self.items as u64)),
                ("total_us", Value::U64(total_us)),
                ("wait_max_us", Value::U64(wait_max)),
                ("busy_max_us", Value::U64(busy_max)),
                ("busy_total_us", Value::U64(busy_total)),
            ],
        );
    }
}

/// Extract a human-readable message from a worker's panic payload.
fn payload_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Re-raise worker panics as one aggregated panic naming every failed worker
/// index, instead of aborting on the first `join` failure. No-op when no
/// worker failed. The pool itself is a stateless sizing policy, so a panicked
/// call never poisons subsequent calls.
fn raise_worker_failures(ctx: &str, failures: Vec<(usize, String)>) {
    if failures.is_empty() {
        return;
    }
    let detail: Vec<String> = failures
        .iter()
        .map(|(i, m)| format!("worker {i}: {m}"))
        .collect();
    panic!(
        "RotomPool::{ctx}: {} worker(s) panicked — {}",
        failures.len(),
        detail.join("; ")
    );
}

/// A scoped worker pool with a fixed worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotomPool {
    threads: usize,
}

static GLOBAL: OnceLock<RotomPool> = OnceLock::new();

impl RotomPool {
    /// A pool using exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized from the environment: `ROTOM_THREADS` if set to a
    /// positive integer (surrounding whitespace is tolerated), otherwise
    /// [`std::thread::available_parallelism`]. A set-but-invalid value (not
    /// a number, or zero) falls back too, but loudly: a one-shot stderr
    /// warning and telemetry counter name the rejected value instead of
    /// silently ignoring the operator's intent.
    pub fn from_env() -> Self {
        let threads = match std::env::var("ROTOM_THREADS") {
            Ok(raw) => {
                let trimmed = raw.trim();
                match trimmed.parse::<usize>() {
                    Ok(n) if n > 0 => Some(n),
                    _ if trimmed.is_empty() => None,
                    _ => {
                        static WARN_ONCE: Once = Once::new();
                        WARN_ONCE.call_once(|| {
                            eprintln!(
                                "rotom: ignoring invalid ROTOM_THREADS={raw:?} \
                                 (expected a positive integer); using detected parallelism"
                            );
                            telemetry::emit(
                                "counter",
                                "pool.rotom_threads_rejected",
                                &[("value", Value::Str(raw.clone()))],
                            );
                        });
                        None
                    }
                }
            }
            Err(_) => None,
        };
        let threads = threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Self::new(threads)
    }

    /// The process-wide shared pool (first use reads `ROTOM_THREADS`).
    pub fn global() -> &'static RotomPool {
        GLOBAL.get_or_init(RotomPool::from_env)
    }

    /// Worker count this pool dispatches to.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Compute `f(i)` for every `i in 0..n` and return the results in index
    /// order. Items are split into contiguous per-worker chunks; with one
    /// worker (or one item) this runs inline with no threads spawned.
    ///
    /// Workers collect their chunk locally and the chunks are concatenated
    /// in spawn order — one pass, no `Option` slot array — so the result is
    /// identical to the serial `(0..n).map(f)` regardless of worker count.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        let dispatch = PoolDispatch::begin("map", n);
        if workers <= 1 {
            let out = if let Some(d) = dispatch {
                let t = d.worker_begin();
                let out = (0..n).map(f).collect();
                d.worker_end(t);
                d.finish();
                out
            } else {
                (0..n).map(f).collect()
            };
            return out;
        }
        let chunk = n.div_ceil(workers);
        let mut out: Vec<T> = Vec::with_capacity(n);
        let mut failures: Vec<(usize, String)> = Vec::new();
        std::thread::scope(|scope| {
            let dispatch = &dispatch;
            let handles: Vec<_> = (0..n)
                .step_by(chunk)
                .map(|base| {
                    let f = &f;
                    let end = (base + chunk).min(n);
                    scope.spawn(move || {
                        let t = dispatch.as_ref().map(|d| d.worker_begin());
                        let chunk = (base..end).map(f).collect::<Vec<T>>();
                        if let (Some(d), Some(t)) = (dispatch.as_ref(), t) {
                            d.worker_end(t);
                        }
                        chunk
                    })
                })
                .collect();
            for (wi, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(chunk) => out.extend(chunk),
                    Err(payload) => failures.push((wi, payload_message(payload))),
                }
            }
        });
        if let Some(d) = dispatch {
            d.finish();
        }
        raise_worker_failures("map", failures);
        out
    }

    /// Split the index range `0..n` into at most `threads` contiguous
    /// sub-ranges (each a multiple of `granularity` long, except the last)
    /// and run `f(range)` on each in parallel.
    ///
    /// Used where the caller owns a pre-split output buffer (e.g. matmul row
    /// blocks) and only needs the range assignment.
    pub fn run_ranges<F>(&self, n: usize, granularity: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let g = granularity.max(1);
        let units = n.div_ceil(g);
        let workers = self.threads.min(units);
        let dispatch = PoolDispatch::begin("run_ranges", n);
        if workers <= 1 {
            if let Some(d) = dispatch {
                let t = d.worker_begin();
                if n > 0 {
                    f(0..n);
                }
                d.worker_end(t);
                d.finish();
            } else if n > 0 {
                f(0..n);
            }
            return;
        }
        let units_per = units.div_ceil(workers);
        let step = units_per * g;
        let mut failures: Vec<(usize, String)> = Vec::new();
        std::thread::scope(|scope| {
            let dispatch = &dispatch;
            let mut handles = Vec::new();
            let mut start = 0usize;
            while start < n {
                let end = (start + step).min(n);
                let f = &f;
                handles.push(scope.spawn(move || {
                    let t = dispatch.as_ref().map(|d| d.worker_begin());
                    f(start..end);
                    if let (Some(d), Some(t)) = (dispatch.as_ref(), t) {
                        d.worker_end(t);
                    }
                }));
                start = end;
            }
            for (wi, h) in handles.into_iter().enumerate() {
                if let Err(payload) = h.join() {
                    failures.push((wi, payload_message(payload)));
                }
            }
        });
        if let Some(d) = dispatch {
            d.finish();
        }
        raise_worker_failures("run_ranges", failures);
    }

    /// Split `data` into at most `threads` contiguous chunks of whole
    /// `width`-element rows and run `f(first_row, chunk)` on each in
    /// parallel. The chunks are disjoint `&mut` views, so workers can write
    /// their results in place with no synchronization.
    pub fn chunk_rows<T, F>(&self, data: &mut [T], width: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(width > 0, "row width must be positive");
        debug_assert_eq!(data.len() % width, 0, "data must be whole rows");
        let rows = data.len() / width;
        let workers = self.threads.min(rows);
        let dispatch = PoolDispatch::begin("chunk_rows", rows);
        if workers <= 1 {
            if let Some(d) = dispatch {
                let t = d.worker_begin();
                f(0, data);
                d.worker_end(t);
                d.finish();
            } else {
                f(0, data);
            }
            return;
        }
        let rows_per = rows.div_ceil(workers);
        let mut failures: Vec<(usize, String)> = Vec::new();
        std::thread::scope(|scope| {
            let dispatch = &dispatch;
            let handles: Vec<_> = data
                .chunks_mut(rows_per * width)
                .enumerate()
                .map(|(ci, chunk)| {
                    let f = &f;
                    scope.spawn(move || {
                        let t = dispatch.as_ref().map(|d| d.worker_begin());
                        f(ci * rows_per, chunk);
                        if let (Some(d), Some(t)) = (dispatch.as_ref(), t) {
                            d.worker_end(t);
                        }
                    })
                })
                .collect();
            for (wi, h) in handles.into_iter().enumerate() {
                if let Err(payload) = h.join() {
                    failures.push((wi, payload_message(payload)));
                }
            }
        });
        if let Some(d) = dispatch {
            d.finish();
        }
        raise_worker_failures("chunk_rows", failures);
    }
}

impl Default for RotomPool {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn new_clamps_to_one() {
        assert_eq!(RotomPool::new(0).threads(), 1);
        assert_eq!(RotomPool::new(3).threads(), 3);
    }

    #[test]
    fn map_preserves_order_at_any_width() {
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = RotomPool::new(threads);
            assert_eq!(pool.map(37, |i| i * i), expect, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let pool = RotomPool::new(4);
        assert_eq!(pool.map(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn map_borrows_from_caller_stack() {
        let data: Vec<usize> = (0..100).collect();
        let pool = RotomPool::new(4);
        let doubled = pool.map(data.len(), |i| data[i] * 2);
        assert_eq!(doubled[99], 198);
    }

    #[test]
    fn run_ranges_covers_exactly_once() {
        for threads in [1, 2, 5] {
            let pool = RotomPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
            pool.run_ranges(23, 4, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn run_ranges_respects_granularity() {
        let pool = RotomPool::new(3);
        let starts = std::sync::Mutex::new(Vec::new());
        pool.run_ranges(20, 8, |r| starts.lock().unwrap().push((r.start, r.end)));
        let mut s = starts.lock().unwrap().clone();
        s.sort_unstable();
        // 20 items at granularity 8 = 3 units; every boundary is a multiple
        // of 8 except the final end.
        for &(start, _) in &s {
            assert_eq!(start % 8, 0);
        }
        assert_eq!(s.last().unwrap().1, 20);
    }

    #[test]
    fn chunk_rows_writes_disjoint_chunks() {
        for threads in [1, 2, 4, 16] {
            let pool = RotomPool::new(threads);
            let mut data = vec![0u32; 9 * 5];
            pool.chunk_rows(&mut data, 5, |first_row, chunk| {
                for (r, row) in chunk.chunks_mut(5).enumerate() {
                    row.fill((first_row + r) as u32);
                }
            });
            for r in 0..9 {
                assert!(
                    data[r * 5..(r + 1) * 5].iter().all(|&v| v == r as u32),
                    "threads={threads} row {r}"
                );
            }
        }
    }

    #[test]
    fn worker_panic_is_aggregated_with_worker_index() {
        let pool = RotomPool::new(4);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(16, |i| {
                if i >= 8 {
                    panic!("boom at {i}");
                }
                i
            })
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("aggregated message");
        assert!(msg.contains("RotomPool::map"), "{msg}");
        assert!(
            msg.contains("worker 2") && msg.contains("worker 3"),
            "{msg}"
        );
        assert!(msg.contains("boom at 8"), "{msg}");
    }

    #[test]
    fn panicking_closure_does_not_poison_pool() {
        let pool = RotomPool::new(4);
        for round in 0..2 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run_ranges(12, 1, |r| {
                    if r.contains(&5) {
                        panic!("injected failure");
                    }
                })
            }));
            assert!(r.is_err(), "round {round} should have panicked");
            // The same pool value keeps working for every helper afterwards.
            assert_eq!(pool.map(8, |i| i * 3), vec![0, 3, 6, 9, 12, 15, 18, 21]);
            let hits: Vec<AtomicUsize> = (0..12).map(|_| AtomicUsize::new(0)).collect();
            pool.run_ranges(12, 1, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            let mut data = vec![0u32; 4 * 3];
            pool.chunk_rows(&mut data, 3, |first, chunk| {
                for (r, row) in chunk.chunks_mut(3).enumerate() {
                    row.fill((first + r) as u32);
                }
            });
            assert_eq!(data[9..12], [3, 3, 3]);
        }
    }

    #[test]
    fn from_env_trims_whitespace_and_survives_invalid_values() {
        // This is the only test in the binary that mutates ROTOM_THREADS
        // (everything else reads it at most once through the cached global);
        // the original value is restored before returning.
        let saved = std::env::var("ROTOM_THREADS").ok();
        std::env::set_var("ROTOM_THREADS", " 8 ");
        assert_eq!(RotomPool::from_env().threads(), 8, "trimmed value parses");
        std::env::set_var("ROTOM_THREADS", "8\n");
        assert_eq!(
            RotomPool::from_env().threads(),
            8,
            "trailing newline parses"
        );
        for bad in ["eight", "0", "-2", "3.5"] {
            std::env::set_var("ROTOM_THREADS", bad);
            // Invalid values warn (one-shot) and fall back to detected
            // parallelism, which is always at least 1.
            assert!(RotomPool::from_env().threads() >= 1, "bad value {bad:?}");
        }
        match saved {
            Some(v) => std::env::set_var("ROTOM_THREADS", v),
            None => std::env::remove_var("ROTOM_THREADS"),
        }
    }

    #[test]
    fn global_pool_is_cached() {
        assert!(std::ptr::eq(RotomPool::global(), RotomPool::global()));
        assert!(RotomPool::global().threads() >= 1);
    }
}
