//! Cache-blocked, register-tiled matmul kernels with row-parallel dispatch.
//!
//! Three GEMM variants back the tensor/autodiff hot paths:
//!
//! * [`matmul`] — `C = A·B`,
//! * [`matmul_transpose_b`] — `C = A·Bᵀ` (forward projections store weights
//!   row-major per output),
//! * [`matmul_transpose_a`] — `C = Aᵀ·G` (the weight-gradient contraction in
//!   backward passes).
//!
//! # Kernel structure
//!
//! The core is an `MR×NR` register micro-kernel: an `MR`-row by `NR`-column
//! tile of `C` is held in accumulator registers across the *entire* `k`
//! extent, so each output element is loaded and stored exactly once instead
//! of once per `k` step — the naive i-k-j loop's dominant cost. Per `k` step
//! the micro-kernel reads one `NR`-wide vector of `B` (shared by all `MR`
//! rows) and `MR` scalars of `A`. The loop is tile-column outer: each
//! `NR`-wide strip of `B` is packed once into a contiguous `k×NR` panel and
//! swept down all row blocks while it sits in L1 (without the pack, large
//! `n` re-streams the strided strip from L2 for every row block).
//!
//! Transposed variants materialize the (cheap, `O(n·k)`) blocked transpose
//! and reuse the single tiled core, so all three variants share one code
//! path and one accumulation order.
//!
//! # SIMD dispatch
//!
//! On x86-64 the full-tile micro-kernel has an AVX2+FMA variant selected
//! once per process by runtime feature detection (the workspace compiles
//! against baseline x86-64, so the intrinsics path is how wide vectors are
//! reached without `-C target-cpu`). Detection is process-global, so every
//! invocation — serial or parallel, any thread — takes the same code path.
//!
//! # Determinism
//!
//! Every kernel — naive reference, serial tiled, parallel tiled at any
//! worker count — accumulates each output element with a **single
//! accumulator in strictly increasing `k` order**. Tiling only reorders
//! *which elements* are computed when, never the summation order *within* an
//! element, and the parallel path splits work on `MR`-row boundaries with
//! each row block computed by the same serial code. Serial and parallel
//! tiled results are therefore bit-identical at every `ROTOM_THREADS`
//! setting; tests assert this. The naive reference shares the summation
//! order but may differ from the tiled path in final rounding when the FMA
//! variant is active (fused multiply-add rounds once per step), which is
//! why cross-kernel tests compare within 1e-4 while cross-thread-count
//! tests compare bits.
//!
//! Shapes below [`SMALL_FLOPS`] multiply-adds skip tiling (tiny meta-model
//! updates would pay more in tile-edge handling than they save), and shapes
//! below [`PAR_MIN_FLOPS`] skip the thread fan-out.

use crate::pool::RotomPool;

/// Rows of `C` per register tile.
pub const MR: usize = 4;
/// Columns of `C` per register tile — two 8-wide AVX vectors in the FMA
/// micro-kernel (the scalar fallback walks the same width).
pub const NR: usize = 16;
/// Below this many multiply-adds (`m·k·n`), use the plain i-k-j kernel.
pub const SMALL_FLOPS: usize = 32 * 32 * 32;
/// Below this many multiply-adds, never fan out across threads.
pub const PAR_MIN_FLOPS: usize = 64 * 64 * 64;

/// Reference kernel: the seed's naive i-k-j loop (single accumulator per
/// element, increasing `k`), kept as the ground truth for property tests and
/// the benchmark baseline.
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Blocked out-of-place transpose: `src` is `rows×cols`, the result is
/// `cols×rows`. Blocking keeps both access streams within a few cache lines.
pub fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    debug_assert_eq!(src.len(), rows * cols);
    const TB: usize = 32;
    let mut out = vec![0.0f32; rows * cols];
    for r0 in (0..rows).step_by(TB) {
        let r1 = (r0 + TB).min(rows);
        for c0 in (0..cols).step_by(TB) {
            let c1 = (c0 + TB).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    out[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
    out
}

/// Full `MR×NR` register tile over the whole `k` extent.
///
/// `a_rows` holds the `MR` row slices of `A` for this tile; `panel` is the
/// packed `k×NR` strip of `B` for this tile column (contiguous, stride
/// `NR`); the tile's top-left output column is `j0`.
#[inline]
fn micro_full(a_rows: [&[f32]; MR], panel: &[f32], j0: usize, out_rows: &mut [&mut [f32]; MR]) {
    let k = a_rows[0].len();
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        let b_vec: &[f32; NR] = panel[p * NR..(p + 1) * NR].try_into().unwrap();
        for r in 0..MR {
            let av = a_rows[r][p];
            for c in 0..NR {
                acc[r][c] += av * b_vec[c];
            }
        }
    }
    for r in 0..MR {
        out_rows[r][j0..j0 + NR].copy_from_slice(&acc[r]);
    }
}

/// AVX2+FMA micro-kernel, selected at runtime on x86-64.
#[cfg(target_arch = "x86_64")]
mod fma {
    use super::{MR, NR};
    use core::arch::x86_64::*;

    /// Whether the running CPU supports the AVX2+FMA micro-kernel. Detected
    /// once; the cached result makes the dispatch process-global, so serial
    /// and parallel runs (and every worker thread) always agree on the path.
    #[inline]
    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
        })
    }

    /// AVX2+FMA variant of [`super::micro_full`]: same `MR×NR` tile, same
    /// per-element strictly-increasing-`k` accumulation (each output element
    /// lives in one SIMD lane for the whole `k` extent), fused
    /// multiply-add rounding.
    ///
    /// # Safety
    /// Caller must have checked [`available`]. Slice bounds are the same as
    /// the scalar kernel's: `a_rows` are `k`-long, `panel` is `k×NR`, and
    /// `j0 + NR ≤ out_rows[r].len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn micro_full(
        a_rows: [&[f32]; MR],
        panel: &[f32],
        j0: usize,
        out_rows: &mut [&mut [f32]; MR],
    ) {
        let k = a_rows[0].len();
        debug_assert!(panel.len() >= k * NR);
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        for p in 0..k {
            let bp = panel.as_ptr().add(p * NR);
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for r in 0..MR {
                let av = _mm256_set1_ps(*a_rows[r].get_unchecked(p));
                acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
                acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
            }
        }
        for r in 0..MR {
            let op = out_rows[r].as_mut_ptr().add(j0);
            _mm256_storeu_ps(op, acc[r][0]);
            _mm256_storeu_ps(op.add(8), acc[r][1]);
        }
    }
}

/// Edge tile: `mr ≤ MR` rows by `nr ≤ NR` columns. Same accumulation order
/// as [`micro_full`], scalar-indexed for the ragged bounds.
#[inline]
fn micro_edge(
    a_block: &[f32],
    k: usize,
    b: &[f32],
    n: usize,
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    out_block: &mut [f32],
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        let b_row = &b[p * n + j0..p * n + j0 + nr];
        for r in 0..mr {
            let av = a_block[(i0 + r) * k + p];
            for (c, &bv) in b_row.iter().enumerate() {
                acc[r][c] += av * bv;
            }
        }
    }
    for r in 0..mr {
        out_block[(i0 + r) * n + j0..(i0 + r) * n + j0 + nr].copy_from_slice(&acc[r][..nr]);
    }
}

/// Tiled kernel over a contiguous block of `rows` output rows.
///
/// `a_block` is the matching `rows×k` slice of `A`; `out_block` the
/// `rows×n` destination. This is the unit the parallel path dispatches per
/// worker, so serial and parallel runs execute identical code per row.
///
/// Loop order is tile-column outer: each `NR`-wide strip of `B` is packed
/// into a contiguous `k×NR` panel once, then swept down all `MR`-row blocks
/// while the panel sits in L1. Without the pack, large `n` re-streams the
/// strided strip from L2 for every row block (`B` gets re-read `rows/MR`
/// times), which caps the kernel well below FMA throughput.
fn matmul_block_tiled(
    a_block: &[f32],
    rows: usize,
    k: usize,
    b: &[f32],
    n: usize,
    out_block: &mut [f32],
) {
    let full_rows = rows - rows % MR;
    let full_cols = n - n % NR;
    #[cfg(target_arch = "x86_64")]
    let use_fma = fma::available();
    let mut panel = vec![0.0f32; k * NR];
    let mut j0 = 0;
    while j0 < full_cols {
        for p in 0..k {
            panel[p * NR..(p + 1) * NR].copy_from_slice(&b[p * n + j0..p * n + j0 + NR]);
        }
        let mut i0 = 0;
        while i0 < full_rows {
            let (a0, rest) = a_block[i0 * k..].split_at(k);
            let (a1, rest) = rest.split_at(k);
            let (a2, rest) = rest.split_at(k);
            let a3 = &rest[..k];
            let (o0, rest) = out_block[i0 * n..].split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, rest) = rest.split_at_mut(n);
            let (o3, _) = rest.split_at_mut(n);
            let mut out_rows = [o0, o1, o2, o3];
            #[cfg(target_arch = "x86_64")]
            if use_fma {
                // SAFETY: `available()` checked; the panel is `k×NR` and
                // every out row is `n ≥ j0 + NR` long.
                unsafe { fma::micro_full([a0, a1, a2, a3], &panel, j0, &mut out_rows) };
                i0 += MR;
                continue;
            }
            micro_full([a0, a1, a2, a3], &panel, j0, &mut out_rows);
            i0 += MR;
        }
        j0 += NR;
    }
    // Edges share the scalar kernel and read `b` directly: the ragged
    // column strip (j ≥ full_cols, all rows) and the ragged row block
    // (i ≥ full_rows, full-width columns).
    for i0 in (0..rows).step_by(MR) {
        let mr = (rows - i0).min(MR);
        let mut j0 = if i0 < full_rows { full_cols } else { 0 };
        while j0 < n {
            let nr = (n - j0).min(NR);
            micro_edge(a_block, k, b, n, i0, j0, mr, nr, out_block);
            j0 += nr;
        }
    }
}

/// `C = A·B` with an explicit pool (`A`: `m×k`, `B`: `k×n`).
pub fn matmul_with_pool(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    pool: &RotomPool,
) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let flops = m * k * n;
    if flops < SMALL_FLOPS {
        return matmul_naive(a, b, m, k, n);
    }
    let mut out = vec![0.0f32; m * n];
    if flops < PAR_MIN_FLOPS || pool.threads() <= 1 || m < 2 * MR {
        matmul_block_tiled(a, m, k, b, n, &mut out);
    } else {
        // Split on MR-row boundaries so every worker runs full tiles with
        // the exact code (and summation order) the serial path uses.
        //
        // Soundness of the raw-pointer fan-out: `run_ranges` hands every
        // worker a distinct, non-overlapping row range, so the re-sliced
        // `&mut` views never alias, and it joins all workers before
        // returning, so no view outlives the buffer borrow.
        let out_base = SendPtr(out.as_mut_ptr());
        let out_base = &out_base;
        pool.run_ranges(m, MR, move |range| {
            let rows = range.end - range.start;
            let a_block = &a[range.start * k..range.end * k];
            let out_block = unsafe {
                std::slice::from_raw_parts_mut(out_base.0.add(range.start * n), rows * n)
            };
            matmul_block_tiled(a_block, rows, k, b, n, out_block);
        });
    }
    out
}

/// A raw pointer blessed for cross-thread sharing; see the soundness note at
/// its single use site in [`matmul_with_pool`].
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// `C = A·B` on the global pool.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    matmul_with_pool(a, b, m, k, n, RotomPool::global())
}

/// Naive reference for `A·Bᵀ` (`A`: `m×k`, `B`: `n×k`): per-element dot
/// product, increasing `k`.
pub fn matmul_transpose_b_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// `C = A·Bᵀ` with an explicit pool (`A`: `m×k`, `B`: `n×k`).
///
/// Large shapes transpose `B` once and reuse the tiled core (the transpose
/// is `O(n·k)` against the product's `O(m·n·k)`); small shapes use the dot
/// form directly. Both paths share the increasing-`k` single-accumulator
/// order, so the choice never changes results.
pub fn matmul_transpose_b_with_pool(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    pool: &RotomPool,
) -> Vec<f32> {
    if m * k * n < SMALL_FLOPS {
        return matmul_transpose_b_naive(a, b, m, k, n);
    }
    let bt = transpose(b, n, k);
    matmul_with_pool(a, &bt, m, k, n, pool)
}

/// `C = A·Bᵀ` on the global pool.
pub fn matmul_transpose_b(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    matmul_transpose_b_with_pool(a, b, m, k, n, RotomPool::global())
}

/// `C = Aᵀ·G` with an explicit pool (`A`: `m×k`, `G`: `m×n`, `C`: `k×n`).
///
/// This is the weight-gradient contraction (`dW = Xᵀ·dY`) in every matmul
/// backward. Accumulation runs over `m` in increasing order on both paths.
pub fn matmul_transpose_a_with_pool(
    a: &[f32],
    g: &[f32],
    m: usize,
    k: usize,
    n: usize,
    pool: &RotomPool,
) -> Vec<f32> {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(g.len(), m * n);
    if m * k * n < SMALL_FLOPS {
        // Direct q-i-j form: out[q][j] += a[i][q] * g[i][j], i increasing.
        let mut out = vec![0.0f32; k * n];
        for q in 0..k {
            let o_row = &mut out[q * n..(q + 1) * n];
            for i in 0..m {
                let av = a[i * k + q];
                if av == 0.0 {
                    continue;
                }
                let g_row = &g[i * n..(i + 1) * n];
                for (o, &gv) in o_row.iter_mut().zip(g_row) {
                    *o += av * gv;
                }
            }
        }
        return out;
    }
    let at = transpose(a, m, k);
    matmul_with_pool(&at, g, k, m, n, pool)
}

/// `C = Aᵀ·G` on the global pool.
pub fn matmul_transpose_a(a: &[f32], g: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    matmul_transpose_a_with_pool(a, g, m, k, n, RotomPool::global())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_rng::rngs::StdRng;
    use rotom_rng::{split_seed, RngExt, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols)
            .map(|_| rng.random_range(-2.0f32..2.0))
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "{ctx}: element {i}: {x} vs {y}");
        }
    }

    /// Shapes covering tile edges: non-multiples of MR/NR, m=1 row vectors,
    /// tall/wide extremes, and sizes straddling both dispatch thresholds.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 7, 5),
        (1, 64, 64),
        (3, 3, 3),
        (4, 8, 8),
        (5, 9, 13),
        (17, 31, 29),
        (32, 32, 32),
        (33, 65, 63),
        (64, 64, 64),
        (70, 64, 70),
        (1, 300, 300),
        (128, 17, 128),
    ];

    #[test]
    fn tiled_matches_naive_within_1e4() {
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4e1, case as u64));
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let naive = matmul_naive(&a, &b, m, k, n);
            let tiled = matmul_with_pool(&a, &b, m, k, n, &RotomPool::new(1));
            assert_close(&naive, &tiled, 1e-4, &format!("matmul {m}x{k}x{n}"));
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        // Explicit pools, so the assertion holds regardless of the
        // ROTOM_THREADS environment.
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4e2, case as u64));
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let serial = matmul_with_pool(&a, &b, m, k, n, &RotomPool::new(1));
            for threads in [2, 3, 8] {
                let par = matmul_with_pool(&a, &b, m, k, n, &RotomPool::new(threads));
                assert_eq!(serial, par, "matmul {m}x{k}x{n} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_is_bit_identical_at_large_size() {
        // Big enough to actually cross PAR_MIN_FLOPS and fan out.
        let (m, k, n) = (96, 80, 96);
        let mut rng = StdRng::seed_from_u64(0x4e3);
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let serial = matmul_with_pool(&a, &b, m, k, n, &RotomPool::new(1));
        for threads in [2, 5, 16] {
            let par = matmul_with_pool(&a, &b, m, k, n, &RotomPool::new(threads));
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn transpose_b_matches_naive_and_explicit_transpose() {
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4e4, case as u64));
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, n, k);
            let fast = matmul_transpose_b_with_pool(&a, &b, m, k, n, &RotomPool::new(2));
            let naive = matmul_transpose_b_naive(&a, &b, m, k, n);
            assert_close(&fast, &naive, 1e-4, &format!("matmul_tb {m}x{k}x{n}"));
            let explicit = matmul_with_pool(&a, &transpose(&b, n, k), m, k, n, &RotomPool::new(2));
            assert_eq!(fast, explicit, "tb vs explicit transpose {m}x{k}x{n}");
        }
    }

    #[test]
    fn transpose_a_matches_explicit_transpose() {
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4e5, case as u64));
            let a = random_matrix(&mut rng, m, k);
            let g = random_matrix(&mut rng, m, n);
            let fast = matmul_transpose_a_with_pool(&a, &g, m, k, n, &RotomPool::new(2));
            let explicit = matmul_with_pool(&transpose(&a, m, k), &g, k, m, n, &RotomPool::new(2));
            assert_close(&fast, &explicit, 1e-4, &format!("matmul_ta {m}x{k}x{n}"));
        }
    }

    #[test]
    fn transpose_roundtrips() {
        let mut rng = StdRng::seed_from_u64(0x4e6);
        for &(rows, cols) in &[(1, 1), (1, 17), (33, 65), (64, 64), (100, 3)] {
            let src = random_matrix(&mut rng, rows, cols);
            let rt = transpose(&transpose(&src, rows, cols), cols, rows);
            assert_eq!(src, rt, "{rows}x{cols}");
        }
    }

    #[test]
    fn zero_sized_edges() {
        // m=0 or n=0 products are legal (empty batches) and return empty.
        assert!(matmul(&[], &[1.0, 2.0], 0, 1, 2).is_empty());
        let out = matmul(&[1.0, 2.0], &[], 1, 2, 0);
        assert!(out.is_empty());
    }
}
