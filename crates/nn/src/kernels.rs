//! Cache-blocked, register-tiled matmul kernels with row-parallel dispatch.
//!
//! Three GEMM variants back the tensor/autodiff hot paths:
//!
//! * [`matmul`] — `C = A·B`,
//! * [`matmul_transpose_b`] — `C = A·Bᵀ` (forward projections store weights
//!   row-major per output),
//! * [`matmul_transpose_a`] — `C = Aᵀ·G` (the weight-gradient contraction in
//!   backward passes).
//!
//! # Kernel structure
//!
//! The core is an `MR×NR` register micro-kernel: an `MR`-row by `NR`-column
//! tile of `C` is held in accumulator registers across the *entire* `k`
//! extent, so each output element is loaded and stored exactly once instead
//! of once per `k` step — the naive i-k-j loop's dominant cost. Per `k` step
//! the micro-kernel reads one `NR`-wide vector of `B` (shared by all `MR`
//! rows) and `MR` scalars of `A`. The loop is tile-column outer: each
//! `NR`-wide strip of `B` is packed once into a contiguous `k×NR` panel and
//! swept down all row blocks while it sits in L1 (without the pack, large
//! `n` re-streams the strided strip from L2 for every row block).
//!
//! The core is generic over how the right-hand operand is stored ([`BSrc`]):
//! row-major, **transposed** (panels are packed straight from the strided
//! columns of the stored matrix, so `A·Bᵀ` and `Aᵀ·G` never materialize a
//! transpose), or **prepacked** ([`PackedB`] — the panels were built earlier
//! and are reused across calls; parameter matrices cache them across a whole
//! optimizer step, see `params.rs`). Panel contents are identical across the
//! three sources, so the choice never changes results.
//!
//! # SIMD dispatch
//!
//! On x86-64 the full-tile micro-kernel has an AVX2+FMA variant selected
//! once per process by runtime feature detection (the workspace compiles
//! against baseline x86-64, so the intrinsics path is how wide vectors are
//! reached without `-C target-cpu`). Detection is process-global, so every
//! invocation — serial or parallel, any thread — takes the same code path.
//!
//! # Determinism
//!
//! Every kernel — naive reference, serial tiled, parallel tiled at any
//! worker count, cold-packed or prepacked — accumulates each output element
//! with a **single accumulator in strictly increasing `k` order**. Tiling
//! only reorders *which elements* are computed when, never the summation
//! order *within* an element, and the parallel path splits work on `MR`-row
//! boundaries with each row block computed by the same serial code. Serial
//! and parallel tiled results are therefore bit-identical at every
//! `ROTOM_THREADS` setting; tests assert this. The naive reference shares
//! the summation order but may differ from the tiled path in final rounding
//! when the FMA variant is active (fused multiply-add rounds once per step),
//! which is why cross-kernel tests compare within 1e-4 while
//! cross-thread-count and cross-storage tests compare bits.
//!
//! Shapes below [`SMALL_FLOPS`] multiply-adds skip tiling (tiny meta-model
//! updates would pay more in tile-edge handling than they save), and shapes
//! below [`PAR_MIN_FLOPS`] skip the thread fan-out.
//!
//! # Allocation
//!
//! The `*_into` variants write into caller-provided buffers (the tape arena
//! feeds them recycled ones), and all transient pack/transpose scratch comes
//! from a small thread-local pool, so a steady-state GEMM performs no heap
//! allocation.

use crate::pool::RotomPool;
use std::cell::RefCell;

/// Rows of `C` per register tile.
pub const MR: usize = 4;
/// Columns of `C` per register tile — two 8-wide AVX vectors in the FMA
/// micro-kernel (the scalar fallback walks the same width).
pub const NR: usize = 16;
/// Below this many multiply-adds (`m·k·n`), use the plain i-k-j kernel.
pub const SMALL_FLOPS: usize = 32 * 32 * 32;
/// Below this many multiply-adds, never fan out across threads.
pub const PAR_MIN_FLOPS: usize = 64 * 64 * 64;

// ---------------------------------------------------------------------------
// Dispatch profiling (telemetry)
// ---------------------------------------------------------------------------

/// GEMM dispatch-path counters for the telemetry plane.
///
/// Each public GEMM entry point bumps one process-global counter for the
/// path it chose (naive, tiled serial, tiled parallel). Counting is gated on
/// [`telemetry::enabled`], so the disabled path costs one branch per GEMM
/// call and no atomic traffic; counts are cumulative and read out as gauges
/// (typically once per epoch via [`profile::emit_gemm_gauges`]).
pub mod profile {
    use crate::telemetry::{self, Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(super) static NAIVE: AtomicU64 = AtomicU64::new(0);
    pub(super) static TILED_SERIAL: AtomicU64 = AtomicU64::new(0);
    pub(super) static TILED_PARALLEL: AtomicU64 = AtomicU64::new(0);
    // Quantized i8 GEMM dispatches. Unlike the tiers above this counter is
    // bumped unconditionally (one relaxed fetch_add per GEMM, negligible
    // next to the GEMM itself) so `/metrics` can report the quant tier
    // without requiring telemetry to be on.
    pub(super) static QUANT_I8: AtomicU64 = AtomicU64::new(0);

    // Forward-kernel tier counters (inference plane): per elementwise kernel
    // family, one counter for the SIMD tier and one for the scalar fallback,
    // plus one for the fused GEMM+bias+activation entry point.
    pub(super) static SOFTMAX_SIMD: AtomicU64 = AtomicU64::new(0);
    pub(super) static SOFTMAX_SCALAR: AtomicU64 = AtomicU64::new(0);
    pub(super) static LAYERNORM_SIMD: AtomicU64 = AtomicU64::new(0);
    pub(super) static LAYERNORM_SCALAR: AtomicU64 = AtomicU64::new(0);
    pub(super) static GELU_SIMD: AtomicU64 = AtomicU64::new(0);
    pub(super) static GELU_SCALAR: AtomicU64 = AtomicU64::new(0);
    pub(super) static FUSED_BIAS_ACT: AtomicU64 = AtomicU64::new(0);

    #[inline]
    pub(super) fn bump(counter: &AtomicU64) {
        if telemetry::enabled() {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cumulative `(naive, tiled_serial, tiled_parallel)` dispatch counts
    /// since process start (all zero unless telemetry is enabled).
    pub fn gemm_counters() -> (u64, u64, u64) {
        (
            NAIVE.load(Ordering::Relaxed),
            TILED_SERIAL.load(Ordering::Relaxed),
            TILED_PARALLEL.load(Ordering::Relaxed),
        )
    }

    /// Cumulative quantized-i8 GEMM dispatch count since process start.
    /// Counted unconditionally (not gated on telemetry).
    pub fn quant_i8_count() -> u64 {
        QUANT_I8.load(Ordering::Relaxed)
    }

    /// Whether the AVX2+FMA micro-kernel is active on this machine.
    pub fn fma_active() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            super::fma::available()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Whether the AVX2 i8 micro-kernel is active on this machine.
    pub fn quant_simd_active() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            super::qi8::available()
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Emit one `gauge` record with the cumulative GEMM dispatch counters
    /// and the SIMD path in use. No-op when telemetry is disabled.
    pub fn emit_gemm_gauges() {
        if !telemetry::enabled() {
            return;
        }
        let (naive, serial, parallel) = gemm_counters();
        telemetry::emit(
            "gauge",
            "kernels.gemm_dispatch",
            &[
                ("naive", Value::U64(naive)),
                ("tiled_serial", Value::U64(serial)),
                ("tiled_parallel", Value::U64(parallel)),
                ("quant_i8", Value::U64(quant_i8_count())),
                ("fma", Value::U64(fma_active() as u64)),
                ("quant_simd", Value::U64(quant_simd_active() as u64)),
            ],
        );
    }

    /// Cumulative forward-kernel tier counts since process start, as
    /// `(softmax_simd, softmax_scalar, layernorm_simd, layernorm_scalar,
    /// gelu_simd, gelu_scalar, fused_bias_act)` (all zero unless telemetry is
    /// enabled).
    #[allow(clippy::type_complexity)]
    pub fn forward_counters() -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            SOFTMAX_SIMD.load(Ordering::Relaxed),
            SOFTMAX_SCALAR.load(Ordering::Relaxed),
            LAYERNORM_SIMD.load(Ordering::Relaxed),
            LAYERNORM_SCALAR.load(Ordering::Relaxed),
            GELU_SIMD.load(Ordering::Relaxed),
            GELU_SCALAR.load(Ordering::Relaxed),
            FUSED_BIAS_ACT.load(Ordering::Relaxed),
        )
    }

    /// Emit one `gauge` record with the cumulative forward-kernel tier
    /// counters (inference plane). No-op when telemetry is disabled.
    pub fn emit_forward_gauges() {
        if !telemetry::enabled() {
            return;
        }
        let (sm_v, sm_s, ln_v, ln_s, ge_v, ge_s, fused) = forward_counters();
        telemetry::emit(
            "gauge",
            "kernels.forward_dispatch",
            &[
                ("softmax_simd", Value::U64(sm_v)),
                ("softmax_scalar", Value::U64(sm_s)),
                ("layernorm_simd", Value::U64(ln_v)),
                ("layernorm_scalar", Value::U64(ln_s)),
                ("gelu_simd", Value::U64(ge_v)),
                ("gelu_scalar", Value::U64(ge_s)),
                ("fused_bias_act", Value::U64(fused)),
            ],
        );
    }
}

// ---------------------------------------------------------------------------
// Thread-local scratch pool
// ---------------------------------------------------------------------------

thread_local! {
    /// Recycled pack/transpose scratch buffers. Worker threads are scoped
    /// (they die at the end of each pool call), so cross-call reuse happens
    /// on long-lived threads — in particular the main thread, where every
    /// serial-path kernel runs.
    static SCRATCH: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Take a scratch buffer of `len` zero-initialized elements from the
/// thread-local pool (every byte is overwritten by the pack loops before
/// use; the zero fill just keeps the buffer initialization safe).
fn take_scratch(len: usize) -> Vec<f32> {
    let mut v = SCRATCH.with(|s| s.borrow_mut().pop()).unwrap_or_default();
    v.clear();
    v.resize(len, 0.0);
    v
}

/// Return a scratch buffer to the thread-local pool (capped for hygiene).
fn put_scratch(v: Vec<f32>) {
    SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        if s.len() < 8 {
            s.push(v);
        }
    });
}

thread_local! {
    /// Recycled byte buffers for the quantized-activation staging area of
    /// the i8 GEMM path (same lifecycle as [`SCRATCH`]).
    static QSCRATCH: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Take a `len`-byte zeroed buffer from the thread-local byte pool.
fn take_qscratch(len: usize) -> Vec<u8> {
    let mut v = QSCRATCH.with(|s| s.borrow_mut().pop()).unwrap_or_default();
    v.clear();
    v.resize(len, 0);
    v
}

/// Return a byte buffer to the thread-local pool (capped for hygiene).
fn put_qscratch(v: Vec<u8>) {
    QSCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        if s.len() < 8 {
            s.push(v);
        }
    });
}

/// Reference kernel: the seed's naive i-k-j loop (single accumulator per
/// element, increasing `k`), kept as the ground truth for property tests and
/// the benchmark baseline.
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    matmul_naive_into(a, b, m, k, n, &mut out);
    out
}

/// [`matmul_naive`] writing into a caller buffer (fully overwritten).
fn matmul_naive_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    #[cfg(target_arch = "x86_64")]
    if avx::available() {
        for i in 0..m {
            let o_row = &mut out[i * n..(i + 1) * n];
            // In-bounds: row `i` of `a` spans `cnt·stride = k` elements.
            unsafe { avx::row_accum(a.as_ptr().add(i * k), 1, k, b.as_ptr(), n, o_row) };
        }
        return;
    }
    out.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Blocked out-of-place transpose: `src` is `rows×cols`, the result is
/// `cols×rows`. Blocking keeps both access streams within a few cache lines.
pub fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    debug_assert_eq!(src.len(), rows * cols);
    const TB: usize = 32;
    let mut out = vec![0.0f32; rows * cols];
    for r0 in (0..rows).step_by(TB) {
        let r1 = (r0 + TB).min(rows);
        for c0 in (0..cols).step_by(TB) {
            let c1 = (c0 + TB).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    out[c * rows + r] = src[r * cols + c];
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Packed panels
// ---------------------------------------------------------------------------

/// The full `NR`-wide strips of a GEMM right-hand operand, packed into
/// contiguous `k×NR` panels — the exact buffers the tiled core builds on the
/// fly, captured so they can be reused across calls. Ragged trailing columns
/// (`n % NR`) are not stored; edge tiles read the raw operand.
///
/// Parameter matrices cache a `PackedB` (plus one of their transpose) across
/// matmul calls and across the three per-step passes of the meta-training
/// loop; `params.rs` invalidates the cache whenever a value mutates, so
/// packing cost is paid once per optimizer step instead of once per matmul.
#[derive(Debug, Clone)]
pub struct PackedB {
    k: usize,
    n: usize,
    panels: Vec<f32>,
}

impl PackedB {
    /// Pack a row-major `k×n` operand.
    pub fn pack_row_major(b: &[f32], k: usize, n: usize) -> Self {
        debug_assert_eq!(b.len(), k * n);
        let full_cols = n - n % NR;
        let mut panels = vec![0.0f32; k * full_cols];
        let mut off = 0;
        let mut j0 = 0;
        while j0 < full_cols {
            for p in 0..k {
                panels[off + p * NR..off + (p + 1) * NR]
                    .copy_from_slice(&b[p * n + j0..p * n + j0 + NR]);
            }
            off += k * NR;
            j0 += NR;
        }
        Self { k, n, panels }
    }

    /// Pack the *transpose* of an `n×k` row-major matrix, i.e. the logical
    /// operand is `srcᵀ` (`k×n`). Panels are packed straight from the
    /// strided columns, with contents bit-identical to
    /// `pack_row_major(transpose(src))`.
    pub fn pack_transposed(src: &[f32], k: usize, n: usize) -> Self {
        debug_assert_eq!(src.len(), k * n);
        let full_cols = n - n % NR;
        let mut panels = vec![0.0f32; k * full_cols];
        let mut off = 0;
        let mut j0 = 0;
        while j0 < full_cols {
            for c in 0..NR {
                let col = &src[(j0 + c) * k..(j0 + c + 1) * k];
                for (p, &v) in col.iter().enumerate() {
                    panels[off + p * NR + c] = v;
                }
            }
            off += k * NR;
            j0 += NR;
        }
        Self { k, n, panels }
    }

    /// Logical `(k, n)` shape of the packed operand.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    /// Retained panel bytes (diagnostics).
    pub fn bytes(&self) -> usize {
        self.panels.len() * std::mem::size_of::<f32>()
    }

    /// The stored panel for full strip `j0` (`j0 % NR == 0`,
    /// `j0 + NR <= n`).
    #[inline]
    fn strip(&self, j0: usize) -> &[f32] {
        &self.panels[(j0 / NR) * self.k * NR..][..self.k * NR]
    }
}

// ---------------------------------------------------------------------------
// B-operand abstraction
// ---------------------------------------------------------------------------

/// How the tiled core reads its logical `k×n` right-hand operand. Panel
/// contents and edge element values are identical across implementations, so
/// swapping sources never changes results (the determinism tests pin this).
trait BSrc: Sync {
    /// The packed `k×NR` panel for full strip `j0`. `scratch` is a `k×NR`
    /// buffer the implementation may pack into (prepacked sources return
    /// their stored panel instead).
    fn panel<'a>(&'a self, j0: usize, k: usize, scratch: &'a mut [f32]) -> &'a [f32];
    /// Element `(p, j)` of the logical operand (edge tiles only).
    fn at(&self, p: usize, j: usize) -> f32;
}

/// Row-major `k×n` storage.
struct BRowMajor<'b> {
    b: &'b [f32],
    n: usize,
}

impl BSrc for BRowMajor<'_> {
    #[inline]
    fn panel<'a>(&'a self, j0: usize, k: usize, scratch: &'a mut [f32]) -> &'a [f32] {
        for p in 0..k {
            scratch[p * NR..(p + 1) * NR]
                .copy_from_slice(&self.b[p * self.n + j0..p * self.n + j0 + NR]);
        }
        scratch
    }
    #[inline]
    fn at(&self, p: usize, j: usize) -> f32 {
        self.b[p * self.n + j]
    }
}

/// Transposed storage: the logical operand is `bᵀ` where `b` is row-major
/// `n×k`. Panels stream the stored columns directly — no materialized
/// transpose.
struct BTransposed<'b> {
    b: &'b [f32],
    k: usize,
}

impl BSrc for BTransposed<'_> {
    #[inline]
    fn panel<'a>(&'a self, j0: usize, k: usize, scratch: &'a mut [f32]) -> &'a [f32] {
        for c in 0..NR {
            let col = &self.b[(j0 + c) * self.k..(j0 + c) * self.k + k];
            for (p, &v) in col.iter().enumerate() {
                scratch[p * NR + c] = v;
            }
        }
        scratch
    }
    #[inline]
    fn at(&self, p: usize, j: usize) -> f32 {
        self.b[j * self.k + p]
    }
}

/// Prepacked panels with a fallback source for edge tiles.
struct BPacked<'b, E: BSrc> {
    pk: &'b PackedB,
    edge: E,
}

impl<E: BSrc> BSrc for BPacked<'_, E> {
    #[inline]
    fn panel<'a>(&'a self, j0: usize, _k: usize, _scratch: &'a mut [f32]) -> &'a [f32] {
        self.pk.strip(j0)
    }
    #[inline]
    fn at(&self, p: usize, j: usize) -> f32 {
        self.edge.at(p, j)
    }
}

// ---------------------------------------------------------------------------
// Micro-kernels
// ---------------------------------------------------------------------------

/// Full `MR×NR` register tile over the whole `k` extent.
///
/// `a_rows` holds the `MR` row slices of `A` for this tile; `panel` is the
/// packed `k×NR` strip of `B` for this tile column (contiguous, stride
/// `NR`); the tile's top-left output column is `j0`.
#[inline]
fn micro_full(a_rows: [&[f32]; MR], panel: &[f32], j0: usize, out_rows: &mut [&mut [f32]; MR]) {
    let k = a_rows[0].len();
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        let b_vec: &[f32; NR] = panel[p * NR..(p + 1) * NR].try_into().unwrap();
        for r in 0..MR {
            let av = a_rows[r][p];
            for c in 0..NR {
                acc[r][c] += av * b_vec[c];
            }
        }
    }
    for r in 0..MR {
        out_rows[r][j0..j0 + NR].copy_from_slice(&acc[r]);
    }
}

/// AVX2+FMA micro-kernel, selected at runtime on x86-64.
#[cfg(target_arch = "x86_64")]
mod fma {
    use super::{MR, NR};
    use core::arch::x86_64::*;

    /// Whether the running CPU supports the AVX2+FMA micro-kernel. Detected
    /// once; the cached result makes the dispatch process-global, so serial
    /// and parallel runs (and every worker thread) always agree on the path.
    #[inline]
    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
        })
    }

    /// AVX2+FMA variant of [`super::micro_full`]: same `MR×NR` tile, same
    /// per-element strictly-increasing-`k` accumulation (each output element
    /// lives in one SIMD lane for the whole `k` extent), fused
    /// multiply-add rounding.
    ///
    /// # Safety
    /// Caller must have checked [`available`]. Slice bounds are the same as
    /// the scalar kernel's: `a_rows` are `k`-long, `panel` is `k×NR`, and
    /// `j0 + NR ≤ out_rows[r].len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn micro_full(
        a_rows: [&[f32]; MR],
        panel: &[f32],
        j0: usize,
        out_rows: &mut [&mut [f32]; MR],
    ) {
        let k = a_rows[0].len();
        debug_assert!(panel.len() >= k * NR);
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        for p in 0..k {
            let bp = panel.as_ptr().add(p * NR);
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for r in 0..MR {
                let av = _mm256_set1_ps(*a_rows[r].get_unchecked(p));
                acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
                acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
            }
        }
        for r in 0..MR {
            let op = out_rows[r].as_mut_ptr().add(j0);
            _mm256_storeu_ps(op, acc[r][0]);
            _mm256_storeu_ps(op.add(8), acc[r][1]);
        }
    }
}

/// Plain-AVX helper for the naive kernels, selected at runtime on x86-64.
///
/// This vectorizes *elementwise* work only: each output scalar still sees
/// exactly one `mul` rounding and one `add` rounding per `k` step, in the
/// same order as the scalar loop (no FMA contraction, no reassociation), so
/// results are bit-identical to the scalar code — unlike the tiled core's
/// FMA micro-kernel, it is safe to enable without moving any dispatch
/// threshold.
#[cfg(target_arch = "x86_64")]
mod avx {
    use core::arch::x86_64::*;

    /// Whether the running CPU supports AVX. Detected once (process-global,
    /// like [`super::fma::available`]).
    #[inline]
    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| std::is_x86_feature_detected!("avx"))
    }

    /// One output row of a saxpy-form product, the row held in registers
    /// across the whole reduction:
    /// `o_row[j] = Σ_p a(p) · b[p·n + j]` with `a(p) = avs[p·stride]`.
    ///
    /// Every output scalar keeps the increasing-`p` single-accumulator
    /// order with *separate* mul and add roundings (no FMA contraction —
    /// only the `avx` feature is enabled) and the same `a(p) == 0.0` skip
    /// as the scalar loop, so results are bit-identical; the registers
    /// merely remove the per-`p` load/store round-trip of the output row.
    ///
    /// # Safety
    /// Caller must have checked [`available`], `avs` must be readable at
    /// `p·stride` for `p < cnt`, and `b` at `p·n + j` for `j < n`.
    #[target_feature(enable = "avx")]
    pub unsafe fn row_accum(
        avs: *const f32,
        stride: usize,
        cnt: usize,
        b: *const f32,
        n: usize,
        o_row: &mut [f32],
    ) {
        debug_assert_eq!(o_row.len(), n);
        let mut j = 0usize;
        // Four independent 8-lane accumulators per pass: enough chains to
        // hide the vaddps latency while staying within 16 ymm registers.
        while j + 32 <= n {
            let mut v0 = _mm256_setzero_ps();
            let mut v1 = _mm256_setzero_ps();
            let mut v2 = _mm256_setzero_ps();
            let mut v3 = _mm256_setzero_ps();
            for p in 0..cnt {
                let av = *avs.add(p * stride);
                if av == 0.0 {
                    continue;
                }
                let va = _mm256_set1_ps(av);
                let bp = b.add(p * n + j);
                v0 = _mm256_add_ps(v0, _mm256_mul_ps(va, _mm256_loadu_ps(bp)));
                v1 = _mm256_add_ps(v1, _mm256_mul_ps(va, _mm256_loadu_ps(bp.add(8))));
                v2 = _mm256_add_ps(v2, _mm256_mul_ps(va, _mm256_loadu_ps(bp.add(16))));
                v3 = _mm256_add_ps(v3, _mm256_mul_ps(va, _mm256_loadu_ps(bp.add(24))));
            }
            let op = o_row.as_mut_ptr().add(j);
            _mm256_storeu_ps(op, v0);
            _mm256_storeu_ps(op.add(8), v1);
            _mm256_storeu_ps(op.add(16), v2);
            _mm256_storeu_ps(op.add(24), v3);
            j += 32;
        }
        while j + 8 <= n {
            let mut v = _mm256_setzero_ps();
            for p in 0..cnt {
                let av = *avs.add(p * stride);
                if av == 0.0 {
                    continue;
                }
                let vb = _mm256_loadu_ps(b.add(p * n + j));
                v = _mm256_add_ps(v, _mm256_mul_ps(_mm256_set1_ps(av), vb));
            }
            _mm256_storeu_ps(o_row.as_mut_ptr().add(j), v);
            j += 8;
        }
        while j < n {
            let mut s = 0.0f32;
            for p in 0..cnt {
                let av = *avs.add(p * stride);
                if av == 0.0 {
                    continue;
                }
                s += av * *b.add(p * n + j);
            }
            *o_row.get_unchecked_mut(j) = s;
            j += 1;
        }
    }

    /// `out[j] = x[j] + y[j]` — one add rounding per element, identical to
    /// the scalar loop.
    ///
    /// # Safety
    /// Caller must have checked [`available`]; slices must be equal-length.
    #[target_feature(enable = "avx")]
    pub unsafe fn add_into(x: &[f32], y: &[f32], out: &mut [f32]) {
        let n = x.len();
        debug_assert_eq!(y.len(), n);
        debug_assert_eq!(out.len(), n);
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_add_ps(
                _mm256_loadu_ps(x.as_ptr().add(j)),
                _mm256_loadu_ps(y.as_ptr().add(j)),
            );
            _mm256_storeu_ps(out.as_mut_ptr().add(j), v);
            j += 8;
        }
        while j < n {
            *out.get_unchecked_mut(j) = *x.get_unchecked(j) + *y.get_unchecked(j);
            j += 1;
        }
    }

    /// `x[j] += y[j]` in place (one add rounding per element).
    ///
    /// # Safety
    /// Caller must have checked [`available`]; slices must be equal-length.
    #[target_feature(enable = "avx")]
    pub unsafe fn add_assign(x: &mut [f32], y: &[f32]) {
        let n = x.len();
        debug_assert_eq!(y.len(), n);
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_add_ps(
                _mm256_loadu_ps(x.as_ptr().add(j)),
                _mm256_loadu_ps(y.as_ptr().add(j)),
            );
            _mm256_storeu_ps(x.as_mut_ptr().add(j), v);
            j += 8;
        }
        while j < n {
            *x.get_unchecked_mut(j) += *y.get_unchecked(j);
            j += 1;
        }
    }

    /// `out[j] = x[j] + s` (broadcast add, one rounding per element).
    ///
    /// # Safety
    /// Caller must have checked [`available`]; slices must be equal-length.
    #[target_feature(enable = "avx")]
    pub unsafe fn add_scalar_into(x: &[f32], s: f32, out: &mut [f32]) {
        let n = x.len();
        debug_assert_eq!(out.len(), n);
        let vs = _mm256_set1_ps(s);
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_add_ps(_mm256_loadu_ps(x.as_ptr().add(j)), vs);
            _mm256_storeu_ps(out.as_mut_ptr().add(j), v);
            j += 8;
        }
        while j < n {
            *out.get_unchecked_mut(j) = *x.get_unchecked(j) + s;
            j += 1;
        }
    }

    /// Maximum of a slice starting from `f32::NEG_INFINITY`. `max` is
    /// order-independent for non-NaN inputs, so the vector reduction is
    /// value-identical to the scalar fold.
    ///
    /// # Safety
    /// Caller must have checked [`available`].
    #[target_feature(enable = "avx")]
    pub unsafe fn max_val(x: &[f32]) -> f32 {
        let n = x.len();
        let mut m = f32::NEG_INFINITY;
        let mut j = 0;
        if n >= 8 {
            let mut vm = _mm256_set1_ps(f32::NEG_INFINITY);
            while j + 8 <= n {
                vm = _mm256_max_ps(vm, _mm256_loadu_ps(x.as_ptr().add(j)));
                j += 8;
            }
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), vm);
            for &l in &lanes {
                m = m.max(l);
            }
        }
        while j < n {
            m = m.max(*x.get_unchecked(j));
            j += 1;
        }
        m
    }

    /// `x[j] *= c` in place (one mul rounding per element).
    ///
    /// # Safety
    /// Caller must have checked [`available`].
    #[target_feature(enable = "avx")]
    pub unsafe fn scale_inplace(x: &mut [f32], c: f32) {
        let n = x.len();
        let vc = _mm256_set1_ps(c);
        let mut j = 0;
        while j + 8 <= n {
            let v = _mm256_mul_ps(_mm256_loadu_ps(x.as_ptr().add(j)), vc);
            _mm256_storeu_ps(x.as_mut_ptr().add(j), v);
            j += 8;
        }
        while j < n {
            let p = x.get_unchecked_mut(j);
            *p *= c;
            j += 1;
        }
    }

    /// Layer-norm affine: `out[j] = ((x[j] - mean) * inv_std) * g[j] + b[j]`
    /// — four separate roundings per element in the exact scalar order (no
    /// FMA contraction).
    ///
    /// # Safety
    /// Caller must have checked [`available`]; slices must be equal-length.
    #[target_feature(enable = "avx")]
    pub unsafe fn ln_affine_into(
        x: &[f32],
        mean: f32,
        inv_std: f32,
        g: &[f32],
        b: &[f32],
        out: &mut [f32],
    ) {
        let n = x.len();
        debug_assert_eq!(g.len(), n);
        debug_assert_eq!(b.len(), n);
        debug_assert_eq!(out.len(), n);
        let vmean = _mm256_set1_ps(mean);
        let vinv = _mm256_set1_ps(inv_std);
        let mut j = 0;
        while j + 8 <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(j));
            let d = _mm256_sub_ps(xv, vmean);
            let s = _mm256_mul_ps(d, vinv);
            let sg = _mm256_mul_ps(s, _mm256_loadu_ps(g.as_ptr().add(j)));
            let v = _mm256_add_ps(sg, _mm256_loadu_ps(b.as_ptr().add(j)));
            _mm256_storeu_ps(out.as_mut_ptr().add(j), v);
            j += 8;
        }
        while j < n {
            *out.get_unchecked_mut(j) =
                (*x.get_unchecked(j) - mean) * inv_std * *g.get_unchecked(j) + *b.get_unchecked(j);
            j += 1;
        }
    }

    /// Tanh-approximation GELU over raw pointers (`xp` and `op` may be
    /// equal for in-place use), replicating the scalar op sequence exactly:
    /// the polynomial and the final combine run as separate vector mul/add
    /// steps (one rounding each, no FMA), and `tanh` itself is evaluated per
    /// lane with the scalar libm call — so every element takes the identical
    /// sequence of roundings as the scalar loop.
    ///
    /// # Safety
    /// Caller must have checked [`available`]; `xp` must be readable and
    /// `op` writable for `n` elements, equal or disjoint (each lane is read
    /// before it is written).
    #[target_feature(enable = "avx")]
    pub unsafe fn gelu_ptr(xp: *const f32, n: usize, c: f32, a: f32, op: *mut f32) {
        let va = _mm256_set1_ps(a);
        let vc = _mm256_set1_ps(c);
        let vhalf = _mm256_set1_ps(0.5);
        let vone = _mm256_set1_ps(1.0);
        let mut j = 0;
        while j + 8 <= n {
            let xv = _mm256_loadu_ps(xp.add(j));
            // u = c * (x + ((a*x)*x)*x), each step one rounding.
            let t1 = _mm256_mul_ps(va, xv);
            let t2 = _mm256_mul_ps(t1, xv);
            let t3 = _mm256_mul_ps(t2, xv);
            let t4 = _mm256_add_ps(xv, t3);
            let u = _mm256_mul_ps(vc, t4);
            let mut lanes = [0.0f32; 8];
            _mm256_storeu_ps(lanes.as_mut_ptr(), u);
            for l in lanes.iter_mut() {
                *l = l.tanh();
            }
            let th = _mm256_loadu_ps(lanes.as_ptr());
            let hx = _mm256_mul_ps(vhalf, xv);
            let opt = _mm256_add_ps(vone, th);
            _mm256_storeu_ps(op.add(j), _mm256_mul_ps(hx, opt));
            j += 8;
        }
        while j < n {
            let xv = *xp.add(j);
            let th = (c * (xv + a * xv * xv * xv)).tanh();
            *op.add(j) = 0.5 * xv * (1.0 + th);
            j += 1;
        }
    }
}

/// Edge tile: `mr ≤ MR` rows by `nr ≤ NR` columns. Same accumulation order
/// as [`micro_full`] (per-element single accumulator, `p` increasing),
/// scalar-indexed for the ragged bounds, reading the raw operand through
/// [`BSrc::at`].
#[inline]
fn micro_edge<B: BSrc>(
    a_block: &[f32],
    k: usize,
    bsrc: &B,
    n: usize,
    i0: usize,
    j0: usize,
    mr: usize,
    nr: usize,
    out_block: &mut [f32],
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        for r in 0..mr {
            let av = a_block[(i0 + r) * k + p];
            for c in 0..nr {
                acc[r][c] += av * bsrc.at(p, j0 + c);
            }
        }
    }
    for r in 0..mr {
        out_block[(i0 + r) * n + j0..(i0 + r) * n + j0 + nr].copy_from_slice(&acc[r][..nr]);
    }
}

// ---------------------------------------------------------------------------
// Tiled core and dispatch
// ---------------------------------------------------------------------------

/// Tiled kernel over a contiguous block of `rows` output rows.
///
/// `a_block` is the matching `rows×k` slice of `A`; `out_block` the
/// `rows×n` destination (fully overwritten). This is the unit the parallel
/// path dispatches per worker, so serial and parallel runs execute identical
/// code per row.
///
/// Loop order is tile-column outer: each `NR`-wide strip of `B` is packed
/// into a contiguous `k×NR` panel once (or fetched prepacked), then swept
/// down all `MR`-row blocks while the panel sits in L1. Without the pack,
/// large `n` re-streams the strided strip from L2 for every row block (`B`
/// gets re-read `rows/MR` times), which caps the kernel well below FMA
/// throughput.
fn matmul_block_tiled<B: BSrc>(
    a_block: &[f32],
    rows: usize,
    k: usize,
    bsrc: &B,
    n: usize,
    out_block: &mut [f32],
) {
    let full_rows = rows - rows % MR;
    let full_cols = n - n % NR;
    #[cfg(target_arch = "x86_64")]
    let use_fma = fma::available();
    let mut scratch = take_scratch(k * NR);
    let mut j0 = 0;
    while j0 < full_cols {
        let panel = bsrc.panel(j0, k, &mut scratch);
        let mut i0 = 0;
        while i0 < full_rows {
            let (a0, rest) = a_block[i0 * k..].split_at(k);
            let (a1, rest) = rest.split_at(k);
            let (a2, rest) = rest.split_at(k);
            let a3 = &rest[..k];
            let (o0, rest) = out_block[i0 * n..].split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, rest) = rest.split_at_mut(n);
            let (o3, _) = rest.split_at_mut(n);
            let mut out_rows = [o0, o1, o2, o3];
            #[cfg(target_arch = "x86_64")]
            if use_fma {
                // SAFETY: `available()` checked; the panel is `k×NR` and
                // every out row is `n ≥ j0 + NR` long.
                unsafe { fma::micro_full([a0, a1, a2, a3], panel, j0, &mut out_rows) };
                i0 += MR;
                continue;
            }
            micro_full([a0, a1, a2, a3], panel, j0, &mut out_rows);
            i0 += MR;
        }
        j0 += NR;
    }
    put_scratch(scratch);
    // Edges share the scalar kernel and read the operand directly: the
    // ragged column strip (j ≥ full_cols, all rows) and the ragged row block
    // (i ≥ full_rows, full-width columns).
    for i0 in (0..rows).step_by(MR) {
        let mr = (rows - i0).min(MR);
        let mut j0 = if i0 < full_rows { full_cols } else { 0 };
        while j0 < n {
            let nr = (n - j0).min(NR);
            micro_edge(a_block, k, bsrc, n, i0, j0, mr, nr, out_block);
            j0 += nr;
        }
    }
}

/// A raw pointer blessed for cross-thread sharing; see the soundness note at
/// its use sites in [`tiled_dispatch`] and [`matmul_transpose_a_into`].
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Serial-or-parallel dispatch of the tiled core over `m` output rows.
/// Caller has already ruled out the sub-[`SMALL_FLOPS`] naive path.
fn tiled_dispatch<B: BSrc>(
    a: &[f32],
    bsrc: &B,
    m: usize,
    k: usize,
    n: usize,
    pool: &RotomPool,
    out: &mut [f32],
) {
    let flops = m * k * n;
    if flops < PAR_MIN_FLOPS || pool.threads() <= 1 || m < 2 * MR {
        profile::bump(&profile::TILED_SERIAL);
        matmul_block_tiled(a, m, k, bsrc, n, out);
    } else {
        profile::bump(&profile::TILED_PARALLEL);
        // Split on MR-row boundaries so every worker runs full tiles with
        // the exact code (and summation order) the serial path uses.
        //
        // Soundness of the raw-pointer fan-out: `run_ranges` hands every
        // worker a distinct, non-overlapping row range, so the re-sliced
        // `&mut` views never alias, and it joins all workers before
        // returning, so no view outlives the buffer borrow.
        let out_base = SendPtr(out.as_mut_ptr());
        let out_base = &out_base;
        pool.run_ranges(m, MR, move |range| {
            let rows = range.end - range.start;
            let a_block = &a[range.start * k..range.end * k];
            let out_block = unsafe {
                std::slice::from_raw_parts_mut(out_base.0.add(range.start * n), rows * n)
            };
            matmul_block_tiled(a_block, rows, k, bsrc, n, out_block);
        });
    }
}

// ---------------------------------------------------------------------------
// Public GEMM entry points
// ---------------------------------------------------------------------------

/// `C = A·B` into a caller buffer (`A`: `m×k`, `B`: `k×n`, `out`: `m×n`,
/// fully overwritten).
pub fn matmul_into(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    pool: &RotomPool,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m * k * n < SMALL_FLOPS {
        profile::bump(&profile::NAIVE);
        matmul_naive_into(a, b, m, k, n, out);
        return;
    }
    tiled_dispatch(a, &BRowMajor { b, n }, m, k, n, pool, out);
}

/// `C = A·B` with prepacked panels for `B` (`pk` must be the pack of `b`).
/// Dispatch thresholds match [`matmul_into`] exactly, and panel contents are
/// bit-identical to a cold pack, so results never depend on cache state.
pub fn matmul_prepacked_into(
    a: &[f32],
    b: &[f32],
    pk: &PackedB,
    m: usize,
    k: usize,
    n: usize,
    pool: &RotomPool,
    out: &mut [f32],
) {
    debug_assert_eq!(pk.shape(), (k, n));
    if m * k * n < SMALL_FLOPS {
        profile::bump(&profile::NAIVE);
        matmul_naive_into(a, b, m, k, n, out);
        return;
    }
    tiled_dispatch(
        a,
        &BPacked {
            pk,
            edge: BRowMajor { b, n },
        },
        m,
        k,
        n,
        pool,
        out,
    );
}

/// `C = A·B` with an explicit pool (`A`: `m×k`, `B`: `k×n`).
pub fn matmul_with_pool(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    pool: &RotomPool,
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    matmul_into(a, b, m, k, n, pool, &mut out);
    out
}

/// `C = A·B` on the global pool.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    matmul_with_pool(a, b, m, k, n, RotomPool::global())
}

/// Naive reference for `A·Bᵀ` (`A`: `m×k`, `B`: `n×k`): per-element dot
/// product, increasing `k`.
pub fn matmul_transpose_b_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    matmul_transpose_b_naive_into(a, b, m, k, n, &mut out);
    out
}

fn matmul_transpose_b_naive_into(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    // Each output scalar is one dot product accumulated in increasing `k`
    // with a single accumulator — a serial FP dependency chain. Running four
    // output columns (and two rows) concurrently keeps their chains
    // independent, so the per-scalar operation sequence — and hence every
    // result bit — is unchanged while the add-latency bubbles overlap.
    let mut i = 0;
    while i + 2 <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let mut s = [0.0f32; 8];
            for p in 0..k {
                let (x0, x1) = (a0[p], a1[p]);
                let (y0, y1, y2, y3) = (b0[p], b1[p], b2[p], b3[p]);
                s[0] += x0 * y0;
                s[1] += x0 * y1;
                s[2] += x0 * y2;
                s[3] += x0 * y3;
                s[4] += x1 * y0;
                s[5] += x1 * y1;
                s[6] += x1 * y2;
                s[7] += x1 * y3;
            }
            out[i * n + j..i * n + j + 4].copy_from_slice(&s[..4]);
            out[(i + 1) * n + j..(i + 1) * n + j + 4].copy_from_slice(&s[4..]);
            j += 4;
        }
        while j < n {
            let b_row = &b[j * k..(j + 1) * k];
            let (mut s0, mut s1) = (0.0f32, 0.0f32);
            for p in 0..k {
                let bv = b_row[p];
                s0 += a0[p] * bv;
                s1 += a1[p] * bv;
            }
            out[i * n + j] = s0;
            out[(i + 1) * n + j] = s1;
            j += 1;
        }
        i += 2;
    }
    if i < m {
        let a_row = &a[i * k..(i + 1) * k];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let mut s = [0.0f32; 4];
            for p in 0..k {
                let av = a_row[p];
                s[0] += av * b0[p];
                s[1] += av * b1[p];
                s[2] += av * b2[p];
                s[3] += av * b3[p];
            }
            out[i * n + j..i * n + j + 4].copy_from_slice(&s);
            j += 4;
        }
        while j < n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
            j += 1;
        }
    }
}

/// `C = A·Bᵀ` into a caller buffer (`A`: `m×k`, `B`: `n×k`, `out`: `m×n`,
/// fully overwritten).
///
/// Large shapes stream `B`'s stored columns straight into packed panels
/// (transpose-free; contents bit-identical to packing a materialized
/// transpose); small shapes use the dot form directly. Both paths share the
/// increasing-`k` single-accumulator order, so the choice never changes
/// results.
pub fn matmul_transpose_b_into(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    pool: &RotomPool,
    out: &mut [f32],
) {
    if m * k * n < SMALL_FLOPS {
        profile::bump(&profile::NAIVE);
        matmul_transpose_b_naive_into(a, b, m, k, n, out);
        return;
    }
    tiled_dispatch(a, &BTransposed { b, k }, m, k, n, pool, out);
}

/// `C = A·Bᵀ` with prepacked panels of `bᵀ` (`pk` must be
/// [`PackedB::pack_transposed`] of `b`). Dispatch matches
/// [`matmul_transpose_b_into`] exactly.
pub fn matmul_transpose_b_prepacked_into(
    a: &[f32],
    b: &[f32],
    pk: &PackedB,
    m: usize,
    k: usize,
    n: usize,
    pool: &RotomPool,
    out: &mut [f32],
) {
    debug_assert_eq!(pk.shape(), (k, n));
    if m * k * n < SMALL_FLOPS {
        profile::bump(&profile::NAIVE);
        matmul_transpose_b_naive_into(a, b, m, k, n, out);
        return;
    }
    tiled_dispatch(
        a,
        &BPacked {
            pk,
            edge: BTransposed { b, k },
        },
        m,
        k,
        n,
        pool,
        out,
    );
}

/// `C = A·Bᵀ` with an explicit pool (`A`: `m×k`, `B`: `n×k`).
pub fn matmul_transpose_b_with_pool(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    pool: &RotomPool,
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    matmul_transpose_b_into(a, b, m, k, n, pool, &mut out);
    out
}

/// `C = A·Bᵀ` on the global pool.
pub fn matmul_transpose_b(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    matmul_transpose_b_with_pool(a, b, m, k, n, RotomPool::global())
}

/// `C = Aᵀ·G` into a caller buffer (`A`: `m×k`, `G`: `m×n`, `out`: `k×n`,
/// fully overwritten).
///
/// This is the weight-gradient contraction (`dW = Xᵀ·dY`) in every matmul
/// backward. Large shapes transpose `A` in `TA_CHUNK`-row slices into
/// thread-local scratch *inside* each worker's row range (the former global
/// `O(m·k)` transpose allocation is gone and the copy parallelizes with the
/// compute); accumulation runs over `m` in increasing order on every path.
pub fn matmul_transpose_a_into(
    a: &[f32],
    g: &[f32],
    m: usize,
    k: usize,
    n: usize,
    pool: &RotomPool,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(g.len(), m * n);
    debug_assert_eq!(out.len(), k * n);
    let flops = m * k * n;
    if flops < SMALL_FLOPS {
        profile::bump(&profile::NAIVE);
        // Direct q-i-j form: out[q][j] += a[i][q] * g[i][j], i increasing.
        #[cfg(target_arch = "x86_64")]
        if avx::available() {
            for q in 0..k {
                let o_row = &mut out[q * n..(q + 1) * n];
                // In-bounds: column `q` of `a` is read at `q + i·k < m·k`.
                unsafe { avx::row_accum(a.as_ptr().add(q), k, m, g.as_ptr(), n, o_row) };
            }
            return;
        }
        out.fill(0.0);
        for q in 0..k {
            let o_row = &mut out[q * n..(q + 1) * n];
            for i in 0..m {
                let av = a[i * k + q];
                if av == 0.0 {
                    continue;
                }
                let g_row = &g[i * n..(i + 1) * n];
                for (o, &gv) in o_row.iter_mut().zip(g_row) {
                    *o += av * gv;
                }
            }
        }
        return;
    }
    if flops < PAR_MIN_FLOPS || pool.threads() <= 1 || k < 2 * MR {
        profile::bump(&profile::TILED_SERIAL);
        transpose_a_block(a, g, m, k, n, 0, k, out);
    } else {
        profile::bump(&profile::TILED_PARALLEL);
        // Same fan-out shape as `tiled_dispatch` (output rows = rows of Aᵀ),
        // same soundness argument for the raw-pointer split.
        let out_base = SendPtr(out.as_mut_ptr());
        let out_base = &out_base;
        pool.run_ranges(k, MR, move |range| {
            let rows = range.end - range.start;
            let out_block = unsafe {
                std::slice::from_raw_parts_mut(out_base.0.add(range.start * n), rows * n)
            };
            transpose_a_block(a, g, m, k, n, range.start, range.end, out_block);
        });
    }
}

/// Rows per fused-transpose slice of [`matmul_transpose_a_into`]'s large
/// path: bounds the scratch to `64×m` floats.
const TA_CHUNK: usize = 64;

/// Compute output rows `q0..q1` of `C = Aᵀ·G` by transposing `TA_CHUNK`-row
/// slices of `Aᵀ` into scratch and running the tiled core on each. Row `q`
/// of `C` depends only on column `q` of `A` and the shared `G` panels, so
/// slicing never changes values — each slice is bit-identical to the same
/// rows of a whole-matrix `transpose(A)` followed by the tiled core.
fn transpose_a_block(
    a: &[f32],
    g: &[f32],
    m: usize,
    k: usize,
    n: usize,
    q0: usize,
    q1: usize,
    out_block: &mut [f32],
) {
    let gsrc = BRowMajor { b: g, n };
    let mut scratch = take_scratch((q1 - q0).min(TA_CHUNK) * m);
    let mut q = q0;
    while q < q1 {
        let rows = (q1 - q).min(TA_CHUNK);
        // Blocked slice transpose: scratch[r][i] = a[i][q + r].
        const TB: usize = 32;
        for i0 in (0..m).step_by(TB) {
            let i1 = (i0 + TB).min(m);
            for r in 0..rows {
                let qq = q + r;
                for i in i0..i1 {
                    scratch[r * m + i] = a[i * k + qq];
                }
            }
        }
        let dst = &mut out_block[(q - q0) * n..(q - q0 + rows) * n];
        matmul_block_tiled(&scratch[..rows * m], rows, m, &gsrc, n, dst);
        q += rows;
    }
    put_scratch(scratch);
}

/// `C = Aᵀ·G` with an explicit pool (`A`: `m×k`, `G`: `m×n`, `C`: `k×n`).
pub fn matmul_transpose_a_with_pool(
    a: &[f32],
    g: &[f32],
    m: usize,
    k: usize,
    n: usize,
    pool: &RotomPool,
) -> Vec<f32> {
    let mut out = vec![0.0f32; k * n];
    matmul_transpose_a_into(a, g, m, k, n, pool, &mut out);
    out
}

/// `C = Aᵀ·G` on the global pool.
pub fn matmul_transpose_a(a: &[f32], g: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    matmul_transpose_a_with_pool(a, g, m, k, n, RotomPool::global())
}

// ---------------------------------------------------------------------------
// Inference plane: band replay, fused bias+activation, forward kernels
// ---------------------------------------------------------------------------

/// The row band of a `full_m`-row GEMM that contains `row`, as
/// `(start, len)`.
///
/// Bands are exactly the units the tiled core computes independently: the
/// `MR`-aligned full tile containing `row`, or the ragged trailing block
/// (`full_m % MR` rows) when `row` falls past the last full tile. Computing
/// just this band with [`matmul_band_into`] is bit-identical to the same
/// rows of the full `full_m`-row product at every thread count, because the
/// parallel path already splits on `MR`-row boundaries and the naive kernel
/// is per-row independent.
pub fn band_rows(full_m: usize, row: usize) -> (usize, usize) {
    debug_assert!(row < full_m);
    let full = full_m - full_m % MR;
    if row < full {
        (row - row % MR, MR)
    } else {
        (full, full_m - full)
    }
}

/// Band replay of `C = A·B`: compute only the `band_len` output rows whose
/// `A` rows are `a_band`, exactly as the full `full_m×k · k×n` product
/// would have computed them.
///
/// Dispatch is decided on the **full logical shape** (`full_m·k·n`), so the
/// band takes the same kernel path — naive below [`SMALL_FLOPS`], tiled
/// above — as the corresponding rows of the full call, making the results
/// bit-identical to slicing the full product. `band_len` must come from
/// [`band_rows`] (an `MR`-aligned full tile or the ragged trailing block).
/// `pk`, when present, must be the [`PackedB::pack_row_major`] of `b`;
/// panel contents match a cold pack bit-for-bit, so the option never
/// changes values.
#[allow(clippy::too_many_arguments)]
pub fn matmul_band_into(
    a_band: &[f32],
    b: &[f32],
    pk: Option<&PackedB>,
    full_m: usize,
    band_len: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    debug_assert!(band_len <= MR && band_len <= full_m);
    debug_assert_eq!(a_band.len(), band_len * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), band_len * n);
    if full_m * k * n < SMALL_FLOPS {
        profile::bump(&profile::NAIVE);
        matmul_naive_into(a_band, b, band_len, k, n, out);
        return;
    }
    profile::bump(&profile::TILED_SERIAL);
    match pk {
        Some(pk) => {
            debug_assert_eq!(pk.shape(), (k, n));
            matmul_block_tiled(
                a_band,
                band_len,
                k,
                &BPacked {
                    pk,
                    edge: BRowMajor { b, n },
                },
                n,
                out,
            );
        }
        None => matmul_block_tiled(a_band, band_len, k, &BRowMajor { b, n }, n, out),
    }
}

/// Band replay of `C = A·Bᵀ` (`b` stored row-major `n×k`): the
/// transpose-form counterpart of [`matmul_band_into`], with the identical
/// full-shape dispatch rule. Valid because both the naive dot-form kernel
/// and the tiled core accumulate every output scalar independently in
/// increasing `k`.
pub fn matmul_transpose_b_band_into(
    a_band: &[f32],
    b: &[f32],
    full_m: usize,
    band_len: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    debug_assert!(band_len <= MR && band_len <= full_m);
    debug_assert_eq!(a_band.len(), band_len * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), band_len * n);
    if full_m * k * n < SMALL_FLOPS {
        profile::bump(&profile::NAIVE);
        matmul_transpose_b_naive_into(a_band, b, band_len, k, n, out);
        return;
    }
    profile::bump(&profile::TILED_SERIAL);
    matmul_block_tiled(a_band, band_len, k, &BTransposed { b, k }, n, out);
}

/// Elementwise activation applied by the fused forward path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// Identity (bias only).
    None,
    /// Tanh-approximation GELU, matching the autodiff tape's `gelu` op
    /// bit-for-bit.
    Gelu,
}

/// GELU constants shared with the tape op: `√(2/π)` and the cubic
/// coefficient.
const GELU_C: f32 = 0.797_884_6;
const GELU_A: f32 = 0.044_715;

/// Apply an optional per-column bias and an activation to a `rows×n` buffer
/// in place — the fused epilogue of [`matmul_bias_act_into`].
///
/// The bias add is one rounding per element (identical to the tape's
/// `add_row`), and [`Act::Gelu`] replicates the tape's op sequence exactly
/// (see [`gelu_fwd`]), so `matmul → bias_act_apply` is bit-identical to the
/// tape's `matmul → add_row → gelu` chain.
pub fn bias_act_apply(out: &mut [f32], rows: usize, n: usize, bias: Option<&[f32]>, act: Act) {
    debug_assert_eq!(out.len(), rows * n);
    if let Some(bias) = bias {
        debug_assert_eq!(bias.len(), n);
        #[cfg(target_arch = "x86_64")]
        let use_avx = avx::available();
        #[cfg(not(target_arch = "x86_64"))]
        let use_avx = false;
        for i in 0..rows {
            let row = &mut out[i * n..(i + 1) * n];
            #[cfg(target_arch = "x86_64")]
            if use_avx {
                // SAFETY: `available()` checked.
                unsafe { avx::add_assign(row, bias) };
                continue;
            }
            let _ = use_avx;
            for (o, &s) in row.iter_mut().zip(bias) {
                *o += s;
            }
        }
    }
    if act == Act::Gelu {
        gelu_fwd_inplace(out);
    }
}

/// Fused `C = act(A·B + bias)` forward entry: the GEMM dispatch (thresholds,
/// packed panels, thread fan-out) is byte-for-byte the one [`matmul_into`] /
/// [`matmul_prepacked_into`] perform, followed by the in-place
/// [`bias_act_apply`] epilogue — one output sweep instead of the tape's
/// three node materializations.
#[allow(clippy::too_many_arguments)]
pub fn matmul_bias_act_into(
    a: &[f32],
    b: &[f32],
    pk: Option<&PackedB>,
    bias: Option<&[f32]>,
    act: Act,
    m: usize,
    k: usize,
    n: usize,
    pool: &RotomPool,
    out: &mut [f32],
) {
    match pk {
        Some(pk) => matmul_prepacked_into(a, b, pk, m, k, n, pool, out),
        None => matmul_into(a, b, m, k, n, pool, out),
    }
    profile::bump(&profile::FUSED_BIAS_ACT);
    bias_act_apply(out, m, n, bias, act);
}

// ---------------------------------------------------------------------------
// Quantized i8 inference GEMM
// ---------------------------------------------------------------------------
//
// Inference-only integer tier: weights are quantized once per parameter
// generation to symmetric per-output-row i8 (one f32 scale per output
// feature, i.e. per row of the transposed weight), activations are quantized
// per batch row at call time to asymmetric 7-bit u8 (scale + zero point, the
// [0,127] range keeps the AVX2 `vpmaddubsw` pair sums inside i16), the
// product accumulates in exact i32, and the epilogue dequantizes into the
// caller's f32 buffer before the shared bias/activation sweep.
//
// Because the integer accumulation is exact, the quantized path is
// bit-identical across thread counts and across the SIMD/scalar tiers *by
// construction* — quantization error is purely a property of the rounding in
// `quantize` (bounded, property-tested against the f32 kernel), never of the
// execution schedule. Training never touches this path; it stays bit-exact
// f32.

/// Per-output-feature i8 quantization of a `k×n` row-major weight matrix,
/// prepacked for the i8 micro-kernel — the quantized analogue of
/// [`PackedB`], cached per parameter generation in `params.rs`.
///
/// Scale scheme: column `j` (one output feature; a *row* of the transposed
/// weight) gets `scale[j] = max_p |b[p][j]| / 127`, `qw = round(b / scale)`
/// ∈ [-127, 127]. All-zero columns take scale 1.0 — every quantized entry is
/// 0, so the scale value never matters and no division by zero or NaN can
/// occur. `colsum[j] = Σ_p qw[p][j]` is precomputed for the activation
/// zero-point correction.
pub struct QuantizedB {
    k: usize,
    n: usize,
    /// Per-output-column dequantization scale (`n` entries).
    scales: Vec<f32>,
    /// Per-column sum of quantized weights (`n` entries), exact i32.
    colsums: Vec<i32>,
    /// Row-major quantized copy (`k×n`), used by the scalar paths and the
    /// `n % NR` edge columns.
    rows: Vec<i8>,
    /// K-quad interleaved panels for full `NR`-wide strips: per strip, per
    /// quad of 4 consecutive `k` indices, 16 columns × 4 bytes laid out so
    /// one 32-byte load feeds `vpmaddubsw` for 8 columns. `k` is padded to a
    /// multiple of 4 with zero rows (they contribute nothing and leave the
    /// colsums untouched).
    panels: Vec<i8>,
    /// Number of k-quads (`ceil(k / 4)`).
    quads: usize,
}

impl QuantizedB {
    /// Quantize a `k×n` row-major matrix.
    pub fn quantize_row_major(b: &[f32], k: usize, n: usize) -> Self {
        debug_assert_eq!(b.len(), k * n);
        let quads = k.div_ceil(4);
        let mut maxabs = vec![0.0f32; n];
        for p in 0..k {
            for (m, &v) in maxabs.iter_mut().zip(&b[p * n..(p + 1) * n]) {
                *m = m.max(v.abs());
            }
        }
        let scales: Vec<f32> = maxabs
            .iter()
            .map(|&m| if m > 0.0 { m / 127.0 } else { 1.0 })
            .collect();
        let mut rows = vec![0i8; k * n];
        let mut colsums = vec![0i32; n];
        for p in 0..k {
            for j in 0..n {
                let q = (b[p * n + j] / scales[j]).round().clamp(-127.0, 127.0) as i8;
                rows[p * n + j] = q;
                colsums[j] += q as i32;
            }
        }
        let n_full = n - n % NR;
        let mut panels = Vec::with_capacity((n_full / NR) * quads * 4 * NR);
        for j0 in (0..n_full).step_by(NR) {
            for q in 0..quads {
                for j in j0..j0 + NR {
                    for d in 0..4 {
                        let p = q * 4 + d;
                        panels.push(if p < k { rows[p * n + j] } else { 0 });
                    }
                }
            }
        }
        Self {
            k,
            n,
            scales,
            colsums,
            rows,
            panels,
            quads,
        }
    }

    /// Logical `(k, n)` shape of the quantized matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    /// Total heap bytes held (cache accounting).
    pub fn bytes(&self) -> usize {
        self.rows.len()
            + self.panels.len()
            + self.scales.len() * std::mem::size_of::<f32>()
            + self.colsums.len() * std::mem::size_of::<i32>()
    }

    /// Per-output-column scales (for tests and error-bound computation).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Row-major quantized values (for tests).
    pub fn quantized_rows(&self) -> &[i8] {
        &self.rows
    }

    /// The interleaved panel for the full strip starting at column `j0`.
    fn strip(&self, j0: usize) -> &[i8] {
        let len = self.quads * 4 * NR;
        &self.panels[(j0 / NR) * len..(j0 / NR + 1) * len]
    }
}

/// Asymmetric 7-bit row quantization of activations: `rows×k` f32 in,
/// per-row `u8 ∈ [0,127]` out (padded to `quads*4` bytes per row with
/// zeros), plus per-row scale and zero point.
///
/// The quantization range is the row's `[min(0, min), max(0, max)]` — always
/// bracketing zero, so the zero point lands in `[0, 127]` and every value
/// maps into range with at most 0.5·scale rounding error. Degenerate rows
/// (all zero, or constant zero-range) take scale 1.0: no division by zero,
/// no NaN, and an all-zero row quantizes to all zero points (exact).
pub fn quantize_activations(
    a: &[f32],
    rows: usize,
    k: usize,
    quads: usize,
    qa: &mut [u8],
    scales: &mut [f32],
    zero_points: &mut [u8],
) {
    let k_pad = quads * 4;
    debug_assert_eq!(a.len(), rows * k);
    debug_assert_eq!(qa.len(), rows * k_pad);
    debug_assert!(scales.len() >= rows && zero_points.len() >= rows);
    #[cfg(target_arch = "x86_64")]
    if qi8::available() {
        for i in 0..rows {
            let row = &a[i * k..(i + 1) * k];
            let qrow = &mut qa[i * k_pad..(i + 1) * k_pad];
            // SAFETY: `available()` checked; `qrow` holds ≥ `k` bytes.
            let (scale, zp) = unsafe { qi8::quantize_row(row, qrow) };
            for q in qrow[k..].iter_mut() {
                *q = 0;
            }
            scales[i] = scale;
            zero_points[i] = zp;
        }
        return;
    }
    for i in 0..rows {
        let row = &a[i * k..(i + 1) * k];
        // Comparison-form min/max so the reduction vectorizes (`f32::min`'s
        // NaN-select blocks it). Seeding at 0.0 brackets zero and drops NaN
        // from the range, like the doc comment promises.
        let mut min = 0.0f32;
        let mut max = 0.0f32;
        for &v in row {
            min = if v < min { v } else { min };
            max = if v > max { v } else { max };
        }
        let range = max - min;
        let scale = if range > 0.0 { range / 127.0 } else { 1.0 };
        let inv = 1.0 / scale;
        let zp = (-min * inv).round().clamp(0.0, 127.0) as u8;
        // `floor(x + 0.5)` instead of `round(x)`: identical up to ties
        // (which stay within the half-step error bound), and it lowers to
        // `vroundps` so the whole loop vectorizes — this pass runs on every
        // GEMM call, and the divide/round form costs more than the integer
        // core it feeds.
        let offset = zp as f32 + 0.5;
        let qrow = &mut qa[i * k_pad..(i + 1) * k_pad];
        for (q, &v) in qrow.iter_mut().zip(row) {
            *q = (v * inv + offset).floor().clamp(0.0, 127.0) as u8;
        }
        for q in qrow[k..].iter_mut() {
            *q = 0;
        }
        scales[i] = scale;
        zero_points[i] = zp;
    }
}

/// AVX2 i8 micro-kernel, selected at runtime on x86-64.
#[cfg(target_arch = "x86_64")]
mod qi8 {
    use super::{MR, NR};
    use core::arch::x86_64::*;

    /// Whether the running CPU supports the AVX2 i8 micro-kernel. Detected
    /// once (process-global, like [`super::fma::available`]); the scalar
    /// fallback computes the same exact integers, so the tiers agree
    /// bit-for-bit and the dispatch only affects speed.
    #[inline]
    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| std::is_x86_feature_detected!("avx2"))
    }

    /// `MR×NR` i32 tile over a k-quad panel: per quad, `vpmaddubsw` (u8×i8
    /// pairs → i16) then `vpmaddwd` against ones (i16 pairs → i32) reduce 4
    /// consecutive `k` steps for 8 columns per 32-byte panel load — 3
    /// arithmetic instructions per 32 multiply-adds. Activations are 7-bit
    /// (≤127), so the worst `vpmaddubsw` pair sum is 2·127·127 = 32258 <
    /// 32767: no saturation, the accumulation is exact.
    ///
    /// # Safety
    /// Caller must have checked [`available`]; `qa_rows` must each hold
    /// `4·quads` bytes and `panel` must hold `quads·4·NR` bytes.
    #[target_feature(enable = "avx2")]
    pub unsafe fn micro_i8(
        qa_rows: [&[u8]; MR],
        panel: &[i8],
        quads: usize,
        acc_out: &mut [[i32; NR]; MR],
    ) {
        debug_assert!(panel.len() >= quads * 4 * NR);
        let ones = _mm256_set1_epi16(1);
        let mut acc = [[_mm256_setzero_si256(); 2]; MR];
        for q in 0..quads {
            let bp = panel.as_ptr().add(q * 4 * NR);
            let b0 = _mm256_loadu_si256(bp as *const __m256i);
            let b1 = _mm256_loadu_si256(bp.add(32) as *const __m256i);
            for r in 0..MR {
                let quad = (qa_rows[r].as_ptr().add(q * 4) as *const i32).read_unaligned();
                let av = _mm256_set1_epi32(quad);
                let p0 = _mm256_maddubs_epi16(av, b0);
                let p1 = _mm256_maddubs_epi16(av, b1);
                acc[r][0] = _mm256_add_epi32(acc[r][0], _mm256_madd_epi16(p0, ones));
                acc[r][1] = _mm256_add_epi32(acc[r][1], _mm256_madd_epi16(p1, ones));
            }
        }
        for r in 0..MR {
            _mm256_storeu_si256(acc_out[r].as_mut_ptr() as *mut __m256i, acc[r][0]);
            _mm256_storeu_si256(acc_out[r].as_mut_ptr().add(8) as *mut __m256i, acc[r][1]);
        }
    }

    /// Quantize one activation row: the vector lanes apply exactly the
    /// per-element formula of the scalar path (`mul`, `add`, `floor`,
    /// `clamp`, narrow — same IEEE ops in the same per-element order), and
    /// min/max reduction over comparisons is order-independent, so tier
    /// dispatch never changes the quantized bytes, scale, or zero point.
    ///
    /// # Safety
    /// Caller must have checked [`available`]; `qrow.len() >= row.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn quantize_row(row: &[f32], qrow: &mut [u8]) -> (f32, u8) {
        let k = row.len();
        let mut vmin = _mm256_setzero_ps();
        let mut vmax = _mm256_setzero_ps();
        let mut p = 0usize;
        while p + 8 <= k {
            let v = _mm256_loadu_ps(row.as_ptr().add(p));
            // Operand order matters: `min_ps(v, acc)` keeps the accumulator
            // when `v` is NaN, matching the scalar comparison form.
            vmin = _mm256_min_ps(v, vmin);
            vmax = _mm256_max_ps(v, vmax);
            p += 8;
        }
        let mut lanes_min = [0.0f32; 8];
        let mut lanes_max = [0.0f32; 8];
        _mm256_storeu_ps(lanes_min.as_mut_ptr(), vmin);
        _mm256_storeu_ps(lanes_max.as_mut_ptr(), vmax);
        let mut min = 0.0f32;
        let mut max = 0.0f32;
        for i in 0..8 {
            min = if lanes_min[i] < min {
                lanes_min[i]
            } else {
                min
            };
            max = if lanes_max[i] > max {
                lanes_max[i]
            } else {
                max
            };
        }
        for &v in &row[p..] {
            min = if v < min { v } else { min };
            max = if v > max { v } else { max };
        }
        let range = max - min;
        let scale = if range > 0.0 { range / 127.0 } else { 1.0 };
        let inv = 1.0 / scale;
        let zp = (-min * inv).round().clamp(0.0, 127.0) as u8;
        let offset = zp as f32 + 0.5;

        let invv = _mm256_set1_ps(inv);
        let offv = _mm256_set1_ps(offset);
        let zero = _mm256_setzero_ps();
        let hi = _mm256_set1_ps(127.0);
        // Dword shuffle fixing `packs`/`packus` 128-bit-lane interleave so
        // the 16 quantized bytes land in element order.
        let fix = _mm256_setr_epi32(0, 4, 1, 5, 0, 0, 0, 0);
        let mut p = 0usize;
        while p + 16 <= k {
            let q8 = {
                let mut halves = [_mm256_setzero_si256(); 2];
                for (h, half) in halves.iter_mut().enumerate() {
                    let v = _mm256_loadu_ps(row.as_ptr().add(p + 8 * h));
                    let x = _mm256_floor_ps(_mm256_add_ps(_mm256_mul_ps(v, invv), offv));
                    // `max_ps(x, bound)` returns the bound when `x` is NaN —
                    // same 0 byte the scalar NaN cast produces.
                    let x = _mm256_min_ps(_mm256_max_ps(x, zero), hi);
                    *half = _mm256_cvtps_epi32(x);
                }
                _mm256_packus_epi16(
                    _mm256_packs_epi32(halves[0], halves[1]),
                    _mm256_setzero_si256(),
                )
            };
            let ordered = _mm256_permutevar8x32_epi32(q8, fix);
            _mm_storeu_si128(
                qrow.as_mut_ptr().add(p) as *mut __m128i,
                _mm256_castsi256_si128(ordered),
            );
            p += 16;
        }
        for (q, &v) in qrow[p..k].iter_mut().zip(&row[p..]) {
            *q = (v * inv + offset).floor().clamp(0.0, 127.0) as u8;
        }
        (scale, zp)
    }

    /// Dequantize 16 i32 accumulators into f32 out lanes:
    /// `out[j] = (acc[j] − zp·colsum[j]) as f32 · (a_scale · wscale[j])` —
    /// the exact expression (and operation order) of the scalar
    /// `quant_dequant_row`, so the tiers stay bit-identical.
    ///
    /// # Safety
    /// Caller must have checked [`available`]; `colsums`/`wscales` must hold
    /// `NR` readable values and `out` `NR` writable floats.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dequant_row16(
        acc: &[i32; NR],
        colsums: *const i32,
        wscales: *const f32,
        a_scale: f32,
        zp: i32,
        out: *mut f32,
    ) {
        let zpv = _mm256_set1_epi32(zp);
        let asv = _mm256_set1_ps(a_scale);
        for h in 0..2 {
            let a = _mm256_loadu_si256(acc.as_ptr().add(8 * h) as *const __m256i);
            let cs = _mm256_loadu_si256(colsums.add(8 * h) as *const __m256i);
            let corrected = _mm256_sub_epi32(a, _mm256_mullo_epi32(zpv, cs));
            let scale = _mm256_mul_ps(asv, _mm256_loadu_ps(wscales.add(8 * h)));
            let r = _mm256_mul_ps(_mm256_cvtepi32_ps(corrected), scale);
            _mm256_storeu_ps(out.add(8 * h), r);
        }
    }
}

/// Scalar i8 reference: `acc[j] = Σ_p qa[p]·qw[p][j]` for `j ∈ [j_lo, j_hi)`
/// over the row-major quantized copy. Exact integers — bit-identical to the
/// SIMD micro-kernel's lanes.
fn quant_row_scalar(qa_row: &[u8], qb: &QuantizedB, j_lo: usize, j_hi: usize, acc: &mut [i32]) {
    let n = qb.n;
    for a in acc[..j_hi - j_lo].iter_mut() {
        *a = 0;
    }
    for p in 0..qb.k {
        let av = qa_row[p] as i32;
        if av == 0 {
            continue;
        }
        let brow = &qb.rows[p * n + j_lo..p * n + j_hi];
        for (a, &w) in acc.iter_mut().zip(brow) {
            *a += av * w as i32;
        }
    }
}

/// Dequantize one row segment of i32 accumulators into f32 output:
/// `out[j] = a_scale · w_scale[j] · (acc[j] − zp · colsum[j])`.
#[inline]
fn quant_dequant_row(
    acc: &[i32],
    qb: &QuantizedB,
    j_lo: usize,
    a_scale: f32,
    zp: i32,
    out: &mut [f32],
) {
    for (jj, (&sum, o)) in acc.iter().zip(out.iter_mut()).enumerate() {
        let j = j_lo + jj;
        let corrected = sum - zp * qb.colsums[j];
        *o = corrected as f32 * (a_scale * qb.scales[j]);
    }
}

/// Serial i8 core over a block of quantized rows: full `MR`-row ×
/// `NR`-column tiles through the SIMD micro-kernel when available, exact
/// scalar integers for row remainders and edge columns, dequantizing each
/// tile into `out` as it completes.
fn quant_block(
    qa: &[u8],
    a_scales: &[f32],
    zero_points: &[u8],
    rows: usize,
    qb: &QuantizedB,
    out: &mut [f32],
) {
    let n = qb.n;
    let k_pad = qb.quads * 4;
    let n_full = n - n % NR;
    #[cfg(target_arch = "x86_64")]
    let use_simd = qi8::available();
    #[cfg(not(target_arch = "x86_64"))]
    let use_simd = false;
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_simd;

    let mut acc_tile = [[0i32; NR]; MR];
    let mut r0 = 0usize;
    while r0 + MR <= rows {
        let qa_rows: [&[u8]; MR] =
            std::array::from_fn(|r| &qa[(r0 + r) * k_pad..(r0 + r + 1) * k_pad]);
        for j0 in (0..n_full).step_by(NR) {
            #[cfg(target_arch = "x86_64")]
            if use_simd {
                // SAFETY: `available()` checked; slice lengths established
                // by the callers' debug asserts and the pack layout.
                unsafe {
                    qi8::micro_i8(qa_rows, qb.strip(j0), qb.quads, &mut acc_tile);
                    for r in 0..MR {
                        let i = r0 + r;
                        qi8::dequant_row16(
                            &acc_tile[r],
                            qb.colsums.as_ptr().add(j0),
                            qb.scales.as_ptr().add(j0),
                            a_scales[i],
                            zero_points[i] as i32,
                            out.as_mut_ptr().add(i * n + j0),
                        );
                    }
                }
                continue;
            }
            for (r, qa_row) in qa_rows.iter().enumerate() {
                quant_row_scalar(qa_row, qb, j0, j0 + NR, &mut acc_tile[r]);
            }
            for r in 0..MR {
                let i = r0 + r;
                quant_dequant_row(
                    &acc_tile[r],
                    qb,
                    j0,
                    a_scales[i],
                    zero_points[i] as i32,
                    &mut out[i * n + j0..i * n + j0 + NR],
                );
            }
        }
        if n_full < n {
            for r in 0..MR {
                let i = r0 + r;
                quant_row_scalar(qa_rows[r], qb, n_full, n, &mut acc_tile[0][..n - n_full]);
                let (head, _) = acc_tile.split_at(1);
                quant_dequant_row(
                    &head[0][..n - n_full],
                    qb,
                    n_full,
                    a_scales[i],
                    zero_points[i] as i32,
                    &mut out[i * n + n_full..(i + 1) * n],
                );
            }
        }
        r0 += MR;
    }
    // Row remainder (< MR rows — this is also the whole band-replay case):
    // run the SIMD tile anyway with the last row repeated into the unused
    // slots and dequantize only the real rows. The duplicated lanes cost
    // less than a scalar k×NR loop per row, and the real rows' integers are
    // unchanged (each lane only ever reads its own row pointer).
    #[cfg(target_arch = "x86_64")]
    if use_simd && r0 < rows {
        let rem = rows - r0;
        let qa_rows: [&[u8]; MR] = std::array::from_fn(|r| {
            let i = r0 + r.min(rem - 1);
            &qa[i * k_pad..(i + 1) * k_pad]
        });
        for j0 in (0..n_full).step_by(NR) {
            // SAFETY: same preconditions as the full-tile call above.
            unsafe {
                qi8::micro_i8(qa_rows, qb.strip(j0), qb.quads, &mut acc_tile);
                for r in 0..rem {
                    let i = r0 + r;
                    qi8::dequant_row16(
                        &acc_tile[r],
                        qb.colsums.as_ptr().add(j0),
                        qb.scales.as_ptr().add(j0),
                        a_scales[i],
                        zero_points[i] as i32,
                        out.as_mut_ptr().add(i * n + j0),
                    );
                }
            }
        }
        if n_full < n {
            for r in 0..rem {
                let i = r0 + r;
                quant_row_scalar(qa_rows[r], qb, n_full, n, &mut acc_tile[0][..n - n_full]);
                let (head, _) = acc_tile.split_at(1);
                quant_dequant_row(
                    &head[0][..n - n_full],
                    qb,
                    n_full,
                    a_scales[i],
                    zero_points[i] as i32,
                    &mut out[i * n + n_full..(i + 1) * n],
                );
            }
        }
        return;
    }
    // Row remainder: exact scalar over the full width.
    for i in r0..rows {
        let qa_row = &qa[i * k_pad..(i + 1) * k_pad];
        let mut j0 = 0usize;
        while j0 < n {
            let j1 = (j0 + NR).min(n);
            quant_row_scalar(qa_row, qb, j0, j1, &mut acc_tile[0][..j1 - j0]);
            let (head, _) = acc_tile.split_at(1);
            quant_dequant_row(
                &head[0][..j1 - j0],
                qb,
                j0,
                a_scales[i],
                zero_points[i] as i32,
                &mut out[i * n + j0..i * n + j1],
            );
            j0 = j1;
        }
    }
}

/// Fused quantized `C = act(dequant(qa·qb) + bias)` inference entry — the
/// i8 analogue of [`matmul_bias_act_into`]: quantize the `m×k` activations
/// per row, run the integer GEMM (serial, or fanned out on `MR`-row
/// boundaries with the same thresholds as [`tiled_dispatch`]), dequantize
/// into `out`, and apply the shared [`bias_act_apply`] epilogue.
///
/// The result is deterministic and bit-identical at every thread count and
/// SIMD tier (exact integer accumulation); it differs from the f32 kernel by
/// the bounded quantization error (see the property tests).
#[allow(clippy::too_many_arguments)]
pub fn matmul_bias_act_i8_into(
    a: &[f32],
    qb: &QuantizedB,
    bias: Option<&[f32]>,
    act: Act,
    m: usize,
    k: usize,
    n: usize,
    pool: &RotomPool,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(qb.shape(), (k, n));
    debug_assert_eq!(out.len(), m * n);
    profile::QUANT_I8.fetch_add(1, std::sync::atomic::Ordering::Relaxed);

    let k_pad = qb.quads * 4;
    let mut qa = take_qscratch(m * k_pad);
    let mut zps = take_qscratch(m);
    let mut a_scales = take_scratch(m);
    quantize_activations(a, m, k, qb.quads, &mut qa, &mut a_scales, &mut zps);

    let flops = m * k * n;
    if flops < PAR_MIN_FLOPS || pool.threads() <= 1 || m < 2 * MR {
        quant_block(&qa, &a_scales, &zps, m, qb, out);
    } else {
        // Same fan-out shape (and soundness argument) as `tiled_dispatch`:
        // disjoint MR-row ranges, joined before return.
        let qa = &qa[..];
        let a_scales = &a_scales[..];
        let zps = &zps[..];
        let out_base = SendPtr(out.as_mut_ptr());
        let out_base = &out_base;
        pool.run_ranges(m, MR, move |range| {
            let rows = range.end - range.start;
            let qa_block = &qa[range.start * k_pad..range.end * k_pad];
            let out_block = unsafe {
                std::slice::from_raw_parts_mut(out_base.0.add(range.start * n), rows * n)
            };
            quant_block(
                qa_block,
                &a_scales[range.start..range.end],
                &zps[range.start..range.end],
                rows,
                qb,
                out_block,
            );
        });
    }
    put_scratch(a_scales);
    put_qscratch(zps);
    put_qscratch(qa);
    bias_act_apply(out, m, n, bias, act);
}

/// Band replay of [`matmul_bias_act_i8_into`]: compute only `band_len` rows
/// (always serial — bands are at most [`MR`] rows). Activation quantization
/// is per row, so a band computes exactly what the same rows of the full
/// quantized product would — band replay stays self-consistent with full
/// replay, like the f32 band kernels.
#[allow(clippy::too_many_arguments)]
pub fn matmul_band_i8_into(
    a_band: &[f32],
    qb: &QuantizedB,
    bias: Option<&[f32]>,
    act: Act,
    band_len: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(a_band.len(), band_len * k);
    debug_assert_eq!(qb.shape(), (k, n));
    debug_assert_eq!(out.len(), band_len * n);
    profile::QUANT_I8.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let k_pad = qb.quads * 4;
    let mut qa = take_qscratch(band_len * k_pad);
    let mut zps = take_qscratch(band_len);
    let mut a_scales = take_scratch(band_len);
    quantize_activations(
        a_band,
        band_len,
        k,
        qb.quads,
        &mut qa,
        &mut a_scales,
        &mut zps,
    );
    quant_block(&qa, &a_scales, &zps, band_len, qb, out);
    put_scratch(a_scales);
    put_qscratch(zps);
    put_qscratch(qa);
    bias_act_apply(out, band_len, n, bias, act);
}

/// Elementwise `out = x + y` — the forward-only counterpart of the tape's
/// `add` op (residual connections), bit-identical to it (one add rounding
/// per element on both tiers).
pub fn add_fwd(x: &[f32], y: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if avx::available() {
        // SAFETY: `available()` checked; lengths asserted equal.
        unsafe { avx::add_into(x, y, out) };
        return;
    }
    for ((&a, &b), o) in x.iter().zip(y).zip(out.iter_mut()) {
        *o = a + b;
    }
}

/// Elementwise `x += y` in place — value-identical to [`add_fwd`] (the
/// tape's `add` always writes a fresh node, but the sums are the same).
pub fn add_assign_fwd(x: &mut [f32], y: &[f32]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if avx::available() {
        // SAFETY: `available()` checked; lengths asserted equal.
        unsafe { avx::add_assign(x, y) };
        return;
    }
    for (o, &b) in x.iter_mut().zip(y) {
        *o += b;
    }
}

/// Elementwise `x *= c` in place — the forward-only counterpart of the
/// tape's `scale` op, bit-identical to it (one mul rounding per element).
pub fn scale_fwd(x: &mut [f32], c: f32) {
    #[cfg(target_arch = "x86_64")]
    if avx::available() {
        // SAFETY: `available()` checked.
        unsafe { avx::scale_inplace(x, c) };
        return;
    }
    for o in x.iter_mut() {
        *o *= c;
    }
}

/// One softmax row, replicating the tape's `softmax_row` bit-for-bit:
/// max-shift over `v + m` (mask value `m`, or `+ 0.0` when unmasked),
/// scalar `exp` and sum in index order, then a uniform `1/sum` scale.
/// Returns `(max, sum)` — the pieces a cross-entropy epilogue needs for
/// `lse = sum.ln() + max`.
///
/// The SIMD tier vectorizes only the order-independent or elementwise
/// stages (the additive mask shift, the max reduction, the final scale);
/// the order-sensitive `exp`-and-accumulate stage stays scalar, so both
/// tiers produce identical bits.
pub fn softmax_row_fwd(row: &[f32], mask: Option<&[f32]>, out: &mut [f32]) -> (f32, f32) {
    let n = row.len();
    debug_assert_eq!(out.len(), n);
    #[cfg(target_arch = "x86_64")]
    if avx::available() {
        // Shifted logits go in `out` (overwritten by the exp pass below).
        match mask {
            Some(mm) => {
                debug_assert_eq!(mm.len(), n);
                unsafe { avx::add_into(row, mm, out) };
            }
            None => unsafe { avx::add_scalar_into(row, 0.0, out) },
        }
        let max = unsafe { avx::max_val(out) };
        let mut sum = 0.0f32;
        for o in out.iter_mut() {
            let e = (*o - max).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        unsafe { avx::scale_inplace(out, inv) };
        return (max, sum);
    }
    let mut max = f32::NEG_INFINITY;
    for (j, &v) in row.iter().enumerate() {
        let m = mask.map_or(0.0, |mm| mm[j]);
        max = max.max(v + m);
    }
    let mut sum = 0.0f32;
    for (j, &v) in row.iter().enumerate() {
        let m = mask.map_or(0.0, |mm| mm[j]);
        let e = (v + m - max).exp();
        out[j] = e;
        sum += e;
    }
    let inv = 1.0 / sum;
    for o in out.iter_mut() {
        *o *= inv;
    }
    (max, sum)
}

/// Row-wise softmax over a `rows×cols` buffer with an optional additive
/// `rows×cols` mask — the forward-only counterpart of the tape's
/// `softmax` / `masked_softmax` ops, bit-identical to both.
pub fn softmax_fwd(x: &[f32], mask: Option<&[f32]>, rows: usize, cols: usize, out: &mut [f32]) {
    debug_assert_eq!(x.len(), rows * cols);
    debug_assert_eq!(out.len(), rows * cols);
    if let Some(mm) = mask {
        debug_assert_eq!(mm.len(), rows * cols);
    }
    #[cfg(target_arch = "x86_64")]
    let simd = avx::available();
    #[cfg(not(target_arch = "x86_64"))]
    let simd = false;
    profile::bump(if simd {
        &profile::SOFTMAX_SIMD
    } else {
        &profile::SOFTMAX_SCALAR
    });
    for i in 0..rows {
        let row = &x[i * cols..(i + 1) * cols];
        let mrow = mask.map(|mm| &mm[i * cols..(i + 1) * cols]);
        softmax_row_fwd(row, mrow, &mut out[i * cols..(i + 1) * cols]);
    }
}

/// Row-wise layer norm over a `rows×n` buffer — the forward-only
/// counterpart of the tape's `layer_norm` op, bit-identical to it.
///
/// The mean and variance folds are order-sensitive and stay scalar in the
/// tape's index order; the affine transform `((v-mean)·inv_std)·γ + β` is
/// elementwise with one rounding per step and takes the SIMD tier.
pub fn layernorm_fwd(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    rows: usize,
    n: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(x.len(), rows * n);
    debug_assert_eq!(gamma.len(), n);
    debug_assert_eq!(beta.len(), n);
    debug_assert_eq!(out.len(), rows * n);
    #[cfg(target_arch = "x86_64")]
    let simd = avx::available();
    #[cfg(not(target_arch = "x86_64"))]
    let simd = false;
    profile::bump(if simd {
        &profile::LAYERNORM_SIMD
    } else {
        &profile::LAYERNORM_SCALAR
    });
    let nf = n as f32;
    for i in 0..rows {
        let row = &x[i * n..(i + 1) * n];
        let mean = row.iter().sum::<f32>() / nf;
        let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / nf;
        let inv_std = 1.0 / (var + eps).sqrt();
        let orow = &mut out[i * n..(i + 1) * n];
        #[cfg(target_arch = "x86_64")]
        if simd {
            unsafe { avx::ln_affine_into(row, mean, inv_std, gamma, beta, orow) };
            continue;
        }
        for (j, (&v, o)) in row.iter().zip(orow.iter_mut()).enumerate() {
            *o = (v - mean) * inv_std * gamma[j] + beta[j];
        }
    }
}

/// Elementwise tanh-approximation GELU — the forward-only counterpart of
/// the tape's `gelu` op, bit-identical to it on both tiers (the SIMD tier
/// keeps every polynomial step a separate rounding and evaluates `tanh`
/// with the scalar libm call per lane).
pub fn gelu_fwd(x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    #[cfg(target_arch = "x86_64")]
    if avx::available() {
        profile::bump(&profile::GELU_SIMD);
        // SAFETY: `available()` checked; disjoint borrows of valid length.
        unsafe { avx::gelu_ptr(x.as_ptr(), x.len(), GELU_C, GELU_A, out.as_mut_ptr()) };
        return;
    }
    profile::bump(&profile::GELU_SCALAR);
    for (&v, o) in x.iter().zip(out.iter_mut()) {
        let th = (GELU_C * (v + GELU_A * v * v * v)).tanh();
        *o = 0.5 * v * (1.0 + th);
    }
}

/// In-place [`gelu_fwd`].
fn gelu_fwd_inplace(x: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx::available() {
        profile::bump(&profile::GELU_SIMD);
        // SAFETY: `available()` checked; equal src/dst pointers are allowed
        // by `gelu_ptr` (each lane is read before written). Both pointers
        // derive from the same mutable borrow.
        let p = x.as_mut_ptr();
        unsafe { avx::gelu_ptr(p, x.len(), GELU_C, GELU_A, p) };
        return;
    }
    profile::bump(&profile::GELU_SCALAR);
    for o in x.iter_mut() {
        let v = *o;
        let th = (GELU_C * (v + GELU_A * v * v * v)).tanh();
        *o = 0.5 * v * (1.0 + th);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_rng::rngs::StdRng;
    use rotom_rng::{split_seed, RngExt, SeedableRng};

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Vec<f32> {
        (0..rows * cols)
            .map(|_| rng.random_range(-2.0f32..2.0))
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "{ctx}: element {i}: {x} vs {y}");
        }
    }

    /// Shapes covering tile edges: non-multiples of MR/NR, m=1 row vectors,
    /// tall/wide extremes, and sizes straddling both dispatch thresholds.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 7, 5),
        (1, 64, 64),
        (3, 3, 3),
        (4, 8, 8),
        (5, 9, 13),
        (17, 31, 29),
        (32, 32, 32),
        (33, 65, 63),
        (64, 64, 64),
        (70, 64, 70),
        (1, 300, 300),
        (128, 17, 128),
    ];

    #[test]
    fn tiled_matches_naive_within_1e4() {
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4e1, case as u64));
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let naive = matmul_naive(&a, &b, m, k, n);
            let tiled = matmul_with_pool(&a, &b, m, k, n, &RotomPool::new(1));
            assert_close(&naive, &tiled, 1e-4, &format!("matmul {m}x{k}x{n}"));
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        // Explicit pools, so the assertion holds regardless of the
        // ROTOM_THREADS environment.
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4e2, case as u64));
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let serial = matmul_with_pool(&a, &b, m, k, n, &RotomPool::new(1));
            for threads in [2, 3, 8] {
                let par = matmul_with_pool(&a, &b, m, k, n, &RotomPool::new(threads));
                assert_eq!(serial, par, "matmul {m}x{k}x{n} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_is_bit_identical_at_large_size() {
        // Big enough to actually cross PAR_MIN_FLOPS and fan out.
        let (m, k, n) = (96, 80, 96);
        let mut rng = StdRng::seed_from_u64(0x4e3);
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let serial = matmul_with_pool(&a, &b, m, k, n, &RotomPool::new(1));
        for threads in [2, 5, 16] {
            let par = matmul_with_pool(&a, &b, m, k, n, &RotomPool::new(threads));
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn transpose_b_matches_naive_and_explicit_transpose() {
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4e4, case as u64));
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, n, k);
            let fast = matmul_transpose_b_with_pool(&a, &b, m, k, n, &RotomPool::new(2));
            let naive = matmul_transpose_b_naive(&a, &b, m, k, n);
            assert_close(&fast, &naive, 1e-4, &format!("matmul_tb {m}x{k}x{n}"));
            let explicit = matmul_with_pool(&a, &transpose(&b, n, k), m, k, n, &RotomPool::new(2));
            assert_eq!(fast, explicit, "tb vs explicit transpose {m}x{k}x{n}");
        }
    }

    #[test]
    fn transpose_a_matches_explicit_transpose() {
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4e5, case as u64));
            let a = random_matrix(&mut rng, m, k);
            let g = random_matrix(&mut rng, m, n);
            let fast = matmul_transpose_a_with_pool(&a, &g, m, k, n, &RotomPool::new(2));
            let explicit = matmul_with_pool(&transpose(&a, m, k), &g, k, m, n, &RotomPool::new(2));
            assert_close(&fast, &explicit, 1e-4, &format!("matmul_ta {m}x{k}x{n}"));
        }
    }

    #[test]
    fn transpose_a_fused_slices_are_bit_identical_above_small() {
        // Above SMALL_FLOPS both paths run the same tiled core, so the fused
        // slice transpose must be bit-identical to the materialized one —
        // including shapes where k straddles TA_CHUNK.
        for &(m, k, n) in &[(40, 40, 40), (96, 80, 96), (33, 130, 48), (64, 64, 64)] {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4e7, (m * k * n) as u64));
            let a = random_matrix(&mut rng, m, k);
            let g = random_matrix(&mut rng, m, n);
            for threads in [1, 2, 8] {
                let pool = RotomPool::new(threads);
                let fast = matmul_transpose_a_with_pool(&a, &g, m, k, n, &pool);
                let explicit = matmul_with_pool(&transpose(&a, m, k), &g, k, m, n, &pool);
                assert_eq!(fast, explicit, "ta {m}x{k}x{n} threads={threads}");
            }
        }
    }

    #[test]
    fn prepacked_matches_cold_pack_bitwise() {
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4e8, case as u64));
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let pk = PackedB::pack_row_major(&b, k, n);
            for threads in [1, 2, 8] {
                let pool = RotomPool::new(threads);
                let cold = matmul_with_pool(&a, &b, m, k, n, &pool);
                let mut warm = vec![0.0f32; m * n];
                matmul_prepacked_into(&a, &b, &pk, m, k, n, &pool, &mut warm);
                assert_eq!(cold, warm, "prepacked {m}x{k}x{n} threads={threads}");
            }
        }
    }

    #[test]
    fn prepacked_transposed_matches_cold_bitwise() {
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4e9, case as u64));
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, n, k);
            let pk = PackedB::pack_transposed(&b, k, n);
            // Panel contents must match packing the materialized transpose.
            let bt = transpose(&b, n, k);
            let pk_ref = PackedB::pack_row_major(&bt, k, n);
            assert_eq!(pk.panels, pk_ref.panels, "pack_transposed {k}x{n}");
            for threads in [1, 2, 8] {
                let pool = RotomPool::new(threads);
                let cold = matmul_transpose_b_with_pool(&a, &b, m, k, n, &pool);
                let mut warm = vec![0.0f32; m * n];
                matmul_transpose_b_prepacked_into(&a, &b, &pk, m, k, n, &pool, &mut warm);
                assert_eq!(cold, warm, "tb prepacked {m}x{k}x{n} threads={threads}");
            }
        }
    }

    #[test]
    fn transpose_roundtrips() {
        let mut rng = StdRng::seed_from_u64(0x4e6);
        for &(rows, cols) in &[(1, 1), (1, 17), (33, 65), (64, 64), (100, 3)] {
            let src = random_matrix(&mut rng, rows, cols);
            let rt = transpose(&transpose(&src, rows, cols), cols, rows);
            assert_eq!(src, rt, "{rows}x{cols}");
        }
    }

    #[test]
    fn zero_sized_edges() {
        // m=0 or n=0 products are legal (empty batches) and return empty.
        assert!(matmul(&[], &[1.0, 2.0], 0, 1, 2).is_empty());
        let out = matmul(&[1.0, 2.0], &[], 1, 2, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn band_rows_partitions_all_rows() {
        for full_m in [1usize, 2, 3, 4, 5, 7, 8, 11, 64, 70] {
            for row in 0..full_m {
                let (start, len) = band_rows(full_m, row);
                assert!(start <= row && row < start + len, "{full_m}/{row}");
                assert!(len <= MR && start + len <= full_m);
                if start + len < full_m {
                    assert_eq!(len, MR, "interior bands are full tiles");
                    assert_eq!(start % MR, 0);
                }
            }
        }
    }

    #[test]
    fn band_replay_matches_full_product_bitwise() {
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4ea, case as u64));
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let pk = PackedB::pack_row_major(&b, k, n);
            for threads in [1, 2, 8] {
                let full = matmul_with_pool(&a, &b, m, k, n, &RotomPool::new(threads));
                for row in [0, m / 2, m - 1] {
                    let (start, len) = band_rows(m, row);
                    let a_band = &a[start * k..(start + len) * k];
                    let mut band = vec![0.0f32; len * n];
                    matmul_band_into(a_band, &b, None, m, len, k, n, &mut band);
                    assert_eq!(
                        band,
                        &full[start * n..(start + len) * n],
                        "band {m}x{k}x{n} row={row} threads={threads}"
                    );
                    matmul_band_into(a_band, &b, Some(&pk), m, len, k, n, &mut band);
                    assert_eq!(
                        band,
                        &full[start * n..(start + len) * n],
                        "packed band {m}x{k}x{n} row={row} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn transpose_b_band_replay_matches_full_product_bitwise() {
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4eb, case as u64));
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, n, k);
            for threads in [1, 2, 8] {
                let full = matmul_transpose_b_with_pool(&a, &b, m, k, n, &RotomPool::new(threads));
                for row in [0, m / 2, m - 1] {
                    let (start, len) = band_rows(m, row);
                    let a_band = &a[start * k..(start + len) * k];
                    let mut band = vec![0.0f32; len * n];
                    matmul_transpose_b_band_into(a_band, &b, m, len, k, n, &mut band);
                    assert_eq!(
                        band,
                        &full[start * n..(start + len) * n],
                        "tb band {m}x{k}x{n} row={row} threads={threads}"
                    );
                }
            }
        }
    }

    /// Scalar references below replicate the tape ops verbatim (graph.rs) —
    /// the forward kernels must match them bit-for-bit on every tier.
    fn softmax_ref(x: &[f32], mask: Option<&[f32]>, rows: usize, cols: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; rows * cols];
        for i in 0..rows {
            let row = &x[i * cols..(i + 1) * cols];
            let orow = &mut out[i * cols..(i + 1) * cols];
            let mrow = mask.map(|mm| &mm[i * cols..(i + 1) * cols]);
            let mut max = f32::NEG_INFINITY;
            for (j, &v) in row.iter().enumerate() {
                let m = mrow.map_or(0.0, |mm| mm[j]);
                max = max.max(v + m);
            }
            let mut sum = 0.0f32;
            for (j, &v) in row.iter().enumerate() {
                let m = mrow.map_or(0.0, |mm| mm[j]);
                let e = (v + m - max).exp();
                orow[j] = e;
                sum += e;
            }
            let inv = 1.0 / sum;
            for o in orow.iter_mut() {
                *o *= inv;
            }
        }
        out
    }

    #[test]
    fn softmax_fwd_matches_tape_formula_bitwise() {
        for (case, &(rows, cols)) in [(1usize, 5usize), (3, 17), (8, 33), (12, 40)]
            .iter()
            .enumerate()
        {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4ec, case as u64));
            let x = random_matrix(&mut rng, rows, cols);
            let mut mask = vec![0.0f32; rows * cols];
            for mv in mask.iter_mut() {
                if rng.random_range(0.0f32..1.0) < 0.3 {
                    *mv = -1e9;
                }
            }
            let mut out = vec![0.0f32; rows * cols];
            softmax_fwd(&x, None, rows, cols, &mut out);
            assert_eq!(
                out,
                softmax_ref(&x, None, rows, cols),
                "unmasked {rows}x{cols}"
            );
            softmax_fwd(&x, Some(&mask), rows, cols, &mut out);
            assert_eq!(
                out,
                softmax_ref(&x, Some(&mask), rows, cols),
                "masked {rows}x{cols}"
            );
        }
    }

    #[test]
    fn layernorm_fwd_matches_tape_formula_bitwise() {
        for (case, &(rows, n)) in [(1usize, 7usize), (4, 16), (9, 24), (13, 33)]
            .iter()
            .enumerate()
        {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4ed, case as u64));
            let x = random_matrix(&mut rng, rows, n);
            let gamma = random_matrix(&mut rng, 1, n);
            let beta = random_matrix(&mut rng, 1, n);
            let eps = 1e-5f32;
            let mut out = vec![0.0f32; rows * n];
            layernorm_fwd(&x, &gamma, &beta, eps, rows, n, &mut out);
            let mut expect = vec![0.0f32; rows * n];
            for i in 0..rows {
                let row = &x[i * n..(i + 1) * n];
                let mean = row.iter().sum::<f32>() / n as f32;
                let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
                let inv_std = 1.0 / (var + eps).sqrt();
                for (j, &v) in row.iter().enumerate() {
                    expect[i * n + j] = (v - mean) * inv_std * gamma[j] + beta[j];
                }
            }
            assert_eq!(out, expect, "layernorm {rows}x{n}");
        }
    }

    #[test]
    fn gelu_fwd_matches_tape_formula_bitwise() {
        let mut rng = StdRng::seed_from_u64(0x4ee);
        for len in [1usize, 7, 8, 31, 256] {
            let x = random_matrix(&mut rng, 1, len);
            let mut out = vec![0.0f32; len];
            gelu_fwd(&x, &mut out);
            for (j, (&v, &o)) in x.iter().zip(&out).enumerate() {
                let th = (0.797_884_6f32 * (v + 0.044_715 * v * v * v)).tanh();
                let expect = 0.5 * v * (1.0 + th);
                assert_eq!(o, expect, "gelu len={len} j={j}");
            }
        }
    }

    #[test]
    fn fused_bias_act_matches_unfused_sequence_bitwise() {
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4ef, case as u64));
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let bias = random_matrix(&mut rng, 1, n);
            let pk = PackedB::pack_row_major(&b, k, n);
            for threads in [1, 8] {
                let pool = RotomPool::new(threads);
                // Unfused reference: matmul, then add_row, then gelu — the
                // tape's exact op sequence.
                let mut expect = matmul_with_pool(&a, &b, m, k, n, &pool);
                for i in 0..m {
                    for j in 0..n {
                        expect[i * n + j] += bias[j];
                    }
                }
                let mut expect_gelu = expect.clone();
                gelu_fwd(&expect, &mut expect_gelu);
                for pk_opt in [None, Some(&pk)] {
                    let mut fused = vec![0.0f32; m * n];
                    matmul_bias_act_into(
                        &a,
                        &b,
                        pk_opt,
                        Some(&bias),
                        Act::None,
                        m,
                        k,
                        n,
                        &pool,
                        &mut fused,
                    );
                    assert_eq!(fused, expect, "fused none {m}x{k}x{n} threads={threads}");
                    matmul_bias_act_into(
                        &a,
                        &b,
                        pk_opt,
                        Some(&bias),
                        Act::Gelu,
                        m,
                        k,
                        n,
                        &pool,
                        &mut fused,
                    );
                    assert_eq!(
                        fused, expect_gelu,
                        "fused gelu {m}x{k}x{n} threads={threads}"
                    );
                }
            }
        }
    }

    // -- Quantized i8 GEMM ---------------------------------------------------

    /// Run the quantized activation pass the way the kernel entry does and
    /// return `(qa, scales, zero_points, k_pad)`.
    fn quantize_a(a: &[f32], m: usize, k: usize) -> (Vec<u8>, Vec<f32>, Vec<u8>, usize) {
        let quads = k.div_ceil(4);
        let k_pad = quads * 4;
        let mut qa = vec![0u8; m * k_pad];
        let mut scales = vec![0.0f32; m];
        let mut zps = vec![0u8; m];
        quantize_activations(a, m, k, quads, &mut qa, &mut scales, &mut zps);
        (qa, scales, zps, k_pad)
    }

    /// Exact-integer scalar reference for the whole quantized product,
    /// including the dequantization formula verbatim — the kernel (SIMD or
    /// not, any thread count) must match it bit-for-bit.
    fn quant_reference(a: &[f32], qb: &QuantizedB, m: usize, k: usize, n: usize) -> Vec<f32> {
        let (qa, scales, zps, k_pad) = quantize_a(a, m, k);
        let qw = qb.quantized_rows();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                let mut colsum = 0i64;
                for p in 0..k {
                    acc += qa[i * k_pad + p] as i64 * qw[p * n + j] as i64;
                    colsum += qw[p * n + j] as i64;
                }
                let corrected = (acc - zps[i] as i64 * colsum) as i32;
                out[i * n + j] = corrected as f32 * (scales[i] * qb.scales()[j]);
            }
        }
        out
    }

    #[test]
    fn quant_matches_exact_integer_reference_bitwise_at_any_thread_count() {
        // Integer accumulation is exact, so the kernel — scalar or AVX2,
        // serial or fanned out — must agree with the plain-Rust reference
        // bit-for-bit. This is the cross-tier equivalence proof: whichever
        // SIMD tier this machine dispatches to, it reproduced the scalar
        // integers exactly.
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4f0, case as u64));
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let qb = QuantizedB::quantize_row_major(&b, k, n);
            let expect = quant_reference(&a, &qb, m, k, n);
            for threads in [1, 2, 8] {
                let pool = RotomPool::new(threads);
                let mut out = vec![f32::NAN; m * n];
                matmul_bias_act_i8_into(&a, &qb, None, Act::None, m, k, n, &pool, &mut out);
                assert_eq!(out, expect, "quant {m}x{k}x{n} threads={threads}");
            }
        }
    }

    #[test]
    fn quant_error_stays_within_analytic_bound() {
        // Rounding model: a = r·(qa−z) + eₐ with |eₐ| ≤ 0.5r, w = s·qw + e_w
        // with |e_w| ≤ 0.5s, so per element
        //   |C_q − C| ≤ 0.5·s_j·Σ_p|a[i][p]| + 0.5·r_i·Σ_p|w[p][j]| + 0.25·k·r_i·s_j
        // plus a small absolute slack for the f32 evaluation of both sides.
        for (case, &(m, k, n)) in SHAPES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(split_seed(0x4f1, case as u64));
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let qb = QuantizedB::quantize_row_major(&b, k, n);
            let (_, a_scales, _, _) = quantize_a(&a, m, k);
            let exact = matmul_naive(&a, &b, m, k, n);
            let pool = RotomPool::new(1);
            let mut quant = vec![0.0f32; m * n];
            matmul_bias_act_i8_into(&a, &qb, None, Act::None, m, k, n, &pool, &mut quant);
            for i in 0..m {
                let a_abs: f32 = a[i * k..(i + 1) * k].iter().map(|v| v.abs()).sum();
                for j in 0..n {
                    let w_abs: f32 = (0..k).map(|p| b[p * n + j].abs()).sum();
                    let r = a_scales[i];
                    let s = qb.scales()[j];
                    let bound = 0.5 * s * a_abs + 0.5 * r * w_abs + 0.25 * k as f32 * r * s + 1e-3;
                    let err = (quant[i * n + j] - exact[i * n + j]).abs();
                    assert!(
                        err <= bound,
                        "quant {m}x{k}x{n} [{i},{j}]: err {err} > bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn quant_degenerate_rows_and_columns_are_exact_and_finite() {
        let (m, k, n) = (6, 40, 20);
        let mut rng = StdRng::seed_from_u64(0x4f2);
        let mut a = random_matrix(&mut rng, m, k);
        let mut b = random_matrix(&mut rng, k, n);
        // Row 0 of A all zero; row 2 constant; column 3 of B all zero.
        for v in &mut a[..k] {
            *v = 0.0;
        }
        for v in &mut a[2 * k..3 * k] {
            *v = 1.25;
        }
        for p in 0..k {
            b[p * n + 3] = 0.0;
        }
        let qb = QuantizedB::quantize_row_major(&b, k, n);
        let bias: Vec<f32> = (0..n).map(|j| j as f32 * 0.1 - 1.0).collect();
        let pool = RotomPool::new(1);
        let mut out = vec![f32::NAN; m * n];
        matmul_bias_act_i8_into(&a, &qb, Some(&bias), Act::None, m, k, n, &pool, &mut out);
        assert!(out.iter().all(|v| v.is_finite()), "no NaN/inf anywhere");
        for j in 0..n {
            // Zero activation row: 0·W + bias exactly.
            assert_eq!(out[j], bias[j], "zero row col {j}");
        }
        for i in 0..m {
            // Zero weight column: bias exactly.
            assert_eq!(out[i * n + 3], bias[3], "zero col row {i}");
        }
        // All-zero inputs on both sides (the fully degenerate case).
        let za = vec![0.0f32; m * k];
        let zb = QuantizedB::quantize_row_major(&vec![0.0f32; k * n], k, n);
        let mut zout = vec![f32::NAN; m * n];
        matmul_bias_act_i8_into(&za, &zb, None, Act::None, m, k, n, &pool, &mut zout);
        assert!(zout.iter().all(|&v| v == 0.0), "zero·zero is exactly zero");
    }

    #[test]
    fn quant_weight_roundtrip_bounds_per_element_relative_error() {
        let mut rng = StdRng::seed_from_u64(0x4f3);
        for &(k, n) in &[(7usize, 5usize), (32, 16), (33, 65), (128, 48)] {
            let b = random_matrix(&mut rng, k, n);
            let qb = QuantizedB::quantize_row_major(&b, k, n);
            let qw = qb.quantized_rows();
            for j in 0..n {
                let colmax = (0..k).map(|p| b[p * n + j].abs()).fold(0.0f32, f32::max);
                let s = qb.scales()[j];
                for p in 0..k {
                    let rt = qw[p * n + j] as f32 * s;
                    let err = (rt - b[p * n + j]).abs();
                    // Round-trip error ≤ half a quantization step, i.e.
                    // ≤ colmax/254 + f32 slack: bounded relative to the
                    // column's max magnitude.
                    assert!(
                        err <= 0.5 * s + colmax * 1e-6 + 1e-7,
                        "roundtrip {k}x{n} [{p},{j}]: {rt} vs {} (err {err})",
                        b[p * n + j]
                    );
                }
            }
        }
    }

    #[test]
    fn quant_fused_epilogue_matches_shared_bias_act() {
        // The epilogue is the same `bias_act_apply` the f32 path uses, so
        // quant-with-bias/gelu must equal quant-plain + manual epilogue.
        let (m, k, n) = (9, 48, 33);
        let mut rng = StdRng::seed_from_u64(0x4f4);
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let bias = random_matrix(&mut rng, 1, n);
        let qb = QuantizedB::quantize_row_major(&b, k, n);
        let pool = RotomPool::new(1);
        let mut plain = vec![0.0f32; m * n];
        matmul_bias_act_i8_into(&a, &qb, None, Act::None, m, k, n, &pool, &mut plain);
        bias_act_apply(&mut plain, m, n, Some(&bias), Act::Gelu);
        let mut fused = vec![0.0f32; m * n];
        matmul_bias_act_i8_into(&a, &qb, Some(&bias), Act::Gelu, m, k, n, &pool, &mut fused);
        assert_eq!(fused, plain, "fused quant epilogue");
    }

    /// Manual micro-benchmark (not a correctness test):
    /// `cargo test --release -p rotom-nn quant_kernel_speed -- --ignored --nocapture`
    #[test]
    #[ignore = "timing diagnostics, run manually with --nocapture"]
    fn quant_kernel_speed_vs_f32() {
        use std::time::Instant;
        let pool = RotomPool::new(1);
        for (m, k, n) in [
            (12usize, 128usize, 128usize),
            (48, 128, 256),
            (48, 256, 128),
        ] {
            let mut rng = StdRng::seed_from_u64(0x4f5);
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let pk = PackedB::pack_row_major(&b, k, n);
            let qb = QuantizedB::quantize_row_major(&b, k, n);
            let mut out = vec![0.0f32; m * n];
            let reps = 20_000usize;
            let time = |f: &mut dyn FnMut()| {
                f();
                let t = Instant::now();
                for _ in 0..reps {
                    f();
                }
                t.elapsed().as_secs_f64() / reps as f64
            };
            let f32_s = time(&mut || {
                matmul_bias_act_into(&a, &b, Some(&pk), None, Act::None, m, k, n, &pool, &mut out)
            });
            let i8_s = time(&mut || {
                matmul_bias_act_i8_into(&a, &qb, None, Act::None, m, k, n, &pool, &mut out)
            });
            let k_pad = qb.quads * 4;
            let mut qa = vec![0u8; m * k_pad];
            let mut scales = vec![0.0f32; m];
            let mut zps = vec![0u8; m];
            let quantize_s = time(&mut || {
                quantize_activations(&a, m, k, qb.quads, &mut qa, &mut scales, &mut zps)
            });
            let core_s = time(&mut || quant_block(&qa, &scales, &zps, m, &qb, &mut out));
            println!(
                "{m}x{k}x{n}: f32 {:.2}us | i8 {:.2}us ({:.2}x) | quantize {:.2}us core {:.2}us",
                f32_s * 1e6,
                i8_s * 1e6,
                f32_s / i8_s,
                quantize_s * 1e6,
                core_s * 1e6,
            );
        }
    }
}
