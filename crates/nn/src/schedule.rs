//! Learning-rate schedules.
//!
//! Transformer fine-tuning conventionally uses linear warmup followed by
//! linear decay (the schedule behind the paper's "lr 3e-5, ≤40 epochs"
//! setup). Schedules are plain state machines the caller steps once per
//! optimizer update.

/// A learning-rate schedule.
#[derive(Debug, Clone)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Linear warmup from 0 to `peak` over `warmup_steps`, then linear decay
    /// to 0 at `total_steps`.
    LinearWarmupDecay {
        /// Peak learning rate reached at the end of warmup.
        peak: f32,
        /// Steps spent warming up.
        warmup_steps: usize,
        /// Total steps (decay reaches 0 here; later steps stay at 0).
        total_steps: usize,
    },
}

impl LrSchedule {
    /// Learning rate at `step` (0-based).
    pub fn at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::LinearWarmupDecay {
                peak,
                warmup_steps,
                total_steps,
            } => {
                if warmup_steps > 0 && step < warmup_steps {
                    peak * (step + 1) as f32 / warmup_steps as f32
                } else if step >= total_steps {
                    0.0
                } else {
                    let decay_span = total_steps.saturating_sub(warmup_steps).max(1);
                    let progressed = step - warmup_steps;
                    peak * (1.0 - progressed as f32 / decay_span as f32)
                }
            }
        }
    }

    /// Iterator-style helper: a stateful stepper.
    pub fn stepper(self) -> LrStepper {
        LrStepper {
            schedule: self,
            step: 0,
        }
    }
}

/// Stateful wrapper advancing a schedule one optimizer update at a time.
#[derive(Debug, Clone)]
pub struct LrStepper {
    schedule: LrSchedule,
    step: usize,
}

impl LrStepper {
    /// The learning rate for the *next* update, advancing the counter.
    pub fn next_lr(&mut self) -> f32 {
        let lr = self.schedule.at(self.step);
        self.step += 1;
        lr
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.5 };
        assert_eq!(s.at(0), 0.5);
        assert_eq!(s.at(1000), 0.5);
    }

    #[test]
    fn warmup_rises_then_decays() {
        let s = LrSchedule::LinearWarmupDecay {
            peak: 1.0,
            warmup_steps: 10,
            total_steps: 110,
        };
        assert!(s.at(0) < s.at(5));
        assert!((s.at(9) - 1.0).abs() < 1e-6);
        assert!(s.at(10) > s.at(60));
        assert!(s.at(60) > s.at(109));
        assert_eq!(s.at(110), 0.0);
        assert_eq!(s.at(10_000), 0.0);
    }

    #[test]
    fn zero_warmup_starts_at_peak() {
        let s = LrSchedule::LinearWarmupDecay {
            peak: 2.0,
            warmup_steps: 0,
            total_steps: 10,
        };
        assert!((s.at(0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn stepper_advances() {
        let mut st = LrSchedule::LinearWarmupDecay {
            peak: 1.0,
            warmup_steps: 2,
            total_steps: 4,
        }
        .stepper();
        let seq: Vec<f32> = (0..5).map(|_| st.next_lr()).collect();
        assert!((seq[0] - 0.5).abs() < 1e-6);
        assert!((seq[1] - 1.0).abs() < 1e-6);
        assert!(seq[2] > seq[3]);
        assert_eq!(st.steps(), 5);
    }
}
