//! Learning-rate schedules.
//!
//! Transformer fine-tuning conventionally uses linear warmup followed by
//! linear decay (the schedule behind the paper's "lr 3e-5, ≤40 epochs"
//! setup). Schedules are plain state machines the caller steps once per
//! optimizer update.

/// A learning-rate schedule.
#[derive(Debug, Clone)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Linear warmup from 0 to `peak` over `warmup_steps`, then linear decay
    /// to 0 at `total_steps`.
    LinearWarmupDecay {
        /// Peak learning rate reached at the end of warmup.
        peak: f32,
        /// Steps spent warming up.
        warmup_steps: usize,
        /// Total steps (decay reaches 0 here; later steps stay at 0).
        total_steps: usize,
    },
}

impl LrSchedule {
    /// Learning rate at `step` (0-based).
    pub fn at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::LinearWarmupDecay {
                peak,
                warmup_steps,
                total_steps,
            } => {
                // The finished check must come before the warmup branch:
                // with warmup_steps >= total_steps, a step past total_steps
                // still satisfies `step < warmup_steps` and would otherwise
                // keep returning a warmup LR forever.
                if step >= total_steps {
                    0.0
                } else if warmup_steps > 0 && step < warmup_steps {
                    // Clamp: warmup_steps > total_steps would otherwise
                    // overshoot peak near the truncated end of warmup.
                    (peak * (step + 1) as f32 / warmup_steps as f32).min(peak)
                } else {
                    let decay_span = total_steps.saturating_sub(warmup_steps).max(1);
                    let progressed = step - warmup_steps;
                    peak * (1.0 - progressed as f32 / decay_span as f32)
                }
            }
        }
    }

    /// Iterator-style helper: a stateful stepper.
    pub fn stepper(self) -> LrStepper {
        LrStepper {
            schedule: self,
            step: 0,
        }
    }
}

/// Stateful wrapper advancing a schedule one optimizer update at a time.
#[derive(Debug, Clone)]
pub struct LrStepper {
    schedule: LrSchedule,
    step: usize,
}

impl LrStepper {
    /// The learning rate for the *next* update, advancing the counter.
    pub fn next_lr(&mut self) -> f32 {
        let lr = self.schedule.at(self.step);
        self.step += 1;
        lr
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.5 };
        assert_eq!(s.at(0), 0.5);
        assert_eq!(s.at(1000), 0.5);
    }

    #[test]
    fn warmup_rises_then_decays() {
        let s = LrSchedule::LinearWarmupDecay {
            peak: 1.0,
            warmup_steps: 10,
            total_steps: 110,
        };
        assert!(s.at(0) < s.at(5));
        assert!((s.at(9) - 1.0).abs() < 1e-6);
        assert!(s.at(10) > s.at(60));
        assert!(s.at(60) > s.at(109));
        assert_eq!(s.at(110), 0.0);
        assert_eq!(s.at(10_000), 0.0);
    }

    #[test]
    fn zero_warmup_starts_at_peak() {
        let s = LrSchedule::LinearWarmupDecay {
            peak: 2.0,
            warmup_steps: 0,
            total_steps: 10,
        };
        assert!((s.at(0) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn warmup_equal_to_total_is_zero_at_and_past_total() {
        let s = LrSchedule::LinearWarmupDecay {
            peak: 1.0,
            warmup_steps: 10,
            total_steps: 10,
        };
        // Warmup still rises within the schedule...
        assert!(s.at(0) > 0.0 && s.at(8) > s.at(0));
        assert!(s.at(8) <= 1.0);
        // ...but the schedule is over at total_steps, warmup or not.
        assert_eq!(s.at(10), 0.0);
        assert_eq!(s.at(11), 0.0);
        assert_eq!(s.at(usize::MAX), 0.0);
    }

    #[test]
    fn warmup_longer_than_total_is_zero_past_total_and_clamped_to_peak() {
        let s = LrSchedule::LinearWarmupDecay {
            peak: 0.5,
            warmup_steps: 100,
            total_steps: 10,
        };
        for step in 0..10 {
            let lr = s.at(step);
            assert!((0.0..=0.5).contains(&lr), "step {step}: lr {lr}");
        }
        for step in [10, 11, 50, 99, 100, 101, 1_000_000] {
            assert_eq!(s.at(step), 0.0, "step {step}");
        }
    }

    #[test]
    fn boundary_step_equal_total_is_exactly_zero() {
        let s = LrSchedule::LinearWarmupDecay {
            peak: 3e-5,
            warmup_steps: 4,
            total_steps: 40,
        };
        assert!(s.at(39) > 0.0);
        assert_eq!(s.at(40), 0.0);
        assert_eq!(s.at(41), 0.0);
    }

    #[test]
    fn zero_step_schedules_are_always_zero() {
        for warmup_steps in [0, 1, 7] {
            let s = LrSchedule::LinearWarmupDecay {
                peak: 1.0,
                warmup_steps,
                total_steps: 0,
            };
            for step in [0, 1, 100] {
                assert_eq!(s.at(step), 0.0, "warmup {warmup_steps} step {step}");
            }
        }
    }

    #[test]
    fn property_lr_bounded_by_peak_and_zero_past_total() {
        use rotom_rng::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x5eed);
        for case in 0..500 {
            let peak = rng.random_range(0.0f32..10.0);
            let total_steps = rng.random_range(0usize..200);
            // Deliberately allow warmup to exceed total.
            let warmup_steps = rng.random_range(0usize..300);
            let s = LrSchedule::LinearWarmupDecay {
                peak,
                warmup_steps,
                total_steps,
            };
            for _ in 0..20 {
                let step = rng.random_range(0usize..400);
                let lr = s.at(step);
                assert!(
                    (0.0..=peak).contains(&lr),
                    "case {case}: peak {peak} warmup {warmup_steps} total {total_steps} \
                     step {step} -> lr {lr}"
                );
                if step >= total_steps {
                    assert_eq!(
                        lr, 0.0,
                        "case {case}: step {step} >= total {total_steps} must be 0"
                    );
                }
            }
        }
    }

    #[test]
    fn stepper_advances() {
        let mut st = LrSchedule::LinearWarmupDecay {
            peak: 1.0,
            warmup_steps: 2,
            total_steps: 4,
        }
        .stepper();
        let seq: Vec<f32> = (0..5).map(|_| st.next_lr()).collect();
        assert!((seq[0] - 0.5).abs() < 1e-6);
        assert!((seq[1] - 1.0).abs() < 1e-6);
        assert!(seq[2] > seq[3]);
        assert_eq!(st.steps(), 5);
    }
}
