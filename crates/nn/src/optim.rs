//! Optimizers operating on a [`ParamStore`].

use crate::checkpoint::{CheckpointError, StateBag};
use crate::params::ParamStore;
use crate::tensor::Tensor;

/// Plain SGD with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Create an SGD optimizer with the given learning rate (no momentum).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Enable classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Apply one update from the gradients currently in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        if self.velocity.len() != store.num_params() {
            self.velocity = store
                .ids()
                .map(|id| Tensor::zeros(store.value(id).rows(), store.value(id).cols()))
                .collect();
        }
        for (k, id) in store.ids().collect::<Vec<_>>().into_iter().enumerate() {
            if !store.is_trainable(id) {
                continue;
            }
            if self.momentum > 0.0 {
                let v = &mut self.velocity[k];
                for (vv, &g) in v.data_mut().iter_mut().zip(store.grad(id).data()) {
                    *vv = self.momentum * *vv + g;
                }
                store.value_mut(id).axpy(-self.lr, &self.velocity[k]);
            } else {
                let (value, grad) = store.value_grad_mut(id);
                value.axpy(-self.lr, grad);
            }
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replace the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam with bias correction (Kingma & Ba, 2015) — the optimizer the paper
/// uses for both the target model and the policy models.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Standard Adam with `beta1=0.9, beta2=0.999, eps=1e-8`.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Decoupled weight decay (AdamW-style).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replace the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one update from the gradients currently in `store`.
    pub fn step(&mut self, store: &mut ParamStore) {
        if self.m.len() != store.num_params() {
            self.m = store
                .ids()
                .map(|id| Tensor::zeros(store.value(id).rows(), store.value(id).cols()))
                .collect();
            self.v = self.m.clone();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (k, id) in store.ids().collect::<Vec<_>>().into_iter().enumerate() {
            if !store.is_trainable(id) {
                continue;
            }
            {
                let grad = store.grad(id);
                let m = &mut self.m[k];
                let v = &mut self.v[k];
                for ((mm, vv), &g) in m.data_mut().iter_mut().zip(v.data_mut()).zip(grad.data()) {
                    *mm = self.beta1 * *mm + (1.0 - self.beta1) * g;
                    *vv = self.beta2 * *vv + (1.0 - self.beta2) * g * g;
                }
            }
            let lr = self.lr;
            let (eps, wd) = (self.eps, self.weight_decay);
            let (m, v) = (&self.m[k], &self.v[k]);
            let value = store.value_mut(id);
            for ((val, &mm), &vv) in value.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let mhat = mm / bc1;
                let vhat = vv / bc2;
                let mut update = mhat / (vhat.sqrt() + eps);
                if wd > 0.0 {
                    update += wd * *val;
                }
                *val -= lr * update;
            }
        }
    }

    /// Save the full optimizer state (step counter + both moment vectors,
    /// flattened) into `bag` under `prefix`. An optimizer that has never
    /// stepped saves empty moments and `t = 0`.
    pub fn save_state(&self, bag: &mut StateBag, prefix: &str) {
        bag.put_u64(format!("{prefix}.t"), self.t);
        let mut m = Vec::new();
        let mut v = Vec::new();
        for t in &self.m {
            m.extend_from_slice(t.data());
        }
        for t in &self.v {
            v.extend_from_slice(t.data());
        }
        bag.put_f32s(format!("{prefix}.m"), m);
        bag.put_f32s(format!("{prefix}.v"), v);
    }

    /// Restore optimizer state saved by [`save_state`](Self::save_state),
    /// rebuilding per-parameter moment shapes from `store` (which must match
    /// the store the state was saved against).
    pub fn load_state(
        &mut self,
        bag: &StateBag,
        prefix: &str,
        store: &ParamStore,
    ) -> Result<(), CheckpointError> {
        let t = bag.get_u64(&format!("{prefix}.t"))?;
        let m = bag.get_f32s(&format!("{prefix}.m"))?;
        let v = bag.get_f32s(&format!("{prefix}.v"))?;
        if m.is_empty() && v.is_empty() {
            self.t = t;
            self.m.clear();
            self.v.clear();
            return Ok(());
        }
        let total: usize = store.ids().map(|id| store.value(id).data().len()).sum();
        if m.len() != total || v.len() != total {
            return Err(CheckpointError::Mismatch(format!(
                "optimizer {prefix:?}: moment length {}/{} vs {} store parameters",
                m.len(),
                v.len(),
                total
            )));
        }
        let unflatten = |flat: &[f32]| {
            let mut out = Vec::with_capacity(store.num_params());
            let mut off = 0;
            for id in store.ids() {
                let (rows, cols) = (store.value(id).rows(), store.value(id).cols());
                let n = rows * cols;
                out.push(Tensor::from_vec(flat[off..off + n].to_vec(), rows, cols));
                off += n;
            }
            out
        };
        self.t = t;
        self.m = unflatten(m);
        self.v = unflatten(v);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Tape;
    use crate::init::Initializer;
    use crate::tensor::Tensor;
    use rotom_rng::rngs::StdRng;
    use rotom_rng::SeedableRng;

    /// Minimize ||W x - y||-ish quadratic via cross-entropy on a 2-class toy
    /// problem and check the loss decreases monotonically-ish.
    fn train_toy(mut step: impl FnMut(&mut ParamStore)) -> (f32, f32) {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let w = store.alloc("w", 2, 2, Initializer::Uniform(0.5), &mut rng);
        let x = Tensor::from_vec(vec![1.0, -1.0], 1, 2);
        let target = vec![1.0, 0.0];
        let loss_of = |store: &mut ParamStore, backward: bool| {
            let mut tape = Tape::new();
            let xin = tape.input(x.clone());
            let wn = tape.param(w, store);
            let logits = tape.matmul(xin, wn);
            let loss = tape.cross_entropy(logits, &target);
            let lv = tape.value(loss).item();
            if backward {
                store.zero_grad();
                tape.backward(loss, store);
            }
            lv
        };
        let first = loss_of(&mut store, true);
        for _ in 0..50 {
            step(&mut store);
            let _ = loss_of(&mut store, true);
        }
        let last = loss_of(&mut store, false);
        (first, last)
    }

    #[test]
    fn sgd_decreases_loss() {
        let mut opt = Sgd::new(0.5);
        let (first, last) = train_toy(|s| opt.step(s));
        assert!(last < first * 0.5, "sgd failed: {first} -> {last}");
    }

    #[test]
    fn adam_decreases_loss() {
        let mut opt = Adam::new(0.1);
        let (first, last) = train_toy(|s| opt.step(s));
        assert!(last < first * 0.5, "adam failed: {first} -> {last}");
    }

    #[test]
    fn adam_state_roundtrip_resumes_bit_identically() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store_a = ParamStore::new();
        store_a.alloc("w", 3, 4, Initializer::Uniform(0.5), &mut rng);
        let mut store_b = ParamStore::new();
        for id in store_a.ids().collect::<Vec<_>>() {
            store_b.push("w", store_a.value(id).clone());
        }
        let grad = |s: &mut ParamStore, k: usize| {
            let id = s.ids().next().unwrap();
            for (i, g) in s.grad_mut(id).data_mut().iter_mut().enumerate() {
                *g = ((i + k) as f32 * 0.37).sin();
            }
        };
        let mut opt_a = Adam::new(0.05);
        let mut opt_b = Adam::new(0.05);
        for k in 0..5 {
            grad(&mut store_a, k);
            opt_a.step(&mut store_a);
            grad(&mut store_b, k);
            opt_b.step(&mut store_b);
        }
        // Checkpoint A, continue it, then resume a fresh optimizer from the
        // checkpoint and replay the same tail: must match bit-for-bit.
        let mut bag = crate::checkpoint::StateBag::new();
        opt_a.save_state(&mut bag, "opt");
        let bag = crate::checkpoint::StateBag::parse(&bag.serialize()).unwrap();
        let frozen = store_a.flat_values();
        for k in 5..9 {
            grad(&mut store_a, k);
            opt_a.step(&mut store_a);
        }
        let mut opt_c = Adam::new(0.05);
        opt_c.load_state(&bag, "opt", &store_b).unwrap();
        store_b.set_flat(&frozen);
        for k in 5..9 {
            grad(&mut store_b, k);
            opt_c.step(&mut store_b);
        }
        assert_eq!(store_a.flat_values(), store_b.flat_values());
    }

    #[test]
    fn adam_load_state_rejects_wrong_length() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        store.alloc("w", 2, 2, Initializer::Uniform(0.5), &mut rng);
        let mut bag = crate::checkpoint::StateBag::new();
        bag.put_u64("opt.t", 3);
        bag.put_f32s("opt.m", vec![0.0; 5]);
        bag.put_f32s("opt.v", vec![0.0; 5]);
        let mut opt = Adam::new(0.1);
        assert!(opt.load_state(&bag, "opt", &store).is_err());
    }

    #[test]
    fn adam_skips_frozen() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let w = store.alloc("w", 1, 2, Initializer::Uniform(0.5), &mut rng);
        store.set_trainable(w, false);
        let before = store.value(w).clone();
        store.grad_mut(w).data_mut().fill(1.0);
        let mut opt = Adam::new(0.1);
        opt.step(&mut store);
        assert_eq!(store.value(w).data(), before.data());
    }
}
