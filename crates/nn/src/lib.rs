//! `rotom-nn` — a minimal, self-contained neural network substrate.
//!
//! The Rotom paper builds on PyTorch + HuggingFace Transformers; this crate
//! is the from-scratch Rust replacement: dense `f32` tensors, a tape-based
//! reverse-mode autodiff engine, the layers needed for Transformer
//! encoders/decoders and GRUs, and SGD/Adam optimizers.
//!
//! Two design choices are driven directly by Rotom's meta-learning algorithm
//! (Algorithm 2 of the paper):
//!
//! * **Flat parameter access** ([`ParamStore::flat_values`],
//!   [`ParamStore::add_scaled_flat`]) — the virtual update `M' = M − η∇M`
//!   and the finite-difference probes `M± = M ± ε∇M'` are direct flat-vector
//!   manipulations.
//! * **Parameter snapshots at node creation** — `param` nodes clone the
//!   current value, so mutating the store between building two graphs (as the
//!   probes do) never corrupts an existing tape.
//!
//! # Example
//!
//! ```
//! use rotom_nn::{ParamStore, Tape, Tensor, Initializer, Adam};
//! use rotom_rng::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let w = store.alloc("w", 2, 2, Initializer::XavierUniform, &mut rng);
//! let mut opt = Adam::new(1e-2);
//!
//! for _ in 0..100 {
//!     let mut tape = Tape::new();
//!     let x = tape.input(Tensor::from_vec(vec![1.0, -1.0], 1, 2));
//!     let wn = tape.param(w, &store);
//!     let logits = tape.matmul(x, wn);
//!     let loss = tape.cross_entropy(logits, &[1.0, 0.0]);
//!     store.zero_grad();
//!     tape.backward(loss, &mut store);
//!     opt.step(&mut store);
//! }
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod faultpoint;
pub mod gradcheck;
mod graph;
pub mod health;
pub mod infer;
mod init;
pub mod kernels;
pub mod layers;
mod optim;
mod params;
pub mod pool;
pub mod schedule;
pub mod telemetry;
mod tensor;

pub use checkpoint::{CheckpointError, NonFinitePolicy, StateBag, StateEntry};
pub use faultpoint::{FaultKilled, FaultKind};
pub use graph::{
    pooled_tape_stats, recycle_tape, take_pooled_tape, tape_eviction_count, with_pooled_tape,
    AttnMask, NodeId, Tape,
};
pub use health::{Halt, HealthConfig, HealthEvent, HealthMonitor, Verdict};
pub use infer::{with_infer_scratch, InferScratch, ScoreCache};
pub use init::Initializer;
pub use layers::{
    causal_mask, DecoderKvCache, DecoderLayer, Embedding, EncoderLayer, FeedForward, FwdCtx, Gru,
    LayerNorm, Linear, MultiHeadAttention, TransformerConfig, TransformerDecoder,
    TransformerEncoder,
};
pub use optim::{Adam, Sgd};
pub use params::{ParamId, ParamPacks, ParamStore, QuantMode};
pub use pool::RotomPool;
pub use schedule::{LrSchedule, LrStepper};
pub use tensor::Tensor;

/// Numerically stable softmax over a slice (out-of-graph helper for
/// inference-time probability computations).
pub fn softmax_slice(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Argmax index of a slice (first maximum wins). Panics on empty input.
pub fn argmax(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_slice_is_distribution() {
        let p = softmax_slice(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn argmax_first_max_wins() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }
}
