//! Parameter checkpointing with a dependency-free text format.
//!
//! No serialization-format crate is available offline, so checkpoints use a
//! simple line-oriented format that is diff-able and versionable:
//!
//! ```text
//! rotom-checkpoint v1
//! <name> <rows> <cols> <v0> <v1> …
//! …
//! ```
//!
//! Values round-trip exactly through the hex encoding of their IEEE-754
//! bits.

use crate::params::ParamStore;
use crate::tensor::Tensor;
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &str = "rotom-checkpoint v1";

/// Checkpoint errors.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid checkpoint.
    Format(String),
    /// The checkpoint does not match the model (missing/extra/mis-shaped
    /// parameters).
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serialize all parameter values (trainable and frozen) to a string.
pub fn to_string(store: &ParamStore) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    for id in store.ids() {
        let t = store.value(id);
        let _ = write!(out, "{} {} {}", store.name(id), t.rows(), t.cols());
        for &v in t.data() {
            let _ = write!(out, " {:08x}", v.to_bits());
        }
        out.push('\n');
    }
    out
}

/// Parse a checkpoint string into `(name, tensor)` pairs.
pub fn parse(text: &str) -> Result<Vec<(String, Tensor)>, CheckpointError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(l) if l == MAGIC => {}
        other => {
            return Err(CheckpointError::Format(format!(
                "bad header: {:?}",
                other.unwrap_or("<empty>")
            )))
        }
    }
    let mut out = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let name = it
            .next()
            .ok_or_else(|| CheckpointError::Format(format!("line {}: missing name", lineno + 2)))?
            .to_string();
        let rows: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Format(format!("line {}: bad rows", lineno + 2)))?;
        let cols: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Format(format!("line {}: bad cols", lineno + 2)))?;
        let mut data = Vec::with_capacity(rows * cols);
        for tok in it {
            let bits = u32::from_str_radix(tok, 16).map_err(|_| {
                CheckpointError::Format(format!("line {}: bad value {tok:?}", lineno + 2))
            })?;
            data.push(f32::from_bits(bits));
        }
        if data.len() != rows * cols {
            return Err(CheckpointError::Format(format!(
                "line {}: {} values for shape {rows}x{cols}",
                lineno + 2,
                data.len()
            )));
        }
        out.push((name, Tensor::from_vec(data, rows, cols)));
    }
    Ok(out)
}

/// Load parsed `(name, tensor)` pairs into a store, matching by name.
/// Every store parameter must be covered with an identical shape.
pub fn load_into(
    store: &mut ParamStore,
    params: &[(String, Tensor)],
) -> Result<(), CheckpointError> {
    for id in store.ids().collect::<Vec<_>>() {
        let name = store.name(id).to_string();
        let found = params.iter().find(|(n, _)| *n == name).ok_or_else(|| {
            CheckpointError::Mismatch(format!("parameter {name:?} missing from checkpoint"))
        })?;
        let current = store.value(id);
        if (current.rows(), current.cols()) != (found.1.rows(), found.1.cols()) {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {name:?}: shape {}x{} vs checkpoint {}x{}",
                current.rows(),
                current.cols(),
                found.1.rows(),
                found.1.cols()
            )));
        }
        *store.value_mut(id) = found.1.clone();
    }
    Ok(())
}

/// Write a store checkpoint to a file.
pub fn save(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_string(store).as_bytes())?;
    Ok(())
}

/// Read a file checkpoint into a store (matching parameters by name).
pub fn load(store: &mut ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let mut text = String::new();
    std::fs::File::open(path)?.read_to_string(&mut text)?;
    let params = parse(&text)?;
    load_into(store, &params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Initializer;
    use rotom_rng::rngs::StdRng;
    use rotom_rng::SeedableRng;

    fn store() -> ParamStore {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = ParamStore::new();
        s.alloc("layer.w", 2, 3, Initializer::XavierUniform, &mut rng);
        s.alloc("layer.b", 1, 3, Initializer::Uniform(0.5), &mut rng);
        s
    }

    #[test]
    fn roundtrip_is_exact() {
        let src = store();
        let text = to_string(&src);
        let mut dst = store();
        // Perturb so the load has observable effect.
        dst.value_mut(dst.ids().next().unwrap())
            .data_mut()
            .fill(9.0);
        load_into(&mut dst, &parse(&text).unwrap()).unwrap();
        assert_eq!(src.flat_values(), dst.flat_values());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(parse("nonsense"), Err(CheckpointError::Format(_))));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let src = store();
        let text = to_string(&src).replace("layer.b 1 3", "layer.b 3 1");
        let parsed = parse(&text).unwrap();
        let mut dst = store();
        assert!(matches!(
            load_into(&mut dst, &parsed),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn rejects_missing_parameter() {
        let src = store();
        let mut parsed = parse(&to_string(&src)).unwrap();
        parsed.pop();
        let mut dst = store();
        assert!(matches!(
            load_into(&mut dst, &parsed),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let src = store();
        let dir = std::env::temp_dir().join("rotom_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        save(&src, &path).unwrap();
        let mut dst = store();
        dst.value_mut(dst.ids().next().unwrap())
            .data_mut()
            .fill(0.0);
        load(&mut dst, &path).unwrap();
        assert_eq!(src.flat_values(), dst.flat_values());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn special_float_values_roundtrip() {
        let mut s = ParamStore::new();
        s.push(
            "weird",
            Tensor::from_vec(vec![0.0, -0.0, f32::MIN_POSITIVE, 1e-40, 3.1415927], 1, 5),
        );
        let parsed = parse(&to_string(&s)).unwrap();
        assert_eq!(parsed[0].1.data(), s.value(s.ids().next().unwrap()).data());
    }
}
