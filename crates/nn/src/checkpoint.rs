//! Crash-safe checkpointing with a dependency-free text format.
//!
//! No serialization-format crate is available offline, so checkpoints use a
//! simple line-oriented format that is diff-able and versionable. Two format
//! versions exist:
//!
//! **v1** (legacy, parameters only, still readable):
//!
//! ```text
//! rotom-checkpoint v1
//! <name> <rows> <cols> <v0> <v1> …
//! …
//! ```
//!
//! **v2** (full training state, the only version written): a typed
//! [`StateBag`] of named sections plus a trailing integrity footer so a torn
//! or truncated write is *always* detected, never loaded as silently wrong
//! values:
//!
//! ```text
//! rotom-checkpoint v2
//! tensor <name> <rows> <cols> <hex8 f32-bits> …
//! f32s <name> <count> <hex8 f32-bits> …
//! u64s <name> <count> <hex16 u64-bits> …
//! end <body-byte-length> <fnv1a64-of-body>
//! ```
//!
//! The footer line covers every byte before it (header + entries, newlines
//! included) with both a length and an FNV-1a-64 checksum, and the file must
//! end with a newline after the footer — so truncation at *any* byte offset
//! either removes/corrupts the footer, changes the body length, or breaks the
//! checksum. Values round-trip exactly through the hex encoding of their
//! IEEE-754 bits (including NaN payloads, infinities, and subnormals).
//!
//! Writes go through [`write_atomic`]: serialize to a sibling temp file,
//! `fsync`, then rename over the target, so a crash mid-write leaves the
//! previous checkpoint intact.

use crate::faultpoint::{self, FaultKind};
use crate::params::ParamStore;
use crate::tensor::Tensor;
use std::fmt::Write as _;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &str = "rotom-checkpoint v1";
const MAGIC_V2: &str = "rotom-checkpoint v2";

/// Checkpoint errors.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a valid checkpoint (bad header, torn write, failed
    /// checksum, malformed line — the message carries a line number where one
    /// applies).
    Format(String),
    /// The checkpoint does not match the model/run (missing/extra/mis-shaped
    /// parameters, wrong section type, conflicting run configuration).
    Mismatch(String),
    /// The checkpoint contains non-finite values and the load policy is
    /// [`NonFinitePolicy::Reject`].
    NonFinite(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "invalid checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
            CheckpointError::NonFinite(m) => write!(f, "non-finite checkpoint value: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Policy for non-finite (`NaN`/`±Inf`) values encountered when loading a
/// checkpoint. Training state produced by a healthy run is always finite, so
/// the default rejects — a NaN in a checkpoint almost certainly means the run
/// that wrote it had already diverged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NonFinitePolicy {
    /// Fail the load with [`CheckpointError::NonFinite`] (default).
    #[default]
    Reject,
    /// Load the values as-is (for forensics on diverged runs, and for tests
    /// that round-trip arbitrary bit patterns).
    Allow,
}

/// One typed section of a v2 checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum StateEntry {
    /// A flat vector of `f32` values (parameter vectors, optimizer moments).
    F32s(Vec<f32>),
    /// A flat vector of `u64` values (step counters, RNG states).
    U64s(Vec<u64>),
    /// A shaped tensor (named model parameters).
    Tensor(Tensor),
}

/// A named, ordered collection of typed state sections — the in-memory form
/// of a v2 checkpoint. Every subsystem with training state (optimizer, RNG,
/// meta models, best-snapshot) saves into and restores from one bag.
#[derive(Debug, Clone, Default)]
pub struct StateBag {
    entries: Vec<(String, StateEntry)>,
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl StateBag {
    /// An empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the bag has no sections.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a section with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }

    /// Section names in insertion order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }

    fn put(&mut self, name: impl Into<String>, entry: StateEntry) {
        let name = name.into();
        assert!(
            !name.is_empty() && !name.contains(char::is_whitespace),
            "state section name must be non-empty and whitespace-free: {name:?}"
        );
        assert!(
            !self.contains(&name),
            "duplicate state section name: {name:?}"
        );
        self.entries.push((name, entry));
    }

    /// Add a named `f32` vector section.
    pub fn put_f32s(&mut self, name: impl Into<String>, values: Vec<f32>) {
        self.put(name, StateEntry::F32s(values));
    }

    /// Add a single-`f32` section.
    pub fn put_f32(&mut self, name: impl Into<String>, value: f32) {
        self.put_f32s(name, vec![value]);
    }

    /// Add a named `u64` vector section.
    pub fn put_u64s(&mut self, name: impl Into<String>, values: Vec<u64>) {
        self.put(name, StateEntry::U64s(values));
    }

    /// Add a single-`u64` section.
    pub fn put_u64(&mut self, name: impl Into<String>, value: u64) {
        self.put_u64s(name, vec![value]);
    }

    /// Add a named tensor section.
    pub fn put_tensor(&mut self, name: impl Into<String>, value: Tensor) {
        self.put(name, StateEntry::Tensor(value));
    }

    fn get(&self, name: &str) -> Result<&StateEntry, CheckpointError> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e)
            .ok_or_else(|| {
                CheckpointError::Mismatch(format!("section {name:?} missing from checkpoint"))
            })
    }

    /// Fetch an `f32` vector section by name.
    pub fn get_f32s(&self, name: &str) -> Result<&[f32], CheckpointError> {
        match self.get(name)? {
            StateEntry::F32s(v) => Ok(v),
            other => Err(type_mismatch(name, "f32s", other)),
        }
    }

    /// Fetch a single-`f32` section by name.
    pub fn get_f32(&self, name: &str) -> Result<f32, CheckpointError> {
        let v = self.get_f32s(name)?;
        if v.len() != 1 {
            return Err(CheckpointError::Mismatch(format!(
                "section {name:?}: expected 1 value, found {}",
                v.len()
            )));
        }
        Ok(v[0])
    }

    /// Fetch a `u64` vector section by name.
    pub fn get_u64s(&self, name: &str) -> Result<&[u64], CheckpointError> {
        match self.get(name)? {
            StateEntry::U64s(v) => Ok(v),
            other => Err(type_mismatch(name, "u64s", other)),
        }
    }

    /// Fetch a single-`u64` section by name.
    pub fn get_u64(&self, name: &str) -> Result<u64, CheckpointError> {
        let v = self.get_u64s(name)?;
        if v.len() != 1 {
            return Err(CheckpointError::Mismatch(format!(
                "section {name:?}: expected 1 value, found {}",
                v.len()
            )));
        }
        Ok(v[0])
    }

    /// Fetch a tensor section by name.
    pub fn get_tensor(&self, name: &str) -> Result<&Tensor, CheckpointError> {
        match self.get(name)? {
            StateEntry::Tensor(t) => Ok(t),
            other => Err(type_mismatch(name, "tensor", other)),
        }
    }

    /// Check every `f32` value in the bag for finiteness, naming the first
    /// offending section. This is the [`NonFinitePolicy::Reject`] gate.
    pub fn check_finite(&self) -> Result<(), CheckpointError> {
        for (name, entry) in &self.entries {
            let data: &[f32] = match entry {
                StateEntry::F32s(v) => v,
                StateEntry::Tensor(t) => t.data(),
                StateEntry::U64s(_) => continue,
            };
            if let Some(i) = data.iter().position(|v| !v.is_finite()) {
                return Err(CheckpointError::NonFinite(format!(
                    "section {name:?} value {i} is {} (load with NonFinitePolicy::Allow to \
                     inspect anyway)",
                    data[i]
                )));
            }
        }
        Ok(())
    }

    /// Serialize to the v2 text format (header + entries + integrity footer +
    /// mandatory trailing newline).
    pub fn serialize(&self) -> String {
        let mut body = String::new();
        body.push_str(MAGIC_V2);
        body.push('\n');
        for (name, entry) in &self.entries {
            match entry {
                StateEntry::F32s(v) => {
                    let _ = write!(body, "f32s {name} {}", v.len());
                    for &x in v {
                        let _ = write!(body, " {:08x}", x.to_bits());
                    }
                }
                StateEntry::U64s(v) => {
                    let _ = write!(body, "u64s {name} {}", v.len());
                    for &x in v {
                        let _ = write!(body, " {x:016x}");
                    }
                }
                StateEntry::Tensor(t) => {
                    let _ = write!(body, "tensor {name} {} {}", t.rows(), t.cols());
                    for &x in t.data() {
                        let _ = write!(body, " {:08x}", x.to_bits());
                    }
                }
            }
            body.push('\n');
        }
        let _ = write!(body, "end {} {:016x}\n", body.len(), {
            fnv1a64(&body.as_bytes()[..body.len()])
        });
        body
    }

    /// Parse the v2 text format, verifying the integrity footer first. Any
    /// truncated, torn, or bit-flipped file fails here with a
    /// [`CheckpointError::Format`]; a well-formed file with duplicate section
    /// names fails with a line-numbered error.
    pub fn parse(text: &str) -> Result<StateBag, CheckpointError> {
        // Footer discipline: the file must end with "end <len> <fnv1a64>\n".
        // Requiring the final newline means even a single byte truncated off
        // the end is detected.
        let stripped = text.strip_suffix('\n').ok_or_else(|| {
            CheckpointError::Format(
                "missing trailing newline after footer (truncated file?)".to_string(),
            )
        })?;
        let (body, footer) = match stripped.rfind('\n') {
            Some(i) => (&text[..i + 1], &stripped[i + 1..]),
            None => {
                return Err(CheckpointError::Format(
                    "missing integrity footer (truncated file?)".to_string(),
                ))
            }
        };
        let mut it = footer.split_ascii_whitespace();
        if it.next() != Some("end") {
            return Err(CheckpointError::Format(format!(
                "last line is not an integrity footer: {footer:?} (truncated file?)"
            )));
        }
        let want_len: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Format("footer: bad body length".to_string()))?;
        let want_sum = it
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| CheckpointError::Format("footer: bad checksum".to_string()))?;
        if it.next().is_some() {
            return Err(CheckpointError::Format(
                "footer: trailing tokens".to_string(),
            ));
        }
        if body.len() != want_len {
            return Err(CheckpointError::Format(format!(
                "body length {} != footer length {want_len} (truncated or torn file)",
                body.len()
            )));
        }
        let got_sum = fnv1a64(body.as_bytes());
        if got_sum != want_sum {
            return Err(CheckpointError::Format(format!(
                "checksum {got_sum:016x} != footer checksum {want_sum:016x} (corrupt file)"
            )));
        }

        let mut lines = body.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l == MAGIC_V2 => {}
            other => {
                return Err(CheckpointError::Format(format!(
                    "bad header: {:?}",
                    other.map(|(_, l)| l).unwrap_or("<empty>")
                )))
            }
        }
        let mut bag = StateBag::new();
        for (idx, line) in lines {
            let lineno = idx + 1; // 1-based for humans
            if line.trim().is_empty() {
                continue;
            }
            let mut it = line.split_ascii_whitespace();
            let kind = it.next().unwrap();
            let name = it
                .next()
                .ok_or_else(|| {
                    CheckpointError::Format(format!("line {lineno}: missing section name"))
                })?
                .to_string();
            if bag.contains(&name) {
                return Err(CheckpointError::Format(format!(
                    "line {lineno}: duplicate section name {name:?}"
                )));
            }
            let entry = match kind {
                "f32s" => StateEntry::F32s(parse_counted_f32s(&mut it, lineno, &name)?),
                "u64s" => {
                    let count: usize = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                        CheckpointError::Format(format!("line {lineno}: bad count for {name:?}"))
                    })?;
                    let mut vals = Vec::with_capacity(count);
                    for tok in it.by_ref() {
                        let bits = u64::from_str_radix(tok, 16).map_err(|_| {
                            CheckpointError::Format(format!("line {lineno}: bad value {tok:?}"))
                        })?;
                        vals.push(bits);
                    }
                    if vals.len() != count {
                        return Err(CheckpointError::Format(format!(
                            "line {lineno}: {} values for declared count {count} in {name:?}",
                            vals.len()
                        )));
                    }
                    StateEntry::U64s(vals)
                }
                "tensor" => {
                    let rows: usize = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                        CheckpointError::Format(format!("line {lineno}: bad rows for {name:?}"))
                    })?;
                    let cols: usize = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                        CheckpointError::Format(format!("line {lineno}: bad cols for {name:?}"))
                    })?;
                    let mut data = Vec::with_capacity(rows * cols);
                    for tok in it.by_ref() {
                        let bits = u32::from_str_radix(tok, 16).map_err(|_| {
                            CheckpointError::Format(format!("line {lineno}: bad value {tok:?}"))
                        })?;
                        data.push(f32::from_bits(bits));
                    }
                    if data.len() != rows * cols {
                        return Err(CheckpointError::Format(format!(
                            "line {lineno}: {} values for shape {rows}x{cols} in {name:?}",
                            data.len()
                        )));
                    }
                    StateEntry::Tensor(Tensor::from_vec(data, rows, cols))
                }
                other => {
                    return Err(CheckpointError::Format(format!(
                        "line {lineno}: unknown section kind {other:?}"
                    )))
                }
            };
            bag.entries.push((name, entry));
        }
        Ok(bag)
    }

    /// Atomically write this bag to `path` (see [`write_atomic`]).
    pub fn save_atomic(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        write_atomic(path.as_ref(), self.serialize().as_bytes())
    }

    /// Read and parse a v2 checkpoint file, applying the non-finite policy.
    pub fn load_path(
        path: impl AsRef<Path>,
        policy: NonFinitePolicy,
    ) -> Result<StateBag, CheckpointError> {
        let mut text = String::new();
        std::fs::File::open(path)?.read_to_string(&mut text)?;
        let bag = StateBag::parse(&text)?;
        if policy == NonFinitePolicy::Reject {
            bag.check_finite()?;
        }
        Ok(bag)
    }
}

fn parse_counted_f32s(
    it: &mut std::str::SplitAsciiWhitespace<'_>,
    lineno: usize,
    name: &str,
) -> Result<Vec<f32>, CheckpointError> {
    let count: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| CheckpointError::Format(format!("line {lineno}: bad count for {name:?}")))?;
    let mut vals = Vec::with_capacity(count);
    for tok in it.by_ref() {
        let bits = u32::from_str_radix(tok, 16)
            .map_err(|_| CheckpointError::Format(format!("line {lineno}: bad value {tok:?}")))?;
        vals.push(f32::from_bits(bits));
    }
    if vals.len() != count {
        return Err(CheckpointError::Format(format!(
            "line {lineno}: {} values for declared count {count} in {name:?}",
            vals.len()
        )));
    }
    Ok(vals)
}

fn type_mismatch(name: &str, want: &str, got: &StateEntry) -> CheckpointError {
    let got = match got {
        StateEntry::F32s(_) => "f32s",
        StateEntry::U64s(_) => "u64s",
        StateEntry::Tensor(_) => "tensor",
    };
    CheckpointError::Mismatch(format!(
        "section {name:?}: expected kind {want}, found {got}"
    ))
}

/// Atomically replace `path` with `bytes`: write to a sibling `.tmp` file,
/// `fsync` it, rename over the target, then best-effort `fsync` the parent
/// directory. A crash at any point leaves either the old file or the new one
/// — never a torn mix.
///
/// Honors the [`FaultKind::TornCheckpoint`] faultpoint: when armed, writes a
/// deliberately truncated file *directly* to `path` (simulating a torn
/// in-place write from a crash or a non-atomic legacy writer) so tests can
/// prove the parser detects it.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    if faultpoint::fires(FaultKind::TornCheckpoint, 0) {
        let torn = &bytes[..bytes.len() * 2 / 3];
        let mut f = std::fs::File::create(path)?;
        f.write_all(torn)?;
        return Ok(());
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| CheckpointError::Format(format!("bad checkpoint path: {path:?}")))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

/// Serialize all parameter values (trainable and frozen) to the legacy v1
/// string format (no footer). Kept for format-compatibility tests; new code
/// goes through [`StateBag`].
pub fn to_string(store: &ParamStore) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    for id in store.ids() {
        let t = store.value(id);
        let _ = write!(out, "{} {} {}", store.name(id), t.rows(), t.cols());
        for &v in t.data() {
            let _ = write!(out, " {:08x}", v.to_bits());
        }
        out.push('\n');
    }
    out
}

/// Parse a legacy v1 checkpoint string into `(name, tensor)` pairs.
/// Duplicate parameter names are rejected with a line-numbered error.
pub fn parse(text: &str) -> Result<Vec<(String, Tensor)>, CheckpointError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(l) if l == MAGIC => {}
        other => {
            return Err(CheckpointError::Format(format!(
                "bad header: {:?}",
                other.unwrap_or("<empty>")
            )))
        }
    }
    let mut out: Vec<(String, Tensor)> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let name = it
            .next()
            .ok_or_else(|| CheckpointError::Format(format!("line {}: missing name", lineno + 2)))?
            .to_string();
        if out.iter().any(|(n, _)| *n == name) {
            return Err(CheckpointError::Format(format!(
                "line {}: duplicate parameter {name:?}",
                lineno + 2
            )));
        }
        let rows: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Format(format!("line {}: bad rows", lineno + 2)))?;
        let cols: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| CheckpointError::Format(format!("line {}: bad cols", lineno + 2)))?;
        let mut data = Vec::with_capacity(rows * cols);
        for tok in it {
            let bits = u32::from_str_radix(tok, 16).map_err(|_| {
                CheckpointError::Format(format!("line {}: bad value {tok:?}", lineno + 2))
            })?;
            data.push(f32::from_bits(bits));
        }
        if data.len() != rows * cols {
            return Err(CheckpointError::Format(format!(
                "line {}: {} values for shape {rows}x{cols}",
                lineno + 2,
                data.len()
            )));
        }
        out.push((name, Tensor::from_vec(data, rows, cols)));
    }
    Ok(out)
}

/// Load parsed `(name, tensor)` pairs into a store, matching by name, with
/// an explicit non-finite policy. Every store parameter must be covered with
/// an identical shape.
pub fn load_into_with(
    store: &mut ParamStore,
    params: &[(String, Tensor)],
    policy: NonFinitePolicy,
) -> Result<(), CheckpointError> {
    for id in store.ids().collect::<Vec<_>>() {
        let name = store.name(id).to_string();
        let found = params.iter().find(|(n, _)| *n == name).ok_or_else(|| {
            CheckpointError::Mismatch(format!("parameter {name:?} missing from checkpoint"))
        })?;
        let current = store.value(id);
        if (current.rows(), current.cols()) != (found.1.rows(), found.1.cols()) {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {name:?}: shape {}x{} vs checkpoint {}x{}",
                current.rows(),
                current.cols(),
                found.1.rows(),
                found.1.cols()
            )));
        }
        if policy == NonFinitePolicy::Reject {
            if let Some(i) = found.1.data().iter().position(|v| !v.is_finite()) {
                return Err(CheckpointError::NonFinite(format!(
                    "parameter {name:?} value {i} is {} (load with NonFinitePolicy::Allow to \
                     inspect anyway)",
                    found.1.data()[i]
                )));
            }
        }
        *store.value_mut(id) = found.1.clone();
    }
    Ok(())
}

/// Load parsed `(name, tensor)` pairs into a store, rejecting non-finite
/// values (the default policy).
pub fn load_into(
    store: &mut ParamStore,
    params: &[(String, Tensor)],
) -> Result<(), CheckpointError> {
    load_into_with(store, params, NonFinitePolicy::Reject)
}

/// Pack all parameters of a store into a [`StateBag`] as tensor sections.
pub fn store_to_bag(store: &ParamStore) -> StateBag {
    let mut bag = StateBag::new();
    for id in store.ids() {
        bag.put_tensor(store.name(id).to_string(), store.value(id).clone());
    }
    bag
}

/// Restore store parameters from a bag's tensor sections (by name, shapes
/// checked). Extra sections in the bag are ignored, so a full-state bag can
/// feed a params-only restore.
pub fn bag_into_store(bag: &StateBag, store: &mut ParamStore) -> Result<(), CheckpointError> {
    for id in store.ids().collect::<Vec<_>>() {
        let name = store.name(id).to_string();
        let t = bag.get_tensor(&name)?;
        let current = store.value(id);
        if (current.rows(), current.cols()) != (t.rows(), t.cols()) {
            return Err(CheckpointError::Mismatch(format!(
                "parameter {name:?}: shape {}x{} vs checkpoint {}x{}",
                current.rows(),
                current.cols(),
                t.rows(),
                t.cols()
            )));
        }
        *store.value_mut(id) = t.clone();
    }
    Ok(())
}

/// Write a store checkpoint to a file, atomically, in the v2 format.
pub fn save(store: &ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    store_to_bag(store).save_atomic(path)
}

/// Read a file checkpoint into a store (matching parameters by name) with an
/// explicit non-finite policy. Accepts both v2 (integrity-checked) and legacy
/// v1 (no footer) files.
pub fn load_with(
    store: &mut ParamStore,
    path: impl AsRef<Path>,
    policy: NonFinitePolicy,
) -> Result<(), CheckpointError> {
    let mut text = String::new();
    std::fs::File::open(path)?.read_to_string(&mut text)?;
    if text.starts_with(MAGIC_V2) {
        let bag = StateBag::parse(&text)?;
        if policy == NonFinitePolicy::Reject {
            bag.check_finite()?;
        }
        bag_into_store(&bag, store)
    } else {
        let params = parse(&text)?;
        load_into_with(store, &params, policy)
    }
}

/// Read a file checkpoint into a store, rejecting non-finite values (the
/// default policy).
pub fn load(store: &mut ParamStore, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    load_with(store, path, NonFinitePolicy::Reject)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Initializer;
    use rotom_rng::rngs::StdRng;
    use rotom_rng::SeedableRng;

    fn store() -> ParamStore {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = ParamStore::new();
        s.alloc("layer.w", 2, 3, Initializer::XavierUniform, &mut rng);
        s.alloc("layer.b", 1, 3, Initializer::Uniform(0.5), &mut rng);
        s
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rotom_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_is_exact() {
        let src = store();
        let text = to_string(&src);
        let mut dst = store();
        // Perturb so the load has observable effect.
        dst.value_mut(dst.ids().next().unwrap())
            .data_mut()
            .fill(9.0);
        load_into(&mut dst, &parse(&text).unwrap()).unwrap();
        assert_eq!(src.flat_values(), dst.flat_values());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(parse("nonsense"), Err(CheckpointError::Format(_))));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let src = store();
        let text = to_string(&src).replace("layer.b 1 3", "layer.b 3 1");
        let parsed = parse(&text).unwrap();
        let mut dst = store();
        assert!(matches!(
            load_into(&mut dst, &parsed),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn rejects_missing_parameter() {
        let src = store();
        let mut parsed = parse(&to_string(&src)).unwrap();
        parsed.pop();
        let mut dst = store();
        assert!(matches!(
            load_into(&mut dst, &parsed),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn rejects_duplicate_parameter_with_line_number() {
        let src = store();
        let mut text = to_string(&src);
        let dup = text.lines().nth(1).unwrap().to_string();
        text.push_str(&dup);
        text.push('\n');
        match parse(&text) {
            Err(CheckpointError::Format(m)) => {
                assert!(m.contains("duplicate"), "{m}");
                assert!(m.contains("line 4"), "{m}");
            }
            other => panic!("expected duplicate error, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let src = store();
        let path = tmp_path("model.ckpt");
        save(&src, &path).unwrap();
        let mut dst = store();
        dst.value_mut(dst.ids().next().unwrap())
            .data_mut()
            .fill(0.0);
        load(&mut dst, &path).unwrap();
        assert_eq!(src.flat_values(), dst.flat_values());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn legacy_v1_file_still_loads() {
        let src = store();
        let path = tmp_path("legacy_v1.ckpt");
        std::fs::write(&path, to_string(&src)).unwrap();
        let mut dst = store();
        dst.value_mut(dst.ids().next().unwrap())
            .data_mut()
            .fill(0.0);
        load(&mut dst, &path).unwrap();
        assert_eq!(src.flat_values(), dst.flat_values());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn special_float_values_roundtrip() {
        let mut s = ParamStore::new();
        s.push(
            "weird",
            Tensor::from_vec(vec![0.0, -0.0, f32::MIN_POSITIVE, 1e-40, 3.1415927], 1, 5),
        );
        let parsed = parse(&to_string(&s)).unwrap();
        assert_eq!(parsed[0].1.data(), s.value(s.ids().next().unwrap()).data());
    }

    #[test]
    fn bag_roundtrip_all_kinds() {
        let mut bag = StateBag::new();
        bag.put_f32s("opt.m", vec![1.5, -2.25, 0.0]);
        bag.put_u64s("rng.state", vec![u64::MAX, 0, 12345]);
        bag.put_tensor("w", Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2));
        bag.put_f32("baseline", 0.75);
        bag.put_u64("step", 42);
        let back = StateBag::parse(&bag.serialize()).unwrap();
        assert_eq!(back.get_f32s("opt.m").unwrap(), &[1.5, -2.25, 0.0]);
        assert_eq!(back.get_u64s("rng.state").unwrap(), &[u64::MAX, 0, 12345]);
        assert_eq!(back.get_tensor("w").unwrap().data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(back.get_f32("baseline").unwrap(), 0.75);
        assert_eq!(back.get_u64("step").unwrap(), 42);
        assert_eq!(
            back.names().collect::<Vec<_>>(),
            bag.names().collect::<Vec<_>>()
        );
    }

    #[test]
    fn bag_type_mismatch_is_error() {
        let mut bag = StateBag::new();
        bag.put_f32s("x", vec![1.0]);
        assert!(matches!(
            bag.get_u64s("x"),
            Err(CheckpointError::Mismatch(_))
        ));
        assert!(matches!(
            bag.get_tensor("x"),
            Err(CheckpointError::Mismatch(_))
        ));
        assert!(matches!(
            bag.get_f32s("absent"),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn bag_rejects_duplicate_sections() {
        let mut bag = StateBag::new();
        bag.put_f32s("a", vec![1.0]);
        let mut text = bag.serialize();
        // Duplicate the entry line and rebuild a valid footer around it.
        let entry = text.lines().nth(1).unwrap().to_string();
        let body_end = text.rfind("end ").unwrap();
        let mut body = text[..body_end].to_string();
        body.push_str(&entry);
        body.push('\n');
        text = format!("{body}end {} {:016x}\n", body.len(), {
            super::fnv1a64(body.as_bytes())
        });
        match StateBag::parse(&text) {
            Err(CheckpointError::Format(m)) => {
                assert!(m.contains("duplicate"), "{m}")
            }
            other => panic!("expected duplicate error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_at_every_offset_is_detected() {
        let mut bag = StateBag::new();
        bag.put_f32s("opt.m", vec![0.5; 7]);
        bag.put_u64s("rng", vec![7, 8, 9]);
        bag.put_tensor("w", Tensor::from_vec(vec![1.0; 6], 2, 3));
        let text = bag.serialize();
        for cut in 0..text.len() {
            assert!(
                StateBag::parse(&text[..cut]).is_err(),
                "truncation to {cut} bytes of {} parsed successfully",
                text.len()
            );
        }
        assert!(StateBag::parse(&text).is_ok());
    }

    #[test]
    fn bitflip_in_body_is_detected() {
        let mut bag = StateBag::new();
        bag.put_f32s("v", vec![1.0, 2.0, 3.0]);
        let text = bag.serialize();
        let mut corrupted = text.clone().into_bytes();
        // Flip one hex digit inside the body (a value byte, not the footer).
        let pos = text.find("3f800000").unwrap();
        corrupted[pos] = b'4';
        let corrupted = String::from_utf8(corrupted).unwrap();
        assert!(matches!(
            StateBag::parse(&corrupted),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn nonfinite_policy_rejects_then_allows() {
        let mut bag = StateBag::new();
        bag.put_f32s("diverged", vec![1.0, f32::NAN]);
        let path = tmp_path("nonfinite.ckpt");
        bag.save_atomic(&path).unwrap();
        assert!(matches!(
            StateBag::load_path(&path, NonFinitePolicy::Reject),
            Err(CheckpointError::NonFinite(_))
        ));
        let loaded = StateBag::load_path(&path, NonFinitePolicy::Allow).unwrap();
        assert!(loaded.get_f32s("diverged").unwrap()[1].is_nan());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn nonfinite_param_load_policy() {
        let mut s = ParamStore::new();
        s.push("w", Tensor::from_vec(vec![1.0, f32::INFINITY], 1, 2));
        let parsed = parse(&to_string(&s)).unwrap();
        let mut dst = ParamStore::new();
        dst.push("w", Tensor::from_vec(vec![0.0, 0.0], 1, 2));
        assert!(matches!(
            load_into(&mut dst, &parsed),
            Err(CheckpointError::NonFinite(_))
        ));
        load_into_with(&mut dst, &parsed, NonFinitePolicy::Allow).unwrap();
        assert!(dst.flat_values()[1].is_infinite());
    }

    #[test]
    fn atomic_save_leaves_no_tmp_file() {
        let src = store();
        let path = tmp_path("atomic.ckpt");
        save(&src, &path).unwrap();
        assert!(path.exists());
        assert!(!path.with_file_name("atomic.ckpt.tmp").exists());
        let _ = std::fs::remove_file(path);
    }
}
