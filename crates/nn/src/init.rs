//! Weight initialization schemes.

use crate::tensor::Tensor;
use rotom_rng::rngs::StdRng;
use rotom_rng::RngExt;

/// Initialization scheme for a parameter tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// All zeros (biases, layer-norm shift).
    Zeros,
    /// All ones (layer-norm scale).
    Ones,
    /// Uniform in `[-a, a]`.
    Uniform(f32),
    /// Xavier/Glorot uniform: `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Normal with the given standard deviation (embedding tables).
    Normal(f32),
}

impl Initializer {
    /// Materialize a `rows x cols` tensor under this scheme.
    pub fn tensor(self, rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
        match self {
            Initializer::Zeros => Tensor::zeros(rows, cols),
            Initializer::Ones => Tensor::full(rows, cols, 1.0),
            Initializer::Uniform(a) => Tensor::from_vec(
                (0..rows * cols).map(|_| rng.random_range(-a..=a)).collect(),
                rows,
                cols,
            ),
            Initializer::XavierUniform => {
                let a = (6.0 / (rows + cols) as f32).sqrt();
                Initializer::Uniform(a).tensor(rows, cols, rng)
            }
            Initializer::Normal(std) => Tensor::from_vec(
                (0..rows * cols).map(|_| normal_sample(rng) * std).collect(),
                rows,
                cols,
            ),
        }
    }
}

/// Standard normal sample via Box–Muller (avoids a rand_distr dependency).
fn normal_sample(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.random_range(f32::EPSILON..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rotom_rng::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Initializer::XavierUniform.tensor(16, 16, &mut rng);
        let bound = (6.0 / 32.0f32).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn normal_has_roughly_right_std() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Initializer::Normal(0.5).tensor(100, 100, &mut rng);
        let mean = t.sum() / t.len() as f32;
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!((var.sqrt() - 0.5).abs() < 0.05, "std was {}", var.sqrt());
    }

    #[test]
    fn zeros_and_ones() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(Initializer::Zeros
            .tensor(2, 2, &mut rng)
            .data()
            .iter()
            .all(|&v| v == 0.0));
        assert!(Initializer::Ones
            .tensor(2, 2, &mut rng)
            .data()
            .iter()
            .all(|&v| v == 1.0));
    }
}
