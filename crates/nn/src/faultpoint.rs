//! Deterministic fault injection for exercising the fault-tolerant runtime.
//!
//! A *faultpoint* is a named failure armed in advance and fired at an exact
//! training step, letting tests (and `ci.sh`) prove crash/resume equivalence
//! and NaN-rollback recovery end to end without any nondeterminism:
//!
//! * [`FaultKind::Kill`] — simulate a process crash at a step (raised as a
//!   [`FaultKilled`] panic that tests catch with `catch_unwind`).
//! * [`FaultKind::NanGrad`] — corrupt the parameter update with NaNs, as a
//!   diverged meta-gradient would.
//! * [`FaultKind::NanLoss`] — replace the step loss with NaN.
//! * [`FaultKind::TornCheckpoint`] — make the next checkpoint write produce a
//!   truncated file (a torn in-place write), which the loader must detect.
//!
//! Faults are armed per-thread either programmatically ([`arm`]) or from the
//! `ROTOM_FAULT` environment variable on first use, with a `;`-separated spec
//! grammar:
//!
//! ```text
//! ROTOM_FAULT="kill@step=37"
//! ROTOM_FAULT="nan_grad@step=12;torn_checkpoint"
//! ```
//!
//! Every armed fault is **one-shot**: it disarms when it fires, so a resumed
//! run that replays the same step numbers does not re-fire the fault that
//! killed it. Arming the same fault N times makes it fire on N distinct
//! occasions (used to exhaust the rollback budget in tests). State is
//! thread-local so parallel tests cannot contaminate each other.
//!
//! ## Serving faults (process-global)
//!
//! The serving plane (`rotom-serve`) runs its work on internal threads —
//! the batcher, the watchdog, connection handlers — so thread-local arming
//! cannot reach it. Serve faults therefore live in a second, **process-
//! global** plan with the same spec grammar and one-shot semantics, armed
//! via [`arm_global`] (or `ROTOM_FAULT` on first global check):
//!
//! * [`FaultKind::ScorePanic`] — panic inside a plane's forward pass
//!   (exercises the batcher's `catch_unwind` → 500 path).
//! * [`FaultKind::SlowScore`] — stall the forward pass; the `@step=N`
//!   condition is reinterpreted as the stall duration in **milliseconds**
//!   (default 200). Exercises the batcher watchdog's wedge detection.
//! * [`FaultKind::BatcherDie`] — panic the batcher thread *outside* its
//!   `catch_unwind`, simulating supervisor-visible thread death.
//! * [`FaultKind::TornWrite`] — truncate one HTTP response mid-write,
//!   simulating a torn socket (client sees an unexpected EOF).
//! * [`FaultKind::QueueFull`] — force one `Batcher::submit` to report a
//!   full queue, driving the 503 + `Retry-After` shed path determinis-
//!   tically regardless of actual queue depth.
//!
//! Training kinds are only checked through the thread-local API and serve
//! kinds only through the global one, so a single `ROTOM_FAULT` spec naming
//! both never double-fires.

use std::cell::RefCell;
use std::sync::Mutex;

/// The kinds of injectable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Simulated process death (panics with [`FaultKilled`]).
    Kill,
    /// NaN corruption of the gradient/parameter update.
    NanGrad,
    /// NaN substitution of the step loss.
    NanLoss,
    /// Truncated (torn) checkpoint write.
    TornCheckpoint,
    /// Serving: panic inside a plane's forward pass (global plan only).
    ScorePanic,
    /// Serving: stall the forward pass; the `@step=N` field is the stall in
    /// milliseconds (global plan only).
    SlowScore,
    /// Serving: panic the batcher thread outside its `catch_unwind`
    /// (global plan only).
    BatcherDie,
    /// Serving: truncate one HTTP response write mid-body (global plan
    /// only).
    TornWrite,
    /// Serving: force one `Batcher::submit` to report a full queue (global
    /// plan only).
    QueueFull,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::Kill => "kill",
            FaultKind::NanGrad => "nan_grad",
            FaultKind::NanLoss => "nan_loss",
            FaultKind::TornCheckpoint => "torn_checkpoint",
            FaultKind::ScorePanic => "score_panic",
            FaultKind::SlowScore => "slow_score",
            FaultKind::BatcherDie => "batcher_die",
            FaultKind::TornWrite => "torn_write",
            FaultKind::QueueFull => "queue_full",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "kill" => Some(FaultKind::Kill),
            "nan_grad" => Some(FaultKind::NanGrad),
            "nan_loss" => Some(FaultKind::NanLoss),
            "torn_checkpoint" => Some(FaultKind::TornCheckpoint),
            "score_panic" => Some(FaultKind::ScorePanic),
            "slow_score" => Some(FaultKind::SlowScore),
            "batcher_die" => Some(FaultKind::BatcherDie),
            "torn_write" => Some(FaultKind::TornWrite),
            "queue_full" => Some(FaultKind::QueueFull),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
struct FaultPoint {
    kind: FaultKind,
    /// Fire only at this step; `None` fires at the first opportunity.
    step: Option<u64>,
    armed: bool,
}

/// A parsed set of armed faultpoints.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    points: Vec<FaultPoint>,
}

impl FaultPlan {
    /// Parse a `;`-separated spec, e.g. `"kill@step=37;torn_checkpoint"`.
    /// An empty spec is an empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut points = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, step) = match part.split_once('@') {
                None => (part, None),
                Some((name, cond)) => {
                    let step = cond
                        .strip_prefix("step=")
                        .and_then(|s| s.parse::<u64>().ok())
                        .ok_or_else(|| {
                            format!("bad fault condition {cond:?} in {part:?} (want step=<n>)")
                        })?;
                    (name, Some(step))
                }
            };
            let kind = FaultKind::from_name(name).ok_or_else(|| {
                format!(
                    "unknown fault kind {name:?} (want kill, nan_grad, nan_loss, \
                     torn_checkpoint, score_panic, slow_score, batcher_die, \
                     torn_write, queue_full)"
                )
            })?;
            points.push(FaultPoint {
                kind,
                step,
                armed: true,
            });
        }
        Ok(FaultPlan { points })
    }

    /// Number of still-armed faults.
    pub fn armed(&self) -> usize {
        self.points.iter().filter(|p| p.armed).count()
    }
}

thread_local! {
    static PLAN: RefCell<Option<FaultPlan>> = const { RefCell::new(None) };
}

fn with_plan<R>(f: impl FnOnce(&mut FaultPlan) -> R) -> R {
    PLAN.with(|p| {
        let mut p = p.borrow_mut();
        if p.is_none() {
            let plan = std::env::var("ROTOM_FAULT")
                .ok()
                .map(|spec| {
                    FaultPlan::parse(&spec)
                        .unwrap_or_else(|e| panic!("invalid ROTOM_FAULT spec: {e}"))
                })
                .unwrap_or_default();
            *p = Some(plan);
        }
        f(p.as_mut().unwrap())
    })
}

/// Arm the calling thread's faultpoints from a spec string, replacing any
/// previously armed plan (including one inherited from `ROTOM_FAULT`).
pub fn arm(spec: &str) -> Result<(), String> {
    let plan = FaultPlan::parse(spec)?;
    PLAN.with(|p| *p.borrow_mut() = Some(plan));
    Ok(())
}

/// Disarm all faultpoints on the calling thread.
pub fn clear() {
    PLAN.with(|p| *p.borrow_mut() = Some(FaultPlan::default()));
}

/// Number of faults still armed on the calling thread.
pub fn armed() -> usize {
    with_plan(|plan| plan.armed())
}

/// The process-global plan serving faults are checked against. Lazily
/// initialized from `ROTOM_FAULT` on first use, like the thread-local plan.
static GLOBAL_PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

fn with_global_plan<R>(f: impl FnOnce(&mut FaultPlan) -> R) -> R {
    let mut guard = GLOBAL_PLAN.lock().unwrap_or_else(|e| e.into_inner());
    if guard.is_none() {
        let plan = std::env::var("ROTOM_FAULT")
            .ok()
            .map(|spec| {
                FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("invalid ROTOM_FAULT spec: {e}"))
            })
            .unwrap_or_default();
        *guard = Some(plan);
    }
    f(guard.as_mut().unwrap())
}

/// Arm the **process-global** faultpoints (serving faults) from a spec
/// string, replacing any previously armed global plan.
pub fn arm_global(spec: &str) -> Result<(), String> {
    let plan = FaultPlan::parse(spec)?;
    let mut guard = GLOBAL_PLAN.lock().unwrap_or_else(|e| e.into_inner());
    *guard = Some(plan);
    Ok(())
}

/// Disarm all process-global faultpoints.
pub fn clear_global() {
    let mut guard = GLOBAL_PLAN.lock().unwrap_or_else(|e| e.into_inner());
    *guard = Some(FaultPlan::default());
}

/// Number of faults still armed in the global plan.
pub fn armed_global() -> usize {
    with_global_plan(|plan| plan.armed())
}

/// Check-and-fire against the global plan: if a fault of `kind` is armed,
/// disarm one occurrence and return its `@step=` field (serving faults
/// reuse it as a free argument, e.g. the stall milliseconds for
/// `slow_score`); unconditional arming returns `Some(0)`. Returns `None`
/// when nothing is armed.
pub fn fire_global(kind: FaultKind) -> Option<u64> {
    with_global_plan(|plan| {
        for p in &mut plan.points {
            if p.armed && p.kind == kind {
                p.armed = false;
                return Some(p.step.unwrap_or(0));
            }
        }
        None
    })
}

/// Check-and-fire: returns `true` if a fault of `kind` is armed for `step`
/// (or armed unconditionally), disarming that one occurrence. Step-agnostic
/// callers (e.g. checkpoint writes) pass `step = 0` and only unconditional
/// faults match them.
pub fn fires(kind: FaultKind, step: u64) -> bool {
    with_plan(|plan| {
        for p in &mut plan.points {
            if p.armed && p.kind == kind && (p.step.is_none() || p.step == Some(step)) {
                p.armed = false;
                return true;
            }
        }
        false
    })
}

/// The panic payload of a [`FaultKind::Kill`] faultpoint — tests downcast to
/// this to distinguish a simulated crash from a real bug.
#[derive(Debug)]
pub struct FaultKilled {
    /// The training step at which the simulated crash fired.
    pub step: u64,
}

impl std::fmt::Display for FaultKilled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulated crash: {}@step={} faultpoint fired",
            FaultKind::Kill.name(),
            self.step
        )
    }
}

/// Fire a [`FaultKind::Kill`] faultpoint if one is armed for `step`:
/// panics with a [`FaultKilled`] payload, simulating sudden process death.
pub fn maybe_kill(step: u64) {
    if fires(FaultKind::Kill, step) {
        std::panic::panic_any(FaultKilled { step });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_spec_grammar() {
        let plan = FaultPlan::parse("kill@step=37; nan_grad@step=12 ;torn_checkpoint").unwrap();
        assert_eq!(plan.armed(), 3);
        assert!(FaultPlan::parse("").unwrap().points.is_empty());
        assert!(FaultPlan::parse("explode@step=1").is_err());
        assert!(FaultPlan::parse("kill@epoch=3").is_err());
        assert!(FaultPlan::parse("kill@step=abc").is_err());
    }

    #[test]
    fn fires_only_at_matching_step_and_once() {
        arm("nan_grad@step=5").unwrap();
        assert!(!fires(FaultKind::NanGrad, 4));
        assert!(!fires(FaultKind::Kill, 5));
        assert!(fires(FaultKind::NanGrad, 5));
        // One-shot: replaying the same step after resume must not re-fire.
        assert!(!fires(FaultKind::NanGrad, 5));
        clear();
    }

    #[test]
    fn repeated_arming_fires_repeatedly() {
        arm("nan_grad@step=3;nan_grad@step=3").unwrap();
        assert!(fires(FaultKind::NanGrad, 3));
        assert!(fires(FaultKind::NanGrad, 3));
        assert!(!fires(FaultKind::NanGrad, 3));
        clear();
    }

    #[test]
    fn unconditional_fault_matches_any_step() {
        arm("torn_checkpoint").unwrap();
        assert!(fires(FaultKind::TornCheckpoint, 0));
        assert!(!fires(FaultKind::TornCheckpoint, 0));
        clear();
    }

    #[test]
    fn global_plan_fires_once_with_argument() {
        arm_global("slow_score@step=250;queue_full").unwrap();
        assert_eq!(armed_global(), 2);
        // The @step field comes back as the fault argument (stall millis).
        assert_eq!(fire_global(FaultKind::SlowScore), Some(250));
        assert_eq!(fire_global(FaultKind::SlowScore), None, "one-shot");
        assert_eq!(fire_global(FaultKind::QueueFull), Some(0));
        assert_eq!(armed_global(), 0);
        // Global arming never leaks into the thread-local plan.
        clear();
        assert!(!fires(FaultKind::QueueFull, 0));
        clear_global();
    }

    #[test]
    fn serve_kind_names_roundtrip() {
        for kind in [
            FaultKind::ScorePanic,
            FaultKind::SlowScore,
            FaultKind::BatcherDie,
            FaultKind::TornWrite,
            FaultKind::QueueFull,
        ] {
            assert_eq!(FaultKind::from_name(kind.name()), Some(kind));
        }
    }

    #[test]
    fn kill_panics_with_typed_payload() {
        arm("kill@step=7").unwrap();
        maybe_kill(6); // not yet
        let err = std::panic::catch_unwind(|| maybe_kill(7)).unwrap_err();
        let killed = err.downcast::<FaultKilled>().expect("FaultKilled payload");
        assert_eq!(killed.step, 7);
        clear();
    }
}
