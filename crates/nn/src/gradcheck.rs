//! Central-difference gradient checking for tape-built models.
//!
//! The meta-learning estimators in `crates/meta` (REINFORCE for the filter
//! model, DARTS-style finite differences for the weighting model) sit on top
//! of this crate's hand-rolled reverse-mode autodiff. A silent wrong-gradient
//! bug there corrupts training without failing any existing test, so this
//! module compares every analytic gradient produced by [`Tape::backward`]
//! against a numerical central difference:
//!
//! ```text
//! ∂L/∂θk ≈ (L(θ + ε·ek) − L(θ − ε·ek)) / 2ε
//! ```
//!
//! evaluated by re-running the caller's forward closure with one flat
//! coordinate perturbed at a time. Errors are reported *relative*:
//!
//! ```text
//! rel_err = |analytic − numeric| / max(|analytic|, |numeric|, floor)
//! ```
//!
//! The `floor` keeps near-zero gradients from blowing up the ratio through
//! f32 roundoff alone.
//!
//! # Choosing ε in f32
//!
//! Central differences have truncation error `O(ε²)` and roundoff error
//! `O(u·|L|/ε)` with `u ≈ 6e-8` for f32. For losses of magnitude ~1 the
//! sweet spot is around `ε ≈ 1e-2`: truncation ~1e-4, roundoff ~1e-5. The
//! defaults in [`GradCheckOpts`] encode this; don't shrink `eps` below ~1e-3
//! in f32 or roundoff dominates and every check gets *worse*.
//!
//! [`Tape::backward`]: crate::Tape::backward

use crate::params::ParamStore;

/// Options controlling a gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckOpts {
    /// Finite-difference step (applied per flat coordinate).
    pub eps: f32,
    /// Maximum acceptable relative error for [`GradCheckReport::passed`].
    pub tol: f32,
    /// Denominator floor for the relative error (absolute-error regime for
    /// gradients smaller than this).
    pub denom_floor: f32,
    /// Check every `stride`-th flat coordinate (1 = all). Use >1 to keep
    /// large modules (transformer stacks) fast; coordinates are still drawn
    /// from every parameter tensor because the flat layout interleaves them
    /// only at tensor boundaries.
    pub stride: usize,
}

impl Default for GradCheckOpts {
    fn default() -> Self {
        Self {
            eps: 1e-2,
            tol: 1e-2,
            denom_floor: 5e-2,
            stride: 1,
        }
    }
}

/// One checked coordinate: the analytic/numeric pair and its relative error.
#[derive(Debug, Clone)]
pub struct GradCheckEntry {
    /// Name of the parameter tensor the coordinate lives in.
    pub param: String,
    /// Index within that tensor's flat data.
    pub index: usize,
    /// Gradient from `Tape::backward`.
    pub analytic: f32,
    /// Central-difference estimate.
    pub numeric: f32,
    /// `|analytic − numeric| / max(|analytic|, |numeric|, floor)`.
    pub rel_err: f32,
}

/// Result of [`check`]: summary statistics plus the worst offender.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Number of flat coordinates compared.
    pub checked: usize,
    /// Largest relative error observed.
    pub max_rel_err: f32,
    /// The coordinate with the largest relative error, if any were checked.
    pub worst: Option<GradCheckEntry>,
    /// Tolerance the report was evaluated against (copied from the options).
    pub tol: f32,
}

impl GradCheckReport {
    /// Whether every checked coordinate is within tolerance.
    pub fn passed(&self) -> bool {
        self.max_rel_err <= self.tol
    }

    /// Panic with a readable diagnosis unless the check passed.
    #[track_caller]
    pub fn assert_ok(&self) {
        if let Some(w) = &self.worst {
            assert!(
                self.passed(),
                "gradcheck failed: max rel err {:.4e} > tol {:.1e} at {}[{}] \
                 (analytic {:.6e}, numeric {:.6e}; {} coords checked)",
                self.max_rel_err,
                self.tol,
                w.param,
                w.index,
                w.analytic,
                w.numeric,
                self.checked
            );
        }
        assert!(self.checked > 0, "gradcheck compared zero coordinates");
    }
}

/// Compare analytic tape gradients against central differences over every
/// trainable coordinate of `store`.
///
/// `run` must build the graph from the *current* store values and return the
/// scalar loss; when its second argument is `true` it must additionally call
/// `tape.backward(loss, store)` (gradients are zeroed here beforehand). The
/// closure is invoked once with `backward = true` and then `2·⌈n/stride⌉`
/// times with `backward = false` while coordinates are perturbed. Parameter
/// values are restored before returning.
pub fn check<F>(store: &mut ParamStore, opts: &GradCheckOpts, mut run: F) -> GradCheckReport
where
    F: FnMut(&mut ParamStore, bool) -> f32,
{
    assert!(opts.stride >= 1, "stride must be >= 1");
    store.zero_grad();
    let _ = run(store, true);
    let analytic = store.flat_grads();
    let theta = store.flat_values();

    // Map flat offsets back to (tensor name, local index) for reporting.
    let mut spans: Vec<(String, usize)> = Vec::new();
    for id in store.ids().collect::<Vec<_>>() {
        if store.is_trainable(id) {
            spans.push((store.name(id).to_string(), store.value(id).len()));
        }
    }

    let locate = |flat: usize| -> (String, usize) {
        let mut offset = 0;
        for (name, len) in &spans {
            if flat < offset + len {
                return (name.clone(), flat - offset);
            }
            offset += len;
        }
        ("<unknown>".to_string(), flat)
    };

    let mut report = GradCheckReport {
        checked: 0,
        max_rel_err: 0.0,
        worst: None,
        tol: opts.tol,
    };

    let mut probe = theta.clone();
    let mut k = 0;
    while k < theta.len() {
        probe[k] = theta[k] + opts.eps;
        store.set_flat(&probe);
        let plus = run(store, false);
        probe[k] = theta[k] - opts.eps;
        store.set_flat(&probe);
        let minus = run(store, false);
        probe[k] = theta[k];

        let numeric = (plus - minus) / (2.0 * opts.eps);
        let a = analytic[k];
        let denom = a.abs().max(numeric.abs()).max(opts.denom_floor);
        let rel_err = (a - numeric).abs() / denom;

        report.checked += 1;
        if report.worst.is_none() || rel_err > report.max_rel_err {
            report.max_rel_err = rel_err;
            let (param, index) = locate(k);
            report.worst = Some(GradCheckEntry {
                param,
                index,
                analytic: a,
                numeric,
                rel_err,
            });
        }
        k += opts.stride;
    }

    store.set_flat(&theta);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Initializer;
    use crate::tensor::Tensor;
    use crate::Tape;
    use rotom_rng::{rngs::StdRng, SeedableRng};

    fn quadratic_store() -> (ParamStore, crate::ParamId) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let w = store.alloc("w", 2, 3, Initializer::Uniform(0.5), &mut rng);
        (store, w)
    }

    #[test]
    fn passes_on_simple_quadratic() {
        let (mut store, w) = quadratic_store();
        let x = Tensor::from_vec(vec![0.3, -0.7], 1, 2);
        let report = check(&mut store, &GradCheckOpts::default(), |store, backward| {
            let mut tape = Tape::new();
            let xn = tape.input(x.clone());
            let wn = tape.param(w, store);
            let y = tape.matmul(xn, wn);
            let sq = tape.mul(y, y);
            let loss = tape.sum_all(sq);
            let lv = tape.value(loss).item();
            if backward {
                tape.backward(loss, store);
            }
            lv
        });
        report.assert_ok();
        assert_eq!(report.checked, 6);
    }

    #[test]
    fn stride_skips_coordinates_but_restores_values() {
        let (mut store, w) = quadratic_store();
        let before = store.flat_values();
        let x = Tensor::from_vec(vec![0.3, -0.7], 1, 2);
        let opts = GradCheckOpts {
            stride: 4,
            ..Default::default()
        };
        let report = check(&mut store, &opts, |store, backward| {
            let mut tape = Tape::new();
            let xn = tape.input(x.clone());
            let wn = tape.param(w, store);
            let y = tape.matmul(xn, wn);
            let loss = tape.sum_all(y);
            let lv = tape.value(loss).item();
            if backward {
                tape.backward(loss, store);
            }
            lv
        });
        report.assert_ok();
        assert_eq!(report.checked, 2); // indices 0 and 4 of 6
        assert_eq!(store.flat_values(), before);
    }

    #[test]
    fn negative_control_catches_corrupted_gradient() {
        // Deliberately scale one analytic gradient after backward; the
        // checker must flag it. This guards against a checker that
        // trivially "passes" everything.
        let (mut store, w) = quadratic_store();
        let x = Tensor::from_vec(vec![0.3, -0.7], 1, 2);
        let report = check(&mut store, &GradCheckOpts::default(), |store, backward| {
            let mut tape = Tape::new();
            let xn = tape.input(x.clone());
            let wn = tape.param(w, store);
            let y = tape.matmul(xn, wn);
            let sq = tape.mul(y, y);
            let loss = tape.sum_all(sq);
            let lv = tape.value(loss).item();
            if backward {
                tape.backward(loss, store);
                store.grad_mut(w).data_mut()[0] *= 1.5; // sabotage
            }
            lv
        });
        assert!(
            !report.passed(),
            "checker failed to detect a 1.5x-corrupted gradient (max rel err {:.3e})",
            report.max_rel_err
        );
        let worst = report.worst.unwrap();
        assert_eq!(worst.param, "w");
        assert_eq!(worst.index, 0);
    }
}
