//! Structured runtime telemetry: a lock-cheap, off-by-default JSONL sink.
//!
//! Rotom's value is invisible at runtime without it: which augmentations
//! `M_F` kept, what weights `M_W` assigned, where a training step spends its
//! time. This module is the zero-dependency observability plane every crate
//! in the workspace emits into:
//!
//! * **Records** are line-delimited JSON objects, hand-serialized (the
//!   workspace carries no serde). Every record carries three required
//!   fields — `ts_step` (a process-global monotonic sequence number),
//!   `kind`, and `name` — plus arbitrary flat key/value fields.
//! * **Kinds** are a small closed vocabulary: `step` (one optimizer step of
//!   a target model), `meta` (one `M_F`/`M_W` decision batch), `aug` (one
//!   augmentation batch per operator), `pool` (one worker-pool dispatch),
//!   plus the generic `counter`, `gauge`, and `span`.
//! * **Spans** are RAII timers ([`span`]): the guard records its start on
//!   creation and emits one `span` record with `elapsed_us` and a
//!   per-thread `depth` on drop, so nested spans reconstruct a call tree
//!   from `(depth, ts_step)` alone.
//!
//! # Enabling
//!
//! Telemetry is **off by default** and enabled with the `ROTOM_TELEMETRY`
//! environment variable, read once at first use (like `ROTOM_THREADS`):
//! `ROTOM_TELEMETRY=stderr` streams records to stderr, any other non-empty
//! value is treated as a file path (created/truncated). Tests and tools can
//! instead install a writer programmatically with [`install_writer`].
//!
//! # Overhead contract
//!
//! Disabled, every instrumentation site reduces to one [`enabled`] check —
//! an initialized-`OnceLock` load — and **no** formatting, timing, locking,
//! or allocation happens; the trainbench regression gate holds with
//! telemetry off. Enabled, each record formats into a thread-local-free
//! `String` and takes one short mutex-guarded `write_all` (a single line
//! write, so concurrent emitters interleave at record granularity and the
//! JSONL stream stays parseable). Instrumentation never consumes RNG draws
//! and never mutates training state, so runs are bit-identical with
//! telemetry on or off.

use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A telemetry field value: the flat scalar types a record may carry.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counters, counts, sequence numbers).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float; non-finite values serialize as JSON `null`.
    F64(f64),
    /// String (escaped on serialization).
    Str(String),
    /// Explicit null (what a non-finite float parses back as).
    Null,
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Value {
    /// The value as an `f64` when it is numeric (`U64`/`I64`/`F64`).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice when it is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One parsed telemetry record (see [`parse_line`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Process-global monotonic sequence number.
    pub ts_step: u64,
    /// Record kind (`step`, `meta`, `aug`, `pool`, `counter`, `gauge`,
    /// `span`).
    pub kind: String,
    /// Record name (which instrumentation site emitted it).
    pub name: String,
    /// Remaining fields in emission order.
    pub fields: Vec<(String, Value)>,
}

impl Record {
    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

struct Sink {
    writer: Mutex<Box<dyn Write + Send>>,
    seq: AtomicU64,
}

static SINK: OnceLock<Option<Sink>> = OnceLock::new();

fn sink() -> Option<&'static Sink> {
    SINK.get_or_init(init_from_env).as_ref()
}

fn init_from_env() -> Option<Sink> {
    let target = std::env::var("ROTOM_TELEMETRY").ok()?;
    let target = target.trim();
    if target.is_empty() {
        return None;
    }
    let writer: Box<dyn Write + Send> = if target == "stderr" {
        Box::new(std::io::stderr())
    } else {
        match std::fs::File::create(target) {
            Ok(f) => Box::new(f),
            Err(e) => {
                eprintln!(
                    "rotom telemetry: cannot open ROTOM_TELEMETRY={target:?}: {e}; \
                     telemetry stays disabled"
                );
                return None;
            }
        }
    };
    Some(Sink {
        writer: Mutex::new(writer),
        seq: AtomicU64::new(0),
    })
}

/// Install a telemetry writer programmatically, bypassing the environment
/// (tests capture records through this). First initialization wins — returns
/// `false` when the sink was already initialized (from the environment or a
/// previous call), in which case the writer is dropped.
pub fn install_writer(writer: Box<dyn Write + Send>) -> bool {
    SINK.set(Some(Sink {
        writer: Mutex::new(writer),
        seq: AtomicU64::new(0),
    }))
    .is_ok()
}

/// Whether telemetry is enabled for this process. The first call reads
/// `ROTOM_TELEMETRY`; later calls are one initialized-`OnceLock` load. Every
/// instrumentation site guards on this so the disabled path does no work.
#[inline]
pub fn enabled() -> bool {
    sink().is_some()
}

/// Append one JSON field (`,"key":value`) to a line under construction.
fn push_field(line: &mut String, key: &str, value: &Value) {
    line.push(',');
    push_json_str(line, key);
    line.push(':');
    match value {
        Value::U64(v) => {
            let _ = write!(line, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(line, "{v}");
        }
        Value::F64(v) if v.is_finite() => {
            let _ = write!(line, "{v:?}");
        }
        Value::F64(_) | Value::Null => line.push_str("null"),
        Value::Str(s) => push_json_str(line, s),
    }
}

/// Append a JSON string literal (quoted, escaped).
fn push_json_str(line: &mut String, s: &str) {
    line.push('"');
    for c in s.chars() {
        match c {
            '"' => line.push_str("\\\""),
            '\\' => line.push_str("\\\\"),
            '\n' => line.push_str("\\n"),
            '\r' => line.push_str("\\r"),
            '\t' => line.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(line, "\\u{:04x}", c as u32);
            }
            c => line.push(c),
        }
    }
    line.push('"');
}

/// Render one record to its JSONL form (no trailing newline). Exposed so the
/// schema tests and the report tool can round-trip records without a sink.
pub fn render_record(ts_step: u64, kind: &str, name: &str, fields: &[(&str, Value)]) -> String {
    let mut line = String::with_capacity(96 + 24 * fields.len());
    let _ = write!(line, "{{\"ts_step\":{ts_step}");
    push_field(&mut line, "kind", &Value::Str(kind.to_string()));
    push_field(&mut line, "name", &Value::Str(name.to_string()));
    for (k, v) in fields {
        push_field(&mut line, k, v);
    }
    line.push('}');
    line
}

/// Emit one record. No-op when telemetry is disabled.
pub fn emit(kind: &str, name: &str, fields: &[(&str, Value)]) {
    let Some(s) = sink() else { return };
    let ts = s.seq.fetch_add(1, Ordering::Relaxed);
    let mut line = render_record(ts, kind, name, fields);
    line.push('\n');
    // One write_all per record keeps lines atomic across threads.
    if let Ok(mut w) = s.writer.lock() {
        let _ = w.write_all(line.as_bytes());
    }
}

/// Emit a `counter` record (a named monotonic increment).
pub fn counter(name: &str, delta: u64) {
    emit("counter", name, &[("delta", Value::U64(delta))]);
}

/// Emit a `gauge` record (a named point-in-time value).
pub fn gauge(name: &str, value: f64) {
    emit("gauge", name, &[("value", Value::F64(value))]);
}

thread_local! {
    /// Per-thread span nesting depth (0 = outermost).
    static SPAN_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// RAII timer: emits one `span` record with `elapsed_us` and the thread's
/// nesting `depth` when dropped. Only constructed while telemetry is
/// enabled — [`span`] returns `None` otherwise, so the disabled path never
/// reads the clock.
pub struct Span {
    name: &'static str,
    start: Instant,
    depth: u32,
}

/// Start a span timer covering the guard's lifetime. `None` (no clock read,
/// no allocation) when telemetry is disabled.
pub fn span(name: &'static str) -> Option<Span> {
    if !enabled() {
        return None;
    }
    let depth = SPAN_DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    Some(Span {
        name,
        start: Instant::now(),
        depth,
    })
}

impl Drop for Span {
    fn drop(&mut self) {
        SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        emit(
            "span",
            self.name,
            &[
                (
                    "elapsed_us",
                    Value::U64(self.start.elapsed().as_micros() as u64),
                ),
                ("depth", Value::U64(self.depth as u64)),
            ],
        );
    }
}

// ---------------------------------------------------------------------------
// JSONL parsing (for the report tool and schema tests)
// ---------------------------------------------------------------------------

/// Parse one JSONL telemetry line into a [`Record`], validating the schema:
/// a flat JSON object whose first fields are `ts_step` (unsigned integer),
/// `kind`, and `name` (strings), followed by scalar fields only.
pub fn parse_line(line: &str) -> Result<Record, String> {
    let mut fields = parse_flat_object(line.trim())?;
    if fields.len() < 3 {
        return Err("record must carry ts_step, kind, name".to_string());
    }
    let take = |fields: &mut Vec<(String, Value)>, key: &str| -> Result<Value, String> {
        let i = fields
            .iter()
            .position(|(k, _)| k == key)
            .ok_or_else(|| format!("missing required field {key:?}"))?;
        Ok(fields.remove(i).1)
    };
    let ts_step = match take(&mut fields, "ts_step")? {
        Value::U64(v) => v,
        other => {
            return Err(format!(
                "ts_step must be an unsigned integer, got {other:?}"
            ))
        }
    };
    let kind = match take(&mut fields, "kind")? {
        Value::Str(s) if !s.is_empty() => s,
        other => return Err(format!("kind must be a non-empty string, got {other:?}")),
    };
    let name = match take(&mut fields, "name")? {
        Value::Str(s) if !s.is_empty() => s,
        other => return Err(format!("name must be a non-empty string, got {other:?}")),
    };
    Ok(Record {
        ts_step,
        kind,
        name,
        fields,
    })
}

/// Parse a flat (non-nested) JSON object into ordered key/value pairs.
fn parse_flat_object(s: &str) -> Result<Vec<(String, Value)>, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    };
    skip_ws(&mut pos);
    if pos >= bytes.len() || bytes[pos] != b'{' {
        return Err("expected '{'".to_string());
    }
    pos += 1;
    let mut out = Vec::new();
    loop {
        skip_ws(&mut pos);
        if pos < bytes.len() && bytes[pos] == b'}' {
            pos += 1;
            break;
        }
        if !out.is_empty() {
            if pos >= bytes.len() || bytes[pos] != b',' {
                return Err(format!("expected ',' at byte {pos}"));
            }
            pos += 1;
            skip_ws(&mut pos);
        }
        let key = parse_json_string(s, &mut pos)?;
        skip_ws(&mut pos);
        if pos >= bytes.len() || bytes[pos] != b':' {
            return Err(format!("expected ':' after key {key:?}"));
        }
        pos += 1;
        skip_ws(&mut pos);
        let value = parse_scalar(s, &mut pos)?;
        out.push((key, value));
    }
    skip_ws(&mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes after object at {pos}"));
    }
    Ok(out)
}

/// Parse a JSON string literal starting at `*pos`.
fn parse_json_string(s: &str, pos: &mut usize) -> Result<String, String> {
    let bytes = s.as_bytes();
    if *pos >= bytes.len() || bytes[*pos] != b'"' {
        return Err(format!("expected '\"' at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    let mut chars = s[*pos..].char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((j, 'u')) => {
                    let hex = s
                        .get(*pos + j + 1..*pos + j + 5)
                        .ok_or("truncated \\u escape")?;
                    let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                    out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                    // Skip the 4 hex digits.
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

/// Parse a scalar JSON value (string, number, `null`, `true`, `false`).
fn parse_scalar(s: &str, pos: &mut usize) -> Result<Value, String> {
    let bytes = s.as_bytes();
    match bytes.get(*pos) {
        Some(b'"') => Ok(Value::Str(parse_json_string(s, pos)?)),
        Some(b'n') if s[*pos..].starts_with("null") => {
            *pos += 4;
            Ok(Value::Null)
        }
        Some(b't') if s[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(Value::U64(1))
        }
        Some(b'f') if s[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(Value::U64(0))
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            let tok = &s[start..*pos];
            if tok.is_empty() {
                return Err(format!("expected a value at byte {start}"));
            }
            if !tok.contains(['.', 'e', 'E']) {
                if let Ok(v) = tok.parse::<u64>() {
                    return Ok(Value::U64(v));
                }
                if let Ok(v) = tok.parse::<i64>() {
                    return Ok(Value::I64(v));
                }
            }
            tok.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| format!("bad number {tok:?}: {e}"))
        }
        None => Err("expected a value, found end of line".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_carries_required_fields_in_order() {
        let line = render_record(7, "step", "train.step", &[("loss", Value::F64(0.5))]);
        assert!(line.starts_with("{\"ts_step\":7,\"kind\":\"step\",\"name\":\"train.step\""));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn roundtrip_all_value_types() {
        let fields: Vec<(&str, Value)> = vec![
            ("u", Value::U64(18_446_744_073_709_551_615)),
            ("i", Value::I64(-42)),
            ("f", Value::F64(1.5)),
            ("zero", Value::F64(0.0)),
            (
                "s",
                Value::Str("a \"quoted\"\nline\twith \\ and ✓".to_string()),
            ),
            ("nan", Value::F64(f64::NAN)),
            ("inf", Value::F64(f64::INFINITY)),
            ("null", Value::Null),
        ];
        let line = render_record(3, "gauge", "test", &fields);
        let rec = parse_line(&line).unwrap();
        assert_eq!(rec.ts_step, 3);
        assert_eq!(rec.kind, "gauge");
        assert_eq!(rec.name, "test");
        assert_eq!(rec.field("u"), Some(&Value::U64(u64::MAX)));
        assert_eq!(rec.field("i"), Some(&Value::I64(-42)));
        assert_eq!(rec.field("f"), Some(&Value::F64(1.5)));
        assert_eq!(rec.field("zero"), Some(&Value::F64(0.0)));
        assert_eq!(
            rec.field("s").and_then(|v| v.as_str()),
            Some("a \"quoted\"\nline\twith \\ and ✓")
        );
        // Non-finite floats serialize (and parse back) as null.
        assert_eq!(rec.field("nan"), Some(&Value::Null));
        assert_eq!(rec.field("inf"), Some(&Value::Null));
        assert_eq!(rec.field("null"), Some(&Value::Null));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_line("").is_err());
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"ts_step\":1}").is_err());
        assert!(parse_line("{\"kind\":\"x\",\"name\":\"y\",\"ts_step\":\"one\"}").is_err());
        assert!(parse_line("{\"ts_step\":1,\"kind\":\"\",\"name\":\"y\"}").is_err());
        assert!(parse_line("{\"ts_step\":1,\"kind\":\"a\",\"name\":\"b\"} extra").is_err());
        assert!(parse_line("{\"ts_step\":1,\"kind\":\"a\",\"name\":\"b\",}").is_err());
    }

    #[test]
    fn parse_accepts_required_fields_in_any_order() {
        let rec = parse_line("{\"name\":\"n\",\"ts_step\":5,\"extra\":2,\"kind\":\"k\"}").unwrap();
        assert_eq!(rec.ts_step, 5);
        assert_eq!(rec.kind, "k");
        assert_eq!(rec.name, "n");
        assert_eq!(rec.fields, vec![("extra".to_string(), Value::U64(2))]);
    }

    #[test]
    fn numbers_parse_to_narrowest_type() {
        let rec = parse_line(
            "{\"ts_step\":0,\"kind\":\"k\",\"name\":\"n\",\
             \"a\":3,\"b\":-3,\"c\":3.5,\"d\":1e3,\"e\":true,\"g\":false}",
        )
        .unwrap();
        assert_eq!(rec.field("a"), Some(&Value::U64(3)));
        assert_eq!(rec.field("b"), Some(&Value::I64(-3)));
        assert_eq!(rec.field("c"), Some(&Value::F64(3.5)));
        assert_eq!(rec.field("d"), Some(&Value::F64(1000.0)));
        assert_eq!(rec.field("e"), Some(&Value::U64(1)));
        assert_eq!(rec.field("g"), Some(&Value::U64(0)));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(1.5f32), Value::F64(1.5));
        assert_eq!(Value::U64(4).as_f64(), Some(4.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }
}
